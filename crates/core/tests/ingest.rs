//! Integration tests for concurrent batched ingestion: `ingest_batch` must
//! leave the server in a state byte-identical to per-call `handle_update`
//! — for every `ingest_workers` count — and the group commit must touch
//! each cell's dirty epoch exactly once per batch.

use ggrid::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::{gen, EdgeId};

const EDGES: u32 = 160; // gen::toy edge count

fn config(ingest_workers: usize) -> GGridConfig {
    GGridConfig {
        eta: 4,
        bucket_capacity: 16,
        ingest_workers,
        ..Default::default()
    }
}

type Update = (ObjectId, EdgePosition, Timestamp);

/// A deterministic update stream with plenty of cell-to-cell moves.
fn update_stream(seed: u64, n: usize) -> Vec<Update> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x16e57);
    let mut t = 100u64;
    (0..n)
        .map(|_| {
            t += 1;
            (
                ObjectId(rng.gen_range(0..40u64)),
                EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES))),
                Timestamp(t),
            )
        })
        .collect()
}

/// Full observable ingest state of a server, for byte-for-byte comparison.
#[allow(clippy::type_complexity)]
fn state_of(
    s: &GGridServer,
    objects: u64,
) -> (usize, usize, u64, Vec<Option<(EdgePosition, Timestamp)>>) {
    (
        s.num_objects(),
        s.cached_messages(),
        s.counters().tombstones_written,
        (0..objects)
            .map(|o| s.object_position(ObjectId(o)))
            .collect(),
    )
}

#[test]
fn batch_matches_sequential_reference() {
    for seed in [3u64, 21, 77] {
        let updates = update_stream(seed, 300);
        let graph = gen::toy(seed);
        let reference = GGridServer::new(graph.clone(), config(1));
        for &(o, p, t) in &updates {
            reference.handle_update(o, p, t);
        }
        let want = state_of(&reference, 40);
        for workers in [1usize, 2, 4] {
            let s = GGridServer::new(graph.clone(), config(workers));
            // Commit in uneven chunks so batches straddle cell moves.
            for chunk in updates.chunks(37) {
                s.ingest_batch(chunk);
            }
            assert_eq!(
                state_of(&s, 40),
                want,
                "seed {seed}, {workers} ingest workers"
            );
            let c = s.counters();
            assert_eq!(c.updates_ingested, updates.len() as u64);
            assert_eq!(c.batched_updates, updates.len() as u64);
            assert_eq!(c.tombstones_batched, c.tombstones_written);
            assert!(c.ingest_batches > 0);
            assert!(c.ingest_cell_locks > 0);
        }
    }
}

#[test]
fn answers_identical_across_worker_counts() {
    let seed = 11u64;
    let updates = update_stream(seed, 240);
    let queries: Vec<EdgePosition> = (0..8u32)
        .map(|i| EdgePosition::at_source(EdgeId(i * 19 % EDGES)))
        .collect();
    let graph = gen::toy(seed);
    // Reference: sequential handle_update, queries interleaved.
    let mut reference = GGridServer::new(graph.clone(), config(1));
    let mut want = Vec::new();
    for (round, chunk) in updates.chunks(60).enumerate() {
        for &(o, p, t) in chunk {
            reference.handle_update(o, p, t);
        }
        for &q in &queries {
            want.push(reference.knn(q, 5, Timestamp(1000 + round as u64)));
        }
    }
    for workers in [1usize, 2, 4] {
        let mut s = GGridServer::new(graph.clone(), config(workers));
        let mut got = Vec::new();
        for (round, chunk) in updates.chunks(60).enumerate() {
            s.ingest_batch(chunk);
            for &q in &queries {
                got.push(s.knn(q, 5, Timestamp(1000 + round as u64)));
            }
        }
        assert_eq!(got, want, "{workers} ingest workers changed answers");
    }
}

#[test]
fn cross_object_order_in_batch_cannot_change_answers() {
    // Cleaning dedups to newest-per-object with a deterministic tiebreak
    // and kNN orders by (distance, object id), so permuting updates of
    // *distinct* objects inside a batch must not change any answer.
    let seed = 29u64;
    let updates = update_stream(seed, 120);
    let graph = gen::toy(seed);
    let mut forward = GGridServer::new(graph.clone(), config(1));
    forward.ingest_batch(&updates);

    // Reverse the batch but keep each object's own updates in order.
    let mut by_object: std::collections::BTreeMap<u64, Vec<Update>> = Default::default();
    for &u in &updates {
        by_object.entry(u.0 .0).or_default().push(u);
    }
    let mut reversed: Vec<Update> = Vec::with_capacity(updates.len());
    for (_, runs) in by_object.iter_mut().rev() {
        reversed.append(runs);
    }
    assert_ne!(reversed, updates, "permutation should actually permute");
    let mut permuted = GGridServer::new(graph, config(1));
    permuted.ingest_batch(&reversed);

    for i in 0..10u32 {
        let q = EdgePosition::at_source(EdgeId(i * 17 % EDGES));
        assert_eq!(
            forward.knn(q, 6, Timestamp(1000)),
            permuted.knn(q, 6, Timestamp(1000)),
            "cross-object batch order leaked into an answer"
        );
    }
}

#[test]
fn batch_bumps_touched_cell_epoch_once_and_leaves_others_warm() {
    let graph = gen::toy(42);
    let mut s = GGridServer::new(graph, config(1));
    // Two objects in (very likely) different cells; warm both cells' skip
    // stamps with one query each.
    let a = EdgePosition::at_source(EdgeId(0));
    let b = EdgePosition::at_source(EdgeId(EDGES - 1));
    s.handle_update(ObjectId(1), a, Timestamp(100));
    s.handle_update(ObjectId(2), b, Timestamp(100));
    s.knn(a, 1, Timestamp(200));
    s.knn(b, 1, Timestamp(200));
    s.knn(a, 1, Timestamp(201));
    s.knn(b, 1, Timestamp(201));
    let misses_warm = s.counters().clean_skip_misses;

    // A batch of 12 updates, all landing on edge 0's cell.
    let batch: Vec<Update> = (0..12u64)
        .map(|i| (ObjectId(1), a, Timestamp(300 + i)))
        .collect();
    s.ingest_batch(&batch);

    // Twelve appends under one group commit cost ONE re-clean in total —
    // the touched cell's single epoch bump — while every untouched cell in
    // both query regions stays warm.
    let hits_before = s.counters().clean_skip_hits;
    s.knn(b, 1, Timestamp(400));
    s.knn(a, 1, Timestamp(401));
    let after = s.counters();
    assert!(after.clean_skip_hits > hits_before, "warm cells went cold");
    assert_eq!(
        after.clean_skip_misses,
        misses_warm + 1,
        "a 12-update batch into one cell must cost exactly one invalidation"
    );

    // Everything is consolidated again: repeats are pure hits.
    s.knn(a, 1, Timestamp(402));
    s.knn(b, 1, Timestamp(403));
    assert_eq!(s.counters().clean_skip_misses, misses_warm + 1);
}

#[test]
fn empty_batch_is_a_noop() {
    let graph = gen::toy(1);
    let s = GGridServer::new(graph, config(4));
    s.ingest_batch(&[]);
    let c = s.counters();
    assert_eq!(c.updates_ingested, 0);
    assert_eq!(c.ingest_batches, 0);
    assert_eq!(c.ingest_cell_locks, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of batched ingestion (across 1/2/4 workers) and
    /// kNN queries matches the per-call sequential reference: identical
    /// object table, cached-message count, tombstone count, and answers.
    #[test]
    fn batched_ingest_interleaved_with_knn_matches_sequential(
        seed in 0u64..1000,
        ops in prop::collection::vec((0u64..24, 0u32..160, 0u32..3), 6..60),
    ) {
        let graph = gen::toy(5);
        let mut reference = GGridServer::new(graph.clone(), config(1));
        let mut servers: Vec<GGridServer> = [1usize, 2, 4]
            .iter()
            .map(|&w| GGridServer::new(graph.clone(), config(w)))
            .collect();
        let mut t = 100u64;
        let mut pending: Vec<Update> = Vec::new();
        let flush = |pending: &mut Vec<Update>,
                         reference: &mut GGridServer,
                         servers: &mut Vec<GGridServer>| {
            for &(o, p, ts) in pending.iter() {
                reference.handle_update(o, p, ts);
            }
            for s in servers.iter_mut() {
                s.ingest_batch(pending);
            }
            pending.clear();
        };
        for &(obj, edge, kind) in &ops {
            t += 1;
            let e = EdgePosition::at_source(EdgeId(edge % EDGES));
            if kind < 2 {
                // Update: queued into the current group commit.
                pending.push((ObjectId(obj ^ seed), e, Timestamp(t)));
            } else {
                // Query: forces a flush, then every server must agree.
                flush(&mut pending, &mut reference, &mut servers);
                let want = reference.knn(e, 4, Timestamp(t));
                for s in servers.iter_mut() {
                    prop_assert_eq!(&s.knn(e, 4, Timestamp(t)), &want);
                }
            }
        }
        flush(&mut pending, &mut reference, &mut servers);
        let want = state_of(&reference, 24 + 1024);
        for s in &servers {
            prop_assert_eq!(&state_of(s, 24 + 1024), &want);
        }
    }
}
