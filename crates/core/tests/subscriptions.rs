//! Integration tests for continuous kNN subscriptions: after every ingest
//! batch + `tick_subscriptions`, each subscription's maintained top-k must be
//! byte-identical to a fresh `knn` at the same timestamp, across random
//! walks, churn in and out of guard regions, forced evictions, expiry, and
//! worker counts 1/2/4. Also checks that a batch touching no guard region
//! triggers zero re-evaluations.

use ggrid::grid::CellId;
use ggrid::prelude::*;
use proptest::prelude::*;
use roadnet::gen::{self, GridCityParams};
use roadnet::graph::Graph;
use roadnet::EdgeId;

#[derive(Debug, Clone)]
struct Step {
    /// `(object, edge, offset)` updates applied as one `ingest_batch`.
    updates: Vec<(u64, u32, u32)>,
    /// Evict all device-resident cell lists before the tick.
    evict: bool,
    /// Milliseconds by which this step advances the clock.
    advance_ms: u64,
}

#[derive(Debug, Clone)]
struct Case {
    graph: Graph,
    initial: Vec<(u64, u32, u32)>,
    queries: Vec<(u32, u32, usize)>,
    steps: Vec<Step>,
    eta: u32,
    bucket: usize,
    t_delta_ms: u64,
    guard_slack: f64,
    refine_workers: usize,
    ingest_workers: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        (3u32..7, 3u32..7, 0u64..500),
        prop::collection::vec((0u64..24, 0u32..10_000, 0u32..100), 4..20),
        prop::collection::vec((0u32..10_000, 0u32..100, 1usize..6), 1..4),
        prop::collection::vec(
            (
                prop::collection::vec((0u64..24, 0u32..10_000, 0u32..100), 0..8),
                prop::bool::weighted(0.25),
                // Mix sub-t_delta advances with jumps past it so some steps
                // expire subscription members (the zero-dirty result change).
                1u64..2_000,
                prop::bool::weighted(0.25),
            )
                .prop_map(|(updates, evict, base_ms, jump)| Step {
                    updates,
                    evict,
                    advance_ms: if jump { 20_000 + base_ms * 10 } else { base_ms },
                }),
            1..8,
        ),
        (2u32..6, 1usize..16),
        prop::bool::weighted(0.5),
        0usize..3,
        (0usize..3, 0usize..3),
    )
        .prop_map(
            |(
                (rows, cols, seed),
                initial,
                queries,
                steps,
                (eta, bucket),
                long_t_delta,
                slack_idx,
                (rw_idx, iw_idx),
            )| Case {
                graph: gen::grid_city(&GridCityParams {
                    rows,
                    cols,
                    edge_ratio: 2.5,
                    weight_range: (1, 30),
                    seed,
                }),
                initial,
                queries,
                steps,
                eta,
                bucket,
                t_delta_ms: if long_t_delta { 25_000 } else { 10_000 },
                guard_slack: [0.0, 0.25, 1.0][slack_idx],
                refine_workers: [1, 2, 4][rw_idx],
                ingest_workers: [1, 2, 4][iw_idx],
            },
        )
}

fn position(graph: &Graph, e: u32, off: u32) -> EdgePosition {
    let e = EdgeId(e % graph.num_edges() as u32);
    EdgePosition::new(e, off % (graph.edge(e).weight + 1))
}

/// One batch carries one report per object (the stream contract: an object
/// cannot be at two places at the same instant) — keep the last entry.
fn dedup_batch(
    graph: &Graph,
    raw: &[(u64, u32, u32)],
    now: Timestamp,
) -> Vec<(ObjectId, EdgePosition, Timestamp)> {
    let mut batch: Vec<(ObjectId, EdgePosition, Timestamp)> = Vec::new();
    for &(o, e, off) in raw {
        let p = position(graph, e, off);
        if let Some(slot) = batch.iter_mut().find(|u| u.0 == ObjectId(o)) {
            slot.1 = p;
        } else {
            batch.push((ObjectId(o), p, now));
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn subscriptions_match_fresh_knn(case in arb_case()) {
        let graph = case.graph.clone();
        let mut server = GGridServer::new(
            graph.clone(),
            GGridConfig {
                eta: case.eta,
                bucket_capacity: case.bucket,
                t_delta_ms: case.t_delta_ms,
                guard_slack: case.guard_slack,
                refine_workers: case.refine_workers,
                ingest_workers: case.ingest_workers,
                ..Default::default()
            },
        );

        let mut now = Timestamp(1_000);
        server.ingest_batch(&dedup_batch(&graph, &case.initial, now));

        let subs: Vec<(SubscriptionId, EdgePosition, usize)> = case
            .queries
            .iter()
            .map(|&(qe, qoff, k)| {
                let q = position(&graph, qe, qoff);
                (server.subscribe_knn(q, k, now), q, k)
            })
            .collect();

        for step in &case.steps {
            now = Timestamp(now.0 + step.advance_ms);
            let dirty = server.ingest_batch(&dedup_batch(&graph, &step.updates, now));
            prop_assert!(dirty.windows(2).all(|w| w[0] < w[1]),
                "dirty cells must be sorted and deduped: {dirty:?}");
            if step.evict {
                server.evict_all_resident();
            }

            let report = server.tick_subscriptions(now);
            prop_assert_eq!(report.active, subs.len());
            prop_assert_eq!(
                report.skipped + report.invalidated, report.active,
                "every subscription is either skipped or re-validated"
            );
            prop_assert!(report.repaired_delta + report.repaired_full <= report.invalidated);

            for &(id, q, k) in &subs {
                let maintained = server
                    .subscription_result(id)
                    .expect("subscription is live")
                    .to_vec();
                let fresh = server.knn(q, k, now);
                prop_assert_eq!(
                    &maintained, &fresh,
                    "maintained top-{} diverged from fresh knn at t={}", k, now.0
                );
            }
        }

        let c = server.counters();
        prop_assert_eq!(c.subs_active as usize, subs.len());
        prop_assert_eq!(c.subs_ticks as usize, case.steps.len());
    }
}

/// A batch that touches no guard region must trigger zero re-evaluations:
/// every subscription is skipped, no repairs run, and the maintained answers
/// still match a fresh query.
#[test]
fn untouched_guard_regions_cost_nothing() {
    let graph = gen::grid_city(&GridCityParams {
        rows: 6,
        cols: 6,
        edge_ratio: 2.5,
        weight_range: (1, 30),
        seed: 7,
    });
    let mut server = GGridServer::new(
        graph.clone(),
        GGridConfig {
            eta: 3,
            // Huge t_delta so expiry never forces a re-validation here.
            t_delta_ms: u64::MAX / 4,
            ..Default::default()
        },
    );

    let now = Timestamp(1_000);
    let seed: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..12)
        .map(|o| {
            let e = EdgeId((o * 5) as u32 % graph.num_edges() as u32);
            (ObjectId(o), EdgePosition::new(e, 0), now)
        })
        .collect();
    server.ingest_batch(&seed);

    let q = EdgePosition::new(EdgeId(0), 0);
    let id = server.subscribe_knn(q, 2, now);
    let (_, guard_cells, covers_all) = server.subscription_guard(id).unwrap();
    assert!(
        !covers_all,
        "test setup needs a bounded guard region; widen the seed set if this fires"
    );

    // Pick an edge whose cell lies outside the guard region.
    let outside = (0..graph.num_edges() as u32)
        .map(EdgeId)
        .find(|&e| {
            let cell: CellId = server.grid().cell_of_edge(e);
            !guard_cells.contains(&cell)
        })
        .expect("a 6x6 grid city has cells outside one guard region");

    let before = server.subscription_result(id).unwrap().to_vec();
    let later = Timestamp(2_000);
    // Move an object that was never near the query onto the outside edge.
    server.ingest_batch(&[(ObjectId(99), EdgePosition::new(outside, 0), later)]);

    let report = server.tick_subscriptions(later);
    assert_eq!(report.active, 1);
    assert_eq!(report.invalidated, 0, "no guard region was touched");
    assert_eq!(report.repaired_delta + report.repaired_full, 0);
    assert_eq!(report.skipped, 1);

    let after = server.subscription_result(id).unwrap().to_vec();
    assert_eq!(
        before, after,
        "untouched subscription result must not change"
    );
    assert_eq!(after, server.knn(q, 2, later));

    let c = server.counters();
    assert_eq!(c.subs_invalidated, 0);
    assert_eq!(c.subs_skipped, 1);

    assert!(server.unsubscribe(id));
    assert_eq!(server.subscriptions_active(), 0);
    assert!(server.subscription_result(id).is_none());
}
