//! Property-based end-to-end correctness: G-Grid answers equal the
//! brute-force Dijkstra reference on arbitrary small road networks, object
//! placements, parameters, and query positions.

use ggrid::prelude::*;
use proptest::prelude::*;
use roadnet::dijkstra::reference_knn;
use roadnet::gen::{self, GridCityParams};
use roadnet::graph::Graph;
use roadnet::EdgeId;

#[derive(Debug, Clone)]
struct Case {
    graph: Graph,
    objects: Vec<(u64, EdgePosition)>,
    query: EdgePosition,
    k: usize,
    eta: u32,
    bucket: usize,
    rho_tenths: u64,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        (3u32..8, 3u32..8, 0u64..500),
        prop::collection::vec((0u64..30, 0u32..10_000, 0u32..100), 1..25),
        (0u32..10_000, 0u32..100),
        1usize..8,
        2u32..6,
        1usize..16,
        11u64..30,
    )
        .prop_map(
            |((rows, cols, seed), raw_objects, (qe, qoff), k, eta, bucket, rho_tenths)| {
                let graph = gen::grid_city(&GridCityParams {
                    rows,
                    cols,
                    edge_ratio: 2.5,
                    weight_range: (1, 30),
                    seed,
                });
                let ne = graph.num_edges() as u32;
                let objects: Vec<(u64, EdgePosition)> = raw_objects
                    .into_iter()
                    .map(|(o, e, off)| {
                        let e = EdgeId(e % ne);
                        let off = off % (graph.edge(e).weight + 1);
                        (o, EdgePosition::new(e, off))
                    })
                    .collect();
                let qe = EdgeId(qe % ne);
                let qoff = qoff % (graph.edge(qe).weight + 1);
                Case {
                    query: EdgePosition::new(qe, qoff),
                    graph,
                    objects,
                    k,
                    eta,
                    bucket,
                    rho_tenths,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn ggrid_knn_matches_reference(case in arb_case()) {
        let mut server = GGridServer::new(
            case.graph.clone(),
            GGridConfig {
                eta: case.eta,
                bucket_capacity: case.bucket,
                rho: case.rho_tenths as f64 / 10.0,
                ..Default::default()
            },
        );
        // Objects may repeat ids: later updates supersede earlier ones,
        // exactly like a real message stream.
        for (i, &(o, p)) in case.objects.iter().enumerate() {
            server.handle_update(ObjectId(o), p, Timestamp(100 + i as u64));
        }
        // Ground truth uses the *latest* position per object.
        let mut latest: std::collections::HashMap<u64, EdgePosition> = Default::default();
        for &(o, p) in &case.objects {
            latest.insert(o, p);
        }
        let objs: Vec<(u64, EdgePosition)> = latest.into_iter().collect();

        let got = server.knn(case.query, case.k, Timestamp(10_000));
        let want = reference_knn(&case.graph, case.query, &objs, case.k);
        let got_d: Vec<u64> = got.iter().map(|&(_, d)| d).collect();
        let want_d: Vec<u64> = want.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(got_d, want_d);
    }

    /// Querying twice (the second time over consolidated lists) returns
    /// the same answer.
    #[test]
    fn ggrid_knn_idempotent(case in arb_case()) {
        let mut server = GGridServer::new(
            case.graph.clone(),
            GGridConfig {
                eta: case.eta,
                bucket_capacity: case.bucket,
                ..Default::default()
            },
        );
        for (i, &(o, p)) in case.objects.iter().enumerate() {
            server.handle_update(ObjectId(o), p, Timestamp(100 + i as u64));
        }
        let first = server.knn(case.query, case.k, Timestamp(10_000));
        let second = server.knn(case.query, case.k, Timestamp(10_000));
        prop_assert_eq!(first, second);
    }
}
