//! Integration tests for the frontier `GPU_SDist` kernel, the resident
//! topology store, and the dense-scratch plumbing.
//!
//! The contract under test: the near–far frontier kernel, the dense
//! Bellman–Ford reference, and a host-side Dijkstra restricted to the
//! induced subgraph all settle the *same distances*, under every grid,
//! bucket width δ, topology budget, and eviction pattern — and a server
//! running the frontier path returns kNN answers byte-identical to the
//! dense path, including under multi-worker refinement and batch mode.

use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use ggrid::grid::{CellId, GraphGrid};
use ggrid::knn::{gpu_sdist_dense, gpu_sdist_frontier};
use ggrid::prelude::*;
use ggrid::residency::TopologyStore;
use ggrid::scratch::DenseScratch;
use gpu_sim::{Device, DeviceSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::graph::{Distance, Graph, VertexId, INFINITY};
use roadnet::{gen, EdgeId};

const EDGES: u32 = 160; // gen::toy edge count

fn toy_grid(seed: u64) -> Arc<GraphGrid> {
    Arc::new(GraphGrid::build(Arc::new(gen::toy(seed)), 3, 2))
}

/// The candidate set used by a query at `q`: its cell plus the neighbour
/// ring (one expansion round), or every cell.
fn candidate_set(grid: &GraphGrid, q: EdgePosition, all: bool) -> (Vec<bool>, Vec<CellId>) {
    let mut set: Vec<CellId> = if all {
        grid.cell_ids().collect()
    } else {
        let c_q = grid.cell_of_edge(q.edge);
        let mut s = vec![c_q];
        s.extend_from_slice(grid.neighbors(c_q));
        s
    };
    set.sort_unstable();
    set.dedup();
    let mut in_set = vec![false; grid.num_cells()];
    for c in &set {
        in_set[c.index()] = true;
    }
    (in_set, set)
}

/// Host Dijkstra over the subgraph induced by the candidate cells — the
/// ground truth both kernels must reproduce.
fn induced_dijkstra(
    graph: &Graph,
    grid: &GraphGrid,
    in_set: &[bool],
    q: EdgePosition,
) -> HashMap<VertexId, Distance> {
    let mut dist: HashMap<VertexId, Distance> = HashMap::new();
    let q_dest = graph.edge(q.edge).dest;
    if !in_set[grid.cell_of_vertex(q_dest).index()] {
        return dist;
    }
    let mut heap: BinaryHeap<(std::cmp::Reverse<Distance>, VertexId)> = BinaryHeap::new();
    dist.insert(q_dest, q.to_dest(graph));
    heap.push((std::cmp::Reverse(q.to_dest(graph)), q_dest));
    while let Some((std::cmp::Reverse(d), v)) = heap.pop() {
        if d > dist[&v] {
            continue;
        }
        for e in graph.out_edges(v) {
            let edge = graph.edge(e);
            if !in_set[grid.cell_of_vertex(edge.dest).index()] {
                continue;
            }
            let nd = d.saturating_add(edge.weight as Distance);
            if nd < dist.get(&edge.dest).copied().unwrap_or(INFINITY) {
                dist.insert(edge.dest, nd);
                heap.push((std::cmp::Reverse(nd), edge.dest));
            }
        }
    }
    dist
}

/// Compare a scratch against the reference over every candidate vertex
/// (untouched scratch slots read INFINITY, absent reference keys too).
fn assert_matches_reference(
    label: &str,
    grid: &GraphGrid,
    set: &[CellId],
    scratch: &DenseScratch,
    want: &HashMap<VertexId, Distance>,
) {
    for &c in set {
        for v in grid.vertices_in(c) {
            assert_eq!(
                scratch.get(v),
                want.get(&v).copied().unwrap_or(INFINITY),
                "{label}: {v:?} diverges"
            );
        }
    }
}

fn frontier_config(delta: u32) -> GGridConfig {
    GGridConfig {
        eta: 4,
        bucket_capacity: 16,
        sdist_delta: delta,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Frontier kernel == dense kernel == induced-subgraph Dijkstra, with
    /// pruning disabled (k = 0, no objects), across random toy graphs,
    /// query edges, bucket widths, candidate-set shapes, and topology
    /// budgets — including a forced mid-stream eviction between two runs.
    #[test]
    fn frontier_matches_dense_and_dijkstra(
        seed in 0u64..40,
        edge in 0u32..EDGES,
        offset_frac in 0u32..4,
        delta_sel in 0usize..5,
        all_cells in prop::bool::weighted(0.5),
        budget_sel in 0usize..3,
    ) {
        let delta = [0u32, 1, 7, 300, 100_000][delta_sel];
        let grid = toy_grid(seed);
        let graph = grid.graph().clone();
        let q = EdgePosition::new(
            EdgeId(edge),
            graph.edge(EdgeId(edge)).weight * offset_frac / 4,
        );
        let (in_set, set) = candidate_set(&grid, q, all_cells);
        let want = induced_dijkstra(&graph, &grid, &in_set, q);

        let mut device = Device::new(DeviceSpec::test_tiny());
        let config = frontier_config(delta);

        let mut dense = DenseScratch::new(graph.num_vertices());
        gpu_sdist_dense(&mut device, &grid, &in_set, &set, q, &graph, &mut dense);
        assert_matches_reference("dense", &grid, &set, &dense, &want);

        let budget = [0u64, 600, 64 << 20][budget_sel];
        let mut topo = TopologyStore::new(budget);
        let mut frontier = DenseScratch::new(graph.num_vertices());
        gpu_sdist_frontier(
            &mut device, &grid, &mut topo, &config, &in_set, &set, q, &graph, &[], 0,
            &mut frontier,
        );
        assert_matches_reference("frontier", &grid, &set, &frontier, &want);

        // Evict the query's cell mid-stream and re-run: the re-upload must
        // not change a single distance.
        topo.force_evict(&mut device, grid.cell_of_edge(q.edge));
        gpu_sdist_frontier(
            &mut device, &grid, &mut topo, &config, &in_set, &set, q, &graph, &[], 0,
            &mut frontier,
        );
        assert_matches_reference("frontier after eviction", &grid, &set, &frontier, &want);
        prop_assert!(topo.resident_bytes() <= budget);
    }
}

/// Two identically-loaded servers, one per sdist path.
fn server_pair(seed: u64, workers: usize) -> (GGridServer, GGridServer) {
    let build = |frontier: bool| {
        let cfg = GGridConfig {
            eta: 4,
            bucket_capacity: 16,
            refine_workers: workers,
            sdist_frontier: frontier,
            ..Default::default()
        };
        let s = GGridServer::new(gen::toy(seed), cfg);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
        for round in 0..3u64 {
            for o in 0..25u64 {
                let e = EdgeId(rng.gen_range(0..EDGES));
                s.handle_update(
                    ObjectId(o),
                    EdgePosition::at_source(e),
                    Timestamp(100 + round),
                );
            }
        }
        s
    };
    (build(false), build(true))
}

#[test]
fn knn_answers_identical_dense_vs_frontier() {
    // The tentpole's contract: flipping the kernel never changes a byte of
    // the answer stream, for any worker count, across repeated queries
    // with interleaved updates.
    for workers in [1usize, 4] {
        let (mut dense, mut frontier) = server_pair(21, workers);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut t = 900u64;
        for round in 0..10 {
            let q = EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES)));
            let k = 1 + (round % 7);
            assert_eq!(
                dense.knn(q, k, Timestamp(t)),
                frontier.knn(q, k, Timestamp(t)),
                "workers {workers}, round {round}, k {k}"
            );
            for o in 0..4u64 {
                t += 1;
                let p = EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES)));
                dense.handle_update(ObjectId(o), p, Timestamp(t));
                frontier.handle_update(ObjectId(o), p, Timestamp(t));
            }
        }
    }
}

#[test]
fn batch_answers_identical_dense_vs_frontier() {
    let (mut dense, mut frontier) = server_pair(33, 3);
    let queries: Vec<(EdgePosition, usize)> = (0..6u32)
        .map(|i| (EdgePosition::at_source(EdgeId(i * 13 % EDGES)), 4usize))
        .collect();
    let a = dense.knn_batch(&queries, Timestamp(500));
    let b = frontier.knn_batch(&queries, Timestamp(500));
    assert_eq!(a.answers, b.answers);
}

#[test]
fn frontier_instrumentation_populates() {
    let (_, mut s) = server_pair(9, 1);
    let q = EdgePosition::at_source(EdgeId(13));
    s.knn(q, 5, Timestamp(900));
    // Cold query: the topology slices had to be shipped.
    let c = s.counters();
    assert!(c.sdist_rounds > 0, "rounds must be counted");
    assert!(c.sdist_frontier_sum > 0, "frontier work must be counted");
    assert!(c.sdist_settled > 0 && c.sdist_settled <= c.sdist_vertices);
    assert!(c.sdist_time > gpu_sim::SimNanos::ZERO);
    assert!(c.h2d_topo_bytes > 0, "cold topology upload must be charged");
    assert!(c.topo_misses > 0);
    assert!(s.topology_resident_cells() > 0);
    assert!(s.topology_resident_bytes() > 0);
    let bd = s.last_breakdown();
    assert!(bd.sdist_frontier_max > 0 && bd.sdist_frontier_max <= bd.sdist_frontier_sum);

    // Warm re-query: every candidate slice is already on the card.
    let (topo_bytes, misses) = (s.counters().h2d_topo_bytes, s.counters().topo_misses);
    s.knn(q, 5, Timestamp(901));
    assert_eq!(
        s.counters().h2d_topo_bytes,
        topo_bytes,
        "warm query must not re-ship topology"
    );
    assert_eq!(s.counters().topo_misses, misses);
    assert!(s.counters().topo_hits > 0);
    assert!(s.counters().topo_hit_rate() > 0.0);

    // Force-evict everything: the next query re-ships and re-promotes.
    s.evict_all_topology();
    assert_eq!(s.topology_resident_cells(), 0);
    let got = s.knn(q, 5, Timestamp(902));
    assert!(s.counters().h2d_topo_bytes > topo_bytes);
    assert!(s.topology_resident_cells() > 0);
    assert_eq!(got, s.knn(q, 5, Timestamp(903)), "eviction changed answers");
}

#[test]
fn pruning_engages_on_clustered_objects() {
    // Many objects right next to the query with a large candidate region:
    // the k-bound closes fast and the far pile is abandoned.
    let grid = toy_grid(4);
    let graph = grid.graph().clone();
    let q = EdgePosition::at_source(EdgeId(0));
    let (in_set, set) = candidate_set(&grid, q, true);
    let objects: Vec<ggrid::CachedMessage> = (0..12u64)
        .map(|o| {
            ggrid::CachedMessage::update(
                ObjectId(o),
                EdgePosition::at_source(EdgeId(o as u32 % 4)),
                Timestamp(1),
            )
        })
        .collect();
    let mut device = Device::new(DeviceSpec::test_tiny());
    let mut topo = TopologyStore::new(64 << 20);
    let mut scratch = DenseScratch::new(graph.num_vertices());
    let stats = gpu_sdist_frontier(
        &mut device,
        &grid,
        &mut topo,
        &frontier_config(0),
        &in_set,
        &set,
        q,
        &graph,
        &objects,
        2,
        &mut scratch,
    );
    assert!(
        stats.pruned > 0,
        "clustered objects must trigger k-bounded pruning"
    );
    assert!(stats.settled + stats.pruned <= stats.vertices);

    // Pruning must not disturb the answers the query pipeline reads: every
    // vertex the kernel *did* settle carries its exact induced distance.
    let want = induced_dijkstra(&graph, &grid, &in_set, q);
    for (v, d) in scratch.iter_touched() {
        if d < INFINITY {
            let exact = want[&v];
            assert!(d >= exact, "{v:?}: tentative {d} below exact {exact}");
        }
    }
}

#[test]
fn disabled_topology_residency_always_uploads() {
    let cfg = GGridConfig {
        eta: 4,
        bucket_capacity: 16,
        topology_resident: false,
        ..Default::default()
    };
    let mut s = GGridServer::new(gen::toy(5), cfg);
    for o in 0..10u64 {
        s.handle_update(
            ObjectId(o),
            EdgePosition::at_source(EdgeId((o * 7 % EDGES as u64) as u32)),
            Timestamp(100),
        );
    }
    let q = EdgePosition::at_source(EdgeId(3));
    s.knn(q, 3, Timestamp(900));
    let cold = s.counters().h2d_topo_bytes;
    assert!(cold > 0);
    s.knn(q, 3, Timestamp(901));
    assert!(
        s.counters().h2d_topo_bytes >= 2 * cold,
        "with residency off every query re-ships its topology"
    );
    assert_eq!(s.topology_resident_cells(), 0);
    assert_eq!(s.counters().topo_hits, 0);
}
