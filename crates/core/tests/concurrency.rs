//! Integration tests for the concurrent query engine: the batch pipeline
//! and the multi-worker refinement must return answers byte-identical to
//! the sequential path, and the epoch-based clean-skip cache must never
//! serve stale data.

use ggrid::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::{gen, EdgeId};

const EDGES: u32 = 160; // gen::toy edge count

fn config(workers: usize, clean_skip: bool) -> GGridConfig {
    GGridConfig {
        eta: 4,
        bucket_capacity: 16,
        refine_workers: workers,
        clean_skip,
        ..Default::default()
    }
}

/// Deterministically scatter a fleet and a few movement rounds.
fn seeded_server(seed: u64, workers: usize, clean_skip: bool) -> GGridServer {
    let graph = gen::toy(seed);
    let s = GGridServer::new(graph, config(workers, clean_skip));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    for round in 0..4u64 {
        for o in 0..30u64 {
            let e = EdgeId(rng.gen_range(0..EDGES));
            s.handle_update(
                ObjectId(o),
                EdgePosition::at_source(e),
                Timestamp(100 + round),
            );
        }
    }
    s
}

fn query_stream(seed: u64, n: usize) -> Vec<(EdgePosition, usize)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37);
    (0..n)
        .map(|_| {
            (
                EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES))),
                rng.gen_range(1..8usize),
            )
        })
        .collect()
}

#[test]
fn batch_answers_identical_to_sequential() {
    for seed in [3u64, 21, 77] {
        let queries = query_stream(seed, 8);
        // Sequential reference: one query at a time, single worker.
        let mut sequential = seeded_server(seed, 1, true);
        let want: Vec<Vec<(ObjectId, Distance)>> = queries
            .iter()
            .map(|&(q, k)| sequential.knn(q, k, Timestamp(900)))
            .collect();
        // Concurrent: batch pipeline with a multi-threaded refinement pool.
        for workers in [1usize, 4] {
            let mut concurrent = seeded_server(seed, workers, true);
            let batch = concurrent.knn_batch(&queries, Timestamp(900));
            assert_eq!(batch.answers, want, "seed {seed}, workers {workers}");
        }
    }
}

#[test]
fn clean_skip_ablation_answers_identical() {
    // The cache only removes simulated device work — never changes answers.
    for seed in [5u64, 42] {
        let queries = query_stream(seed, 8);
        let mut with_skip = seeded_server(seed, 2, true);
        let mut without = seeded_server(seed, 2, false);
        for &(q, k) in &queries {
            assert_eq!(
                with_skip.knn(q, k, Timestamp(900)),
                without.knn(q, k, Timestamp(900)),
                "seed {seed}"
            );
        }
        assert!(with_skip.counters().clean_skip_hits > 0);
        assert_eq!(without.counters().clean_skip_hits, 0);
    }
}

#[test]
fn repeated_query_stream_hits_the_skip_cache() {
    let mut s = seeded_server(9, 1, true);
    let q = EdgePosition::at_source(EdgeId(13));
    s.knn(q, 4, Timestamp(900));
    let hits_after_first = s.counters().clean_skip_hits;
    for _ in 0..3 {
        s.knn(q, 4, Timestamp(900));
    }
    assert!(
        s.counters().clean_skip_hits > hits_after_first,
        "repeated identical query did not hit the skip cache"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The epoch cache never serves a stale cell: after any interleaving of
    /// updates and queries, a query sees exactly what a cache-disabled
    /// server sees — in particular an append after a clean invalidates the
    /// cell, so the newest position always wins.
    #[test]
    fn epoch_cache_never_stale(seed in 0u64..1000, ops in prop::collection::vec((0u64..12, 0u32..160, 0u32..2), 4..40) ) {
        let graph = gen::toy(7);
        let mut cached = GGridServer::new(graph.clone(), config(2, true));
        let mut reference = GGridServer::new(graph, config(1, false));
        let mut t = 100u64;
        for &(obj, edge, kind) in &ops {
            t += 1;
            let e = EdgeId(edge % EDGES);
            if kind == 0 {
                // Update: lands in a cell the cache may have marked clean.
                let p = EdgePosition::at_source(e);
                cached.handle_update(ObjectId(obj ^ seed), p, Timestamp(t));
                reference.handle_update(ObjectId(obj ^ seed), p, Timestamp(t));
            } else {
                // Query: must reflect every update made so far.
                let q = EdgePosition::at_source(e);
                let got = cached.knn(q, 3, Timestamp(t));
                let want = reference.knn(q, 3, Timestamp(t));
                prop_assert_eq!(got, want, "stale answer after {} ops", ops.len());
            }
        }
        // Closing full-coverage query: every object's final position.
        let q = EdgePosition::at_source(EdgeId(seed as u32 % EDGES));
        prop_assert_eq!(
            cached.knn(q, 12, Timestamp(t + 1)),
            reference.knn(q, 12, Timestamp(t + 1))
        );
    }
}
