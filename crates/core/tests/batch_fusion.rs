//! Property-based equivalence of the cross-query fused batch path.
//!
//! Two identities are enforced on arbitrary small road networks, object
//! streams, and query mixes:
//!
//! * **Batch == sequential** — `knn_batch` answers are byte-identical to
//!   running the same queries one at a time in the same order, under
//!   random batch permutations (the fused cleaning, staged topology, and
//!   pipelined refinement must not leak one query's schedule into
//!   another's answer).
//! * **Multi-source == per-vertex refinement** — toggling
//!   `refine_multi_source` and sweeping `refine_workers ∈ {1, 2, 4}`
//!   never changes an answer, tie-breaking included (answers are sorted
//!   by `(distance, object id)`, so any tie mishandling surfaces as a
//!   reordered or truncated result).

use ggrid::prelude::*;
use proptest::prelude::*;
use roadnet::gen::{self, GridCityParams};
use roadnet::graph::Graph;
use roadnet::EdgeId;

#[derive(Debug, Clone)]
struct Case {
    graph: Graph,
    objects: Vec<(u64, EdgePosition)>,
    queries: Vec<(EdgePosition, usize)>,
    eta: u32,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        (3u32..7, 3u32..7, 0u64..400),
        prop::collection::vec((0u64..25, 0u32..10_000, 0u32..100), 1..20),
        prop::collection::vec((0u32..10_000, 1usize..7), 1..7),
        2u32..6,
    )
        .prop_map(|((rows, cols, seed), raw_objects, raw_queries, eta)| {
            let graph = gen::grid_city(&GridCityParams {
                rows,
                cols,
                edge_ratio: 2.5,
                weight_range: (1, 30),
                seed,
            });
            let ne = graph.num_edges() as u32;
            let objects: Vec<(u64, EdgePosition)> = raw_objects
                .into_iter()
                .map(|(o, e, off)| {
                    let e = EdgeId(e % ne);
                    let off = off % (graph.edge(e).weight + 1);
                    (o, EdgePosition::new(e, off))
                })
                .collect();
            let queries: Vec<(EdgePosition, usize)> = raw_queries
                .into_iter()
                .map(|(e, k)| (EdgePosition::at_source(EdgeId(e % ne)), k))
                .collect();
            Case {
                graph,
                objects,
                queries,
                eta,
            }
        })
}

fn loaded(case: &Case, config: GGridConfig) -> GGridServer {
    let server = GGridServer::new(case.graph.clone(), config);
    for (i, &(o, p)) in case.objects.iter().enumerate() {
        server.handle_update(ObjectId(o), p, Timestamp(100 + i as u64));
    }
    server
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch-fused answers equal one-query-at-a-time answers, for a random
    /// permutation of the batch and with every fusion feature enabled.
    #[test]
    fn batch_fused_matches_sequential_under_permutation(
        case in arb_case(),
        perm_seed in 0usize..720,
    ) {
        // Deterministic permutation of the query list from perm_seed
        // (factorial-number-system decode — covers all orders for n <= 6).
        let mut queries = case.queries.clone();
        let mut pool: Vec<(EdgePosition, usize)> = queries.clone();
        let mut s = perm_seed;
        queries.clear();
        while !pool.is_empty() {
            let i = s % pool.len();
            s /= pool.len().max(1);
            queries.push(pool.remove(i));
        }

        let config = GGridConfig { eta: case.eta, ..Default::default() };
        let mut a = loaded(&case, config.clone());
        let mut b = loaded(&case, config);
        let batch = a.knn_batch(&queries, Timestamp(10_000));
        let individual: Vec<_> = queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(10_000)))
            .collect();
        prop_assert_eq!(batch.answers, individual);
    }

    /// Disabling the whole fused path (ablation baseline) gives the same
    /// answers too.
    #[test]
    fn batch_unfused_matches_sequential(case in arb_case()) {
        let config = GGridConfig {
            eta: case.eta,
            batch_fusion: false,
            coalesce_h2d: false,
            refine_multi_source: false,
            ..Default::default()
        };
        let mut a = loaded(&case, config.clone());
        let mut b = loaded(&case, config);
        let batch = a.knn_batch(&case.queries, Timestamp(10_000));
        let individual: Vec<_> = case
            .queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(10_000)))
            .collect();
        prop_assert_eq!(batch.answers, individual);
    }

    /// Multi-source refinement returns exactly what the per-vertex
    /// reference path returns, for every worker count — ties included.
    #[test]
    fn multi_source_refinement_matches_per_vertex(case in arb_case()) {
        let reference = GGridConfig {
            eta: case.eta,
            refine_multi_source: false,
            refine_workers: 1,
            ..Default::default()
        };
        let mut want_server = loaded(&case, reference);
        let want: Vec<_> = case
            .queries
            .iter()
            .map(|&(q, k)| want_server.knn(q, k, Timestamp(10_000)))
            .collect();
        for workers in [1usize, 2, 4] {
            let config = GGridConfig {
                eta: case.eta,
                refine_multi_source: true,
                refine_workers: workers,
                ..Default::default()
            };
            let mut s = loaded(&case, config);
            let got: Vec<_> = case
                .queries
                .iter()
                .map(|&(q, k)| s.knn(q, k, Timestamp(10_000)))
                .collect();
            prop_assert_eq!(&got, &want, "refine_workers={}", workers);
        }
    }
}
