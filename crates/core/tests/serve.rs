//! Integration tests for the serving loop (DESIGN.md §5.10): answers must
//! be byte-identical to replaying the same stamped event schedule against
//! `knn_batch` / `ingest_batch` directly — for every deadline (including 0
//! and ∞), client count, worker count, epoch cadence, and real host-thread
//! interleaving — and the queue counters must balance under a 256-client
//! stampede whose only shared state is the MPSC channel and the server.

use ggrid::prelude::*;
use ggrid::serve::QueueSnapshot;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::{gen, EdgeId};

const EDGES: u32 = 160; // gen::toy edge count

type Update = (ObjectId, EdgePosition, Timestamp);

/// One stamped request in the schedule handed to a client lane.
#[derive(Clone, Debug)]
enum Event {
    Query {
        at_ns: u64,
        q: EdgePosition,
        k: usize,
        now: Timestamp,
    },
    Ingest {
        at_ns: u64,
        updates: Vec<Update>,
    },
}

impl Event {
    fn at_ns(&self) -> u64 {
        match self {
            Event::Query { at_ns, .. } | Event::Ingest { at_ns, .. } => *at_ns,
        }
    }
}

fn config(refine_workers: usize) -> GGridConfig {
    GGridConfig {
        eta: 4,
        bucket_capacity: 16,
        refine_workers,
        t_delta_ms: 1 << 40,
        ..Default::default()
    }
}

/// Deterministic mixed schedule: `n` events, ~1-in-4 an ingest wave, with
/// non-decreasing arrival stamps (duplicates included) and a coarsely
/// quantized query timestamp so batches can form. Ingest timestamps are
/// placeholders until [`stamp_updates`] rewrites them in release order.
fn schedule(seed: u64, n: usize) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5e7e);
    let mut at = 0u64;
    (0..n)
        .map(|_| {
            // Bursty arrivals: half the gaps are zero (same instant).
            if rng.gen_bool(0.5) {
                at += rng.gen_range(1..5_000u64);
            }
            let now = Timestamp(1_000 + at / 50_000);
            if rng.gen_bool(0.25) {
                let wave = (0..rng.gen_range(1..6usize))
                    .map(|_| {
                        (
                            ObjectId(rng.gen_range(0..48u64)),
                            EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES))),
                            Timestamp(0), // stamped later, in release order
                        )
                    })
                    .collect();
                Event::Ingest {
                    at_ns: at,
                    updates: wave,
                }
            } else {
                Event::Query {
                    at_ns: at,
                    q: EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES))),
                    k: rng.gen_range(1..6usize),
                    now,
                }
            }
        })
        .collect()
}

/// Rewrite every ingest update's timestamp to be strictly increasing in
/// the serve loop's release order `(arrival, client, seq)`. The index
/// contract (like a MOTO trace) is that an object never reports twice at
/// one timestamp: a duplicate ties the object table's last-write-wins
/// against cleaning's newest-timestamp-wins and the resulting position is
/// ambiguous — not a serving-loop concern. Stamps start far above every
/// query `now`; cleaning has no future filter, so visibility is unchanged.
fn stamp_updates(lanes: &mut [Vec<Event>]) {
    let mut order: Vec<(u64, usize, usize)> = Vec::new();
    for (c, lane) in lanes.iter().enumerate() {
        for (seq, e) in lane.iter().enumerate() {
            order.push((e.at_ns(), c, seq));
        }
    }
    order.sort_unstable();
    let mut t = 100_000u64;
    for (_, c, seq) in order {
        if let Event::Ingest { updates, .. } = &mut lanes[c][seq] {
            for u in updates {
                u.2 = Timestamp(t);
                t += 1;
            }
        }
    }
}

fn seed_fleet(s: &GGridServer) {
    let wave: Vec<Update> = (0..48u64)
        .map(|o| {
            (
                ObjectId(o),
                EdgePosition::at_source(EdgeId((o as u32 * 13) % EDGES)),
                Timestamp(900),
            )
        })
        .collect();
    s.ingest_batch(&wave);
}

/// Split the schedule round-robin into `clients` lanes (each lane keeps
/// its stamp order) and tag events with their lane-local (client, seq),
/// mirroring how `ServeClient` stamps them.
fn lanes_of(events: &[Event], clients: usize) -> Vec<Vec<Event>> {
    let mut lanes: Vec<Vec<Event>> = (0..clients).map(|_| Vec::new()).collect();
    for (i, e) in events.iter().enumerate() {
        lanes[i % clients].push(e.clone());
    }
    lanes
}

/// The reference: replay the schedule in the serve loop's release order —
/// `(arrival, client, seq)` — applying ingest via `ingest_batch` and
/// answering maximal same-timestamp query runs via one direct `knn_batch`
/// call per run. Returns answers keyed by (client, seq).
#[allow(clippy::type_complexity)]
fn reference_answers(
    lanes: &[Vec<Event>],
    refine_workers: usize,
) -> Vec<((u32, u64), Vec<(ObjectId, Distance)>)> {
    let mut server = GGridServer::new(gen::toy(42), config(refine_workers));
    seed_fleet(&server);
    // Release order.
    let mut merged: Vec<(u64, u32, u64, &Event)> = Vec::new();
    for (c, lane) in lanes.iter().enumerate() {
        for (seq, e) in lane.iter().enumerate() {
            merged.push((e.at_ns(), c as u32, seq as u64, e));
        }
    }
    merged.sort_by_key(|&(at, c, s, _)| (at, c, s));

    let mut out = Vec::new();
    let mut run: Vec<(EdgePosition, usize)> = Vec::new();
    let mut run_meta: Vec<(u32, u64)> = Vec::new();
    let mut run_now = Timestamp(0);
    let flush = |server: &mut GGridServer,
                 run: &mut Vec<(EdgePosition, usize)>,
                 run_meta: &mut Vec<(u32, u64)>,
                 now: Timestamp,
                 out: &mut Vec<((u32, u64), Vec<(ObjectId, Distance)>)>| {
        if run.is_empty() {
            return;
        }
        let result = server.knn_batch(run, now);
        for (meta, ans) in run_meta.drain(..).zip(result.answers) {
            out.push((meta, ans));
        }
        run.clear();
    };
    for (_, c, s, e) in merged {
        match e {
            Event::Query { q, k, now, .. } => {
                if *now != run_now {
                    flush(&mut server, &mut run, &mut run_meta, run_now, &mut out);
                    run_now = *now;
                }
                run.push((*q, *k));
                run_meta.push((c, s));
            }
            Event::Ingest { updates, .. } => {
                flush(&mut server, &mut run, &mut run_meta, run_now, &mut out);
                server.ingest_batch(updates);
            }
        }
    }
    flush(&mut server, &mut run, &mut run_meta, run_now, &mut out);
    out.sort_by_key(|&(meta, _)| meta);
    out
}

/// Drive the lanes through real client threads into `serve`, returning
/// answers keyed by (client, seq) plus the queue snapshot.
#[allow(clippy::type_complexity)]
fn serve_answers(
    lanes: Vec<Vec<Event>>,
    cfg: &ggrid::serve::ServeConfig,
    refine_workers: usize,
) -> (Vec<((u32, u64), Vec<(ObjectId, Distance)>)>, QueueSnapshot) {
    let mut server = GGridServer::new(gen::toy(42), config(refine_workers));
    seed_fleet(&server);
    let mut queue = ServeQueue::new(cfg);
    let clients: Vec<ServeClient> = (0..lanes.len()).map(|_| queue.client()).collect();
    let mut outcome = None;
    crossbeam::thread::scope(|scope| {
        for (mut client, lane) in clients.into_iter().zip(lanes) {
            scope.spawn(move |_| {
                for e in lane {
                    match e {
                        Event::Query { at_ns, q, k, now } => client.query(q, k, now, at_ns),
                        Event::Ingest { at_ns, updates } => client.ingest(updates, at_ns),
                    }
                }
            });
        }
        outcome = Some(serve(&mut server, cfg, queue));
    })
    .expect("serve scope failed");
    let outcome = outcome.unwrap();
    let mut answers: Vec<((u32, u64), Vec<(ObjectId, Distance)>)> = outcome
        .records
        .into_iter()
        .filter(|r| !r.shed)
        .map(|r| ((r.client, r.seq), r.answer))
        .collect();
    answers.sort_by_key(|&(meta, _)| meta);
    (answers, outcome.report.queue)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole invariant: for deadlines {0, mid, ∞} × clients
    /// {1, 4, 16}, with ingest interleaved, maintenance epochs on or off,
    /// and 1 or 3 refine workers, the serve loop's answers are
    /// byte-identical to the direct `knn_batch` replay of the same
    /// stamped multiset — under real thread interleaving.
    #[test]
    fn serve_matches_direct_knn_batch(
        seed in 0u64..1_000,
        deadline_i in 0usize..3,
        clients_i in 0usize..3,
        max_batch_i in 0usize..3,
        refine_i in 0usize..2,
        epoch_i in 0usize..2,
    ) {
        let deadline = [0u64, 40_000, u64::MAX][deadline_i];
        let clients = [1usize, 4, 16][clients_i];
        let max_batch = [1usize, 3, 32][max_batch_i];
        let refine_workers = [1usize, 3][refine_i];
        let epoch = [0u64, 7][epoch_i];
        let events = schedule(seed, 60);
        let mut lanes = lanes_of(&events, clients);
        stamp_updates(&mut lanes);
        let reference = reference_answers(&lanes, refine_workers);
        let cfg = ggrid::serve::ServeConfig {
            max_batch_size: max_batch,
            deadline_ns: deadline,
            epoch_requests: epoch,
            ..Default::default()
        };
        let (got, queue) = serve_answers(lanes, &cfg, refine_workers);
        prop_assert_eq!(got.len(), reference.len());
        for (g, r) in got.iter().zip(&reference) {
            prop_assert_eq!(g, r);
        }
        prop_assert_eq!(queue.enqueued, events.len() as u64);
        prop_assert_eq!(queue.dequeued, events.len() as u64);
        prop_assert_eq!(queue.shed, 0);
    }
}

/// 256 concurrent clients hammering one queue under a tight per-client
/// bound: the loop's only cross-thread state is the MPSC channel, the
/// atomic queue counters, and the server itself — so everything must
/// drain without deadlock, the counters must balance exactly, and the
/// answers must still match the single-threaded reference.
#[test]
fn stress_256_clients_counters_balance() {
    const CLIENTS: usize = 256;
    let events = schedule(0xC0FFEE, 2 * CLIENTS);
    let mut lanes = lanes_of(&events, CLIENTS);
    stamp_updates(&mut lanes);
    let reference = reference_answers(&lanes, 1);
    let cfg = ggrid::serve::ServeConfig {
        max_batch_size: 8,
        deadline_ns: 20_000,
        client_queue_bound: 2, // force real backpressure
        ..Default::default()
    };
    let (got, queue) = serve_answers(lanes, &cfg, 1);
    assert_eq!(got, reference);
    assert_eq!(queue.enqueued, events.len() as u64);
    assert_eq!(queue.dequeued, events.len() as u64);
    assert_eq!(queue.shed, 0);
    assert!(queue.depth_high_water >= 1);
    // The per-client bound caps what any lane can have in flight, so the
    // global high-water cannot exceed bound × clients.
    assert!(queue.depth_high_water <= (CLIENTS * cfg.client_queue_bound) as u64);
}

/// Shedding is sound: dropping a query never perturbs another query's
/// answer. Every survivor's answer equals the no-shedding reference at
/// the same (client, seq), and answered + shed accounts for every query.
/// (Which queries shed depends on the hybrid clock's measured component,
/// so the shed *set* is load-dependent by design — only answers are
/// guaranteed.)
#[test]
fn shedding_never_perturbs_surviving_answers() {
    let events = schedule(7, 80);
    let total_queries = events
        .iter()
        .filter(|e| matches!(e, Event::Query { .. }))
        .count() as u64;
    let mut lanes = lanes_of(&events, 4);
    stamp_updates(&mut lanes);
    let reference = reference_answers(&lanes, 1);
    let cfg = ggrid::serve::ServeConfig {
        max_batch_size: 4,
        deadline_ns: 10_000,
        shed_wait_ns: 0, // shed every backlogged query
        ..Default::default()
    };
    let (survivors, queue) = serve_answers(lanes, &cfg, 1);
    assert_eq!(survivors.len() as u64 + queue.shed, total_queries);
    for (meta, ans) in &survivors {
        let r = reference
            .iter()
            .find(|(m, _)| m == meta)
            .expect("survivor missing from reference");
        assert_eq!(ans, &r.1, "survivor answer diverged at {meta:?}");
    }
}
