//! Integration tests for thread-buffered ingestion: `ingest_buffered` +
//! `flush_ingest` must leave the server byte-identical to the PR-4
//! `ingest_batch` group commit — for every worker count, with queries and
//! subscription ticks interleaved, and regardless of where mid-stream
//! flush barriers land.

use ggrid::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::{gen, EdgeId};

const EDGES: u32 = 160; // gen::toy edge count

fn config(ingest_workers: usize) -> GGridConfig {
    GGridConfig {
        eta: 4,
        bucket_capacity: 16,
        ingest_workers,
        ..Default::default()
    }
}

type Update = (ObjectId, EdgePosition, Timestamp);

/// A deterministic update stream with plenty of cell-to-cell moves.
fn update_stream(seed: u64, n: usize) -> Vec<Update> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xb0ff);
    let mut t = 100u64;
    (0..n)
        .map(|_| {
            t += 1;
            (
                ObjectId(rng.gen_range(0..40u64)),
                EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES))),
                Timestamp(t),
            )
        })
        .collect()
}

/// Full observable ingest state of a server, for byte-for-byte comparison.
#[allow(clippy::type_complexity)]
fn state_of(
    s: &GGridServer,
    objects: u64,
) -> (usize, usize, u64, Vec<Option<(EdgePosition, Timestamp)>>) {
    (
        s.num_objects(),
        s.cached_messages(),
        s.counters().tombstones_written,
        (0..objects)
            .map(|o| s.object_position(ObjectId(o)))
            .collect(),
    )
}

#[test]
fn buffered_matches_batched_with_midstream_barriers() {
    for seed in [7u64, 23, 91] {
        let updates = update_stream(seed, 300);
        let graph = gen::toy(seed);
        let reference = GGridServer::new(graph.clone(), config(1));
        for chunk in updates.chunks(37) {
            reference.ingest_batch(chunk);
        }
        let want = state_of(&reference, 40);
        for workers in [1usize, 2, 4] {
            let s = GGridServer::new(graph.clone(), config(workers));
            for (i, chunk) in updates.chunks(37).enumerate() {
                s.ingest_buffered(chunk);
                // A barrier after every third chunk: flushes may land
                // anywhere in the stream without changing the result.
                if i % 3 == 2 {
                    s.flush_ingest();
                }
            }
            s.flush_ingest();
            assert_eq!(
                state_of(&s, 40),
                want,
                "seed {seed}, {workers} ingest workers"
            );
            let c = s.counters();
            assert_eq!(c.updates_ingested, updates.len() as u64);
            assert!(c.buffered_messages >= updates.len() as u64);
            assert!(c.ingest_flushes > 0);
            assert!(c.buffer_bytes_high_water > 0);
        }
    }
}

#[test]
fn queries_auto_flush_buffered_messages() {
    let graph = gen::toy(3);
    let mut s = GGridServer::new(graph, config(2));
    let pos = EdgePosition::at_source(EdgeId(0));
    s.ingest_buffered(&[(ObjectId(9), pos, Timestamp(100))]);
    // No explicit barrier: the query itself must make the message visible.
    let ans = s.knn(pos, 1, Timestamp(200));
    assert_eq!(ans.len(), 1);
    assert_eq!(ans[0].0, ObjectId(9));
    assert!(s.counters().ingest_flushes >= 1);
}

#[test]
fn full_cells_spill_at_the_buffer_cap() {
    let graph = gen::toy(3);
    let s = GGridServer::new(
        graph,
        GGridConfig {
            eta: 4,
            bucket_capacity: 16,
            ingest_buffer_cap: 4,
            ..Default::default()
        },
    );
    // 12 updates into one cell with a cap of 4: the end-of-call check must
    // spill the cell without any explicit barrier.
    let pos = EdgePosition::at_source(EdgeId(0));
    let batch: Vec<Update> = (0..12u64)
        .map(|i| (ObjectId(1), pos, Timestamp(100 + i)))
        .collect();
    s.ingest_buffered(&batch);
    let c = s.counters();
    assert!(c.ingest_flushes >= 1, "cap breach must trigger a flush");
    assert!(s.cached_messages() > 0, "messages must have landed");
}

#[test]
fn byte_budget_drains_the_whole_buffer() {
    let graph = gen::toy(3);
    let s = GGridServer::new(
        graph,
        GGridConfig {
            eta: 4,
            bucket_capacity: 16,
            ingest_buffer_cap: 1_000_000,
            ingest_buffer_bytes: 64, // under two entries
            ..Default::default()
        },
    );
    let updates = update_stream(5, 40);
    for chunk in updates.chunks(8) {
        s.ingest_buffered(chunk);
    }
    let c = s.counters();
    assert!(c.ingest_flushes >= 4, "byte budget must force drains");
    // Budget breaches drain everything, so nothing stays buffered between
    // calls beyond one batch's worth (each update may also buffer one
    // cell-move tombstone, hence the factor of two).
    assert!(c.buffer_bytes_high_water <= 2 * 8 * 40);
}

#[test]
fn empty_flush_is_a_noop() {
    let graph = gen::toy(1);
    let s = GGridServer::new(graph, config(4));
    let dirty = s.flush_ingest();
    assert!(dirty.is_empty());
    let c = s.counters();
    assert_eq!(c.ingest_flushes, 0);
    assert_eq!(c.ingest_cell_locks, 0);
    assert_eq!(c.buffered_messages, 0);
}

#[test]
fn buffered_bytes_appear_in_index_size_until_flushed() {
    let graph = gen::toy(3);
    let s = GGridServer::new(
        graph,
        GGridConfig {
            eta: 4,
            bucket_capacity: 16,
            ingest_buffer_cap: 1_000_000,
            ingest_buffer_bytes: 0,
            ..Default::default()
        },
    );
    let before = s.index_size().cpu_bytes;
    s.ingest_buffered(&update_stream(9, 64));
    let held = s.index_size().cpu_bytes;
    assert!(held > before, "buffered entries must be accounted");
    s.flush_ingest();
    // After the barrier the buffer bytes are gone (the messages now live in
    // the cell slabs, which may cost a different amount).
    let c = s.counters();
    // 64 updates plus a buffered tombstone per cell move.
    assert!(c.buffered_messages >= 64);
    assert!(c.ingest_flushes >= 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of buffered ingestion (1/2/4 workers), kNN queries,
    /// subscription ticks, and mid-stream flush barriers matches the
    /// `ingest_batch` reference byte-for-byte: identical object table,
    /// cached-message count, tombstone count, answers, and maintained
    /// subscription results.
    #[test]
    fn buffered_interleaved_with_queries_and_ticks_matches_batched(
        seed in 0u64..1000,
        ops in prop::collection::vec((0u64..24, 0u32..160, 0u32..5), 6..60),
    ) {
        let graph = gen::toy(5);
        let mut reference = GGridServer::new(graph.clone(), config(1));
        let mut servers: Vec<GGridServer> = [1usize, 2, 4]
            .iter()
            .map(|&w| GGridServer::new(graph.clone(), config(w)))
            .collect();

        // One standing query per server, registered up front at the same
        // position and time, so ticks exercise the subscription path over
        // buffered dirt.
        let sub_pos = EdgePosition::at_source(EdgeId(seed as u32 % EDGES));
        let ref_sub = reference.subscribe_knn(sub_pos, 3, Timestamp(50));
        let subs: Vec<SubscriptionId> = servers
            .iter_mut()
            .map(|s| s.subscribe_knn(sub_pos, 3, Timestamp(50)))
            .collect();

        let mut t = 100u64;
        let mut pending: Vec<Update> = Vec::new();
        let flush = |pending: &mut Vec<Update>,
                         reference: &mut GGridServer,
                         servers: &mut Vec<GGridServer>| {
            reference.ingest_batch(pending);
            for s in servers.iter_mut() {
                s.ingest_buffered(pending);
            }
            pending.clear();
        };
        for &(obj, edge, kind) in &ops {
            t += 1;
            let e = EdgePosition::at_source(EdgeId(edge % EDGES));
            match kind {
                0 | 1 => {
                    // Update: queued into the current group commit.
                    pending.push((ObjectId(obj ^ seed), e, Timestamp(t)));
                }
                2 => {
                    // Query: commits the group, then every server must
                    // agree. The buffered servers rely on the query's own
                    // auto-flush — no explicit barrier.
                    flush(&mut pending, &mut reference, &mut servers);
                    let want = reference.knn(e, 4, Timestamp(t));
                    for s in servers.iter_mut() {
                        prop_assert_eq!(&s.knn(e, 4, Timestamp(t)), &want);
                    }
                }
                3 => {
                    // Subscription tick over whatever dirt has accumulated.
                    flush(&mut pending, &mut reference, &mut servers);
                    reference.tick_subscriptions(Timestamp(t));
                    let want = reference
                        .subscription_result(ref_sub)
                        .map(|r| r.to_vec());
                    for (s, &id) in servers.iter_mut().zip(&subs) {
                        s.tick_subscriptions(Timestamp(t));
                        prop_assert_eq!(
                            &s.subscription_result(id).map(|r| r.to_vec()),
                            &want
                        );
                    }
                }
                _ => {
                    // Explicit mid-stream barrier on the buffered servers
                    // only — must be invisible to the final state.
                    for s in servers.iter_mut() {
                        s.flush_ingest();
                    }
                }
            }
        }
        flush(&mut pending, &mut reference, &mut servers);
        for s in servers.iter_mut() {
            s.flush_ingest();
        }
        let want = state_of(&reference, 24 + 1024);
        for s in &servers {
            prop_assert_eq!(&state_of(s, 24 + 1024), &want);
        }
    }
}
