//! Multi-device sharding must be invisible in answers.
//!
//! The shard map decides *where* cleaning and SDist kernels run, never
//! *what* they compute: cleaning a cell is deterministic on any device and
//! the host-side merge re-runs the same refinement the single-device path
//! does. So every query answer — ad-hoc `knn`, fused `knn_batch`, and
//! maintained subscription results — must be byte-identical for every
//! device count, including under skewed hot-window ingest, forced
//! per-shard evictions, and a mid-stream rebalance that migrates cells
//! between shards. The proptest here drives all three surfaces through
//! the same scripted stream for `D ∈ {1, 2, 4, 8}` and compares against
//! the `D = 1` reference.

use ggrid::prelude::*;
use proptest::prelude::*;
use roadnet::gen::{self, GridCityParams};
use roadnet::graph::Graph;
use roadnet::EdgeId;

#[derive(Debug, Clone)]
struct Step {
    /// Raw update draws, mapped onto hot-window edges at run time.
    updates: Vec<(u64, u32, u32)>,
    advance_ms: u64,
    evict: bool,
}

#[derive(Debug, Clone)]
struct Case {
    graph: Graph,
    initial: Vec<(u64, u32, u32)>,
    queries: Vec<(u32, usize)>,
    steps: Vec<Step>,
    eta: u32,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        (3u32..7, 3u32..7, 0u64..400),
        prop::collection::vec((0u64..20, 0u32..10_000, 0u32..100), 1..16),
        prop::collection::vec((0u32..10_000, 1usize..6), 1..5),
        prop::collection::vec(
            (
                prop::collection::vec((0u64..20, 0u32..10_000, 0u32..100), 1..12),
                1u64..500,
                prop::bool::ANY,
            ),
            1..5,
        ),
        2u32..6,
    )
        .prop_map(
            |((rows, cols, seed), initial, queries, raw_steps, eta)| Case {
                graph: gen::grid_city(&GridCityParams {
                    rows,
                    cols,
                    edge_ratio: 2.5,
                    weight_range: (1, 30),
                    seed,
                }),
                initial,
                queries,
                steps: raw_steps
                    .into_iter()
                    .map(|(updates, advance_ms, evict)| Step {
                        updates,
                        advance_ms,
                        evict,
                    })
                    .collect(),
                eta,
            },
        )
}

/// Map a raw `(object, edge draw, offset draw)` onto a valid position on
/// one of `edges`, keeping only each object's last report in the batch.
fn batch_on(
    graph: &Graph,
    edges: &[EdgeId],
    raw: &[(u64, u32, u32)],
    now: Timestamp,
) -> Vec<(ObjectId, EdgePosition, Timestamp)> {
    let mut batch: Vec<(ObjectId, EdgePosition, Timestamp)> = Vec::new();
    for &(o, e, off) in raw {
        let edge = edges[e as usize % edges.len()];
        let p = EdgePosition::new(edge, off % (graph.edge(edge).weight + 1));
        if let Some(slot) = batch.iter_mut().find(|u| u.0 == ObjectId(o)) {
            slot.1 = p;
        } else {
            batch.push((ObjectId(o), p, now));
        }
    }
    batch
}

/// Everything observable a run produces, for byte-for-byte comparison.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    knn: Vec<Vec<Vec<(ObjectId, Distance)>>>,
    batch: Vec<Vec<Vec<(ObjectId, Distance)>>>,
    subs: Vec<Vec<Vec<(ObjectId, Distance)>>>,
}

/// Drive the scripted stream on a `num_devices = d` server and collect
/// every answer surface after each step. `replication` and `cross_shard`
/// toggle the cooperative multi-device paths; both only change *where*
/// modeled work lands, never answers.
fn run_stream(case: &Case, d: usize, replication: bool, cross_shard: bool) -> Observed {
    let config = GGridConfig {
        eta: case.eta,
        num_devices: d,
        // Low bar so the mid-stream rebalance actually fires when skewed.
        rebalance_threshold: 1.05,
        // Low bar so repeated clean-skips promote replicas within the
        // scripted stream (forcing invalidations from the hot-window
        // writes that follow).
        replicate_threshold: if replication { 1 } else { 0 },
        cross_shard_sdist: cross_shard,
        ..Default::default()
    };
    let mut server = GGridServer::new(case.graph.clone(), config);

    // Hot window: the low half of the z-order cell index space, so the
    // skewed wave pounds the low shard(s) and leaves the rest cold.
    let num_cells = server.grid().num_cells() as u32;
    let hot_edges: Vec<EdgeId> = (0..case.graph.num_edges() as u32)
        .map(EdgeId)
        .filter(|&e| (server.grid().cell_of_edge(e).index() as u32) < num_cells.div_ceil(2))
        .collect();
    let all_edges: Vec<EdgeId> = (0..case.graph.num_edges() as u32).map(EdgeId).collect();
    let hot = if hot_edges.is_empty() {
        &all_edges
    } else {
        &hot_edges
    };

    let ne = case.graph.num_edges() as u32;
    let queries: Vec<(EdgePosition, usize)> = case
        .queries
        .iter()
        .map(|&(e, k)| (EdgePosition::at_source(EdgeId(e % ne)), k))
        .collect();

    let mut now = Timestamp(1_000);
    server.ingest_batch(&batch_on(&case.graph, &all_edges, &case.initial, now));
    let subs: Vec<SubscriptionId> = queries
        .iter()
        .map(|&(q, k)| server.subscribe_knn(q, k, now))
        .collect();

    let mut observed = Observed {
        knn: Vec::new(),
        batch: Vec::new(),
        subs: Vec::new(),
    };
    let mid = case.steps.len() / 2;
    for (i, step) in case.steps.iter().enumerate() {
        now = Timestamp(now.0 + step.advance_ms);
        server.ingest_batch(&batch_on(&case.graph, hot, &step.updates, now));
        if step.evict {
            server.evict_all_resident();
            server.evict_all_topology();
        }
        if i == mid {
            // Mid-stream rebalance: may migrate boundary cells (a no-op at
            // d == 1). Answers must not move either way.
            server.rebalance_shards();
        }
        server.tick_subscriptions(now);

        observed.subs.push(
            subs.iter()
                .map(|&id| server.subscription_result(id).expect("live").to_vec())
                .collect(),
        );
        observed.knn.push(
            queries
                .iter()
                .map(|&(q, k)| server.knn(q, k, now))
                .collect(),
        );
        observed.batch.push(server.knn_batch(&queries, now).answers);
    }
    observed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every answer surface is byte-identical across device counts ×
    /// replication on/off × cross-shard SDist on/off. The stream's skewed
    /// hot-window writes land in cells the repeated queries replicate, so
    /// replica invalidation is exercised, and the mid-stream rebalance
    /// migrates cells out from under live replicas.
    #[test]
    fn answers_identical_across_device_counts(case in arb_case()) {
        let reference = run_stream(&case, 1, false, false);
        for d in [2usize, 4, 8] {
            for (replication, cross_shard) in
                [(false, false), (false, true), (true, false), (true, true)]
            {
                let got = run_stream(&case, d, replication, cross_shard);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "answers diverged at D={} replication={} cross_shard={}",
                    d,
                    replication,
                    cross_shard
                );
            }
        }
    }
}

/// A query whose candidate rings stay inside one shard's cell range must
/// launch kernels on exactly that one device — routing, not replication.
#[test]
fn single_shard_query_touches_one_device() {
    let graph = gen::grid_city(&GridCityParams {
        rows: 8,
        cols: 8,
        edge_ratio: 2.5,
        weight_range: (1, 30),
        seed: 11,
    });
    let mut server = GGridServer::new(
        graph.clone(),
        GGridConfig {
            eta: 3,
            num_devices: 4,
            ..Default::default()
        },
    );
    assert_eq!(server.num_shards(), 4);

    // Confine all objects (and the query) to cells owned by shard 0, so
    // cleaning and SDist both route there.
    let range0 = server.shard_ranges()[0].clone();
    let shard0_edges: Vec<EdgeId> = (0..graph.num_edges() as u32)
        .map(EdgeId)
        .filter(|&e| range0.contains(&(server.grid().cell_of_edge(e).index() as u32)))
        .collect();
    assert!(
        !shard0_edges.is_empty(),
        "shard 0 owns no edges; enlarge the test graph"
    );
    let now = Timestamp(1_000);
    for (i, &e) in shard0_edges.iter().enumerate().take(12) {
        server.handle_update(ObjectId(i as u64), EdgePosition::at_source(e), now);
    }

    let before = server.device_launches();
    let got = server.knn(
        EdgePosition::at_source(shard0_edges[0]),
        3,
        Timestamp(2_000),
    );
    assert!(!got.is_empty(), "query should find the planted objects");
    let after = server.device_launches();

    let touched: Vec<usize> = (0..4).filter(|&d| after[d] > before[d]).collect();
    assert_eq!(
        touched,
        vec![0],
        "kernels must launch on the owning shard only (launches: {before:?} -> {after:?})"
    );
}

/// A query whose candidate ring spans three shards must launch kernels on
/// exactly those three devices: cleaning routes each ring cell to its
/// owner, and the cooperative SDist round scatters the relaxation across
/// the same owners — the fourth device stays idle.
#[test]
fn three_shard_ring_launches_on_exactly_three_devices() {
    let graph = gen::grid_city(&GridCityParams {
        rows: 8,
        cols: 8,
        edge_ratio: 2.5,
        weight_range: (1, 30),
        seed: 3,
    });
    let mut server = GGridServer::new(
        graph.clone(),
        GGridConfig {
            eta: 3,
            num_devices: 4,
            // Keep effective owners = true owners: replicas would fold
            // remote cells into the primary and shrink the span.
            replicate_threshold: 0,
            ..Default::default()
        },
    );
    assert_eq!(server.num_shards(), 4);

    // Objects everywhere, so the first candidate ring already holds ρ·k
    // of them and the expansion never widens past it.
    let now = Timestamp(1_000);
    for (i, e) in (0..graph.num_edges() as u32).step_by(3).enumerate() {
        server.handle_update(ObjectId(i as u64), EdgePosition::at_source(EdgeId(e)), now);
    }

    // Find a query edge whose first ring (own cell + neighbours) spans
    // exactly three shards and is object-dense enough not to expand.
    let ranges = server.shard_ranges();
    let owner_of = |cell: usize| {
        ranges
            .iter()
            .position(|r| r.contains(&(cell as u32)))
            .unwrap()
    };
    let pick = (0..graph.num_edges() as u32).map(EdgeId).find(|&e| {
        let c = server.grid().cell_of_edge(e);
        let mut ring = vec![c];
        ring.extend_from_slice(server.grid().neighbors(c));
        let mut owners: Vec<usize> = ring.iter().map(|&c| owner_of(c.index())).collect();
        owners.sort_unstable();
        owners.dedup();
        let objects_in_ring = (0..graph.num_edges() as u32)
            .step_by(3)
            .filter(|&oe| ring.contains(&server.grid().cell_of_edge(EdgeId(oe))))
            .count();
        owners.len() == 3 && objects_in_ring >= 8
    });
    let q = pick.expect("an 8x8 grid over 4 z-contiguous shards has a 3-shard ring");

    let c = server.grid().cell_of_edge(q);
    let mut expected: Vec<usize> = std::iter::once(c)
        .chain(server.grid().neighbors(c).iter().copied())
        .map(|c| owner_of(c.index()))
        .collect();
    expected.sort_unstable();
    expected.dedup();

    let before = server.device_launches();
    let got = server.knn(EdgePosition::at_source(q), 3, Timestamp(2_000));
    assert!(!got.is_empty());
    let after = server.device_launches();

    let touched: Vec<usize> = (0..4).filter(|&d| after[d] > before[d]).collect();
    assert_eq!(
        touched, expected,
        "kernels must land on exactly the ring's three owners (launches: {before:?} -> {after:?})"
    );
    assert_eq!(touched.len(), 3);
    let b = server.last_breakdown();
    assert_eq!(b.ring_span, 3, "recorded ring span must match");
    assert!(
        b.cross_shard_rounds >= 1,
        "the wide ring must take the cooperative SDist path"
    );
}

/// A replica made stale by a write is torn down before the next read:
/// answers keep matching the single-device reference, and the invalidation
/// counter proves the coherence path actually fired.
#[test]
fn stale_replica_never_serves_reads() {
    let graph = gen::grid_city(&GridCityParams {
        rows: 6,
        cols: 6,
        edge_ratio: 2.5,
        weight_range: (1, 30),
        seed: 7,
    });
    let make = |d: usize| {
        GGridServer::new(
            graph.clone(),
            GGridConfig {
                eta: 3,
                num_devices: d,
                // Promote on the first clean-skip.
                replicate_threshold: 1,
                ..Default::default()
            },
        )
    };
    let mut sharded = make(2);
    let mut reference = make(1);
    assert_eq!(sharded.num_shards(), 2);

    let now = Timestamp(1_000);
    let seed_objects: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..graph.num_edges() as u32)
        .step_by(2)
        .enumerate()
        .map(|(i, e)| (ObjectId(i as u64), EdgePosition::at_source(EdgeId(e)), now))
        .collect();
    sharded.ingest_batch(&seed_objects);
    reference.ingest_batch(&seed_objects);

    // A query on shard 0 whose ring reaches shard 1's cells.
    let ranges = sharded.shard_ranges();
    let q = (0..graph.num_edges() as u32)
        .map(EdgeId)
        .find(|&e| {
            let c = sharded.grid().cell_of_edge(e);
            ranges[0].contains(&(c.index() as u32))
                && sharded
                    .grid()
                    .neighbors(c)
                    .iter()
                    .any(|n| ranges[1].contains(&(n.index() as u32)))
        })
        .expect("some shard-0 cell borders shard 1");
    let qp = EdgePosition::at_source(q);

    // Warm up: first query cleans the remote cells, second skips them
    // (heat crosses the threshold) and promotes replicas onto shard 0.
    for t in [2_000u64, 2_100] {
        assert_eq!(
            sharded.knn(qp, 4, Timestamp(t)),
            reference.knn(qp, 4, Timestamp(t))
        );
    }
    assert!(
        sharded.counters().replicas_active > 0,
        "warm-up must promote at least one replica"
    );

    // Write into every replicated remote cell: new objects parked right at
    // the query's ring, each landing a dirtied-cell invalidation.
    let remote_ring: Vec<EdgeId> = (0..graph.num_edges() as u32)
        .map(EdgeId)
        .filter(|&e| {
            let c = sharded.grid().cell_of_edge(e);
            ranges[1].contains(&(c.index() as u32))
        })
        .collect();
    for (i, &e) in remote_ring.iter().enumerate().take(6) {
        let o = ObjectId(10_000 + i as u64);
        let p = EdgePosition::at_source(e);
        sharded.handle_update(o, p, Timestamp(3_000));
        reference.handle_update(o, p, Timestamp(3_000));
    }

    // The next read must see the writes — the stale replicas are
    // invalidated before any kernel runs, never served.
    assert_eq!(
        sharded.knn(qp, 4, Timestamp(3_500)),
        reference.knn(qp, 4, Timestamp(3_500))
    );
    assert!(
        sharded.counters().replica_invalidations > 0,
        "the writes must have torn down the stale replicas"
    );
}
