//! Integration tests for device-resident cell state: the delta-merge path
//! and the memory-budgeted eviction must never change answers. A server
//! with residency enabled (any budget, any forced-eviction pattern) returns
//! kNN results byte-identical to a residency-disabled reference.

use ggrid::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::{gen, EdgeId};

const EDGES: u32 = 160; // gen::toy edge count

fn config(device_budget_bytes: u64) -> GGridConfig {
    GGridConfig {
        eta: 4,
        bucket_capacity: 16,
        device_budget_bytes,
        ..Default::default()
    }
}

/// Deterministically scatter a fleet over the toy graph.
fn seeded_server(seed: u64, budget: u64) -> GGridServer {
    let graph = gen::toy(seed);
    let s = GGridServer::new(graph, config(budget));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    for round in 0..4u64 {
        for o in 0..30u64 {
            let e = EdgeId(rng.gen_range(0..EDGES));
            s.handle_update(
                ObjectId(o),
                EdgePosition::at_source(e),
                Timestamp(100 + round),
            );
        }
    }
    s
}

#[test]
fn residency_ablation_answers_identical() {
    // Residency only removes simulated bus traffic — never changes answers.
    for seed in [5u64, 42] {
        let mut resident = seeded_server(seed, 64 << 20);
        let mut disabled = seeded_server(seed, 0);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = 900u64;
        for round in 0..6 {
            let q = EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES)));
            assert_eq!(
                resident.knn(q, 5, Timestamp(t)),
                disabled.knn(q, 5, Timestamp(t)),
                "seed {seed}, round {round}"
            );
            // Dirty a few cells so later cleans exercise the delta path.
            for o in 0..5u64 {
                t += 1;
                let e = EdgeId(rng.gen_range(0..EDGES));
                let p = EdgePosition::at_source(e);
                resident.handle_update(ObjectId(o), p, Timestamp(t));
                disabled.handle_update(ObjectId(o), p, Timestamp(t));
            }
        }
        assert!(resident.resident_cells() > 0);
        assert!(
            resident.counters().resident_hits > 0,
            "delta path never hit"
        );
        assert_eq!(disabled.counters().resident_hits, 0);
        assert_eq!(disabled.resident_cells(), 0);
    }
}

#[test]
fn delta_path_saves_h2d_bytes() {
    // A repeated-query workload with updates in between: the resident
    // server re-ships only deltas, the disabled server re-ships everything.
    let mut resident = seeded_server(11, 64 << 20);
    let mut disabled = seeded_server(11, 0);
    let q = EdgePosition::at_source(EdgeId(13));
    let mut t = 900u64;
    for _ in 0..8 {
        assert_eq!(
            resident.knn(q, 6, Timestamp(t)),
            disabled.knn(q, 6, Timestamp(t))
        );
        for o in 0..4u64 {
            t += 1;
            let p = EdgePosition::at_source(EdgeId(13 + (o as u32 % 3)));
            resident.handle_update(ObjectId(o), p, Timestamp(t));
            disabled.handle_update(ObjectId(o), p, Timestamp(t));
        }
    }
    let with = resident.counters();
    let without = disabled.counters();
    assert!(with.h2d_delta_bytes > 0);
    assert!(
        with.h2d_bytes < without.h2d_bytes,
        "residency must shrink total H2D traffic: {} vs {}",
        with.h2d_bytes,
        without.h2d_bytes
    );
}

#[test]
fn evicted_cell_falls_back_and_repromotes() {
    let mut s = seeded_server(7, 64 << 20);
    let edge = EdgeId(13);
    let q = EdgePosition::at_source(edge);
    s.knn(q, 4, Timestamp(900));
    assert!(s.is_resident(edge), "queried cell must be promoted");

    // Evict, dirty, re-query: the clean takes the full-upload path (no
    // resident hit, full bytes grow) and the answer is still correct.
    assert!(s.evict_resident(edge));
    assert!(!s.is_resident(edge));
    s.handle_update(ObjectId(0), EdgePosition::at_source(edge), Timestamp(950));
    let full_before = s.counters().h2d_full_bytes;
    let hits_before = s.counters().resident_hits;
    let got = s.knn(q, 4, Timestamp(1000));
    assert!(s.counters().h2d_full_bytes > full_before);
    assert_eq!(s.counters().resident_hits, hits_before);
    assert!(got.iter().any(|&(o, _)| o == ObjectId(0)));
    // ... and the cell is device-resident again.
    assert!(s.is_resident(edge), "full clean must re-promote");
    assert!(s.counters().evictions >= 1);
}

#[test]
fn tiny_budget_churns_but_stays_correct() {
    // A budget that fits roughly one cell forces constant LRU eviction;
    // answers still match the unconstrained server.
    let mut tiny = seeded_server(3, 256);
    let mut big = seeded_server(3, 64 << 20);
    let mut rng = SmallRng::seed_from_u64(99);
    let mut t = 900u64;
    for _ in 0..10 {
        t += 1;
        let q = EdgePosition::at_source(EdgeId(rng.gen_range(0..EDGES)));
        assert_eq!(tiny.knn(q, 4, Timestamp(t)), big.knn(q, 4, Timestamp(t)));
    }
    assert!(tiny.resident_bytes() <= 256);
    assert!(tiny.resident_bytes() <= tiny.device().residency().resident_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of appends, cleans, queries, and forced evictions
    /// gives byte-identical answers to a residency-disabled reference.
    /// `kind`: 0 = update, 1 = query, 2 = explicit clean, 3 = force-evict
    /// the cell, 4 = evict everything.
    #[test]
    fn residency_never_changes_answers(
        seed in 0u64..1000,
        budget_sel in 0usize..3,
        ops in prop::collection::vec((0u64..12, 0u32..160, 0u32..5), 4..40),
    ) {
        let budget = [512u64, 4096, 64 << 20][budget_sel];
        let graph = gen::toy(7);
        let mut resident = GGridServer::new(graph.clone(), config(budget));
        let mut reference = GGridServer::new(graph, config(0));
        let mut t = 100u64;
        for &(obj, edge, kind) in &ops {
            t += 1;
            let e = EdgeId(edge % EDGES);
            match kind {
                0 => {
                    let p = EdgePosition::at_source(e);
                    resident.handle_update(ObjectId(obj ^ seed), p, Timestamp(t));
                    reference.handle_update(ObjectId(obj ^ seed), p, Timestamp(t));
                }
                1 => {
                    let q = EdgePosition::at_source(e);
                    let got = resident.knn(q, 3, Timestamp(t));
                    let want = reference.knn(q, 3, Timestamp(t));
                    prop_assert_eq!(got, want, "divergence after {} ops", ops.len());
                }
                2 => {
                    resident.clean_cell_of_edge(e, Timestamp(t));
                    reference.clean_cell_of_edge(e, Timestamp(t));
                }
                3 => {
                    // Eviction is resident-only: the reference has nothing
                    // to evict, which is exactly the point.
                    resident.evict_resident(e);
                }
                _ => resident.evict_all_resident(),
            }
        }
        // Closing full-coverage query: every object's final position.
        let q = EdgePosition::at_source(EdgeId(seed as u32 % EDGES));
        prop_assert_eq!(
            resident.knn(q, 12, Timestamp(t + 1)),
            reference.knn(q, 12, Timestamp(t + 1))
        );
        // The budget is an invariant, not a hint.
        prop_assert!(resident.resident_bytes() <= budget);
    }
}
