//! The object table (paper §III-B): `o.id ↦ ⟨c.id, e.id, d⟩`.
//!
//! A CPU-resident hash table holding the latest reported location of every
//! object. Algorithm 1 consults it on every incoming message to detect
//! cell-to-cell moves (which require a departure tombstone in the old cell)
//! and then overwrites the entry. Uses an Fx-style hasher: object ids are
//! dense integers, and the default SipHash is needlessly slow for them.

use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use roadnet::EdgePosition;

use crate::grid::CellId;
use crate::message::{ObjectId, Timestamp};

/// Latest known location of one object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectEntry {
    pub cell: CellId,
    pub position: EdgePosition,
    pub time: Timestamp,
}

/// FxHash (the rustc hasher): multiply-xor over 8-byte words. Quality is
/// plenty for dense integer keys and it is far faster than SipHash.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The object table.
#[derive(Default)]
pub struct ObjectTable {
    map: HashMap<ObjectId, ObjectEntry, FxBuildHasher>,
}

impl ObjectTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self {
            map: HashMap::with_capacity_and_hasher(n, FxBuildHasher::default()),
        }
    }

    pub fn get(&self, o: ObjectId) -> Option<&ObjectEntry> {
        self.map.get(&o)
    }

    /// `setOT` (Algorithm 1 line 6): overwrite the latest location. Returns
    /// the previous entry, if any.
    pub fn set(
        &mut self,
        o: ObjectId,
        cell: CellId,
        position: EdgePosition,
        time: Timestamp,
    ) -> Option<ObjectEntry> {
        self.map.insert(
            o,
            ObjectEntry {
                cell,
                position,
                time,
            },
        )
    }

    pub fn remove(&mut self, o: ObjectId) -> Option<ObjectEntry> {
        self.map.remove(&o)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectEntry)> {
        self.map.iter().map(|(&o, e)| (o, e))
    }

    /// Approximate resident bytes: entry payload plus hash-table slot
    /// overhead (space cost O(|𝒪|), §VI-A).
    pub fn size_bytes(&self) -> u64 {
        let slot = (std::mem::size_of::<ObjectId>() + std::mem::size_of::<ObjectEntry>()) as u64;
        self.map.capacity() as u64 * slot
    }
}

/// Number of shards in [`ShardedObjectTable`]. A power of two so the shard
/// of an object is a mask, and large enough (64) that ingest workers rarely
/// collide even with hundreds of threads.
pub const NUM_SHARDS: usize = 64;

/// Shard owning `o`: object ids are dense, so a plain modulo spreads them
/// evenly and — crucially for the parallel ingest workers — makes shard
/// ownership a pure function of the id.
#[inline]
pub fn shard_of(o: ObjectId) -> usize {
    (o.0 % NUM_SHARDS as u64) as usize
}

/// The object table sharded [`NUM_SHARDS`] ways, each shard behind its own
/// reader–writer lock, so the ingest path takes `&self` and concurrent
/// updates to different objects proceed without contention.
///
/// Lock order (see DESIGN.md §5.5): a shard lock is only ever held alone —
/// callers must never acquire a cell mutex while holding one.
pub struct ShardedObjectTable {
    shards: Vec<parking_lot::RwLock<ObjectTable>>,
    /// Per-shard write epochs, bumped on every `set`/`remove`, validating
    /// the cached snapshot below.
    epochs: Vec<AtomicU64>,
    cache: parking_lot::Mutex<SnapshotCache>,
    /// Snapshots served from the cache without a rebuild.
    snapshot_reuses: AtomicU64,
}

/// Cached result of [`ShardedObjectTable::snapshot`], tagged with the shard
/// epochs observed when it was built.
struct SnapshotCache {
    stamps: Vec<u64>,
    data: Arc<Vec<(ObjectId, ObjectEntry)>>,
}

impl Default for ShardedObjectTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedObjectTable {
    pub fn new() -> Self {
        Self {
            shards: (0..NUM_SHARDS)
                .map(|_| parking_lot::RwLock::new(ObjectTable::new()))
                .collect(),
            epochs: (0..NUM_SHARDS).map(|_| AtomicU64::new(0)).collect(),
            cache: parking_lot::Mutex::new(SnapshotCache {
                // u64::MAX never matches a real epoch, forcing the first
                // snapshot to build.
                stamps: vec![u64::MAX; NUM_SHARDS],
                data: Arc::new(Vec::new()),
            }),
            snapshot_reuses: AtomicU64::new(0),
        }
    }

    /// Latest entry for `o`, by value (the shard lock is released before
    /// returning, so no guard escapes).
    pub fn get(&self, o: ObjectId) -> Option<ObjectEntry> {
        self.shards[shard_of(o)].read().get(o).copied()
    }

    /// `setOT`: overwrite the latest location, returning the previous
    /// entry. One lookup serves both the tombstone decision and the store.
    pub fn set(
        &self,
        o: ObjectId,
        cell: CellId,
        position: EdgePosition,
        time: Timestamp,
    ) -> Option<ObjectEntry> {
        let s = shard_of(o);
        let prev = self.shards[s].write().set(o, cell, position, time);
        self.epochs[s].fetch_add(1, Ordering::Release);
        prev
    }

    pub fn remove(&self, o: ObjectId) -> Option<ObjectEntry> {
        let s = shard_of(o);
        let prev = self.shards[s].write().remove(o);
        if prev.is_some() {
            self.epochs[s].fetch_add(1, Ordering::Release);
        }
        prev
    }

    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    pub fn size_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.read().size_bytes()).sum()
    }

    /// A point-in-time copy of every entry, sorted by object id. Shards are
    /// visited one at a time (never all locked at once), so this is a
    /// *consistent-per-shard* snapshot — exact when no writer is active,
    /// which is how validation and tests use it.
    ///
    /// The result is cached and revalidated against per-shard write epochs,
    /// so repeated snapshots of a quiet table are an epoch comparison plus
    /// an `Arc` clone — no O(|𝒪|) copy, no re-sort (the pre-capacity-push
    /// path rebuilt and fully sorted the vector on *every* call, which
    /// dominated at 1M objects). Rebuilds sort each shard's entries
    /// individually and k-way merge the runs: sorting 64 runs of N/64 is
    /// cheaper than one sort of N, and the merge is linear in N.
    ///
    /// Epochs are read **before** the shard contents, so a write racing the
    /// rebuild can only make the cached stamps stale (next call rebuilds) —
    /// never a fresh stamp over stale data.
    pub fn snapshot(&self) -> Arc<Vec<(ObjectId, ObjectEntry)>> {
        let mut cache = self.cache.lock();
        let stamps: Vec<u64> = self
            .epochs
            .iter()
            .map(|e| e.load(Ordering::Acquire))
            .collect();
        if stamps == cache.stamps {
            self.snapshot_reuses.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&cache.data);
        }
        let mut runs: Vec<Vec<(ObjectId, ObjectEntry)>> = Vec::with_capacity(NUM_SHARDS);
        for s in &self.shards {
            let g = s.read();
            let mut run: Vec<(ObjectId, ObjectEntry)> = g.iter().map(|(o, e)| (o, *e)).collect();
            run.sort_unstable_by_key(|&(o, _)| o);
            runs.push(run);
        }
        let total = runs.iter().map(Vec::len).sum();
        let mut all: Vec<(ObjectId, ObjectEntry)> = Vec::with_capacity(total);
        // K-way merge of the per-shard sorted runs (min-heap on the head of
        // each run, keyed by object id).
        let mut heap: BinaryHeap<std::cmp::Reverse<(ObjectId, usize)>> = runs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_empty())
            .map(|(i, r)| std::cmp::Reverse((r[0].0, i)))
            .collect();
        let mut next = vec![0usize; runs.len()];
        while let Some(std::cmp::Reverse((_, i))) = heap.pop() {
            let pos = next[i];
            all.push(runs[i][pos]);
            next[i] = pos + 1;
            if let Some(&(o, _)) = runs[i].get(pos + 1) {
                heap.push(std::cmp::Reverse((o, i)));
            }
        }
        cache.stamps = stamps;
        cache.data = Arc::new(all);
        Arc::clone(&cache.data)
    }

    /// Snapshots served from the epoch-validated cache without a rebuild.
    pub fn snapshot_reuses(&self) -> u64 {
        self.snapshot_reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::EdgeId;

    fn pos(e: u32, d: u32) -> EdgePosition {
        EdgePosition::new(EdgeId(e), d)
    }

    #[test]
    fn set_get_overwrite() {
        let mut t = ObjectTable::new();
        assert!(t.get(ObjectId(1)).is_none());
        assert!(t
            .set(ObjectId(1), CellId(3), pos(5, 2), Timestamp(10))
            .is_none());
        let prev = t
            .set(ObjectId(1), CellId(4), pos(6, 0), Timestamp(20))
            .unwrap();
        assert_eq!(prev.cell, CellId(3));
        let cur = t.get(ObjectId(1)).unwrap();
        assert_eq!(cur.cell, CellId(4));
        assert_eq!(cur.time, Timestamp(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove() {
        let mut t = ObjectTable::new();
        t.set(ObjectId(9), CellId(0), pos(0, 0), Timestamp(1));
        assert!(t.remove(ObjectId(9)).is_some());
        assert!(t.is_empty());
        assert!(t.remove(ObjectId(9)).is_none());
    }

    #[test]
    fn iteration_covers_all() {
        let mut t = ObjectTable::new();
        for i in 0..100 {
            t.set(ObjectId(i), CellId(i as u32 % 7), pos(0, 0), Timestamp(i));
        }
        assert_eq!(t.iter().count(), 100);
        let sum: u64 = t.iter().map(|(o, _)| o.0).sum();
        assert_eq!(sum, (0..100).sum::<u64>());
    }

    #[test]
    fn size_grows_with_entries() {
        let mut t = ObjectTable::new();
        let empty = t.size_bytes();
        for i in 0..1000 {
            t.set(ObjectId(i), CellId(0), pos(0, 0), Timestamp(0));
        }
        assert!(t.size_bytes() > empty);
    }

    #[test]
    fn sharded_set_get_remove() {
        let t = ShardedObjectTable::new();
        assert!(t.is_empty());
        assert!(t
            .set(ObjectId(1), CellId(3), pos(5, 2), Timestamp(10))
            .is_none());
        let prev = t
            .set(ObjectId(1), CellId(4), pos(6, 0), Timestamp(20))
            .unwrap();
        assert_eq!(prev.cell, CellId(3));
        assert_eq!(t.get(ObjectId(1)).unwrap().cell, CellId(4));
        assert_eq!(t.len(), 1);
        assert!(t.remove(ObjectId(1)).is_some());
        assert!(t.get(ObjectId(1)).is_none());
    }

    #[test]
    fn sharded_snapshot_sorted_and_complete() {
        let t = ShardedObjectTable::new();
        // Ids chosen to land in many different shards, inserted unsorted.
        for i in (0..200u64).rev() {
            t.set(
                ObjectId(i * 7),
                CellId((i % 5) as u32),
                pos(0, 0),
                Timestamp(i),
            );
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 200);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(t.size_bytes(), {
            let mut plain = ObjectTable::new();
            for &(o, e) in snap.iter() {
                plain.set(o, e.cell, e.position, e.time);
            }
            // Sharded capacity is spread over 64 tables, so only check the
            // total is nonzero and covers the payload.
            assert!(plain.size_bytes() > 0);
            t.size_bytes()
        });
        assert!(t.size_bytes() > 0);
    }

    #[test]
    fn snapshot_cache_reuses_until_a_write_invalidates() {
        let t = ShardedObjectTable::new();
        for i in 0..50u64 {
            t.set(ObjectId(i), CellId(0), pos(0, 0), Timestamp(i));
        }
        let a = t.snapshot();
        assert_eq!(t.snapshot_reuses(), 0);
        let b = t.snapshot();
        assert_eq!(t.snapshot_reuses(), 1, "quiet table must reuse the cache");
        assert!(Arc::ptr_eq(&a, &b));

        // A write to any shard invalidates; the rebuilt snapshot sees it.
        t.set(ObjectId(7), CellId(9), pos(1, 0), Timestamp(99));
        let c = t.snapshot();
        assert_eq!(t.snapshot_reuses(), 1);
        assert!(!Arc::ptr_eq(&b, &c));
        let entry = c.iter().find(|&&(o, _)| o == ObjectId(7)).unwrap().1;
        assert_eq!(entry.cell, CellId(9));
        assert!(c.windows(2).all(|w| w[0].0 < w[1].0));

        // Removing a missing object is not a write; the cache survives.
        t.remove(ObjectId(12345));
        let d = t.snapshot();
        assert_eq!(t.snapshot_reuses(), 2);
        assert!(Arc::ptr_eq(&c, &d));
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for i in 0..1000u64 {
            let s = shard_of(ObjectId(i));
            assert!(s < NUM_SHARDS);
            assert_eq!(s, shard_of(ObjectId(i)));
        }
        // Dense ids cover every shard.
        let covered: std::collections::HashSet<usize> =
            (0..64u64).map(|i| shard_of(ObjectId(i))).collect();
        assert_eq!(covered.len(), NUM_SHARDS);
    }

    #[test]
    fn fx_hasher_distributes() {
        // Dense keys should not all collide into few buckets: check that
        // hashing 0..64 yields many distinct values.
        use std::hash::Hash;
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = FxHasher::default();
            ObjectId(i).hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 64);
    }
}
