//! The object table (paper §III-B): `o.id ↦ ⟨c.id, e.id, d⟩`.
//!
//! A CPU-resident hash table holding the latest reported location of every
//! object. Algorithm 1 consults it on every incoming message to detect
//! cell-to-cell moves (which require a departure tombstone in the old cell)
//! and then overwrites the entry. Uses an Fx-style hasher: object ids are
//! dense integers, and the default SipHash is needlessly slow for them.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use roadnet::EdgePosition;

use crate::grid::CellId;
use crate::message::{ObjectId, Timestamp};

/// Latest known location of one object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObjectEntry {
    pub cell: CellId,
    pub position: EdgePosition,
    pub time: Timestamp,
}

/// FxHash (the rustc hasher): multiply-xor over 8-byte words. Quality is
/// plenty for dense integer keys and it is far faster than SipHash.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The object table.
#[derive(Default)]
pub struct ObjectTable {
    map: HashMap<ObjectId, ObjectEntry, FxBuildHasher>,
}

impl ObjectTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(n: usize) -> Self {
        Self {
            map: HashMap::with_capacity_and_hasher(n, FxBuildHasher::default()),
        }
    }

    pub fn get(&self, o: ObjectId) -> Option<&ObjectEntry> {
        self.map.get(&o)
    }

    /// `setOT` (Algorithm 1 line 6): overwrite the latest location. Returns
    /// the previous entry, if any.
    pub fn set(
        &mut self,
        o: ObjectId,
        cell: CellId,
        position: EdgePosition,
        time: Timestamp,
    ) -> Option<ObjectEntry> {
        self.map.insert(
            o,
            ObjectEntry {
                cell,
                position,
                time,
            },
        )
    }

    pub fn remove(&mut self, o: ObjectId) -> Option<ObjectEntry> {
        self.map.remove(&o)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectEntry)> {
        self.map.iter().map(|(&o, e)| (o, e))
    }

    /// Approximate resident bytes: entry payload plus hash-table slot
    /// overhead (space cost O(|𝒪|), §VI-A).
    pub fn size_bytes(&self) -> u64 {
        let slot = (std::mem::size_of::<ObjectId>() + std::mem::size_of::<ObjectEntry>()) as u64;
        self.map.capacity() as u64 * slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::EdgeId;

    fn pos(e: u32, d: u32) -> EdgePosition {
        EdgePosition::new(EdgeId(e), d)
    }

    #[test]
    fn set_get_overwrite() {
        let mut t = ObjectTable::new();
        assert!(t.get(ObjectId(1)).is_none());
        assert!(t
            .set(ObjectId(1), CellId(3), pos(5, 2), Timestamp(10))
            .is_none());
        let prev = t
            .set(ObjectId(1), CellId(4), pos(6, 0), Timestamp(20))
            .unwrap();
        assert_eq!(prev.cell, CellId(3));
        let cur = t.get(ObjectId(1)).unwrap();
        assert_eq!(cur.cell, CellId(4));
        assert_eq!(cur.time, Timestamp(20));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove() {
        let mut t = ObjectTable::new();
        t.set(ObjectId(9), CellId(0), pos(0, 0), Timestamp(1));
        assert!(t.remove(ObjectId(9)).is_some());
        assert!(t.is_empty());
        assert!(t.remove(ObjectId(9)).is_none());
    }

    #[test]
    fn iteration_covers_all() {
        let mut t = ObjectTable::new();
        for i in 0..100 {
            t.set(ObjectId(i), CellId(i as u32 % 7), pos(0, 0), Timestamp(i));
        }
        assert_eq!(t.iter().count(), 100);
        let sum: u64 = t.iter().map(|(o, _)| o.0).sum();
        assert_eq!(sum, (0..100).sum::<u64>());
    }

    #[test]
    fn size_grows_with_entries() {
        let mut t = ObjectTable::new();
        let empty = t.size_bytes();
        for i in 0..1000 {
            t.set(ObjectId(i), CellId(0), pos(0, 0), Timestamp(0));
        }
        assert!(t.size_bytes() > empty);
    }

    #[test]
    fn fx_hasher_distributes() {
        // Dense keys should not all collide into few buckets: check that
        // hashing 0..64 yields many distinct values.
        use std::hash::Hash;
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = FxHasher::default();
            ObjectId(i).hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 64);
    }
}
