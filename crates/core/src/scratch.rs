//! Pooled dense distance scratch (epoch-stamped).
//!
//! The distance phase used to build a fresh `HashMap<VertexId, Distance>`
//! per query — per-query allocation plus hash churn on every relax. A
//! [`DenseScratch`] replaces the map with three flat arrays indexed by
//! `VertexId::index()`:
//!
//! * `dist[v]` — the tentative distance, valid only when
//! * `stamp[v]` equals the scratch's current `epoch`, and
//! * `touched` — the list of vertices written this epoch.
//!
//! A `get` of an unstamped vertex returns [`INFINITY`], exactly the
//! semantics of a missing `HashMap` key in the old code, so the scratch is
//! a drop-in replacement. Clearing is an epoch bump — O(touched), not
//! O(|V|) — which is what makes reuse across queries free.
//!
//! [`ScratchPool`] keeps retired scratches on the server so concurrent
//! refinement workers and the batch pipeline can each borrow one without
//! reallocating; `acquire` resets before handing out.

use parking_lot::Mutex;
use roadnet::dijkstra::DijkstraScratch;
use roadnet::graph::{Distance, VertexId, INFINITY};

/// A dense `VertexId → Distance` map with O(touched) clearing.
#[derive(Debug)]
pub struct DenseScratch {
    dist: Vec<Distance>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl DenseScratch {
    pub fn new(num_vertices: usize) -> Self {
        Self {
            dist: vec![INFINITY; num_vertices],
            stamp: vec![0; num_vertices],
            epoch: 1,
            touched: Vec::new(),
        }
    }

    /// Vertices this scratch can index (the graph it was sized for).
    pub fn capacity(&self) -> usize {
        self.dist.len()
    }

    /// Tentative distance of `v`; [`INFINITY`] when `v` was not written
    /// this epoch (the `HashMap` miss of the old code).
    #[inline]
    pub fn get(&self, v: VertexId) -> Distance {
        if self.stamp[v.index()] == self.epoch {
            self.dist[v.index()]
        } else {
            INFINITY
        }
    }

    /// Whether `v` was written this epoch.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    /// Write `d`, stamping `v` into the current epoch.
    #[inline]
    pub fn set(&mut self, v: VertexId, d: Distance) {
        let i = v.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.touched.push(i as u32);
        }
        self.dist[i] = d;
    }

    /// `dist[v] = min(dist[v], d)`; returns true when `d` improved the
    /// entry (the min-merge of the refinement workers).
    #[inline]
    pub fn min_in(&mut self, v: VertexId, d: Distance) -> bool {
        if d < self.get(v) {
            self.set(v, d);
            true
        } else {
            false
        }
    }

    /// Number of vertices written this epoch.
    pub fn touched_len(&self) -> usize {
        self.touched.len()
    }

    /// `(vertex, distance)` pairs written this epoch, in first-write order.
    pub fn iter_touched(&self) -> impl Iterator<Item = (VertexId, Distance)> + '_ {
        self.touched
            .iter()
            .map(|&i| (VertexId(i), self.dist[i as usize]))
    }

    /// Resident bytes of the three flat arrays (the touched list is
    /// negligible next to the O(|V|) dist/stamp pair).
    pub fn size_bytes(&self) -> u64 {
        (self.dist.capacity() * std::mem::size_of::<Distance>()
            + self.stamp.capacity() * std::mem::size_of::<u32>()
            + self.touched.capacity() * std::mem::size_of::<u32>()) as u64
    }

    /// Clear the map by bumping the epoch: O(touched). On the (u32) epoch
    /// wrapping around, the stamps are rewritten once — still amortised
    /// O(touched).
    pub fn reset(&mut self) {
        self.touched.clear();
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

/// A pool of [`DenseScratch`]es sized for one graph, shared by the query
/// path and the refinement workers (batch mode borrows several at once).
///
/// The pool is byte-budgeted: once the *idle* scratches (dense + Dijkstra)
/// exceed `budget_bytes`, releases evict the oldest pooled buffers instead
/// of hoarding them — before the capacity push a warmed pool pinned
/// O(workers × |V|) memory forever, which at 300k vertices is ~2.4 MB per
/// retired worker scratch. A budget of `0` disables the bound.
#[derive(Debug)]
pub struct ScratchPool {
    num_vertices: usize,
    budget_bytes: u64,
    pool: Mutex<Vec<DenseScratch>>,
    engines: Mutex<Vec<DijkstraScratch>>,
}

impl ScratchPool {
    pub fn new(num_vertices: usize) -> Self {
        Self::with_budget(num_vertices, 0)
    }

    /// A pool whose idle buffers are bounded to `budget_bytes` (0 =
    /// unbounded).
    pub fn with_budget(num_vertices: usize, budget_bytes: u64) -> Self {
        Self {
            num_vertices,
            budget_bytes,
            pool: Mutex::new(Vec::new()),
            engines: Mutex::new(Vec::new()),
        }
    }

    /// Borrow a scratch (freshly reset). Allocates only when the pool is
    /// empty — steady state reuses retired scratches.
    pub fn acquire(&self) -> DenseScratch {
        let mut s = self
            .pool
            .lock()
            .pop()
            .unwrap_or_else(|| DenseScratch::new(self.num_vertices));
        s.reset();
        s
    }

    /// Return a scratch to the pool. Scratches sized for another graph are
    /// dropped instead of pooled; pooling past the byte budget evicts the
    /// oldest idle buffers first.
    pub fn release(&self, s: DenseScratch) {
        if s.capacity() == self.num_vertices {
            self.pool.lock().push(s);
            self.enforce_budget();
        }
    }

    /// Scratches currently idle in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }

    /// Bytes held by idle scratches (dense + Dijkstra). Counted into the
    /// server's `index_size` so capacity benches see pool growth.
    pub fn scratch_bytes(&self) -> u64 {
        // Lock order: pool before engines, everywhere in this module.
        let pool = self.pool.lock();
        let engines = self.engines.lock();
        pool.iter().map(DenseScratch::size_bytes).sum::<u64>()
            + engines.iter().map(DijkstraScratch::size_bytes).sum::<u64>()
    }

    /// Evict oldest idle buffers until the pooled footprint fits the
    /// budget. Dense scratches evict first (largest), then engines.
    fn enforce_budget(&self) {
        if self.budget_bytes == 0 {
            return;
        }
        let mut pool = self.pool.lock();
        let mut engines = self.engines.lock();
        let mut total = pool.iter().map(DenseScratch::size_bytes).sum::<u64>()
            + engines.iter().map(DijkstraScratch::size_bytes).sum::<u64>();
        while total > self.budget_bytes && !pool.is_empty() {
            total = total.saturating_sub(pool.remove(0).size_bytes());
        }
        while total > self.budget_bytes && !engines.is_empty() {
            total = total.saturating_sub(engines.remove(0).size_bytes());
        }
    }

    /// Borrow Dijkstra working memory for a refinement search. Like
    /// [`acquire`](Self::acquire), allocation happens only on a cold pool:
    /// steady state re-attaches a retired scratch in O(1), keeping the
    /// O(|V|) distance-array build out of the per-query path.
    pub fn acquire_engine(&self) -> DijkstraScratch {
        self.engines
            .lock()
            .pop()
            .unwrap_or_else(|| DijkstraScratch::with_capacity(self.num_vertices))
    }

    /// Return Dijkstra working memory to the pool. Scratches sized for
    /// another graph are dropped instead of pooled; pooling past the byte
    /// budget evicts the oldest idle buffers first.
    pub fn release_engine(&self, s: DijkstraScratch) {
        if s.capacity() == self.num_vertices {
            self.engines.lock().push(s);
            self.enforce_budget();
        }
    }

    /// Engine scratches currently idle in the pool.
    pub fn pooled_engines(&self) -> usize {
        self.engines.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_miss_semantics() {
        let mut s = DenseScratch::new(8);
        assert_eq!(s.get(VertexId(3)), INFINITY);
        assert!(!s.contains(VertexId(3)));
        s.set(VertexId(3), 42);
        assert_eq!(s.get(VertexId(3)), 42);
        assert!(s.contains(VertexId(3)));
        assert_eq!(s.get(VertexId(4)), INFINITY);
        assert_eq!(s.touched_len(), 1);
    }

    #[test]
    fn explicit_infinity_still_counts_as_touched() {
        // The dense Bellman–Ford seeds every candidate vertex with INFINITY;
        // those entries must read back as INFINITY either way, but count as
        // touched (they were written).
        let mut s = DenseScratch::new(4);
        s.set(VertexId(0), INFINITY);
        assert!(s.contains(VertexId(0)));
        assert_eq!(s.get(VertexId(0)), INFINITY);
        assert_eq!(s.touched_len(), 1);
    }

    #[test]
    fn min_in_merges() {
        let mut s = DenseScratch::new(4);
        assert!(s.min_in(VertexId(1), 10));
        assert!(!s.min_in(VertexId(1), 12));
        assert!(s.min_in(VertexId(1), 7));
        assert_eq!(s.get(VertexId(1)), 7);
        assert_eq!(s.touched_len(), 1, "re-writes must not re-touch");
    }

    #[test]
    fn reset_clears_in_o_touched() {
        let mut s = DenseScratch::new(1000);
        s.set(VertexId(5), 1);
        s.set(VertexId(900), 2);
        s.reset();
        assert_eq!(s.get(VertexId(5)), INFINITY);
        assert_eq!(s.get(VertexId(900)), INFINITY);
        assert_eq!(s.touched_len(), 0);
        s.set(VertexId(5), 9);
        assert_eq!(s.get(VertexId(5)), 9);
    }

    #[test]
    fn epoch_wrap_survives() {
        let mut s = DenseScratch::new(4);
        s.set(VertexId(0), 7);
        s.epoch = u32::MAX - 1;
        // Stale stamp from epoch 1 must not leak through the wrap.
        s.stamp[0] = 1;
        s.reset(); // -> u32::MAX
        assert_eq!(s.get(VertexId(0)), INFINITY);
        s.set(VertexId(1), 3);
        s.reset(); // wraps: stamps rewritten, epoch back to 1
        assert_eq!(s.epoch, 1);
        assert_eq!(s.get(VertexId(0)), INFINITY);
        assert_eq!(s.get(VertexId(1)), INFINITY);
        s.set(VertexId(2), 5);
        assert_eq!(s.get(VertexId(2)), 5);
    }

    #[test]
    fn iter_touched_lists_pairs() {
        let mut s = DenseScratch::new(8);
        s.set(VertexId(6), 60);
        s.set(VertexId(2), 20);
        s.set(VertexId(6), 61);
        let got: Vec<_> = s.iter_touched().collect();
        assert_eq!(got, vec![(VertexId(6), 61), (VertexId(2), 20)]);
    }

    #[test]
    fn pool_reuses_and_resets() {
        let pool = ScratchPool::new(16);
        let mut a = pool.acquire();
        a.set(VertexId(3), 3);
        pool.release(a);
        assert_eq!(pool.pooled(), 1);
        let b = pool.acquire();
        assert_eq!(b.get(VertexId(3)), INFINITY, "acquire must reset");
        assert_eq!(pool.pooled(), 0);
        pool.release(b);

        // A scratch for another graph is dropped, not pooled.
        pool.release(DenseScratch::new(4));
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn engine_pool_round_trips() {
        let pool = ScratchPool::new(16);
        let s = pool.acquire_engine();
        assert_eq!(s.capacity(), 16);
        pool.release_engine(s);
        assert_eq!(pool.pooled_engines(), 1);
        let _again = pool.acquire_engine();
        assert_eq!(pool.pooled_engines(), 0);

        // Mismatched capacity is dropped, not pooled.
        pool.release_engine(DijkstraScratch::with_capacity(4));
        assert_eq!(pool.pooled_engines(), 0);
    }

    #[test]
    fn budget_evicts_oldest_idle_scratch() {
        let one = DenseScratch::new(16).size_bytes();
        // Budget fits exactly two dense scratches.
        let pool = ScratchPool::with_budget(16, 2 * one);
        let (a, b, c) = (pool.acquire(), pool.acquire(), pool.acquire());
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.pooled(), 2);
        assert!(pool.scratch_bytes() <= 2 * one);
        pool.release(c);
        assert_eq!(pool.pooled(), 2, "third release must evict the oldest");
        assert!(pool.scratch_bytes() <= 2 * one);

        // Engines share the same budget and evict once dense is drained.
        let e = pool.acquire_engine();
        pool.release_engine(e);
        assert!(pool.scratch_bytes() <= 2 * one);
        assert!(pool.pooled() + pool.pooled_engines() >= 1);
    }

    #[test]
    fn zero_budget_is_unbounded() {
        let pool = ScratchPool::new(1000);
        for _ in 0..8 {
            pool.release(DenseScratch::new(1000));
        }
        assert_eq!(pool.pooled(), 8);
        assert!(pool.scratch_bytes() > 0);
    }

    #[test]
    fn pool_hands_out_multiple_concurrently() {
        let pool = ScratchPool::new(8);
        let a = pool.acquire();
        let b = pool.acquire();
        assert_eq!(a.capacity(), 8);
        assert_eq!(b.capacity(), 8);
        pool.release(a);
        pool.release(b);
        assert_eq!(pool.pooled(), 2);
    }
}
