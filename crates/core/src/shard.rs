//! Multi-device sharding: z-order cell partitioning, per-shard residency,
//! routed cleaning, and busy-time rebalancing.
//!
//! The G-Grid stores cells in z-order (§III-A), so a contiguous range of
//! cell indices is a spatially coherent tile — exactly the unit a
//! multi-device deployment wants to partition. A [`ShardSet`] owns `D`
//! simulated devices; shard `d` owns the cells in `map.range(d)` and keeps
//! **its own** residency and topology LRUs (the per-device
//! `device_budget_bytes`), while the immutable graph-grid mirror is
//! replicated on every device (queries route by data, not by topology).
//!
//! **Routing.** Mutable per-cell state (message lists, consolidated
//! residency) is partitioned: a cleaning round splits its cell set by owner
//! and drives each owner's device independently ([`ShardSet::clean_cells`]).
//! Per-cell cleaning is deterministic and independent of the batch
//! composition, so the merged output is byte-identical to the single-device
//! pass — the correctness argument for answers being independent of `D`.
//! Query-wide kernels (`GPU_SDist`, selection, unresolved) run on the
//! query's *primary* shard: the owner of the query's cell.
//!
//! **Rebalancing.** Contiguous ranges make migration cheap: moving the
//! boundary of two adjacent shards re-homes a z-run of cells. The epoch
//! rebalancer ([`ShardSet::maybe_rebalance`]) watches per-shard busy time
//! (kernel + transfer deltas since the last epoch), and when the hottest
//! shard exceeds `rebalance_threshold ×` the mean it migrates boundary
//! cells toward the neighbor — evicting the moved cells' resident state on
//! the old owner, so the next clean re-homes them on the new device (the
//! pending dirt in the host-side message lists replays there naturally).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use gpu_sim::{Device, OpCounts, SimNanos};

use crate::cleaning::{clean_cells, clean_cells_with_heat, CleanedObjects, CleaningReport};
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::message::{CachedMessage, Timestamp};
use crate::message_list::CellLists;
use crate::residency::{ResidentCellStore, TopologyStore};

/// Hard cap on `num_devices`, sized so per-shard counter arrays stay
/// `Copy` (see [`crate::stats::ServerCounters`]).
pub const MAX_DEVICES: usize = 16;

/// Cell-index → shard mapping: shard `d` owns the contiguous z-range
/// `starts[d] .. starts[d + 1]` (the last shard runs to `num_cells`).
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// `starts[0] == 0`; strictly increasing would forbid empty shards, so
    /// only monotone non-decreasing is required.
    starts: Vec<u32>,
    num_cells: u32,
}

impl ShardMap {
    pub fn from_ranges(ranges: &[Range<u32>], num_cells: u32) -> Self {
        assert!(!ranges.is_empty(), "need at least one shard range");
        assert_eq!(ranges[0].start, 0, "first range must start at cell 0");
        assert_eq!(
            ranges.last().unwrap().end,
            num_cells,
            "last range must end at num_cells"
        );
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        Self {
            starts: ranges.iter().map(|r| r.start).collect(),
            num_cells,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.starts.len()
    }

    /// The shard that owns `cell`.
    pub fn owner_of(&self, cell: CellId) -> usize {
        let idx = cell.index() as u32;
        debug_assert!(idx < self.num_cells, "cell out of range");
        self.starts.partition_point(|&s| s <= idx) - 1
    }

    /// The z-range shard `d` owns.
    pub fn range(&self, d: usize) -> Range<u32> {
        let start = self.starts[d];
        let end = self.starts.get(d + 1).copied().unwrap_or(self.num_cells);
        start..end
    }
}

/// One simulated device plus the mutable stores it owns.
pub struct ShardState {
    pub device: Device,
    pub resident: ResidentCellStore,
    pub topo: TopologyStore,
    /// Lifetime busy-ns at the start of the current epoch.
    busy_snapshot_ns: u64,
}

impl ShardState {
    fn new(device: Device, config: &GGridConfig) -> Self {
        let resident = ResidentCellStore::new(config.device_budget_bytes);
        let topo = TopologyStore::new(if config.topology_resident {
            config.device_budget_bytes
        } else {
            0
        });
        Self {
            device,
            resident,
            topo,
            busy_snapshot_ns: 0,
        }
    }

    /// Lifetime busy time of this device: kernel execution plus bus
    /// transfers (both simulated clocks are monotone).
    pub fn lifetime_busy_ns(&self) -> u64 {
        self.device.kernel_time().0 + self.device.ledger().total_time().0
    }

    /// Busy time accumulated since the last [`ShardSet::snapshot_busy`].
    pub fn epoch_busy_ns(&self) -> u64 {
        self.lifetime_busy_ns() - self.busy_snapshot_ns
    }
}

/// What one rebalance epoch moved.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// Shard the cells left.
    pub from: usize,
    /// Adjacent shard the cells joined.
    pub to: usize,
    /// Cells re-homed.
    pub cells_moved: u32,
    /// Dirt mass (per-cell dirtied counts) carried by the moved cells.
    pub dirt_moved: u64,
    /// Resident consolidated-list entries evicted off the old owner.
    pub resident_evicted: u64,
    /// Resident topology slices evicted off the old owner.
    pub topo_evicted: u64,
}

/// `D` devices with their stores and the cell → shard map.
pub struct ShardSet {
    shards: Vec<ShardState>,
    map: ShardMap,
    /// Per-cell clean-skip read tally (the replication signal, tallied by
    /// routed cleaning when `D > 1`; see `GGridConfig::replicate_threshold`).
    /// Atomic so cleaning can tally through a shared borrow while the
    /// owning shard is mutably borrowed.
    read_heat: Vec<AtomicU64>,
    /// Lifetime read-replica promotions.
    replica_installs: u64,
    /// Lifetime replica teardowns forced by writes or migrations (LRU
    /// evictions under budget pressure are counted as ordinary evictions).
    replica_invalidations: u64,
    /// Boundary cells the rebalancer declined to migrate because they were
    /// read-hot but write-cold.
    migrations_skipped_read_hot: u64,
}

impl ShardSet {
    /// Build `config.num_devices` shards over `grid`, splitting the z-order
    /// cell sequence into contiguous ranges weighted by per-cell record
    /// counts (the static proxy for object load before any update lands).
    /// Shard 0 wraps the caller's `device`; the rest clone its spec. Every
    /// device reserves the graph-grid mirror (§III-A), replicated per card.
    pub fn new(grid: &GraphGrid, config: &GGridConfig, device: Device) -> Self {
        let d = config.num_devices;
        assert!(
            (1..=MAX_DEVICES).contains(&d),
            "num_devices must be in 1..={MAX_DEVICES}"
        );
        let weights: Vec<u64> = grid
            .cell_ids()
            .map(|c| grid.cell(c).records.len() as u64 + 1)
            .collect();
        let ranges = roadnet::partition::weighted_contiguous_ranges(&weights, d);
        let map = ShardMap::from_ranges(&ranges, grid.num_cells() as u32);
        let spec = device.spec().clone();
        let mut devices = vec![device];
        for _ in 1..d {
            devices.push(Device::new(spec.clone()));
        }
        let mut shards = Vec::with_capacity(d);
        for mut dev in devices {
            dev.alloc(grid.grid_bytes())
                .expect("graph grid does not fit in device memory");
            shards.push(ShardState::new(dev, config));
        }
        let read_heat = (0..grid.num_cells()).map(|_| AtomicU64::new(0)).collect();
        Self {
            shards,
            map,
            read_heat,
            replica_installs: 0,
            replica_invalidations: 0,
            migrations_skipped_read_hot: 0,
        }
    }

    /// A single-shard set over `num_cells` cells wrapping `device` — the
    /// `D = 1` degenerate case used by unit tests that drive the query
    /// pipeline directly (no grid mirror is reserved here).
    pub fn single(device: Device, config: &GGridConfig, num_cells: usize) -> Self {
        let whole = std::iter::once(0..num_cells as u32).collect::<Vec<_>>();
        let map = ShardMap::from_ranges(&whole, num_cells as u32);
        Self {
            shards: vec![ShardState::new(device, config)],
            map,
            read_heat: (0..num_cells).map(|_| AtomicU64::new(0)).collect(),
            replica_installs: 0,
            replica_invalidations: 0,
            migrations_skipped_read_hot: 0,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard that owns `cell` (a query's *primary* shard is the owner
    /// of its own cell).
    pub fn owner_of(&self, cell: CellId) -> usize {
        self.map.owner_of(cell)
    }

    pub fn shard(&self, d: usize) -> &ShardState {
        &self.shards[d]
    }

    pub fn shard_mut(&mut self, d: usize) -> &mut ShardState {
        &mut self.shards[d]
    }

    /// Field-split borrow of shard `d`'s device and stores, for callers
    /// that need them simultaneously (the single-device kernel primitives).
    pub fn parts(&mut self, d: usize) -> (&mut Device, &mut ResidentCellStore, &mut TopologyStore) {
        let s = &mut self.shards[d];
        (&mut s.device, &mut s.resident, &mut s.topo)
    }

    /// Lifetime kernel launches summed over all devices.
    pub fn total_launches(&self) -> u64 {
        self.shards.iter().map(|s| s.device.launches()).sum()
    }

    /// Route one cleaning round: split `cells` by owner (preserving the
    /// caller's relative order within each owner), clean each owner's slice
    /// on its own device, and return the merged output next to the
    /// per-shard reports. Cells are disjoint across shards, so the merged
    /// [`CleanedObjects`] is identical to the single-device pass.
    pub fn clean_cells_routed(
        &mut self,
        lists: &CellLists,
        cells: &[CellId],
        config: &GGridConfig,
        now: Timestamp,
    ) -> (CleanedObjects, Vec<(usize, CleaningReport)>) {
        if self.shards.len() == 1 {
            let s = &mut self.shards[0];
            let (cleaned, rep) =
                clean_cells(&mut s.device, lists, &mut s.resident, cells, config, now);
            return (cleaned, vec![(0, rep)]);
        }
        let mut by_owner: Vec<Vec<CellId>> = vec![Vec::new(); self.shards.len()];
        for &c in cells {
            by_owner[self.map.owner_of(c)].push(c);
        }
        let mut merged = CleanedObjects::default();
        let mut reports = Vec::new();
        let heat = &self.read_heat;
        for (d, owned) in by_owner.into_iter().enumerate() {
            if owned.is_empty() {
                continue;
            }
            let s = &mut self.shards[d];
            let (cleaned, rep) = clean_cells_with_heat(
                &mut s.device,
                lists,
                &mut s.resident,
                &owned,
                config,
                now,
                Some(heat),
            );
            merged.extend(cleaned);
            reports.push((d, rep));
        }
        (merged, reports)
    }

    /// Scatter one pre-metered kernel round across owner devices: each
    /// `(shard, threads, ops)` slice is charged to its own device as one
    /// launch, concurrently on the modeled timeline — the round's critical
    /// path is the *max* over the returned per-shard times, not their sum.
    /// The sibling of [`Self::clean_cells_routed`] for the frontier-SDist
    /// phase: the caller meters the kernel body once against a
    /// [`gpu_sim::KernelCtx::detached`] context, tallies per-owner op
    /// slices at the per-vertex charge sites, and replays them here.
    pub fn launch_scattered(
        &mut self,
        groups: &[(usize, usize, OpCounts)],
    ) -> Vec<(usize, SimNanos)> {
        groups
            .iter()
            .map(|&(d, threads, ops)| {
                let rep = self.shards[d].device.launch_ops(threads, ops);
                (d, rep.time)
            })
            .collect()
    }

    /// Clean-skip read heat of `cell` (see `GGridConfig::replicate_threshold`).
    pub fn read_heat_of(&self, cell: CellId) -> u64 {
        self.read_heat[cell.index()].load(Ordering::Relaxed)
    }

    /// Count one served read of `cell`'s consolidated list toward its read
    /// heat. The routed clean-skip path tallies internally; this is for
    /// reads served by caches in front of it (the batch clean cache), which
    /// are exactly as "hot" a signal for replication as a skip.
    pub fn note_read(&self, cell: CellId) {
        self.read_heat[cell.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Halve every cell's read heat — called once per rebalance epoch so
    /// the replication signal tracks *recent* read traffic instead of
    /// lifetime totals (deterministic exponential decay).
    pub fn decay_read_heat(&mut self) {
        for h in &self.read_heat {
            let v = h.load(Ordering::Relaxed);
            if v > 0 {
                h.store(v / 2, Ordering::Relaxed);
            }
        }
    }

    /// Whether any shard currently hosts a read-replica of `cell`. Takes
    /// `&self` so the ingest path (which cannot mutate devices) can decide
    /// whether a write needs to queue a replica invalidation.
    pub fn has_replicas(&self, cell: CellId) -> bool {
        self.shards.iter().any(|s| s.resident.is_replica(cell))
    }

    /// Whether shard `host` holds a replica of `cell` that is valid against
    /// the cell's current `cleaned_epoch`. A stale replica is torn down on
    /// the spot (epoch check inside the store), so a `true` here means the
    /// replica's mirror is byte-identical to the owner's consolidated list.
    pub fn replica_valid(&mut self, host: usize, cell: CellId, cleaned_epoch: Option<u64>) -> bool {
        let s = &mut self.shards[host];
        s.resident.is_replica(cell)
            && s.resident
                .lookup(&mut s.device, cell, cleaned_epoch)
                .is_some()
    }

    /// Promote a read-replica of `cell` (owned elsewhere) onto shard
    /// `host`: installs the consolidated mirror under the host's budget LRU
    /// with replica tagging and charges the H2D copy to the host device.
    /// Returns the modeled transfer time, or `None` when the store declined
    /// (budget too small, empty list, residency disabled).
    pub fn promote_replica(
        &mut self,
        host: usize,
        cell: CellId,
        epoch: u64,
        messages: &[CachedMessage],
    ) -> Option<SimNanos> {
        debug_assert_ne!(host, self.map.owner_of(cell), "owner needs no replica");
        let s = &mut self.shards[host];
        if !s
            .resident
            .install_replica(&mut s.device, cell, epoch, messages)
        {
            return None;
        }
        self.replica_installs += 1;
        let bytes = messages.len() as u64 * CachedMessage::WIRE_BYTES;
        let s = &mut self.shards[host];
        Some(s.device.h2d(bytes))
    }

    /// Promote several cells onto `host` in one coalesced transfer: the
    /// consolidated lists ship together, paying the PCIe latency once for
    /// the whole batch instead of once per cell. Returns the bytes shipped
    /// (zero when nothing was installed — budget pressure or races).
    pub fn promote_replicas_coalesced(
        &mut self,
        host: usize,
        batch: &[(CellId, u64, &[CachedMessage])],
    ) -> u64 {
        let mut bytes = 0u64;
        for &(cell, epoch, messages) in batch {
            debug_assert_ne!(host, self.map.owner_of(cell), "owner needs no replica");
            let s = &mut self.shards[host];
            if s.resident
                .install_replica(&mut s.device, cell, epoch, messages)
            {
                self.replica_installs += 1;
                bytes += messages.len() as u64 * CachedMessage::WIRE_BYTES;
            }
        }
        if bytes > 0 {
            self.shards[host].device.h2d(bytes);
        }
        bytes
    }

    /// Model the read side of a routed candidate gather: a clean-skipped
    /// cell owned by a remote shard serves its consolidated list out of the
    /// owner's device-resident state, so the owner ships it — one coalesced
    /// D2H per owner covering every list it contributes to this ring.
    /// `channels[d]` is the caller's per-query streaming state: the first
    /// ring that reads from owner `d` pays the PCIe handshake, later rings
    /// stream on the open channel and pay wire time only. Cells for which
    /// `host` holds a valid replica are read locally instead (the saving
    /// read-hot promotion exists to buy). Returns `(replica hits, bytes
    /// shipped by owners)`.
    pub fn gather_remote_lists(
        &mut self,
        host: usize,
        skipped: &[CellId],
        lists: &CellLists,
        cleaned: &CleanedObjects,
        channels: &mut [bool],
    ) -> (u64, u64) {
        let mut per_owner = vec![0u64; self.shards.len()];
        let mut hits = 0u64;
        for &c in skipped {
            let d = self.map.owner_of(c);
            if d == host {
                continue;
            }
            let len = cleaned.get(&c).map_or(0, Vec::len) as u64;
            if len == 0 {
                continue; // an empty cell has nothing to ship
            }
            let epoch = lists.lock(c.index()).cleaned_epoch();
            if self.replica_valid(host, c, epoch) {
                hits += 1;
            } else {
                per_owner[d] += len * CachedMessage::WIRE_BYTES;
            }
        }
        let mut bytes = 0u64;
        for (d, b) in per_owner.into_iter().enumerate() {
            if b > 0 {
                if channels[d] {
                    self.shards[d].device.d2h_streamed(b);
                } else {
                    channels[d] = true;
                    self.shards[d].device.d2h(b);
                }
                bytes += b;
            }
        }
        (hits, bytes)
    }

    /// Tear down every read-replica of `cell` (the write-path coherence
    /// action: a dirtied cell's replicas must die before the next read).
    /// The owner's own resident entry is untouched — it revalidates through
    /// its epoch like always. Returns the replicas removed.
    pub fn invalidate_replicas(&mut self, cell: CellId) -> u64 {
        let mut removed = 0u64;
        for s in &mut self.shards {
            if s.resident.is_replica(cell) {
                s.resident.invalidate(&mut s.device, cell);
                removed += 1;
            }
        }
        self.replica_invalidations += removed;
        removed
    }

    /// Read-replicas currently live across all hosting devices.
    pub fn replicas_active(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.resident.replica_cells() as u64)
            .sum()
    }

    /// Lifetime replica promotions.
    pub fn replica_installs(&self) -> u64 {
        self.replica_installs
    }

    /// Lifetime write/migration-forced replica teardowns.
    pub fn replica_invalidations(&self) -> u64 {
        self.replica_invalidations
    }

    /// Boundary cells the rebalancer declined to migrate because they were
    /// read-hot but write-cold.
    pub fn migrations_skipped_read_hot(&self) -> u64 {
        self.migrations_skipped_read_hot
    }

    /// As [`Self::clean_cells_routed`] with the reports folded into one
    /// (the per-query accounting path, where stream-level overlap is not
    /// being modeled).
    pub fn clean_cells(
        &mut self,
        lists: &CellLists,
        cells: &[CellId],
        config: &GGridConfig,
        now: Timestamp,
    ) -> (CleanedObjects, CleaningReport) {
        let (merged, reports) = self.clean_cells_routed(lists, cells, config, now);
        let mut total = CleaningReport::default();
        for (_, rep) in &reports {
            total.merge(rep);
        }
        (merged, total)
    }

    /// Per-shard busy time since the last snapshot.
    pub fn epoch_busy_ns(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch_busy_ns()).collect()
    }

    /// Start a new busy-time epoch on every shard.
    pub fn snapshot_busy(&mut self) {
        for s in &mut self.shards {
            s.busy_snapshot_ns = s.lifetime_busy_ns();
        }
    }

    /// Epoch rebalancer: when the busiest shard's epoch busy time exceeds
    /// `threshold ×` the mean, migrate boundary cells from it toward the
    /// adjacent neighbor on the side carrying more of its dirt (ties go to
    /// the colder neighbor). Moves cells until the migrated dirt covers
    /// half the dirt imbalance against that neighbor, capped at half the
    /// hot shard's range. `cell_dirt[i]` is the caller's per-cell load
    /// signal (dirtied counts this epoch). Resets the busy epoch either
    /// way, so the next decision sees fresh deltas.
    ///
    /// `replicate_threshold > 0` makes the migrator *replication-aware*: a
    /// boundary cell that is read-hot (clean-skip heat at or above the
    /// threshold) but write-cold (zero dirt this epoch) stops the boundary
    /// run — replicating such a cell onto readers is strictly cheaper than
    /// re-homing it, since it carries no dirt to shed and migration would
    /// evict the very state the readers keep hitting. Pass `0` to disable
    /// (the pre-replication behavior).
    pub fn maybe_rebalance(
        &mut self,
        cell_dirt: &[u64],
        threshold: f64,
        replicate_threshold: u64,
    ) -> Option<MigrationReport> {
        let d = self.shards.len();
        let result = if d < 2 {
            None
        } else {
            self.try_migrate(cell_dirt, threshold, replicate_threshold)
        };
        self.snapshot_busy();
        result
    }

    /// Whether the rebalancer should leave `cell` where it is: read-hot
    /// (heat at or above the replication threshold), write-cold (no dirt
    /// this epoch), and *actually replicated* — the profile replication
    /// serves better than migration. The replica requirement keeps the
    /// skip surgical: ring expansion heats every cell a wide query sweeps,
    /// but only cells whose consolidated lists readers promoted are being
    /// served off-owner, and migrating one of those would evict the very
    /// state its readers keep hitting while doing nothing for the cells
    /// that merely sit inside large rings.
    fn read_hot_write_cold(&self, cell_dirt: &[u64], i: u32, replicate_threshold: u64) -> bool {
        replicate_threshold > 0
            && cell_dirt[i as usize] == 0
            && self.read_heat[i as usize].load(Ordering::Relaxed) >= replicate_threshold
            && self.has_replicas(CellId(i))
    }

    fn try_migrate(
        &mut self,
        cell_dirt: &[u64],
        threshold: f64,
        replicate_threshold: u64,
    ) -> Option<MigrationReport> {
        let busy = self.epoch_busy_ns();
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return None;
        }
        let mean = total as f64 / busy.len() as f64;
        let hot = (0..busy.len()).max_by_key(|&i| busy[i])?;
        if (busy[hot] as f64) <= threshold * mean {
            return None;
        }
        let range = self.map.range(hot);
        if range.len() < 2 {
            return None; // must keep >= 1 cell
        }
        let dirt_in =
            |r: Range<u32>| -> u64 { cell_dirt[r.start as usize..r.end as usize].iter().sum() };
        let hot_dirt = dirt_in(range.clone());

        // Pick the migration side: the adjacent half of the hot range with
        // more dirt sheds load faster; ties go to the colder neighbor.
        let mid = range.start + range.len() as u32 / 2;
        let low_dirt = dirt_in(range.start..mid);
        let high_dirt = dirt_in(mid..range.end);
        let left_ok = hot > 0;
        let right_ok = hot + 1 < self.shards.len();
        let to = match (left_ok, right_ok) {
            (true, false) => hot - 1,
            (false, true) => hot + 1,
            (true, true) => {
                if low_dirt != high_dirt {
                    if low_dirt > high_dirt {
                        hot - 1
                    } else {
                        hot + 1
                    }
                } else if busy[hot - 1] <= busy[hot + 1] {
                    hot - 1
                } else {
                    hot + 1
                }
            }
            (false, false) => return None,
        };

        // Move cells from the shared boundary inward until the migrated
        // dirt covers half the imbalance, capped at half the hot range.
        let neighbor_dirt = dirt_in(self.map.range(to));
        let target = hot_dirt.saturating_sub(neighbor_dirt) / 2;
        let cap = (range.len() as u32 / 2).max(1);
        let mut moved_cells: Vec<u32> = Vec::new();
        let mut dirt_moved = 0u64;
        if to < hot {
            // Shed the low end of the hot range to the left neighbor.
            for i in range.clone() {
                if moved_cells.len() as u32 >= cap {
                    break;
                }
                if self.read_hot_write_cold(cell_dirt, i, replicate_threshold) {
                    // Truncating here keeps the moved run z-contiguous with
                    // the boundary — cells past the read-hot cell stay put.
                    self.migrations_skipped_read_hot += 1;
                    break;
                }
                moved_cells.push(i);
                dirt_moved += cell_dirt[i as usize];
                if dirt_moved >= target && !moved_cells.is_empty() {
                    break;
                }
            }
        } else {
            // Shed the high end to the right neighbor.
            for i in range.clone().rev() {
                if moved_cells.len() as u32 >= cap {
                    break;
                }
                if self.read_hot_write_cold(cell_dirt, i, replicate_threshold) {
                    self.migrations_skipped_read_hot += 1;
                    break;
                }
                moved_cells.push(i);
                dirt_moved += cell_dirt[i as usize];
                if dirt_moved >= target {
                    break;
                }
            }
        }
        if moved_cells.is_empty() {
            return None;
        }

        // Evict the moved cells' device state off the old owner; the next
        // clean re-homes each cell on the new device (the pending dirt in
        // the host-side lists replays there with no extra protocol).
        let mut resident_evicted = 0u64;
        let mut topo_evicted = 0u64;
        {
            let s = &mut self.shards[hot];
            for &i in &moved_cells {
                let cell = CellId(i);
                if s.resident.force_evict(&mut s.device, cell) {
                    resident_evicted += 1;
                }
                if s.topo.force_evict(&mut s.device, cell) {
                    topo_evicted += 1;
                }
            }
        }
        let n = moved_cells.len() as u32;
        if to < hot {
            self.map.starts[hot] += n;
        } else {
            self.map.starts[hot + 1] -= n;
        }
        // A re-homed cell's replicas were mirrors of the *old* owner's
        // consolidated state; the new owner rebuilds from the host lists,
        // so stale replicas must die with the migration.
        for &i in &moved_cells {
            self.invalidate_replicas(CellId(i));
        }

        Some(MigrationReport {
            from: hot,
            to,
            cells_moved: n,
            dirt_moved,
            resident_evicted,
            topo_evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn map4() -> ShardMap {
        ShardMap::from_ranges(&[0..4, 4..8, 8..12, 12..16], 16)
    }

    #[test]
    fn owner_of_routes_by_range() {
        let m = map4();
        assert_eq!(m.num_shards(), 4);
        assert_eq!(m.owner_of(CellId(0)), 0);
        assert_eq!(m.owner_of(CellId(3)), 0);
        assert_eq!(m.owner_of(CellId(4)), 1);
        assert_eq!(m.owner_of(CellId(11)), 2);
        assert_eq!(m.owner_of(CellId(15)), 3);
        assert_eq!(m.range(1), 4..8);
        assert_eq!(m.range(3), 12..16);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gapped_ranges_rejected() {
        ShardMap::from_ranges(&[0..4, 5..16], 16);
    }

    fn set(d: usize) -> ShardSet {
        let config = GGridConfig {
            num_devices: d,
            ..Default::default()
        };
        let mut shards = Vec::new();
        for _ in 0..d {
            shards.push(ShardState::new(
                Device::new(DeviceSpec::test_tiny()),
                &config,
            ));
        }
        let per = 16 / d as u32;
        let ranges: Vec<Range<u32>> = (0..d as u32)
            .map(|i| {
                (i * per)..if i as usize + 1 == d {
                    16
                } else {
                    (i + 1) * per
                }
            })
            .collect();
        ShardSet {
            shards,
            map: ShardMap::from_ranges(&ranges, 16),
            read_heat: (0..16).map(|_| AtomicU64::new(0)).collect(),
            replica_installs: 0,
            replica_invalidations: 0,
            migrations_skipped_read_hot: 0,
        }
    }

    #[test]
    fn rebalance_noop_when_balanced() {
        let mut s = set(4);
        let dirt = vec![1u64; 16];
        // No busy time at all: nothing to rebalance.
        assert!(s.maybe_rebalance(&dirt, 1.25, 0).is_none());
    }

    #[test]
    fn rebalance_moves_boundary_toward_cold_neighbor() {
        let mut s = set(4);
        // Shard 2 (cells 8..12) is hot: give it kernel time.
        s.shards[2].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        let mut dirt = vec![0u64; 16];
        dirt[8..12].fill(100); // uniform dirt inside the hot shard
        let rep = s
            .maybe_rebalance(&dirt, 1.25, 0)
            .expect("skew must trigger");
        assert_eq!(rep.from, 2);
        assert!(rep.to == 1 || rep.to == 3);
        assert!(rep.cells_moved >= 1 && rep.cells_moved <= 2);
        // The map moved the boundary: the re-homed cell now belongs to `to`.
        let moved_cell = if rep.to == 1 { CellId(8) } else { CellId(11) };
        assert_eq!(s.owner_of(moved_cell), rep.to);
        // Epoch reset: immediately after, the same skew no longer fires.
        assert!(s.maybe_rebalance(&dirt, 1.25, 0).is_none());
    }

    #[test]
    fn rebalance_prefers_dirtier_side() {
        let mut s = set(4);
        s.shards[1].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        let mut dirt = vec![0u64; 16];
        dirt[7] = 500; // all the hot shard's dirt sits at its high end
        let rep = s
            .maybe_rebalance(&dirt, 1.25, 0)
            .expect("skew must trigger");
        assert_eq!((rep.from, rep.to), (1, 2));
        assert_eq!(s.owner_of(CellId(7)), 2);
        assert!(rep.dirt_moved >= 250, "moved dirt must cover the imbalance");
    }

    #[test]
    fn rebalance_keeps_at_least_one_cell() {
        let config = GGridConfig::default();
        let shards = vec![
            ShardState::new(Device::new(DeviceSpec::test_tiny()), &config),
            ShardState::new(Device::new(DeviceSpec::test_tiny()), &config),
        ];
        let mut s = ShardSet {
            shards,
            map: ShardMap::from_ranges(&[0..1, 1..2], 2),
            read_heat: (0..2).map(|_| AtomicU64::new(0)).collect(),
            replica_installs: 0,
            replica_invalidations: 0,
            migrations_skipped_read_hot: 0,
        };
        s.shards[0].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        assert!(s.maybe_rebalance(&[9, 9], 1.25, 0).is_none());
        assert_eq!(s.map.range(0), 0..1);
    }

    #[test]
    fn read_hot_write_cold_boundary_cell_blocks_migration() {
        // Same skew as rebalance_prefers_dirtier_side: shard 1 is hot and
        // all its dirt sits at cell 7, so the boundary run toward shard 2
        // starts at cell 7. Mark cell 7 read-hot and write-cold — wait, it
        // carries dirt, so instead pin the heat on it with zero dirt and
        // put the dirt one cell inward.
        use crate::message::ObjectId;
        use roadnet::{EdgeId, EdgePosition};
        let msgs = vec![CachedMessage::update(
            ObjectId(7),
            EdgePosition::new(EdgeId(0), 1),
            Timestamp(1),
        )];
        let mut s = set(4);
        s.shards[1].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        let mut dirt = vec![0u64; 16];
        dirt[6] = 500; // hot shard's dirt sits just inside the boundary
        s.read_heat[7].store(50, Ordering::Relaxed); // boundary cell: hot reads, no writes
        s.promote_replica(2, CellId(7), 1, &msgs).expect("install"); // readers hold it
                                                                     // With replication disabled the run would shed cell 7 (and 6)
                                                                     // rightward; with it enabled, cell 7 truncates the run immediately
                                                                     // and nothing moves in that direction.
        let rep = s.maybe_rebalance(&dirt, 1.25, 4);
        assert_eq!(s.migrations_skipped_read_hot(), 1, "skip must be counted");
        if let Some(rep) = rep {
            // If a migration still happened it must have gone the other way
            // (left), never through the read-hot boundary cell.
            assert_eq!(rep.to, 0);
            assert_eq!(s.owner_of(CellId(7)), 1, "read-hot cell stays home");
        }
        // Control: identical setup with replication off migrates cell 7.
        let mut c = set(4);
        c.shards[1].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        c.read_heat[7].store(50, Ordering::Relaxed);
        let rep = c.maybe_rebalance(&dirt, 1.25, 0).expect("control migrates");
        assert_eq!((rep.from, rep.to), (1, 2));
        assert_eq!(c.owner_of(CellId(7)), 2);
        assert_eq!(c.migrations_skipped_read_hot(), 0);
        // Heat alone, with no replica installed, must not block migration:
        // ring expansion heats every swept cell, and freezing the
        // rebalancer over all of them would be worse than either option.
        let mut n = set(4);
        n.shards[1].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        n.read_heat[7].store(50, Ordering::Relaxed);
        let rep = n
            .maybe_rebalance(&dirt, 1.25, 4)
            .expect("unreplicated migrates");
        assert_eq!((rep.from, rep.to), (1, 2));
        assert_eq!(n.migrations_skipped_read_hot(), 0);
    }

    #[test]
    fn launch_scattered_charges_each_owner_device() {
        let mut s = set(4);
        let before: Vec<u64> = s.shards.iter().map(|sh| sh.device.launches()).collect();
        let ops = OpCounts {
            alu: 10_000,
            global_read_bytes: 4_096,
            ..Default::default()
        };
        let times = s.launch_scattered(&[(0, 64, ops), (2, 32, ops), (3, 16, ops)]);
        assert_eq!(times.len(), 3);
        for &(d, t) in &times {
            assert!(t.0 > 0, "shard {d} must accrue modeled time");
        }
        for (d, sh) in s.shards.iter().enumerate() {
            let expect = before[d] + u64::from(d != 1);
            assert_eq!(sh.device.launches(), expect, "shard {d} launch count");
        }
        // Devices 0/2/3 ran concurrently: each device's clock advanced by
        // its own slice only, so the round's critical path is the max.
        let max = times.iter().map(|&(_, t)| t.0).max().unwrap();
        let sum: u64 = times.iter().map(|&(_, t)| t.0).sum();
        assert!(max < sum, "scatter must beat the serial sum");
    }

    #[test]
    fn replica_lifecycle_promote_hit_invalidate() {
        use crate::message::ObjectId;
        use roadnet::{EdgeId, EdgePosition};
        let mut s = set(2);
        let cell = CellId(2); // owned by shard 0
        assert_eq!(s.owner_of(cell), 0);
        let msgs = vec![CachedMessage::update(
            ObjectId(7),
            EdgePosition::new(EdgeId(0), 1),
            Timestamp(1),
        )];
        assert!(!s.has_replicas(cell));
        let t = s.promote_replica(1, cell, 5, &msgs).expect("install fits");
        assert!(t.0 > 0, "H2D copy must cost modeled time");
        assert!(s.has_replicas(cell));
        assert_eq!(s.replicas_active(), 1);
        assert!(s.replica_valid(1, cell, Some(5)));
        // A write bumps the epoch: the replica is stale and must not serve.
        assert!(!s.replica_valid(1, cell, Some(6)));
        assert!(!s.has_replicas(cell), "stale replica torn down on check");
        // Reinstall, then explicit invalidation (the dirtied-cell path).
        s.promote_replica(1, cell, 6, &msgs).expect("reinstall");
        assert_eq!(s.invalidate_replicas(cell), 1);
        assert!(!s.has_replicas(cell));
        assert_eq!(s.replica_installs(), 2);
        assert_eq!(s.replica_invalidations(), 1); // only the explicit teardown
    }
}
