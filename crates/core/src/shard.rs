//! Multi-device sharding: z-order cell partitioning, per-shard residency,
//! routed cleaning, and busy-time rebalancing.
//!
//! The G-Grid stores cells in z-order (§III-A), so a contiguous range of
//! cell indices is a spatially coherent tile — exactly the unit a
//! multi-device deployment wants to partition. A [`ShardSet`] owns `D`
//! simulated devices; shard `d` owns the cells in `map.range(d)` and keeps
//! **its own** residency and topology LRUs (the per-device
//! `device_budget_bytes`), while the immutable graph-grid mirror is
//! replicated on every device (queries route by data, not by topology).
//!
//! **Routing.** Mutable per-cell state (message lists, consolidated
//! residency) is partitioned: a cleaning round splits its cell set by owner
//! and drives each owner's device independently ([`ShardSet::clean_cells`]).
//! Per-cell cleaning is deterministic and independent of the batch
//! composition, so the merged output is byte-identical to the single-device
//! pass — the correctness argument for answers being independent of `D`.
//! Query-wide kernels (`GPU_SDist`, selection, unresolved) run on the
//! query's *primary* shard: the owner of the query's cell.
//!
//! **Rebalancing.** Contiguous ranges make migration cheap: moving the
//! boundary of two adjacent shards re-homes a z-run of cells. The epoch
//! rebalancer ([`ShardSet::maybe_rebalance`]) watches per-shard busy time
//! (kernel + transfer deltas since the last epoch), and when the hottest
//! shard exceeds `rebalance_threshold ×` the mean it migrates boundary
//! cells toward the neighbor — evicting the moved cells' resident state on
//! the old owner, so the next clean re-homes them on the new device (the
//! pending dirt in the host-side message lists replays there naturally).

use std::ops::Range;

use gpu_sim::Device;

use crate::cleaning::{clean_cells, CleanedObjects, CleaningReport};
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::message::Timestamp;
use crate::message_list::CellLists;
use crate::residency::{ResidentCellStore, TopologyStore};

/// Hard cap on `num_devices`, sized so per-shard counter arrays stay
/// `Copy` (see [`crate::stats::ServerCounters`]).
pub const MAX_DEVICES: usize = 16;

/// Cell-index → shard mapping: shard `d` owns the contiguous z-range
/// `starts[d] .. starts[d + 1]` (the last shard runs to `num_cells`).
#[derive(Clone, Debug)]
pub struct ShardMap {
    /// `starts[0] == 0`; strictly increasing would forbid empty shards, so
    /// only monotone non-decreasing is required.
    starts: Vec<u32>,
    num_cells: u32,
}

impl ShardMap {
    pub fn from_ranges(ranges: &[Range<u32>], num_cells: u32) -> Self {
        assert!(!ranges.is_empty(), "need at least one shard range");
        assert_eq!(ranges[0].start, 0, "first range must start at cell 0");
        assert_eq!(
            ranges.last().unwrap().end,
            num_cells,
            "last range must end at num_cells"
        );
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must be contiguous");
        }
        Self {
            starts: ranges.iter().map(|r| r.start).collect(),
            num_cells,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.starts.len()
    }

    /// The shard that owns `cell`.
    pub fn owner_of(&self, cell: CellId) -> usize {
        let idx = cell.index() as u32;
        debug_assert!(idx < self.num_cells, "cell out of range");
        self.starts.partition_point(|&s| s <= idx) - 1
    }

    /// The z-range shard `d` owns.
    pub fn range(&self, d: usize) -> Range<u32> {
        let start = self.starts[d];
        let end = self.starts.get(d + 1).copied().unwrap_or(self.num_cells);
        start..end
    }
}

/// One simulated device plus the mutable stores it owns.
pub struct ShardState {
    pub device: Device,
    pub resident: ResidentCellStore,
    pub topo: TopologyStore,
    /// Lifetime busy-ns at the start of the current epoch.
    busy_snapshot_ns: u64,
}

impl ShardState {
    fn new(device: Device, config: &GGridConfig) -> Self {
        let resident = ResidentCellStore::new(config.device_budget_bytes);
        let topo = TopologyStore::new(if config.topology_resident {
            config.device_budget_bytes
        } else {
            0
        });
        Self {
            device,
            resident,
            topo,
            busy_snapshot_ns: 0,
        }
    }

    /// Lifetime busy time of this device: kernel execution plus bus
    /// transfers (both simulated clocks are monotone).
    pub fn lifetime_busy_ns(&self) -> u64 {
        self.device.kernel_time().0 + self.device.ledger().total_time().0
    }

    /// Busy time accumulated since the last [`ShardSet::snapshot_busy`].
    pub fn epoch_busy_ns(&self) -> u64 {
        self.lifetime_busy_ns() - self.busy_snapshot_ns
    }
}

/// What one rebalance epoch moved.
#[derive(Clone, Copy, Debug)]
pub struct MigrationReport {
    /// Shard the cells left.
    pub from: usize,
    /// Adjacent shard the cells joined.
    pub to: usize,
    /// Cells re-homed.
    pub cells_moved: u32,
    /// Dirt mass (per-cell dirtied counts) carried by the moved cells.
    pub dirt_moved: u64,
    /// Resident consolidated-list entries evicted off the old owner.
    pub resident_evicted: u64,
    /// Resident topology slices evicted off the old owner.
    pub topo_evicted: u64,
}

/// `D` devices with their stores and the cell → shard map.
pub struct ShardSet {
    shards: Vec<ShardState>,
    map: ShardMap,
}

impl ShardSet {
    /// Build `config.num_devices` shards over `grid`, splitting the z-order
    /// cell sequence into contiguous ranges weighted by per-cell record
    /// counts (the static proxy for object load before any update lands).
    /// Shard 0 wraps the caller's `device`; the rest clone its spec. Every
    /// device reserves the graph-grid mirror (§III-A), replicated per card.
    pub fn new(grid: &GraphGrid, config: &GGridConfig, device: Device) -> Self {
        let d = config.num_devices;
        assert!(
            (1..=MAX_DEVICES).contains(&d),
            "num_devices must be in 1..={MAX_DEVICES}"
        );
        let weights: Vec<u64> = grid
            .cell_ids()
            .map(|c| grid.cell(c).records.len() as u64 + 1)
            .collect();
        let ranges = roadnet::partition::weighted_contiguous_ranges(&weights, d);
        let map = ShardMap::from_ranges(&ranges, grid.num_cells() as u32);
        let spec = device.spec().clone();
        let mut devices = vec![device];
        for _ in 1..d {
            devices.push(Device::new(spec.clone()));
        }
        let mut shards = Vec::with_capacity(d);
        for mut dev in devices {
            dev.alloc(grid.grid_bytes())
                .expect("graph grid does not fit in device memory");
            shards.push(ShardState::new(dev, config));
        }
        Self { shards, map }
    }

    /// A single-shard set over `num_cells` cells wrapping `device` — the
    /// `D = 1` degenerate case used by unit tests that drive the query
    /// pipeline directly (no grid mirror is reserved here).
    pub fn single(device: Device, config: &GGridConfig, num_cells: usize) -> Self {
        let whole = std::iter::once(0..num_cells as u32).collect::<Vec<_>>();
        let map = ShardMap::from_ranges(&whole, num_cells as u32);
        Self {
            shards: vec![ShardState::new(device, config)],
            map,
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard that owns `cell` (a query's *primary* shard is the owner
    /// of its own cell).
    pub fn owner_of(&self, cell: CellId) -> usize {
        self.map.owner_of(cell)
    }

    pub fn shard(&self, d: usize) -> &ShardState {
        &self.shards[d]
    }

    pub fn shard_mut(&mut self, d: usize) -> &mut ShardState {
        &mut self.shards[d]
    }

    /// Field-split borrow of shard `d`'s device and stores, for callers
    /// that need them simultaneously (the single-device kernel primitives).
    pub fn parts(&mut self, d: usize) -> (&mut Device, &mut ResidentCellStore, &mut TopologyStore) {
        let s = &mut self.shards[d];
        (&mut s.device, &mut s.resident, &mut s.topo)
    }

    /// Lifetime kernel launches summed over all devices.
    pub fn total_launches(&self) -> u64 {
        self.shards.iter().map(|s| s.device.launches()).sum()
    }

    /// Route one cleaning round: split `cells` by owner (preserving the
    /// caller's relative order within each owner), clean each owner's slice
    /// on its own device, and return the merged output next to the
    /// per-shard reports. Cells are disjoint across shards, so the merged
    /// [`CleanedObjects`] is identical to the single-device pass.
    pub fn clean_cells_routed(
        &mut self,
        lists: &CellLists,
        cells: &[CellId],
        config: &GGridConfig,
        now: Timestamp,
    ) -> (CleanedObjects, Vec<(usize, CleaningReport)>) {
        if self.shards.len() == 1 {
            let s = &mut self.shards[0];
            let (cleaned, rep) =
                clean_cells(&mut s.device, lists, &mut s.resident, cells, config, now);
            return (cleaned, vec![(0, rep)]);
        }
        let mut by_owner: Vec<Vec<CellId>> = vec![Vec::new(); self.shards.len()];
        for &c in cells {
            by_owner[self.map.owner_of(c)].push(c);
        }
        let mut merged = CleanedObjects::default();
        let mut reports = Vec::new();
        for (d, owned) in by_owner.into_iter().enumerate() {
            if owned.is_empty() {
                continue;
            }
            let s = &mut self.shards[d];
            let (cleaned, rep) =
                clean_cells(&mut s.device, lists, &mut s.resident, &owned, config, now);
            merged.extend(cleaned);
            reports.push((d, rep));
        }
        (merged, reports)
    }

    /// As [`Self::clean_cells_routed`] with the reports folded into one
    /// (the per-query accounting path, where stream-level overlap is not
    /// being modeled).
    pub fn clean_cells(
        &mut self,
        lists: &CellLists,
        cells: &[CellId],
        config: &GGridConfig,
        now: Timestamp,
    ) -> (CleanedObjects, CleaningReport) {
        let (merged, reports) = self.clean_cells_routed(lists, cells, config, now);
        let mut total = CleaningReport::default();
        for (_, rep) in &reports {
            total.merge(rep);
        }
        (merged, total)
    }

    /// Per-shard busy time since the last snapshot.
    pub fn epoch_busy_ns(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.epoch_busy_ns()).collect()
    }

    /// Start a new busy-time epoch on every shard.
    pub fn snapshot_busy(&mut self) {
        for s in &mut self.shards {
            s.busy_snapshot_ns = s.lifetime_busy_ns();
        }
    }

    /// Epoch rebalancer: when the busiest shard's epoch busy time exceeds
    /// `threshold ×` the mean, migrate boundary cells from it toward the
    /// adjacent neighbor on the side carrying more of its dirt (ties go to
    /// the colder neighbor). Moves cells until the migrated dirt covers
    /// half the dirt imbalance against that neighbor, capped at half the
    /// hot shard's range. `cell_dirt[i]` is the caller's per-cell load
    /// signal (dirtied counts this epoch). Resets the busy epoch either
    /// way, so the next decision sees fresh deltas.
    pub fn maybe_rebalance(
        &mut self,
        cell_dirt: &[u64],
        threshold: f64,
    ) -> Option<MigrationReport> {
        let d = self.shards.len();
        let result = if d < 2 {
            None
        } else {
            self.try_migrate(cell_dirt, threshold)
        };
        self.snapshot_busy();
        result
    }

    fn try_migrate(&mut self, cell_dirt: &[u64], threshold: f64) -> Option<MigrationReport> {
        let busy = self.epoch_busy_ns();
        let total: u64 = busy.iter().sum();
        if total == 0 {
            return None;
        }
        let mean = total as f64 / busy.len() as f64;
        let hot = (0..busy.len()).max_by_key(|&i| busy[i])?;
        if (busy[hot] as f64) <= threshold * mean {
            return None;
        }
        let range = self.map.range(hot);
        if range.len() < 2 {
            return None; // must keep >= 1 cell
        }
        let dirt_in =
            |r: Range<u32>| -> u64 { cell_dirt[r.start as usize..r.end as usize].iter().sum() };
        let hot_dirt = dirt_in(range.clone());

        // Pick the migration side: the adjacent half of the hot range with
        // more dirt sheds load faster; ties go to the colder neighbor.
        let mid = range.start + range.len() as u32 / 2;
        let low_dirt = dirt_in(range.start..mid);
        let high_dirt = dirt_in(mid..range.end);
        let left_ok = hot > 0;
        let right_ok = hot + 1 < self.shards.len();
        let to = match (left_ok, right_ok) {
            (true, false) => hot - 1,
            (false, true) => hot + 1,
            (true, true) => {
                if low_dirt != high_dirt {
                    if low_dirt > high_dirt {
                        hot - 1
                    } else {
                        hot + 1
                    }
                } else if busy[hot - 1] <= busy[hot + 1] {
                    hot - 1
                } else {
                    hot + 1
                }
            }
            (false, false) => return None,
        };

        // Move cells from the shared boundary inward until the migrated
        // dirt covers half the imbalance, capped at half the hot range.
        let neighbor_dirt = dirt_in(self.map.range(to));
        let target = hot_dirt.saturating_sub(neighbor_dirt) / 2;
        let cap = (range.len() as u32 / 2).max(1);
        let mut moved_cells: Vec<u32> = Vec::new();
        let mut dirt_moved = 0u64;
        if to < hot {
            // Shed the low end of the hot range to the left neighbor.
            for i in range.clone() {
                if moved_cells.len() as u32 >= cap {
                    break;
                }
                moved_cells.push(i);
                dirt_moved += cell_dirt[i as usize];
                if dirt_moved >= target && !moved_cells.is_empty() {
                    break;
                }
            }
        } else {
            // Shed the high end to the right neighbor.
            for i in range.clone().rev() {
                if moved_cells.len() as u32 >= cap {
                    break;
                }
                moved_cells.push(i);
                dirt_moved += cell_dirt[i as usize];
                if dirt_moved >= target {
                    break;
                }
            }
        }
        if moved_cells.is_empty() {
            return None;
        }

        // Evict the moved cells' device state off the old owner; the next
        // clean re-homes each cell on the new device (the pending dirt in
        // the host-side lists replays there with no extra protocol).
        let mut resident_evicted = 0u64;
        let mut topo_evicted = 0u64;
        {
            let s = &mut self.shards[hot];
            for &i in &moved_cells {
                let cell = CellId(i);
                if s.resident.force_evict(&mut s.device, cell) {
                    resident_evicted += 1;
                }
                if s.topo.force_evict(&mut s.device, cell) {
                    topo_evicted += 1;
                }
            }
        }
        let n = moved_cells.len() as u32;
        if to < hot {
            self.map.starts[hot] += n;
        } else {
            self.map.starts[hot + 1] -= n;
        }

        Some(MigrationReport {
            from: hot,
            to,
            cells_moved: n,
            dirt_moved,
            resident_evicted,
            topo_evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn map4() -> ShardMap {
        ShardMap::from_ranges(&[0..4, 4..8, 8..12, 12..16], 16)
    }

    #[test]
    fn owner_of_routes_by_range() {
        let m = map4();
        assert_eq!(m.num_shards(), 4);
        assert_eq!(m.owner_of(CellId(0)), 0);
        assert_eq!(m.owner_of(CellId(3)), 0);
        assert_eq!(m.owner_of(CellId(4)), 1);
        assert_eq!(m.owner_of(CellId(11)), 2);
        assert_eq!(m.owner_of(CellId(15)), 3);
        assert_eq!(m.range(1), 4..8);
        assert_eq!(m.range(3), 12..16);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn gapped_ranges_rejected() {
        ShardMap::from_ranges(&[0..4, 5..16], 16);
    }

    fn set(d: usize) -> ShardSet {
        let config = GGridConfig {
            num_devices: d,
            ..Default::default()
        };
        let mut shards = Vec::new();
        for _ in 0..d {
            shards.push(ShardState::new(
                Device::new(DeviceSpec::test_tiny()),
                &config,
            ));
        }
        let per = 16 / d as u32;
        let ranges: Vec<Range<u32>> = (0..d as u32)
            .map(|i| {
                (i * per)..if i as usize + 1 == d {
                    16
                } else {
                    (i + 1) * per
                }
            })
            .collect();
        ShardSet {
            shards,
            map: ShardMap::from_ranges(&ranges, 16),
        }
    }

    #[test]
    fn rebalance_noop_when_balanced() {
        let mut s = set(4);
        let dirt = vec![1u64; 16];
        // No busy time at all: nothing to rebalance.
        assert!(s.maybe_rebalance(&dirt, 1.25).is_none());
    }

    #[test]
    fn rebalance_moves_boundary_toward_cold_neighbor() {
        let mut s = set(4);
        // Shard 2 (cells 8..12) is hot: give it kernel time.
        s.shards[2].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        let mut dirt = vec![0u64; 16];
        dirt[8..12].fill(100); // uniform dirt inside the hot shard
        let rep = s.maybe_rebalance(&dirt, 1.25).expect("skew must trigger");
        assert_eq!(rep.from, 2);
        assert!(rep.to == 1 || rep.to == 3);
        assert!(rep.cells_moved >= 1 && rep.cells_moved <= 2);
        // The map moved the boundary: the re-homed cell now belongs to `to`.
        let moved_cell = if rep.to == 1 { CellId(8) } else { CellId(11) };
        assert_eq!(s.owner_of(moved_cell), rep.to);
        // Epoch reset: immediately after, the same skew no longer fires.
        assert!(s.maybe_rebalance(&dirt, 1.25).is_none());
    }

    #[test]
    fn rebalance_prefers_dirtier_side() {
        let mut s = set(4);
        s.shards[1].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        let mut dirt = vec![0u64; 16];
        dirt[7] = 500; // all the hot shard's dirt sits at its high end
        let rep = s.maybe_rebalance(&dirt, 1.25).expect("skew must trigger");
        assert_eq!((rep.from, rep.to), (1, 2));
        assert_eq!(s.owner_of(CellId(7)), 2);
        assert!(rep.dirt_moved >= 250, "moved dirt must cover the imbalance");
    }

    #[test]
    fn rebalance_keeps_at_least_one_cell() {
        let config = GGridConfig::default();
        let shards = vec![
            ShardState::new(Device::new(DeviceSpec::test_tiny()), &config),
            ShardState::new(Device::new(DeviceSpec::test_tiny()), &config),
        ];
        let mut s = ShardSet {
            shards,
            map: ShardMap::from_ranges(&[0..1, 1..2], 2),
        };
        s.shards[0].device.launch(32, |ctx| {
            ctx.charge_alu_all(1_000_000);
        });
        assert!(s.maybe_rebalance(&[9, 9], 1.25).is_none());
        assert_eq!(s.map.range(0), 0..1);
    }
}
