//! Index integrity checking.
//!
//! [`GGridServer::validate`](crate::server::GGridServer::validate) audits
//! the cross-structure invariants that Algorithms 1–2 maintain. Tests call
//! it after every interesting state transition; operators can call it in
//! production debug builds after incidents.
//!
//! Invariants checked:
//!
//! 1. **Grid**: every vertex lies in exactly one cell within capacity; the
//!    inverted edge index agrees with the vertex→cell map.
//! 2. **Object table ↔ message lists**: every live object-table entry has a
//!    cached message in the cell the table claims (unless it expired), and
//!    the newest non-tombstone message for the object across all lists
//!    matches the table's position.
//! 3. **Message lists**: bucket occupancy within δᵇ and bucket timestamps
//!    consistent with their contents.

use std::fmt;

use crate::grid::CellId;
use crate::message::{ObjectId, Timestamp};

/// A violated invariant found by [`crate::server::GGridServer::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    VertexCellMismatch {
        vertex: u32,
    },
    CellOverCapacity {
        cell: CellId,
        vertices: usize,
        capacity: usize,
    },
    InvertedIndexMismatch {
        edge: u32,
    },
    BucketOverCapacity {
        cell: CellId,
        len: usize,
        capacity: usize,
    },
    BucketTimestampWrong {
        cell: CellId,
    },
    ObjectMissingFromCell {
        object: ObjectId,
        cell: CellId,
    },
    ObjectPositionStale {
        object: ObjectId,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl crate::server::GGridServer {
    /// Audit the index invariants; returns every violation found (empty =
    /// healthy). `now` is used for expiry reasoning.
    pub fn validate(&self, now: Timestamp) -> Vec<Violation> {
        let mut out = Vec::new();
        let grid = self.grid();
        let graph = self.graph();
        let capacity = self.config().cell_capacity;
        let horizon = now.saturating_sub_ms(self.config().t_delta_ms);

        // 1. Grid invariants.
        for c in grid.cell_ids() {
            let cell = grid.cell(c);
            if cell.num_vertices as usize > capacity {
                out.push(Violation::CellOverCapacity {
                    cell: c,
                    vertices: cell.num_vertices as usize,
                    capacity,
                });
            }
            for v in grid.vertices_in(c) {
                if grid.cell_of_vertex(v) != c {
                    out.push(Violation::VertexCellMismatch { vertex: v.0 });
                }
            }
        }
        for e in graph.edge_ids() {
            let src = graph.edge(e).source;
            if grid.cell_of_edge(e) != grid.cell_of_vertex(src) {
                out.push(Violation::InvertedIndexMismatch { edge: e.0 });
            }
        }

        // 2 & 3. Message lists and object table.
        let mut newest: std::collections::HashMap<ObjectId, (Timestamp, Option<CellId>)> =
            std::collections::HashMap::new();
        let lists = self.cell_lists();
        for idx in 0..lists.len() {
            let cell = CellId(idx as u32);
            let list = lists.lock(idx);
            for bucket in list.buckets() {
                if bucket.messages.len() > self.config().bucket_capacity {
                    out.push(Violation::BucketOverCapacity {
                        cell,
                        len: bucket.messages.len(),
                        capacity: self.config().bucket_capacity,
                    });
                }
                let max = bucket.messages.iter().map(|m| m.time).max();
                if max.is_some_and(|m| m > bucket.latest) {
                    out.push(Violation::BucketTimestampWrong { cell });
                }
                for m in &bucket.messages {
                    let e = newest.entry(m.object).or_insert((Timestamp(0), None));
                    // Same tie-break as the cleaning kernel: at equal times
                    // a real update beats the departure tombstone Algorithm
                    // 1 wrote alongside it.
                    let wins = m.time > e.0 || (m.time == e.0 && !m.is_tombstone());
                    if wins {
                        *e = (m.time, if m.is_tombstone() { None } else { Some(cell) });
                    }
                }
            }
        }
        for &(o, entry) in self.object_table().snapshot().iter() {
            if entry.time < horizon {
                continue; // expired by contract; lists may have dropped it
            }
            match newest.get(&o) {
                Some(&(t, Some(cell))) => {
                    if cell != entry.cell {
                        out.push(Violation::ObjectMissingFromCell {
                            object: o,
                            cell: entry.cell,
                        });
                    }
                    if t != entry.time {
                        out.push(Violation::ObjectPositionStale { object: o });
                    }
                }
                // Newest cached message is a tombstone or absent while the
                // table says the object is live somewhere.
                _ => out.push(Violation::ObjectMissingFromCell {
                    object: o,
                    cell: entry.cell,
                }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GGridConfig;
    use crate::server::GGridServer;
    use roadnet::{gen, EdgeId, EdgePosition};

    fn server() -> GGridServer {
        GGridServer::new(
            gen::toy(33),
            GGridConfig {
                eta: 4,
                bucket_capacity: 8,
                ..Default::default()
            },
        )
    }

    #[test]
    fn fresh_server_is_healthy() {
        let s = server();
        assert!(s.validate(Timestamp(0)).is_empty());
    }

    #[test]
    fn healthy_after_updates_and_moves() {
        let s = server();
        for round in 0..5u64 {
            for o in 0..25u64 {
                let e = EdgeId(((o * 7 + round * 31) % 160) as u32);
                s.handle_update(
                    ObjectId(o),
                    EdgePosition::at_source(e),
                    Timestamp(100 + round),
                );
            }
            let violations = s.validate(Timestamp(100 + round));
            assert!(violations.is_empty(), "round {round}: {violations:?}");
        }
    }

    #[test]
    fn healthy_after_queries_consolidate() {
        let mut s = server();
        for o in 0..25u64 {
            let e = EdgeId(((o * 11) % 160) as u32);
            s.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100));
        }
        s.knn(EdgePosition::at_source(EdgeId(3)), 5, Timestamp(200));
        s.knn(EdgePosition::at_source(EdgeId(90)), 5, Timestamp(210));
        let violations = s.validate(Timestamp(210));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn expiry_does_not_false_positive() {
        let mut s = GGridServer::new(
            gen::toy(33),
            GGridConfig {
                eta: 4,
                t_delta_ms: 50,
                ..Default::default()
            },
        );
        s.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(10),
        );
        // Long after expiry, a query may drop the cached message entirely;
        // the stale table entry must not be flagged.
        s.knn(EdgePosition::at_source(EdgeId(0)), 1, Timestamp(5_000));
        assert!(s.validate(Timestamp(5_000)).is_empty());
    }
}
