//! The serving loop: SLO-driven adaptive batching over an MPSC request
//! queue (DESIGN.md §5.10).
//!
//! [`GGridServer::knn_batch`] made the batch the unit of device work, but
//! until now batches were formed synchronously by the caller. This module
//! adds the missing serving layer: concurrent client threads enqueue
//! queries and ingest messages onto one MPSC channel, and a single loop
//! thread — the one holding `&mut GGridServer` — forms device batches out
//! of the merged stream, closing each batch on **fill**
//! ([`ServeConfig::max_batch_size`]) or on a **modeled-ns deadline**
//! ([`ServeConfig::deadline_ns`]), whichever comes first. Admission
//! control sheds queries whose modeled backlog wait exceeds
//! [`ServeConfig::shed_wait_ns`], and a per-client depth bound
//! backpressures producers that outrun the loop.
//!
//! ## Determinism and byte-identity
//!
//! Thread scheduling must not change answers. Every request carries a
//! client-assigned **modeled arrival stamp** (nanoseconds on the same
//! virtual clock the batch former runs on), monotone per client; the loop
//! releases requests in the total order `(arrival_ns, client, seq)` using
//! a watermark merge — a request is released only once every still-open
//! client has a queued request (or has closed), so no later-arriving
//! smaller stamp can exist. Batch formation, shedding, and latency
//! accounting are all functions of that deterministic order and the
//! modeled clock, so for a fixed request schedule the answers are
//! byte-identical to replaying the same events against
//! [`GGridServer::knn_batch`] / [`GGridServer::ingest_batch`] directly —
//! for every client count and every host-thread interleaving (proptested
//! in `tests/serve.rs`).
//!
//! ## Latency accounting
//!
//! Per completed query, with `a` its arrival stamp, `t_open` the moment
//! its batch opened (`max(server-free time, first arrival)`) and `t_start`
//! the moment the batch launched:
//!
//! ```text
//! queue_wait = max(0, t_open − a)        backlog: server busy on arrival
//! batch_wait = t_start − max(t_open, a)  waiting for fill or deadline
//! service    = flush cost + BatchResult::pipelined_time
//! latency    = queue_wait + batch_wait + service = completion − a
//! ```
//!
//! Ingest is buffered ([`GGridServer::ingest_buffered`]) at its stamp slot
//! and charged per the [`ingest_model`] constants; the cell-lock cost of
//! the flush is paid when a query batch (which must observe the messages)
//! executes — so query batches and ingest flushes interleave on the one
//! modeled timeline and neither starves the other.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use roadnet::{Distance, EdgePosition};

use crate::message::{ObjectId, Timestamp};
use crate::server::GGridServer;
use crate::stats::{ingest_model, Hist};

/// Knobs of the serving loop. All times are modeled nanoseconds (the same
/// hybrid clock as [`crate::stats::QueryBreakdown::total_ns`]).
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// A batch launches as soon as it holds this many queries.
    pub max_batch_size: usize,
    /// A batch launches at `t_open + deadline_ns` even if not full.
    /// `u64::MAX` disables the deadline (fixed-fill batching); `0` groups
    /// only queries sharing an arrival instant.
    pub deadline_ns: u64,
    /// Admission control: a query whose modeled backlog wait (time until
    /// the server is free) already exceeds this at release is shed instead
    /// of queued for service. `u64::MAX` never sheds. Ingest is never shed.
    pub shed_wait_ns: u64,
    /// Backpressure: a client blocks in [`ServeClient`] while it has this
    /// many requests in flight (sent but not yet released by the loop).
    /// `0` disables the bound. This is a *real* (not modeled) bound — it
    /// caps queue memory without affecting answers.
    pub client_queue_bound: usize,
    /// Every this-many released requests the loop runs a maintenance
    /// epoch: flush buffered ingest, [`GGridServer::tick_subscriptions`]
    /// at the newest timestamp seen, and [`GGridServer::rebalance_shards`]
    /// — so standing queries stay fresh under open-loop load without an
    /// external caller. `0` disables epochs.
    pub epoch_requests: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 32,
            deadline_ns: 2_000_000,
            shed_wait_ns: u64::MAX,
            client_queue_bound: 4096,
            epoch_requests: 0,
        }
    }
}

impl ServeConfig {
    /// Panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.max_batch_size >= 1, "max_batch_size must be >= 1");
    }
}

/// Lock-free per-queue counters (the snippet-3 playbook: atomics on the
/// counter path, never a mutex). Clients bump `enqueued`/`depth`; the loop
/// bumps `dequeued`/`shed`. Everything else the serve loop shares across
/// threads is the MPSC channel itself and the server.
#[derive(Debug, Default)]
pub struct QueueCounters {
    /// Requests sent by clients.
    pub enqueued: AtomicU64,
    /// Requests released (in stamp order) by the loop.
    pub dequeued: AtomicU64,
    /// Queries shed by admission control (subset of `dequeued`).
    pub shed: AtomicU64,
    /// Current queue depth (enqueued − released).
    pub depth: AtomicU64,
    /// High-water mark of `depth`.
    pub depth_high_water: AtomicU64,
}

impl QueueCounters {
    fn note_enqueue(&self) {
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_high_water.fetch_max(d, Ordering::Relaxed);
    }

    fn note_dequeue(&self) {
        self.dequeued.fetch_add(1, Ordering::Relaxed);
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Relaxed point-in-time copy.
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            dequeued: self.dequeued.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            depth_high_water: self.depth_high_water.load(Ordering::Relaxed),
        }
    }
}

/// Plain-integer snapshot of [`QueueCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueSnapshot {
    pub enqueued: u64,
    pub dequeued: u64,
    pub shed: u64,
    pub depth_high_water: u64,
}

enum Payload {
    Query {
        q: EdgePosition,
        k: usize,
        now: Timestamp,
    },
    Ingest(Vec<(ObjectId, EdgePosition, Timestamp)>),
    Close,
}

struct Envelope {
    client: u32,
    seq: u64,
    arrival_ns: u64,
    payload: Payload,
}

/// The request queue: create one, hand a [`ServeClient`] to each producer
/// thread, then pass the queue to [`serve`]. Clients must all be created
/// *before* the loop runs (the queue is consumed by [`serve`], so the
/// borrow checker enforces this).
pub struct ServeQueue {
    tx: mpsc::Sender<Envelope>,
    rx: mpsc::Receiver<Envelope>,
    counters: Arc<QueueCounters>,
    inflight: Vec<Arc<AtomicU64>>,
    bound: usize,
}

impl ServeQueue {
    pub fn new(cfg: &ServeConfig) -> Self {
        cfg.validate();
        let (tx, rx) = mpsc::channel();
        Self {
            tx,
            rx,
            counters: Arc::new(QueueCounters::default()),
            inflight: Vec::new(),
            bound: cfg.client_queue_bound,
        }
    }

    /// Register a new client. Each client owns a monotone arrival-stamp
    /// lane in the merge; a client that stops sending without being
    /// dropped stalls the loop (the watermark cannot advance past it), so
    /// move clients into their threads and let them drop on completion.
    pub fn client(&mut self) -> ServeClient {
        let inflight = Arc::new(AtomicU64::new(0));
        self.inflight.push(Arc::clone(&inflight));
        ServeClient {
            tx: self.tx.clone(),
            id: (self.inflight.len() - 1) as u32,
            seq: 0,
            last_arrival: 0,
            inflight,
            counters: Arc::clone(&self.counters),
            bound: self.bound,
        }
    }

    /// The shared queue counters (for monitoring while the loop runs).
    pub fn counters(&self) -> Arc<QueueCounters> {
        Arc::clone(&self.counters)
    }
}

/// A producer handle onto the serve queue. Cheap to move across threads;
/// dropping it closes the client's lane. Arrival stamps are modeled
/// nanoseconds and must be non-decreasing per client.
pub struct ServeClient {
    tx: mpsc::Sender<Envelope>,
    id: u32,
    seq: u64,
    last_arrival: u64,
    inflight: Arc<AtomicU64>,
    counters: Arc<QueueCounters>,
    bound: usize,
}

impl ServeClient {
    /// Enqueue a kNN query arriving at modeled time `arrival_ns`.
    pub fn query(&mut self, q: EdgePosition, k: usize, now: Timestamp, arrival_ns: u64) {
        self.send(arrival_ns, Payload::Query { q, k, now });
    }

    /// Enqueue a batch of location updates arriving at `arrival_ns`.
    pub fn ingest(&mut self, updates: Vec<(ObjectId, EdgePosition, Timestamp)>, arrival_ns: u64) {
        if updates.is_empty() {
            return;
        }
        self.send(arrival_ns, Payload::Ingest(updates));
    }

    fn send(&mut self, arrival_ns: u64, payload: Payload) {
        assert!(
            arrival_ns >= self.last_arrival,
            "per-client arrival stamps must be non-decreasing"
        );
        self.last_arrival = arrival_ns;
        if self.bound > 0 {
            // Backpressure: spin-yield until the loop drains our lane. The
            // loop never needs *new* input from a lane that has pending
            // requests, so this cannot deadlock the watermark merge.
            while self.inflight.load(Ordering::Acquire) >= self.bound as u64 {
                std::thread::yield_now();
            }
        }
        self.inflight.fetch_add(1, Ordering::Release);
        self.counters.note_enqueue();
        let env = Envelope {
            client: self.id,
            seq: self.seq,
            arrival_ns,
            payload,
        };
        self.seq += 1;
        self.tx.send(env).expect("serve loop hung up");
    }
}

impl Drop for ServeClient {
    fn drop(&mut self) {
        let _ = self.tx.send(Envelope {
            client: self.id,
            seq: self.seq,
            arrival_ns: self.last_arrival,
            payload: Payload::Close,
        });
    }
}

/// One completed (or shed) query, with its latency decomposition.
#[derive(Clone, Debug)]
pub struct QueryRecord {
    pub client: u32,
    pub seq: u64,
    /// Modeled arrival stamp.
    pub arrival_ns: u64,
    /// Backlog wait: server still busy when the query arrived.
    pub queue_wait_ns: u64,
    /// Batch-forming wait: fill or deadline.
    pub batch_wait_ns: u64,
    /// Modeled batch service time (shared by all queries of the batch).
    pub service_ns: u64,
    /// Queries in the batch that served this one (0 when shed).
    pub batch_size: usize,
    /// True when admission control dropped the query unanswered.
    pub shed: bool,
    pub answer: Vec<(ObjectId, Distance)>,
}

impl QueryRecord {
    /// Modeled end-to-end latency (0 for shed queries).
    pub fn latency_ns(&self) -> u64 {
        self.queue_wait_ns + self.batch_wait_ns + self.service_ns
    }
}

/// Aggregate report of one [`serve`] run.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Queries answered (excludes shed).
    pub queries: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Query batches launched.
    pub batches: u64,
    /// Batches closed by reaching `max_batch_size`.
    pub fill_closes: u64,
    /// Batches closed by the modeled deadline.
    pub deadline_closes: u64,
    /// Batches closed by a stream boundary (timestamp change, ingest at
    /// its slot, maintenance epoch, or end of stream).
    pub boundary_closes: u64,
    /// Ingest envelopes applied.
    pub ingest_events: u64,
    /// Location updates those envelopes carried.
    pub ingest_messages: u64,
    /// Maintenance epochs run.
    pub epochs: u64,
    /// Subscriptions re-validated across all epoch ticks.
    pub subs_invalidated: u64,
    /// Modeled ns charged to ingest (appends + shard locks + flush locks).
    pub ingest_modeled_ns: u64,
    /// End-to-end modeled latency of answered queries.
    pub latency_hist: Hist,
    /// Backlog-wait component.
    pub queue_wait_hist: Hist,
    /// Launched batch sizes.
    pub batch_size_hist: Hist,
    /// Modeled time the last work item completed.
    pub end_ns: u64,
    /// Arrival stamp of the first request.
    pub first_arrival_ns: u64,
    /// Queue counters at loop exit.
    pub queue: QueueSnapshot,
}

impl ServeReport {
    /// Answered queries per second of modeled serving time.
    pub fn throughput_qps(&self) -> f64 {
        let span = self.end_ns.saturating_sub(self.first_arrival_ns);
        if span == 0 {
            return 0.0;
        }
        self.queries as f64 * 1e9 / span as f64
    }
}

/// Everything [`serve`] produces: per-query records (in service order,
/// shed included) plus the aggregate report.
pub struct ServeOutcome {
    pub records: Vec<QueryRecord>,
    pub report: ServeReport,
}

/// Watermark merge over the per-client lanes: a request is released only
/// when every open lane can prove no smaller stamp is still in flight.
struct Merge {
    rx: mpsc::Receiver<Envelope>,
    lanes: Vec<VecDeque<Envelope>>,
    open: Vec<bool>,
}

impl Merge {
    fn new(rx: mpsc::Receiver<Envelope>, clients: usize) -> Self {
        Self {
            rx,
            lanes: (0..clients).map(|_| VecDeque::new()).collect(),
            open: vec![true; clients],
        }
    }

    fn ready(&self) -> bool {
        self.lanes
            .iter()
            .zip(&self.open)
            .all(|(l, &o)| !o || !l.is_empty())
    }

    fn next(&mut self) -> Option<Envelope> {
        loop {
            while !self.ready() {
                match self.rx.recv() {
                    Ok(env) => {
                        let c = env.client as usize;
                        match env.payload {
                            Payload::Close => self.open[c] = false,
                            _ => self.lanes[c].push_back(env),
                        }
                    }
                    // Every sender dropped: no lane can grow again.
                    Err(_) => self.open.iter_mut().for_each(|o| *o = false),
                }
            }
            let head = self
                .lanes
                .iter()
                .enumerate()
                .filter_map(|(c, l)| l.front().map(|e| (e.arrival_ns, c, e.seq)))
                .min();
            match head {
                Some((_, c, _)) => return self.lanes[c].pop_front(),
                None if self.open.iter().any(|&o| o) => continue,
                None => return None,
            }
        }
    }
}

/// An open (not yet launched) batch in the former.
struct OpenBatch {
    now: Timestamp,
    t_open: u64,
    queries: Vec<(EdgePosition, usize)>,
    meta: Vec<(u32, u64, u64)>, // (client, seq, arrival_ns)
}

impl OpenBatch {
    fn deadline_close(&self, cfg: &ServeConfig) -> u64 {
        self.t_open.saturating_add(cfg.deadline_ns)
    }
}

/// Why a batch is being launched; determines its modeled start time.
enum Close {
    /// Reached `max_batch_size`; launches at the filling query's arrival.
    Fill,
    /// An event at `at` proved nothing more joins (incompatible query,
    /// ingest, epoch) — launches at `min(at, deadline)`.
    Boundary(u64),
    /// Every client disconnected, so nothing more can join; launches
    /// immediately (flush-on-EOF) rather than waiting out the deadline.
    End,
}

/// Run the serving loop to completion: release requests in stamp order,
/// form and execute query batches, apply ingest, run maintenance epochs,
/// and account modeled latency. Returns when every client has closed and
/// the queue drained. Single-threaded over `&mut server` — the only state
/// shared with client threads is the MPSC channel and the queue counters.
pub fn serve(server: &mut GGridServer, cfg: &ServeConfig, queue: ServeQueue) -> ServeOutcome {
    cfg.validate();
    let ServeQueue {
        tx,
        rx,
        counters,
        inflight,
        ..
    } = queue;
    // Drop the queue's own sender so channel disconnect backstops any
    // client that vanishes without a Close envelope.
    drop(tx);
    let mut merge = Merge::new(rx, inflight.len());

    let mut out = ServeOutcome {
        records: Vec::new(),
        report: ServeReport::default(),
    };
    let mut free_ns = 0u64;
    let mut batch: Option<OpenBatch> = None;
    let mut released = 0u64;
    let mut first_arrival: Option<u64> = None;
    let mut last_now = Timestamp(0);

    // Launch `b` and record every member's latency decomposition.
    let execute = |server: &mut GGridServer,
                   b: OpenBatch,
                   why: Close,
                   free_ns: &mut u64,
                   out: &mut ServeOutcome| {
        let last_arrival = b.meta.last().map(|&(_, _, a)| a).unwrap_or(b.t_open);
        let deadline = b.deadline_close(cfg);
        let t_start = match why {
            Close::Fill => b.t_open.max(last_arrival),
            Close::Boundary(at) => b.t_open.max(at.min(deadline)),
            Close::End => b.t_open.max(last_arrival),
        };
        match why {
            Close::Fill => out.report.fill_closes += 1,
            Close::Boundary(at) if at > deadline => out.report.deadline_closes += 1,
            Close::Boundary(_) => out.report.boundary_closes += 1,
            Close::End => out.report.boundary_closes += 1,
        }
        // Pay the buffered-ingest flush the batch forces (the queries must
        // observe every message with a smaller stamp), then the batch.
        let flushed = server.flush_ingest();
        let flush_ns = flushed.len() as u64 * ingest_model::CELL_LOCK_NS;
        out.report.ingest_modeled_ns += flush_ns;
        let result = server.knn_batch(&b.queries, b.now);
        let service_ns = flush_ns + result.pipelined_time.0;
        *free_ns = t_start + service_ns;
        out.report.batches += 1;
        out.report.queries += b.queries.len() as u64;
        out.report.batch_size_hist.record(b.queries.len() as u64);
        for (&(client, seq, a), answer) in b.meta.iter().zip(result.answers) {
            let queue_wait_ns = b.t_open.saturating_sub(a);
            let batch_wait_ns = t_start - b.t_open.max(a);
            let rec = QueryRecord {
                client,
                seq,
                arrival_ns: a,
                queue_wait_ns,
                batch_wait_ns,
                service_ns,
                batch_size: b.queries.len(),
                shed: false,
                answer,
            };
            out.report.latency_hist.record(rec.latency_ns());
            out.report.queue_wait_hist.record(queue_wait_ns);
            out.records.push(rec);
        }
    };

    while let Some(env) = merge.next() {
        counters.note_dequeue();
        inflight[env.client as usize].fetch_sub(1, Ordering::Release);
        released += 1;
        first_arrival.get_or_insert(env.arrival_ns);

        match env.payload {
            Payload::Query { q, k, now } => {
                last_now = last_now.max(now);
                if let Some(b) = &batch {
                    let fits = now == b.now
                        && b.queries.len() < cfg.max_batch_size
                        && env.arrival_ns <= b.deadline_close(cfg);
                    if !fits {
                        let b = batch.take().unwrap();
                        execute(
                            server,
                            b,
                            Close::Boundary(env.arrival_ns),
                            &mut free_ns,
                            &mut out,
                        );
                    }
                }
                let backlog = free_ns.saturating_sub(env.arrival_ns);
                if backlog > cfg.shed_wait_ns {
                    counters.shed.fetch_add(1, Ordering::Relaxed);
                    out.report.shed += 1;
                    out.records.push(QueryRecord {
                        client: env.client,
                        seq: env.seq,
                        arrival_ns: env.arrival_ns,
                        queue_wait_ns: backlog,
                        batch_wait_ns: 0,
                        service_ns: 0,
                        batch_size: 0,
                        shed: true,
                        answer: Vec::new(),
                    });
                } else {
                    let b = batch.get_or_insert_with(|| OpenBatch {
                        now,
                        t_open: free_ns.max(env.arrival_ns),
                        queries: Vec::with_capacity(cfg.max_batch_size),
                        meta: Vec::with_capacity(cfg.max_batch_size),
                    });
                    b.queries.push((q, k));
                    b.meta.push((env.client, env.seq, env.arrival_ns));
                    if b.queries.len() == cfg.max_batch_size {
                        let b = batch.take().unwrap();
                        execute(server, b, Close::Fill, &mut free_ns, &mut out);
                    }
                }
            }
            Payload::Ingest(updates) => {
                if let Some(b) = batch.take() {
                    execute(
                        server,
                        b,
                        Close::Boundary(env.arrival_ns),
                        &mut free_ns,
                        &mut out,
                    );
                }
                if let Some(ts) = updates.iter().map(|&(_, _, t)| t).max() {
                    last_now = last_now.max(ts);
                }
                let n = updates.len() as u64;
                let committed = server.ingest_buffered(&updates);
                let ingest_ns = n * (ingest_model::APPEND_NS + ingest_model::SHARD_LOCK_NS)
                    + committed.len() as u64 * ingest_model::CELL_LOCK_NS;
                out.report.ingest_modeled_ns += ingest_ns;
                free_ns = free_ns.max(env.arrival_ns) + ingest_ns;
                out.report.ingest_events += 1;
                out.report.ingest_messages += n;
            }
            Payload::Close => unreachable!("Close envelopes are consumed by the merge"),
        }

        if cfg.epoch_requests > 0 && released.is_multiple_of(cfg.epoch_requests) {
            if let Some(b) = batch.take() {
                let at = b.meta.last().map(|&(_, _, a)| a).unwrap_or(b.t_open);
                execute(server, b, Close::Boundary(at), &mut free_ns, &mut out);
            }
            let flushed = server.flush_ingest();
            let flush_ns = flushed.len() as u64 * ingest_model::CELL_LOCK_NS;
            out.report.ingest_modeled_ns += flush_ns;
            free_ns += flush_ns;
            // Maintenance runs off the query critical path (a second
            // stream in a real deployment): only its flush contends.
            let tick = server.tick_subscriptions(last_now);
            out.report.subs_invalidated += tick.invalidated as u64;
            server.rebalance_shards();
            out.report.epochs += 1;
        }
    }
    if let Some(b) = batch.take() {
        execute(server, b, Close::End, &mut free_ns, &mut out);
    }
    let flushed = server.flush_ingest();
    out.report.ingest_modeled_ns += flushed.len() as u64 * ingest_model::CELL_LOCK_NS;

    out.report.end_ns = free_ns;
    out.report.first_arrival_ns = first_arrival.unwrap_or(0);
    out.report.queue = counters.snapshot();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GGridConfig;
    use roadnet::{gen, EdgeId};

    fn server() -> GGridServer {
        GGridServer::new(
            gen::toy(42),
            GGridConfig {
                t_delta_ms: 1 << 40,
                ..Default::default()
            },
        )
    }

    fn pos(e: u32) -> EdgePosition {
        EdgePosition::at_source(EdgeId(e))
    }

    #[test]
    fn single_client_round_trip() {
        let mut s = server();
        let cfg = ServeConfig::default();
        let mut queue = ServeQueue::new(&cfg);
        let mut c = queue.client();
        c.ingest(vec![(ObjectId(7), pos(0), Timestamp(10))], 0);
        c.query(pos(5), 1, Timestamp(11), 100);
        drop(c);
        let out = serve(&mut s, &cfg, queue);
        assert_eq!(out.report.queries, 1);
        assert_eq!(out.report.ingest_events, 1);
        let q = out.records.iter().find(|r| !r.shed).unwrap();
        assert_eq!(q.answer.len(), 1);
        assert_eq!(q.answer[0].0, ObjectId(7));
        assert!(q.latency_ns() > 0);
        assert_eq!(out.report.queue.enqueued, 2);
        assert_eq!(out.report.queue.dequeued, 2);
    }

    #[test]
    fn deadline_closes_partial_batch() {
        let mut s = server();
        s.ingest_batch(&[(ObjectId(1), pos(0), Timestamp(1))]);
        let cfg = ServeConfig {
            max_batch_size: 8,
            deadline_ns: 1_000,
            ..Default::default()
        };
        let mut queue = ServeQueue::new(&cfg);
        let mut c = queue.client();
        // Two queries inside one deadline window, a third far outside it:
        // the former must close the first batch at t_open + deadline with
        // only two members.
        c.query(pos(1), 1, Timestamp(2), 0);
        c.query(pos(2), 1, Timestamp(2), 500);
        c.query(pos(3), 1, Timestamp(2), 10_000_000_000);
        drop(c);
        let out = serve(&mut s, &cfg, queue);
        assert_eq!(out.report.batches, 2);
        // First batch deadline-closes; the trailing singleton is flushed
        // on stream end (every client gone), which is a boundary close.
        assert_eq!(out.report.deadline_closes, 1);
        assert_eq!(out.report.boundary_closes, 1);
        assert_eq!(out.records[0].batch_size, 2);
        // The second member waited out the rest of the deadline window.
        assert_eq!(out.records[1].batch_wait_ns, 500);
        assert_eq!(out.records[0].batch_wait_ns, 1_000);
    }

    #[test]
    fn fill_closes_at_max_batch_size() {
        let mut s = server();
        s.ingest_batch(&[(ObjectId(1), pos(0), Timestamp(1))]);
        let cfg = ServeConfig {
            max_batch_size: 4,
            deadline_ns: u64::MAX,
            ..Default::default()
        };
        let mut queue = ServeQueue::new(&cfg);
        let mut c = queue.client();
        for i in 0..8u32 {
            c.query(pos(i % 6), 1, Timestamp(2), u64::from(i));
        }
        drop(c);
        let out = serve(&mut s, &cfg, queue);
        assert_eq!(out.report.batches, 2);
        assert_eq!(out.report.fill_closes, 2);
        assert!(out.records.iter().all(|r| r.batch_size == 4));
    }

    #[test]
    fn shed_on_overflow_drops_backlogged_queries() {
        let mut s = server();
        s.ingest_batch(&[(ObjectId(1), pos(0), Timestamp(1))]);
        let cfg = ServeConfig {
            max_batch_size: 1,
            deadline_ns: 0,
            shed_wait_ns: 0,
            ..Default::default()
        };
        let mut queue = ServeQueue::new(&cfg);
        let mut c = queue.client();
        // Both arrive at t=0; the first occupies the server past t=0, so
        // the second's modeled backlog wait exceeds the zero bound.
        c.query(pos(1), 1, Timestamp(2), 0);
        c.query(pos(2), 1, Timestamp(2), 0);
        drop(c);
        let out = serve(&mut s, &cfg, queue);
        assert_eq!(out.report.queries, 1);
        assert_eq!(out.report.shed, 1);
        assert_eq!(out.report.queue.shed, 1);
        let shed: Vec<_> = out.records.iter().filter(|r| r.shed).collect();
        assert_eq!(shed.len(), 1);
        assert!(shed[0].answer.is_empty());
        assert!(shed[0].queue_wait_ns > 0);
    }

    #[test]
    fn timestamp_change_closes_batch() {
        let mut s = server();
        s.ingest_batch(&[(ObjectId(1), pos(0), Timestamp(1))]);
        let cfg = ServeConfig {
            max_batch_size: 8,
            deadline_ns: u64::MAX,
            ..Default::default()
        };
        let mut queue = ServeQueue::new(&cfg);
        let mut c = queue.client();
        c.query(pos(1), 1, Timestamp(2), 0);
        c.query(pos(2), 1, Timestamp(3), 1);
        drop(c);
        let out = serve(&mut s, &cfg, queue);
        assert_eq!(out.report.batches, 2);
        assert_eq!(out.report.boundary_closes, 2);
    }

    #[test]
    fn epoch_cadence_ticks_subscriptions() {
        let mut s = server();
        s.ingest_batch(&[
            (ObjectId(1), pos(0), Timestamp(1)),
            (ObjectId(2), pos(3), Timestamp(1)),
        ]);
        let id = s.subscribe_knn(pos(5), 1, Timestamp(1));
        let before = s.counters().subs_ticks;
        let cfg = ServeConfig {
            epoch_requests: 2,
            ..Default::default()
        };
        let mut queue = ServeQueue::new(&cfg);
        let mut c = queue.client();
        for i in 0..6u64 {
            c.ingest(
                vec![(ObjectId(10 + i), pos((i % 6) as u32), Timestamp(2 + i))],
                i * 10,
            );
        }
        drop(c);
        let out = serve(&mut s, &cfg, queue);
        assert_eq!(out.report.epochs, 3);
        assert_eq!(s.counters().subs_ticks - before, 3);
        // The standing query is fresh: identical to a fresh evaluation at
        // the last ticked timestamp.
        let fresh = s.knn(pos(5), 1, Timestamp(7));
        assert_eq!(s.subscription_result(id).unwrap(), &fresh[..]);
        assert!(!fresh.is_empty());
    }

    #[test]
    fn monotone_arrival_enforced() {
        let cfg = ServeConfig::default();
        let mut queue = ServeQueue::new(&cfg);
        let mut c = queue.client();
        c.query(pos(0), 1, Timestamp(1), 100);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.query(pos(0), 1, Timestamp(1), 50);
        }));
        assert!(r.is_err());
    }
}
