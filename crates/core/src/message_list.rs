//! Per-cell message lists (paper §III-C).
//!
//! Each grid cell owns a list of δᵇ-message buckets holding the cached
//! location updates that landed in the cell, in arrival order. Buckets whose
//! newest message is older than `now − t_Δ` are discarded wholesale during
//! cleaning: the update contract (§II) guarantees every object has sent a
//! fresher message somewhere by then.
//!
//! The paper's list carries three pointers — head `p_h`, tail `p_t`, and a
//! lock pointer `p_l` marking the prefix frozen while the GPU processes it,
//! so new messages keep landing behind the lock. The simulation is
//! single-threaded, so the freeze is expressed structurally:
//! [`MessageList::take_for_cleaning`] removes the frozen prefix (appending
//! the fresh tail bucket exactly like Algorithm 2's `ζ_new`), and
//! [`MessageList::restore_consolidated`] pushes the cleaning result back in
//! front of whatever arrived meanwhile.

use std::collections::VecDeque;

use crate::message::{CachedMessage, Timestamp};

/// A bucket: `ζ = ⟨𝒜_m, n, t, p_n⟩` (the link is implicit in the deque).
#[derive(Clone, Debug, Default)]
pub struct Bucket {
    pub messages: Vec<CachedMessage>,
    /// Time of the latest message in the bucket (`ζ.t`).
    pub latest: Timestamp,
}

impl Bucket {
    fn with_capacity(cap: usize) -> Self {
        Self {
            messages: Vec::with_capacity(cap),
            latest: Timestamp(0),
        }
    }
}

/// The message list of one cell.
#[derive(Debug)]
pub struct MessageList {
    buckets: VecDeque<Bucket>,
    bucket_capacity: usize,
}

impl MessageList {
    pub fn new(bucket_capacity: usize) -> Self {
        assert!(bucket_capacity >= 1);
        Self {
            buckets: VecDeque::new(),
            bucket_capacity,
        }
    }

    /// Append a message to the tail bucket, opening a new bucket when full
    /// (the `append` of Algorithm 1).
    pub fn append(&mut self, m: CachedMessage) {
        let need_new = match self.buckets.back() {
            Some(b) => b.messages.len() >= self.bucket_capacity,
            None => true,
        };
        if need_new {
            self.buckets.push_back(Bucket::with_capacity(self.bucket_capacity));
        }
        let b = self.buckets.back_mut().expect("just ensured a tail bucket");
        b.latest = b.latest.max(m.time);
        b.messages.push(m);
    }

    /// Freeze and remove every current bucket for cleaning, discarding
    /// buckets whose newest message is older than `now − t_Δ` (Algorithm 2,
    /// preprocessing). Returns the surviving buckets.
    pub fn take_for_cleaning(&mut self, now: Timestamp, t_delta_ms: u64) -> Vec<Bucket> {
        let horizon = now.saturating_sub_ms(t_delta_ms);
        let taken = std::mem::take(&mut self.buckets);
        taken.into_iter().filter(|b| b.latest >= horizon).collect()
    }

    /// Install the consolidated result of a cleaning pass (newest message
    /// per surviving object) *before* any messages that arrived while the
    /// GPU was busy.
    pub fn restore_consolidated(&mut self, messages: Vec<CachedMessage>) {
        if messages.is_empty() {
            return;
        }
        for chunk in messages.chunks(self.bucket_capacity).rev() {
            let mut b = Bucket::with_capacity(self.bucket_capacity);
            b.messages.extend_from_slice(chunk);
            b.latest = chunk.iter().map(|m| m.time).max().unwrap_or(Timestamp(0));
            self.buckets.push_front(b);
        }
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Read access to the buckets (diagnostics/validation).
    pub fn buckets(&self) -> impl Iterator<Item = &Bucket> {
        self.buckets.iter()
    }

    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    pub fn total_messages(&self) -> usize {
        self.buckets.iter().map(|b| b.messages.len()).sum()
    }

    /// Resident bytes: full bucket arrays (buckets are fixed-size slabs).
    pub fn size_bytes(&self) -> u64 {
        self.buckets.len() as u64
            * (self.bucket_capacity as u64 * CachedMessage::WIRE_BYTES + 24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ObjectId;
    use roadnet::{EdgeId, EdgePosition};

    fn msg(o: u64, t: u64) -> CachedMessage {
        CachedMessage::update(ObjectId(o), EdgePosition::new(EdgeId(0), 0), Timestamp(t))
    }

    #[test]
    fn append_fills_buckets_in_order() {
        let mut l = MessageList::new(3);
        for i in 0..7 {
            l.append(msg(i, i));
        }
        assert_eq!(l.num_buckets(), 3);
        assert_eq!(l.total_messages(), 7);
    }

    #[test]
    fn bucket_latest_tracks_max() {
        let mut l = MessageList::new(8);
        l.append(msg(1, 5));
        l.append(msg(2, 3));
        let buckets = l.take_for_cleaning(Timestamp(6), 100);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].latest, Timestamp(5));
    }

    #[test]
    fn take_discards_expired_buckets() {
        let mut l = MessageList::new(2);
        l.append(msg(1, 10));
        l.append(msg(2, 11)); // bucket 0, latest 11
        l.append(msg(3, 500)); // bucket 1, latest 500
        let kept = l.take_for_cleaning(Timestamp(600), 200);
        // horizon = 400: bucket 0 (latest 11) dropped, bucket 1 kept.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].messages[0].object, ObjectId(3));
        assert!(l.is_empty());
    }

    #[test]
    fn take_keeps_bucket_with_one_fresh_message() {
        // A bucket is kept if its *latest* message is fresh, even if earlier
        // messages in it are stale — per-message filtering happens on GPU.
        let mut l = MessageList::new(8);
        l.append(msg(1, 10));
        l.append(msg(2, 1000));
        let kept = l.take_for_cleaning(Timestamp(1100), 200);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].messages.len(), 2);
    }

    #[test]
    fn restore_goes_before_new_arrivals() {
        let mut l = MessageList::new(4);
        l.append(msg(1, 10));
        let _frozen = l.take_for_cleaning(Timestamp(11), 100);
        // A message arrives "while the GPU is busy".
        l.append(msg(2, 12));
        l.restore_consolidated(vec![msg(1, 10)]);
        // Consolidated bucket first, arrival after.
        let all = l.take_for_cleaning(Timestamp(13), 100);
        assert_eq!(all[0].messages[0].object, ObjectId(1));
        assert_eq!(all[1].messages[0].object, ObjectId(2));
    }

    #[test]
    fn restore_chunks_by_capacity() {
        let mut l = MessageList::new(2);
        l.restore_consolidated((0..5).map(|i| msg(i, i)).collect());
        assert_eq!(l.num_buckets(), 3);
        assert_eq!(l.total_messages(), 5);
        // Order preserved across chunks.
        let taken = l.take_for_cleaning(Timestamp(10), 100);
        let ids: Vec<u64> = taken
            .iter()
            .flat_map(|b| b.messages.iter().map(|m| m.object.0))
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn restore_empty_is_noop() {
        let mut l = MessageList::new(2);
        l.restore_consolidated(vec![]);
        assert!(l.is_empty());
    }

    #[test]
    fn size_bytes_counts_slabs() {
        let mut l = MessageList::new(4);
        assert_eq!(l.size_bytes(), 0);
        l.append(msg(1, 1));
        let one = l.size_bytes();
        for i in 0..4 {
            l.append(msg(i, 2));
        }
        assert!(l.size_bytes() > one);
    }
}
