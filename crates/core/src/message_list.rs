//! Per-cell message lists (paper §III-C).
//!
//! Each grid cell owns a list of δᵇ-message buckets holding the cached
//! location updates that landed in the cell, in arrival order. Buckets whose
//! newest message is older than `now − t_Δ` are discarded wholesale during
//! cleaning: the update contract (§II) guarantees every object has sent a
//! fresher message somewhere by then.
//!
//! The paper's list carries three pointers — head `p_h`, tail `p_t`, and a
//! lock pointer `p_l` marking the prefix frozen while the GPU processes it,
//! so new messages keep landing behind the lock. The simulation is
//! single-threaded, so the freeze is expressed structurally:
//! [`MessageList::take_for_cleaning`] removes the frozen prefix (appending
//! the fresh tail bucket exactly like Algorithm 2's `ζ_new`), and
//! [`MessageList::restore_consolidated`] pushes the cleaning result back in
//! front of whatever arrived meanwhile.

//! ## Epochs and the clean-skip cache
//!
//! Each list carries a *dirty epoch* bumped on every append and a
//! *cleaned-at epoch* stamped when a cleaning pass consolidates the list.
//! While the two agree the list is **clean**: it holds exactly one message
//! per live object, so a query can serve the cell straight from the cache
//! ([`MessageList::snapshot_clean`]) instead of re-launching the X-shuffle
//! kernel. The skip is answer-preserving because the snapshot re-filters by
//! the caller's expiry horizon — exactly the per-message filtering the
//! kernel would have applied — and cleaning an already-consolidated list is
//! idempotent.

use std::collections::VecDeque;

use parking_lot::{Mutex, MutexGuard};

use crate::message::{CachedMessage, Timestamp};

/// A bucket: `ζ = ⟨𝒜_m, n, t, p_n⟩` (the link is implicit in the deque).
#[derive(Clone, Debug, Default)]
pub struct Bucket {
    pub messages: Vec<CachedMessage>,
    /// Time of the latest message in the bucket (`ζ.t`).
    pub latest: Timestamp,
}

impl Bucket {
    fn with_capacity(cap: usize) -> Self {
        Self {
            messages: Vec::with_capacity(cap),
            latest: Timestamp(0),
        }
    }
}

/// The message list of one cell.
#[derive(Debug)]
pub struct MessageList {
    buckets: VecDeque<Bucket>,
    bucket_capacity: usize,
    /// Bumped on every append; compared against `cleaned_epoch`.
    dirty_epoch: u64,
    /// Epoch at which the list was last consolidated, if ever.
    cleaned_epoch: Option<u64>,
    /// Number of leading messages (in flattened deque order) that are the
    /// consolidated result of the last cleaning pass. Appends land strictly
    /// after this prefix (the tail bucket preserves within-bucket arrival
    /// order), so the prefix stays intact until the next freeze; both
    /// freezes reset it. A device-resident mirror of the consolidated state
    /// is exactly this prefix, which is what makes
    /// [`Self::take_delta_for_cleaning`] sound.
    consolidated_len: usize,
    /// Retired bucket slabs recycled from cleaning: emptied `Vec`s whose
    /// capacity is kept so steady-state ingest reuses them instead of
    /// allocating. Bounded by [`FREE_LIST_CAP`].
    free: Vec<Vec<CachedMessage>>,
    /// Bucket slabs allocated fresh from the heap (lifetime count).
    bucket_allocs: u64,
    /// Bucket slabs served from the free list (lifetime count).
    bucket_reuses: u64,
}

/// Upper bound on pooled slabs per cell — enough to absorb a cleaning
/// pass's worth of retirements without hoarding memory on quiet cells.
const FREE_LIST_CAP: usize = 32;

impl MessageList {
    pub fn new(bucket_capacity: usize) -> Self {
        assert!(bucket_capacity >= 1);
        Self {
            buckets: VecDeque::new(),
            bucket_capacity,
            dirty_epoch: 0,
            cleaned_epoch: None,
            consolidated_len: 0,
            free: Vec::new(),
            bucket_allocs: 0,
            bucket_reuses: 0,
        }
    }

    /// A fresh tail bucket, served from the free-list pool when possible so
    /// steady-state ingest (recycled slabs from cleaning) stays off the
    /// allocator.
    fn alloc_bucket(&mut self) -> Bucket {
        match self.free.pop() {
            Some(slab) => {
                self.bucket_reuses += 1;
                Bucket {
                    messages: slab,
                    latest: Timestamp(0),
                }
            }
            None => {
                self.bucket_allocs += 1;
                Bucket::with_capacity(self.bucket_capacity)
            }
        }
    }

    /// Return a retired bucket slab to the pool (cleaning calls this under
    /// the same per-cell lock acquisition it already holds). The slab is
    /// cleared but keeps its capacity; undersized or surplus slabs are
    /// dropped.
    pub fn recycle(&mut self, mut slab: Vec<CachedMessage>) {
        if self.free.len() < FREE_LIST_CAP && slab.capacity() >= self.bucket_capacity {
            slab.clear();
            self.free.push(slab);
        }
    }

    /// Slabs currently pooled for reuse.
    pub fn free_slabs(&self) -> usize {
        self.free.len()
    }

    /// Lifetime `(heap allocations, free-list reuses)` of bucket slabs.
    pub fn bucket_alloc_stats(&self) -> (u64, u64) {
        (self.bucket_allocs, self.bucket_reuses)
    }

    /// Append a message to the tail bucket, opening a new bucket when full
    /// (the `append` of Algorithm 1). Returns the list's new dirty epoch,
    /// so the ingest path can report which cells a call dirtied (and at
    /// which version) without re-deriving it from message placement.
    pub fn append(&mut self, m: CachedMessage) -> u64 {
        self.dirty_epoch += 1;
        self.push_tail(m);
        self.dirty_epoch
    }

    /// Group-commit append: the whole run lands under ONE epoch bump, so a
    /// batch touching a cell invalidates its clean-skip stamp exactly once
    /// (and untouched cells stay warm). Message order within the run is
    /// preserved, exactly as if each message had been `append`ed singly.
    /// Returns the new dirty epoch (unchanged for an empty run — the cell
    /// was not dirtied).
    pub fn append_batch<'a>(&mut self, msgs: impl IntoIterator<Item = &'a CachedMessage>) -> u64 {
        let mut it = msgs.into_iter().peekable();
        if it.peek().is_none() {
            return self.dirty_epoch;
        }
        self.dirty_epoch += 1;
        for &m in it {
            self.push_tail(m);
        }
        self.dirty_epoch
    }

    fn push_tail(&mut self, m: CachedMessage) {
        let need_new = match self.buckets.back() {
            Some(b) => b.messages.len() >= self.bucket_capacity,
            None => true,
        };
        if need_new {
            let b = self.alloc_bucket();
            self.buckets.push_back(b);
        }
        let b = self.buckets.back_mut().expect("just ensured a tail bucket");
        b.latest = b.latest.max(m.time);
        b.messages.push(m);
    }

    /// Freeze and remove every current bucket for cleaning, discarding
    /// buckets whose newest message is older than `now − t_Δ` (Algorithm 2,
    /// preprocessing). Returns the surviving buckets.
    pub fn take_for_cleaning(&mut self, now: Timestamp, t_delta_ms: u64) -> Vec<Bucket> {
        let horizon = now.saturating_sub_ms(t_delta_ms);
        self.consolidated_len = 0;
        let taken = std::mem::take(&mut self.buckets);
        let mut kept = Vec::with_capacity(taken.len());
        for b in taken {
            if b.latest >= horizon {
                kept.push(b);
            } else {
                // Expired wholesale: pool the slab instead of freeing it.
                self.recycle(b.messages);
            }
        }
        kept
    }

    /// Freeze and remove every current bucket, returning only the **delta**:
    /// the messages appended *after* the consolidated prefix of the last
    /// cleaning pass. The prefix itself is dropped on the host — the caller
    /// holds a device-resident mirror of it (validated by epoch) and merges
    /// the delta into that on the device, so the prefix never crosses the
    /// bus again. Expired whole-delta buckets are discarded exactly like in
    /// [`Self::take_for_cleaning`].
    pub fn take_delta_for_cleaning(&mut self, now: Timestamp, t_delta_ms: u64) -> Vec<Bucket> {
        let horizon = now.saturating_sub_ms(t_delta_ms);
        let mut skip = self.consolidated_len;
        self.consolidated_len = 0;
        let taken = std::mem::take(&mut self.buckets);
        let mut delta = Vec::new();
        for mut b in taken {
            if skip >= b.messages.len() {
                // Entirely consolidated prefix: the caller holds a device
                // mirror of it, so the slab retires to the pool here.
                skip -= b.messages.len();
                self.recycle(b.messages);
                continue;
            }
            if skip > 0 {
                // Bucket straddles the prefix boundary: the head is
                // consolidated, the tail arrived later.
                b.messages.drain(..skip);
                b.latest = b
                    .messages
                    .iter()
                    .map(|m| m.time)
                    .max()
                    .unwrap_or(Timestamp(0));
                skip = 0;
            }
            if b.latest >= horizon {
                delta.push(b);
            } else {
                self.recycle(b.messages);
            }
        }
        delta
    }

    /// Install the consolidated result of a cleaning pass (newest message
    /// per surviving object) *before* any messages that arrived while the
    /// GPU was busy.
    pub fn restore_consolidated(&mut self, messages: &[CachedMessage]) {
        self.consolidated_len = messages.len();
        if messages.is_empty() {
            return;
        }
        for chunk in messages.chunks(self.bucket_capacity).rev() {
            let mut b = self.alloc_bucket();
            b.messages.extend_from_slice(chunk);
            b.latest = chunk.iter().map(|m| m.time).max().unwrap_or(Timestamp(0));
            self.buckets.push_front(b);
        }
    }

    /// Current dirty epoch (monotone append counter).
    pub fn epoch(&self) -> u64 {
        self.dirty_epoch
    }

    /// Epoch stamped by the last cleaning pass, if any. A device-resident
    /// mirror of the consolidated state is valid exactly when its recorded
    /// epoch equals this value (the list's consolidated prefix is then the
    /// mirrored data, and everything after it is the delta).
    pub fn cleaned_epoch(&self) -> Option<u64> {
        self.cleaned_epoch
    }

    /// Length of the consolidated prefix (messages the last cleaning pass
    /// installed, still at the front of the list).
    pub fn consolidated_len(&self) -> usize {
        self.consolidated_len
    }

    /// Stamp the list as consolidated at its current epoch. Called by the
    /// cleaning pass after [`Self::restore_consolidated`]; any later append
    /// bumps `dirty_epoch` past the stamp and invalidates it.
    pub fn mark_clean(&mut self) {
        self.cleaned_epoch = Some(self.dirty_epoch);
    }

    /// Whether the list's content is exactly the result of its last
    /// cleaning pass (or the list is empty, which is trivially clean).
    pub fn is_clean(&self) -> bool {
        self.buckets.is_empty() || self.cleaned_epoch == Some(self.dirty_epoch)
    }

    /// Serve a clean cell from the cache: the consolidated messages still
    /// alive at `horizon`, in stored order. Only meaningful when
    /// [`Self::is_clean`] holds — the list then contains one update per
    /// live object, so horizon filtering is all a kernel pass would add.
    pub fn snapshot_clean(&self, horizon: Timestamp) -> Vec<CachedMessage> {
        debug_assert!(self.is_clean(), "snapshot of a dirty list");
        self.buckets
            .iter()
            .flat_map(|b| b.messages.iter())
            .filter(|m| m.time >= horizon && !m.is_tombstone())
            .copied()
            .collect()
    }

    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Read access to the buckets (diagnostics/validation).
    pub fn buckets(&self) -> impl Iterator<Item = &Bucket> {
        self.buckets.iter()
    }

    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    pub fn total_messages(&self) -> usize {
        self.buckets.iter().map(|b| b.messages.len()).sum()
    }

    /// Resident bytes: full bucket arrays (buckets are fixed-size slabs).
    pub fn size_bytes(&self) -> u64 {
        self.buckets.len() as u64 * (self.bucket_capacity as u64 * CachedMessage::WIRE_BYTES + 24)
    }
}

/// The per-cell message lists of a server, each behind its own lock.
///
/// Lock granularity is one mutex per cell: updates and cleaning touch
/// disjoint cells far more often than not, and the refinement worker pool
/// never holds more than one cell's lock at a time, so there is no lock
/// ordering to get wrong (acquire, read/write, release — never nested).
#[derive(Debug)]
pub struct CellLists {
    cells: Vec<Mutex<MessageList>>,
}

impl CellLists {
    pub fn new(num_cells: usize, bucket_capacity: usize) -> Self {
        Self {
            cells: (0..num_cells)
                .map(|_| Mutex::new(MessageList::new(bucket_capacity)))
                .collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Lock one cell's list. Callers must not hold another cell's guard.
    pub fn lock(&self, cell_index: usize) -> MutexGuard<'_, MessageList> {
        self.cells[cell_index].lock()
    }

    /// Sum of `f` over all cells (diagnostics; locks one cell at a time).
    pub fn sum_over<T: std::iter::Sum>(&self, f: impl Fn(&MessageList) -> T) -> T {
        self.cells.iter().map(|c| f(&c.lock())).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ObjectId;
    use roadnet::{EdgeId, EdgePosition};

    fn msg(o: u64, t: u64) -> CachedMessage {
        CachedMessage::update(ObjectId(o), EdgePosition::new(EdgeId(0), 0), Timestamp(t))
    }

    #[test]
    fn append_fills_buckets_in_order() {
        let mut l = MessageList::new(3);
        for i in 0..7 {
            l.append(msg(i, i));
        }
        assert_eq!(l.num_buckets(), 3);
        assert_eq!(l.total_messages(), 7);
    }

    #[test]
    fn bucket_latest_tracks_max() {
        let mut l = MessageList::new(8);
        l.append(msg(1, 5));
        l.append(msg(2, 3));
        let buckets = l.take_for_cleaning(Timestamp(6), 100);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].latest, Timestamp(5));
    }

    #[test]
    fn take_discards_expired_buckets() {
        let mut l = MessageList::new(2);
        l.append(msg(1, 10));
        l.append(msg(2, 11)); // bucket 0, latest 11
        l.append(msg(3, 500)); // bucket 1, latest 500
        let kept = l.take_for_cleaning(Timestamp(600), 200);
        // horizon = 400: bucket 0 (latest 11) dropped, bucket 1 kept.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].messages[0].object, ObjectId(3));
        assert!(l.is_empty());
    }

    #[test]
    fn take_keeps_bucket_with_one_fresh_message() {
        // A bucket is kept if its *latest* message is fresh, even if earlier
        // messages in it are stale — per-message filtering happens on GPU.
        let mut l = MessageList::new(8);
        l.append(msg(1, 10));
        l.append(msg(2, 1000));
        let kept = l.take_for_cleaning(Timestamp(1100), 200);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].messages.len(), 2);
    }

    #[test]
    fn delta_skips_consolidated_prefix() {
        let mut l = MessageList::new(2);
        l.restore_consolidated(&[msg(1, 10), msg(2, 11), msg(3, 12)]);
        l.mark_clean();
        assert_eq!(l.consolidated_len(), 3);
        l.append(msg(4, 20));
        l.append(msg(5, 21));
        let delta = l.take_delta_for_cleaning(Timestamp(30), 100);
        let ids: Vec<u64> = delta
            .iter()
            .flat_map(|b| b.messages.iter().map(|m| m.object.0))
            .collect();
        assert_eq!(ids, vec![4, 5], "delta must exclude the prefix");
        assert!(l.is_empty());
        assert_eq!(l.consolidated_len(), 0);
    }

    #[test]
    fn delta_splits_straddling_bucket() {
        // Capacity 4: prefix of 3 leaves one free slot in the front bucket,
        // so the first append lands in a bucket that is part prefix.
        let mut l = MessageList::new(4);
        l.restore_consolidated(&[msg(1, 10), msg(2, 11), msg(3, 12)]);
        l.mark_clean();
        l.append(msg(4, 20));
        l.append(msg(5, 21));
        let delta = l.take_delta_for_cleaning(Timestamp(30), 100);
        let ids: Vec<u64> = delta
            .iter()
            .flat_map(|b| b.messages.iter().map(|m| m.object.0))
            .collect();
        assert_eq!(ids, vec![4, 5]);
        // The straddling bucket's latest reflects the remaining tail only.
        assert!(delta.iter().all(|b| b.latest >= Timestamp(20)));
    }

    #[test]
    fn delta_drops_expired_buckets() {
        let mut l = MessageList::new(2);
        l.restore_consolidated(&[msg(1, 10)]);
        l.mark_clean();
        l.append(msg(2, 11)); // completes the straddling bucket (latest 11)
        l.append(msg(3, 12));
        l.append(msg(4, 5000)); // shares a bucket with msg 3 (latest 5000)
        let delta = l.take_delta_for_cleaning(Timestamp(5100), 500);
        let ids: Vec<u64> = delta
            .iter()
            .flat_map(|b| b.messages.iter().map(|m| m.object.0))
            .collect();
        // horizon = 4600: the [2] remainder (latest 11) is dropped wholesale;
        // [3, 4] survives as a bucket (per-message expiry is the kernel's).
        assert_eq!(ids, vec![3, 4], "stale delta bucket must be dropped");
    }

    #[test]
    fn full_freeze_resets_prefix() {
        let mut l = MessageList::new(4);
        l.restore_consolidated(&[msg(1, 10)]);
        l.mark_clean();
        let _ = l.take_for_cleaning(Timestamp(20), 100);
        assert_eq!(l.consolidated_len(), 0);
    }

    #[test]
    fn restore_goes_before_new_arrivals() {
        let mut l = MessageList::new(4);
        l.append(msg(1, 10));
        let _frozen = l.take_for_cleaning(Timestamp(11), 100);
        // A message arrives "while the GPU is busy".
        l.append(msg(2, 12));
        l.restore_consolidated(&[msg(1, 10)]);
        // Consolidated bucket first, arrival after.
        let all = l.take_for_cleaning(Timestamp(13), 100);
        assert_eq!(all[0].messages[0].object, ObjectId(1));
        assert_eq!(all[1].messages[0].object, ObjectId(2));
    }

    #[test]
    fn restore_chunks_by_capacity() {
        let mut l = MessageList::new(2);
        l.restore_consolidated(&(0..5).map(|i| msg(i, i)).collect::<Vec<_>>());
        assert_eq!(l.num_buckets(), 3);
        assert_eq!(l.total_messages(), 5);
        // Order preserved across chunks.
        let taken = l.take_for_cleaning(Timestamp(10), 100);
        let ids: Vec<u64> = taken
            .iter()
            .flat_map(|b| b.messages.iter().map(|m| m.object.0))
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn restore_empty_is_noop() {
        let mut l = MessageList::new(2);
        l.restore_consolidated(&[]);
        assert!(l.is_empty());
    }

    #[test]
    fn epochs_track_appends_and_cleaning() {
        let mut l = MessageList::new(4);
        assert!(l.is_clean(), "empty list is trivially clean");
        l.append(msg(1, 10));
        assert!(!l.is_clean(), "append dirties the list");
        let e = l.epoch();
        // Simulate a cleaning pass: freeze, restore, stamp.
        let _frozen = l.take_for_cleaning(Timestamp(11), 100);
        l.restore_consolidated(&[msg(1, 10)]);
        l.mark_clean();
        assert!(l.is_clean());
        assert_eq!(l.epoch(), e, "cleaning does not advance the epoch");
        l.append(msg(2, 12));
        assert!(!l.is_clean(), "stamp invalidated by a later append");
        assert!(l.epoch() > e);
    }

    #[test]
    fn snapshot_filters_by_horizon() {
        let mut l = MessageList::new(4);
        l.restore_consolidated(&[msg(1, 10), msg(2, 500), msg(3, 600)]);
        l.mark_clean();
        let fresh = l.snapshot_clean(Timestamp(400));
        let ids: Vec<u64> = fresh.iter().map(|m| m.object.0).collect();
        assert_eq!(ids, vec![2, 3], "expired message 1 filtered out");
        // List content itself is untouched by the snapshot.
        assert_eq!(l.total_messages(), 3);
        assert!(l.is_clean());
    }

    #[test]
    fn cell_lists_lock_independently() {
        let lists = CellLists::new(3, 4);
        lists.lock(0).append(msg(1, 10));
        // Holding cell 0's guard does not block cell 1.
        let g0 = lists.lock(0);
        lists.lock(1).append(msg(2, 20));
        drop(g0);
        let total: usize = lists.sum_over(|l| l.total_messages());
        assert_eq!(total, 2);
        assert_eq!(lists.len(), 3);
    }

    #[test]
    fn append_batch_bumps_epoch_once() {
        let mut l = MessageList::new(3);
        let e0 = l.epoch();
        l.append_batch(&[msg(1, 10), msg(2, 11), msg(3, 12), msg(4, 13)]);
        assert_eq!(l.epoch(), e0 + 1, "one bump for the whole run");
        assert_eq!(l.total_messages(), 4);
        assert_eq!(l.num_buckets(), 2);
        // Order matches singly-appended messages.
        let mut single = MessageList::new(3);
        for i in 1..=4 {
            single.append(msg(i, 9 + i));
        }
        let a: Vec<u64> = l
            .take_for_cleaning(Timestamp(20), 100)
            .iter()
            .flat_map(|b| b.messages.iter().map(|m| m.object.0))
            .collect();
        let b: Vec<u64> = single
            .take_for_cleaning(Timestamp(20), 100)
            .iter()
            .flat_map(|b| b.messages.iter().map(|m| m.object.0))
            .collect();
        assert_eq!(a, b);
        // Empty batch is a no-op: no epoch bump, clean stamp untouched.
        let e = l.epoch();
        l.append_batch(&[]);
        assert_eq!(l.epoch(), e);
    }

    #[test]
    fn recycled_slabs_are_reused() {
        let mut l = MessageList::new(4);
        for i in 0..8 {
            l.append(msg(i, i));
        }
        let (allocs0, reuses0) = l.bucket_alloc_stats();
        assert_eq!((allocs0, reuses0), (2, 0));
        // Retire the frozen buckets back into the pool.
        for b in l.take_for_cleaning(Timestamp(10), 100) {
            l.recycle(b.messages);
        }
        assert_eq!(l.free_slabs(), 2);
        for i in 0..8 {
            l.append(msg(i, i));
        }
        let (allocs1, reuses1) = l.bucket_alloc_stats();
        assert_eq!(
            (allocs1, reuses1),
            (2, 2),
            "steady-state appends must come from the pool, not the heap"
        );
        assert_eq!(l.free_slabs(), 0);
    }

    #[test]
    fn recycle_rejects_undersized_slabs() {
        let mut l = MessageList::new(8);
        l.recycle(Vec::with_capacity(2));
        assert_eq!(l.free_slabs(), 0, "undersized slab would force a realloc");
        l.recycle(Vec::with_capacity(8));
        assert_eq!(l.free_slabs(), 1);
    }

    #[test]
    fn size_bytes_counts_slabs() {
        let mut l = MessageList::new(4);
        assert_eq!(l.size_bytes(), 0);
        l.append(msg(1, 1));
        let one = l.size_bytes();
        for i in 0..4 {
            l.append(msg(i, 2));
        }
        assert!(l.size_bytes() > one);
    }
}
