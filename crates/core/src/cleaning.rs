//! Message cleaning (paper Algorithm 2).
//!
//! Given a set of cells, freeze their message lists, ship the surviving
//! buckets to the device in pipelined groups (§V-A), run the X-shuffle
//! kernel, copy the result table ℛ back, and write the consolidated
//! per-object messages back into the cells' lists.
//!
//! Cells whose lists are still exactly the result of their last cleaning
//! pass (no append since — see the epoch tracking in
//! [`crate::message_list`]) are **skipped**: their consolidated messages
//! are served straight from the host cache, filtered by the caller's
//! expiry horizon, with no kernel launch and no transfer. The skip is
//! answer-preserving because cleaning a consolidated list is idempotent;
//! it only removes simulated device time and bus traffic.
//!
//! Cells that are dirty but whose last consolidated state is still
//! **device-resident** (see [`crate::residency`]) take the *delta-merge*
//! path: only the messages appended since the clean cross the bus, and the
//! fused [`xshuffle_merge`] kernel combines them with the resident state in
//! the same launch that cleans the cold cells. Copy-back for merged cells
//! ships only the objects that actually changed. Cold or evicted cells take
//! the full-upload path — residency is purely a cost optimisation and is
//! never required for correctness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gpu_sim::{pipelined_makespan, Device, SimNanos};

use crate::config::GGridConfig;
use crate::grid::CellId;
use crate::message::{CachedMessage, ObjectId, Timestamp};
use crate::message_list::CellLists;
use crate::object_table::FxBuildHasher;
use crate::residency::ResidentCellStore;
use crate::xshuffle::{xshuffle_clean, xshuffle_merge, WireMessage};

/// Cost report of one cleaning round.
#[derive(Clone, Copy, Debug, Default)]
pub struct CleaningReport {
    /// End-to-end simulated time: pipelined upload+kernel, plus the result
    /// copy back.
    pub time: SimNanos,
    /// Upload + kernel portion of `time` (copy-back excluded): everything
    /// that must finish before the result starts streaming back.
    pub compute_time: SimNanos,
    /// D2H copy-back portion of `time`, strictly after all compute. Callers
    /// that overlap streams (the batch pipeline) schedule this on a
    /// transfer stream so later kernels need not wait on it.
    pub copy_back_time: SimNanos,
    pub kernel_time: SimNanos,
    pub h2d_bytes: u64,
    /// Portion of `h2d_bytes` that was a delta upload to a resident cell.
    pub h2d_delta_bytes: u64,
    /// Portion of `h2d_bytes` that was a full (cold-path) upload.
    pub h2d_full_bytes: u64,
    pub d2h_bytes: u64,
    pub buckets: usize,
    pub messages: usize,
    /// Cells the kernel actually processed this round.
    pub cells_cleaned: usize,
    /// Cells served from the epoch-based clean-skip cache.
    pub cells_skipped: usize,
    /// Cells cleaned through the resident delta-merge path.
    pub resident_hits: usize,
    /// Resident cells evicted during this round (LRU or staleness).
    pub evictions: u64,
    /// Diagnostic surfaced from the kernel (Theorem 1 check).
    pub max_duplicates_seen: u32,
}

impl CleaningReport {
    /// Fold another report into this one: every counter and simulated
    /// clock is additive (callers modeling stream overlap use the
    /// per-shard reports directly instead), except the duplicate
    /// diagnostic, which is a max.
    pub fn merge(&mut self, other: &Self) {
        self.time += other.time;
        self.compute_time += other.compute_time;
        self.copy_back_time += other.copy_back_time;
        self.kernel_time += other.kernel_time;
        self.h2d_bytes += other.h2d_bytes;
        self.h2d_delta_bytes += other.h2d_delta_bytes;
        self.h2d_full_bytes += other.h2d_full_bytes;
        self.d2h_bytes += other.d2h_bytes;
        self.buckets += other.buckets;
        self.messages += other.messages;
        self.cells_cleaned += other.cells_cleaned;
        self.cells_skipped += other.cells_skipped;
        self.resident_hits += other.resident_hits;
        self.evictions += other.evictions;
        self.max_duplicates_seen = self.max_duplicates_seen.max(other.max_duplicates_seen);
    }
}

/// Objects found alive in the cleaned cells: newest position per object,
/// grouped by cell.
pub type CleanedObjects = HashMap<CellId, Vec<CachedMessage>, FxBuildHasher>;

/// Clean the message lists of `cells`.
///
/// `lists` is the per-cell message-list array (indexed by cell id). After
/// the call, each cleaned cell's list holds one consolidated message per
/// surviving object (plus anything that arrived during the simulated GPU
/// processing), and is stamped clean at its current epoch so repeat
/// requests can skip the kernel while no new message lands in the cell.
pub fn clean_cells(
    device: &mut Device,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    cells: &[CellId],
    config: &GGridConfig,
    now: Timestamp,
) -> (CleanedObjects, CleaningReport) {
    clean_cells_with_heat(device, lists, resident, cells, config, now, None)
}

/// [`clean_cells`] with an optional per-cell read-heat tally: every cell
/// served from the clean-skip cache bumps `read_heat[cell]`. This is the
/// replication signal of the sharded server — a cell that is repeatedly
/// read while already consolidated is exactly one whose list is worth
/// promoting onto the reading devices (see `GGridConfig::replicate_threshold`).
/// The tally never affects the cleaning output.
#[allow(clippy::too_many_arguments)]
pub fn clean_cells_with_heat(
    device: &mut Device,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    cells: &[CellId],
    config: &GGridConfig,
    now: Timestamp,
    read_heat: Option<&[AtomicU64]>,
) -> (CleanedObjects, CleaningReport) {
    let horizon = now.saturating_sub_ms(config.t_delta_ms);
    let mut out = CleanedObjects::default();
    let mut rep = CleaningReport::default();
    let evictions_before = resident.evictions();

    // Preprocessing (Algorithm 2 lines 1–5): three-way split. Cells whose
    // lists are untouched since the last clean are served from the host
    // cache (skip). Dirty cells whose consolidated state is still
    // device-resident ship only their delta (merge). Everything else
    // freezes and ships its full list (full). Messages are annotated with
    // their cell id; expired whole buckets never leave the host.
    let mut work: Vec<CellId> = Vec::with_capacity(cells.len());
    let mut merge: Vec<CellId> = Vec::new();
    let mut buckets: Vec<Vec<WireMessage>> = Vec::new();
    let mut full_msgs: usize = 0;
    let mut delta_msgs: usize = 0;
    let mut resident_msgs: Vec<WireMessage> = Vec::new();
    // Prior mirror per merge cell, for changed-object copy-back accounting.
    let mut prior: HashMap<CellId, Vec<CachedMessage>, FxBuildHasher> = HashMap::default();
    for &c in cells {
        let mut list = lists.lock(c.index());
        if config.clean_skip && list.is_clean() {
            rep.cells_skipped += 1;
            if let Some(heat) = read_heat {
                heat[c.index()].fetch_add(1, Ordering::Relaxed);
            }
            let cached = list.snapshot_clean(horizon);
            if !cached.is_empty() {
                out.insert(c, cached);
            }
            continue;
        }
        let mirror = resident
            .lookup(device, c, list.cleaned_epoch())
            .map(<[CachedMessage]>::to_vec);
        if let Some(mirror) = mirror {
            debug_assert_eq!(mirror.len(), list.consolidated_len());
            merge.push(c);
            resident_msgs.extend(mirror.iter().map(|&msg| WireMessage { msg, cell: c }));
            prior.insert(c, mirror);
            for bucket in list.take_delta_for_cleaning(now, config.t_delta_ms) {
                delta_msgs += bucket.messages.len();
                buckets.push(
                    bucket
                        .messages
                        .iter()
                        .map(|&msg| WireMessage { msg, cell: c })
                        .collect(),
                );
                // The frozen slab has served its purpose: pool it for the
                // next append (same lock acquisition — no extra locking).
                list.recycle(bucket.messages);
            }
        } else {
            work.push(c);
            for bucket in list.take_for_cleaning(now, config.t_delta_ms) {
                full_msgs += bucket.messages.len();
                buckets.push(
                    bucket
                        .messages
                        .iter()
                        .map(|&msg| WireMessage { msg, cell: c })
                        .collect(),
                );
                list.recycle(bucket.messages);
            }
        }
    }
    rep.cells_cleaned = work.len() + merge.len();
    rep.resident_hits = merge.len();

    let messages: usize = buckets.iter().map(|b| b.len()).sum();
    if buckets.is_empty() && resident_msgs.is_empty() {
        // Nothing survived the freeze: the worked cells are now empty,
        // which is the (trivial) consolidated state — stamp them so the
        // next request skips straight to the cache.
        for &c in work.iter().chain(&merge) {
            let mut list = lists.lock(c.index());
            list.mark_clean();
            resident.invalidate(device, c);
        }
        rep.evictions = resident.evictions() - evictions_before;
        return (out, rep);
    }

    // Upload in pipelined groups: the device starts cleaning the first
    // group while later groups are still on the wire (§V-A). Resident
    // state is already on the card and ships nothing.
    let mut h2d_bytes = 0u64;
    let overlapped;
    if !buckets.is_empty() {
        let chunks = config.transfer_chunks.clamp(1, buckets.len());
        let per_chunk = buckets.len().div_ceil(chunks);
        let mut chunk_bytes: Vec<u64> = Vec::with_capacity(chunks);
        for group in buckets.chunks(per_chunk) {
            let bytes: u64 = group
                .iter()
                .map(|b| b.len() as u64 * CachedMessage::WIRE_BYTES)
                .sum();
            chunk_bytes.push(bytes);
        }

        // Parallel processing (Algorithm 2 lines 6–9): one thread per
        // bucket, fused with the resident merge when any cell took the
        // delta path.
        let (output, report) = device.launch(buckets.len().max(resident_msgs.len()), |ctx| {
            if resident_msgs.is_empty() {
                xshuffle_clean(ctx, &buckets, config.eta, horizon)
            } else {
                xshuffle_merge(ctx, &resident_msgs, &buckets, config.eta, horizon)
            }
        });

        // Pipelined makespan: copy time per group against a proportional
        // share of the kernel time.
        let mut schedule: Vec<(SimNanos, SimNanos)> = Vec::with_capacity(chunk_bytes.len());
        for &bytes in &chunk_bytes {
            let copy = device.h2d(bytes);
            h2d_bytes += bytes;
            let share = if messages == 0 {
                SimNanos::ZERO
            } else {
                let frac = bytes as f64 / (messages as u64 * CachedMessage::WIRE_BYTES) as f64;
                SimNanos((report.time.0 as f64 * frac) as u64)
            };
            schedule.push((copy, share));
        }
        overlapped = pipelined_makespan(&schedule);

        finish_round(
            device, lists, resident, &work, &merge, &prior, output, &mut out, &mut rep,
        );
        rep.kernel_time = report.time;
    } else {
        // Delta-only round where every delta bucket expired on the host:
        // the merge kernel runs on resident state alone.
        let (output, report) = device.launch(resident_msgs.len(), |ctx| {
            xshuffle_merge(ctx, &resident_msgs, &[], config.eta, horizon)
        });
        finish_round(
            device, lists, resident, &work, &merge, &prior, output, &mut out, &mut rep,
        );
        rep.kernel_time = report.time;
        overlapped = report.time;
    }

    // Byte split between the cold path and the delta path. Every shipped
    // message is counted on exactly one path when it is frozen, so the
    // split is exact even when full and delta cells share a round.
    rep.h2d_full_bytes = full_msgs as u64 * CachedMessage::WIRE_BYTES;
    rep.h2d_delta_bytes = delta_msgs as u64 * CachedMessage::WIRE_BYTES;
    debug_assert_eq!(rep.h2d_full_bytes + rep.h2d_delta_bytes, h2d_bytes);

    rep.compute_time = overlapped;
    rep.time = rep.compute_time + rep.copy_back_time;
    rep.h2d_bytes = h2d_bytes;
    rep.buckets = buckets.len();
    rep.messages = messages;
    rep.evictions = resident.evictions() - evictions_before;
    (out, rep)
}

/// Copy-back accounting + CPU-side installation for one cleaning round.
///
/// Cells cleaned through the full path copy their whole consolidated list
/// back; cells cleaned through the resident merge path copy back only the
/// objects that changed relative to the prior resident mirror (plus 8-byte
/// ids for removed objects), and their device buffer is refreshed in place.
/// Every cleaned cell is stamped clean and, when the store accepts it,
/// (re-)promoted to device residency.
#[allow(clippy::too_many_arguments)]
fn finish_round(
    device: &mut Device,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    work: &[CellId],
    merge: &[CellId],
    prior: &HashMap<CellId, Vec<CachedMessage>, FxBuildHasher>,
    mut output: crate::xshuffle::CleanOutput,
    out: &mut CleanedObjects,
    rep: &mut CleaningReport,
) {
    let mut d2h_bytes = 0u64;
    for &c in work.iter().chain(merge) {
        let msgs = output.per_cell.remove(&c).unwrap_or_default();
        if let Some(prev) = prior.get(&c) {
            // Merge path: diff against the resident mirror.
            let before: HashMap<ObjectId, CachedMessage, FxBuildHasher> =
                prev.iter().map(|m| (m.object, *m)).collect();
            let changed = msgs
                .iter()
                .filter(|m| before.get(&m.object) != Some(*m))
                .count() as u64;
            let removed = prev
                .iter()
                .filter(|m| !msgs.iter().any(|n| n.object == m.object))
                .count() as u64;
            d2h_bytes += changed * CachedMessage::WIRE_BYTES + removed * 8;
        } else {
            d2h_bytes += msgs.len() as u64 * CachedMessage::WIRE_BYTES;
        }

        // Satellite of Algorithm 2 line 11: install move-only — the
        // consolidated list is written into the cell, stamped, promoted,
        // and handed to the caller without an extra copy.
        let mut list = lists.lock(c.index());
        list.restore_consolidated(&msgs);
        list.mark_clean();
        let epoch = list.epoch();
        drop(list);
        resident.install(device, c, epoch, &msgs);
        if !msgs.is_empty() {
            out.insert(c, msgs);
        }
    }
    rep.copy_back_time = device.d2h(d2h_bytes);
    rep.d2h_bytes = d2h_bytes;
    rep.max_duplicates_seen = rep.max_duplicates_seen.max(output.max_duplicates_seen);
    // Anything left in the kernel output belongs to cells outside the
    // round (cannot happen: wire messages carry their cell id).
    debug_assert!(output.per_cell.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ObjectId;
    use gpu_sim::DeviceSpec;
    use roadnet::{EdgeId, EdgePosition};

    fn msg(o: u64, t: u64) -> CachedMessage {
        CachedMessage::update(ObjectId(o), EdgePosition::new(EdgeId(0), 0), Timestamp(t))
    }

    fn config() -> GGridConfig {
        GGridConfig {
            eta: 4,
            bucket_capacity: 4,
            transfer_chunks: 2,
            t_delta_ms: 1000,
            ..Default::default()
        }
    }

    fn setup(n_cells: usize) -> (Device, CellLists, ResidentCellStore) {
        (
            Device::new(DeviceSpec::test_tiny()),
            CellLists::new(n_cells, 4),
            ResidentCellStore::new(GGridConfig::default().device_budget_bytes),
        )
    }

    #[test]
    fn cleans_only_requested_cells() {
        let (mut dev, lists, mut resident) = setup(3);
        lists.lock(0).append(msg(1, 100));
        lists.lock(1).append(msg(2, 100));
        lists.lock(2).append(msg(3, 100));
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0), CellId(2)],
            &config(),
            Timestamp(150),
        );
        assert!(objs.contains_key(&CellId(0)));
        assert!(objs.contains_key(&CellId(2)));
        assert!(!objs.contains_key(&CellId(1)));
        assert_eq!(rep.messages, 2);
        assert_eq!(rep.cells_cleaned, 2);
        // Cell 1 untouched.
        assert_eq!(lists.lock(1).total_messages(), 1);
    }

    #[test]
    fn consolidation_shrinks_lists() {
        let (mut dev, lists, mut resident) = setup(1);
        for t in 0..20 {
            lists.lock(0).append(msg(1, 100 + t));
            lists.lock(0).append(msg(2, 100 + t));
        }
        assert_eq!(lists.lock(0).total_messages(), 40);
        let (objs, _) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &config(),
            Timestamp(200),
        );
        assert_eq!(objs[&CellId(0)].len(), 2);
        // List now holds exactly one message per live object.
        assert_eq!(lists.lock(0).total_messages(), 2);
        // And they are the newest ones.
        let newest: Vec<u64> = objs[&CellId(0)].iter().map(|m| m.time.0).collect();
        assert!(newest.iter().all(|&t| t == 119));
    }

    #[test]
    fn empty_cells_cost_nothing() {
        let (mut dev, lists, mut resident) = setup(2);
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0), CellId(1)],
            &config(),
            Timestamp(100),
        );
        assert!(objs.is_empty());
        assert_eq!(rep.time, SimNanos::ZERO);
        assert_eq!(dev.ledger().h2d_transfers, 0);
    }

    #[test]
    fn transfers_metered_on_device() {
        let (mut dev, lists, mut resident) = setup(1);
        for t in 0..10 {
            lists.lock(0).append(msg(t, 100 + t));
        }
        let cfg = GGridConfig {
            transfer_chunks: 3,
            ..config()
        };
        let (_, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(200),
        );
        assert_eq!(rep.h2d_bytes, 10 * CachedMessage::WIRE_BYTES);
        assert_eq!(dev.ledger().h2d_bytes, rep.h2d_bytes);
        assert_eq!(dev.ledger().d2h_bytes, rep.d2h_bytes);
        assert!(rep.time > SimNanos::ZERO);
    }

    #[test]
    fn expired_buckets_not_shipped() {
        let (mut dev, lists, mut resident) = setup(1);
        lists.lock(0).append(msg(1, 10));
        lists.lock(0).append(msg(1, 11));
        lists.lock(0).append(msg(1, 12));
        lists.lock(0).append(msg(1, 13)); // bucket 0 full (cap 4), latest 13
        lists.lock(0).append(msg(2, 5000)); // bucket 1
        let cfg = GGridConfig {
            transfer_chunks: 1,
            t_delta_ms: 500,
            ..config()
        };
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(5100),
        );
        assert_eq!(rep.messages, 1, "stale bucket must be dropped on the CPU");
        assert_eq!(objs[&CellId(0)].len(), 1);
        assert_eq!(objs[&CellId(0)][0].object, ObjectId(2));
    }

    #[test]
    fn repeated_cleaning_is_idempotent() {
        let (mut dev, lists, mut resident) = setup(1);
        lists.lock(0).append(msg(7, 100));
        let cfg = GGridConfig {
            transfer_chunks: 1,
            ..config()
        };
        let (a, _) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
        );
        let (b, _) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(160),
        );
        assert_eq!(a[&CellId(0)], b[&CellId(0)]);
    }

    #[test]
    fn second_clean_skips_the_kernel() {
        let (mut dev, lists, mut resident) = setup(1);
        for t in 0..8 {
            lists.lock(0).append(msg(t, 100 + t));
        }
        let cfg = config();
        let (a, rep_a) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(200),
        );
        assert_eq!(rep_a.cells_cleaned, 1);
        assert_eq!(rep_a.cells_skipped, 0);
        let launches = dev.launches();
        let (b, rep_b) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(210),
        );
        assert_eq!(rep_b.cells_skipped, 1);
        assert_eq!(rep_b.cells_cleaned, 0);
        assert_eq!(rep_b.time, SimNanos::ZERO);
        assert_eq!(dev.launches(), launches, "skip must not launch a kernel");
        assert_eq!(a[&CellId(0)], b[&CellId(0)]);
    }

    #[test]
    fn append_invalidates_the_skip() {
        let (mut dev, lists, mut resident) = setup(1);
        lists.lock(0).append(msg(1, 100));
        let cfg = config();
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
        );
        lists.lock(0).append(msg(2, 160));
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(170),
        );
        assert_eq!(rep.cells_cleaned, 1, "appended cell must be re-cleaned");
        assert_eq!(rep.cells_skipped, 0);
        assert_eq!(objs[&CellId(0)].len(), 2);
    }

    #[test]
    fn skip_respects_a_later_horizon() {
        // A cached consolidated message that expires between two cleans
        // must not be served by the skip path.
        let (mut dev, lists, mut resident) = setup(1);
        lists.lock(0).append(msg(1, 100));
        lists.lock(0).append(msg(2, 4000));
        let cfg = GGridConfig {
            t_delta_ms: 500,
            ..config()
        };
        // First clean (horizon 3600) drops object 1, keeps object 2.
        let (first, _) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(4100),
        );
        assert_eq!(first[&CellId(0)].len(), 1);
        // Second clean (horizon 4100) skips, and the cached t=4000 message
        // is now past the horizon — the cell must come back empty.
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(4600),
        );
        assert_eq!(rep.cells_skipped, 1);
        assert!(!objs.contains_key(&CellId(0)));
    }

    #[test]
    fn second_clean_after_append_ships_only_the_delta() {
        let (mut dev, lists, mut resident) = setup(1);
        for o in 0..8 {
            lists.lock(0).append(msg(o, 100 + o));
        }
        let cfg = config();
        let (_, rep_a) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(200),
        );
        assert_eq!(rep_a.h2d_full_bytes, 8 * CachedMessage::WIRE_BYTES);
        assert_eq!(rep_a.h2d_delta_bytes, 0);
        assert!(
            resident.contains(CellId(0)),
            "first clean promotes the cell"
        );

        // One appended message dirties the cell; only it crosses the bus.
        lists.lock(0).append(msg(3, 210));
        let (objs, rep_b) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(250),
        );
        assert_eq!(rep_b.resident_hits, 1);
        assert_eq!(rep_b.cells_cleaned, 1);
        assert_eq!(rep_b.h2d_full_bytes, 0);
        assert_eq!(rep_b.h2d_delta_bytes, CachedMessage::WIRE_BYTES);
        // Copy-back is a diff: one changed object, not the whole list.
        assert_eq!(rep_b.d2h_bytes, CachedMessage::WIRE_BYTES);
        assert!(rep_b.d2h_bytes < rep_a.d2h_bytes);
        // Answer matches a from-scratch consolidation.
        assert_eq!(objs[&CellId(0)].len(), 8);
        let newest = objs[&CellId(0)]
            .iter()
            .find(|m| m.object == ObjectId(3))
            .unwrap();
        assert_eq!(newest.time, Timestamp(210));
    }

    #[test]
    fn mixed_round_splits_full_and_delta_bytes_exactly() {
        // One resident cell shipping a delta and one cold cell shipping its
        // full list in the *same* round: each path's bytes are attributed
        // exactly, and the two buckets sum to the round's H2D total.
        let (mut dev, lists, mut resident) = setup(2);
        for o in 0..4 {
            lists.lock(0).append(msg(o, 100));
        }
        let cfg = config();
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
        );
        assert!(resident.contains(CellId(0)));
        lists.lock(0).append(msg(0, 160)); // delta of one message
        for o in 10..13 {
            lists.lock(1).append(msg(o, 160)); // cold cell, full path
        }
        let (_, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0), CellId(1)],
            &cfg,
            Timestamp(200),
        );
        assert_eq!(rep.resident_hits, 1);
        assert_eq!(rep.cells_cleaned, 2);
        assert_eq!(rep.h2d_delta_bytes, CachedMessage::WIRE_BYTES);
        assert_eq!(rep.h2d_full_bytes, 3 * CachedMessage::WIRE_BYTES);
        assert_eq!(rep.h2d_bytes, rep.h2d_full_bytes + rep.h2d_delta_bytes);
    }

    #[test]
    fn merge_report_splits_compute_and_copy_back() {
        let (mut dev, lists, mut resident) = setup(1);
        for o in 0..8 {
            lists.lock(0).append(msg(o, 100));
        }
        let cfg = config();
        let (_, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(200),
        );
        assert!(rep.copy_back_time > SimNanos::ZERO);
        assert_eq!(rep.time, rep.compute_time + rep.copy_back_time);
    }

    #[test]
    fn zero_budget_disables_the_delta_path() {
        let (mut dev, lists, mut resident) = (
            Device::new(DeviceSpec::test_tiny()),
            CellLists::new(1, 4),
            ResidentCellStore::new(0),
        );
        lists.lock(0).append(msg(1, 100));
        let cfg = config();
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
        );
        assert!(!resident.contains(CellId(0)));
        lists.lock(0).append(msg(2, 160));
        let (_, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(170),
        );
        assert_eq!(rep.resident_hits, 0);
        assert_eq!(rep.h2d_delta_bytes, 0);
        assert_eq!(rep.h2d_full_bytes, 2 * CachedMessage::WIRE_BYTES);
    }

    #[test]
    fn evicted_cell_falls_back_to_full_upload_then_repromotes() {
        let (mut dev, lists, mut resident) = setup(1);
        for o in 0..4 {
            lists.lock(0).append(msg(o, 100));
        }
        let cfg = config();
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
        );
        assert!(resident.force_evict(&mut dev, CellId(0)));

        // Dirty the evicted cell: the clean must take the full path again.
        lists.lock(0).append(msg(9, 160));
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(200),
        );
        assert_eq!(rep.resident_hits, 0);
        assert_eq!(rep.h2d_delta_bytes, 0);
        assert_eq!(rep.h2d_full_bytes, 5 * CachedMessage::WIRE_BYTES);
        assert_eq!(objs[&CellId(0)].len(), 5);
        // ... and the cell is resident once more afterwards.
        assert!(resident.contains(CellId(0)));
    }

    #[test]
    fn delta_only_round_with_expired_delta_still_consolidates() {
        // The appended delta expires on the host before the second clean;
        // the merge kernel runs on resident state alone and the surviving
        // consolidated messages stay correct.
        let (mut dev, lists, mut resident) = setup(1);
        lists.lock(0).append(msg(1, 4000));
        let cfg = GGridConfig {
            t_delta_ms: 500,
            ..config()
        };
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(4100),
        );
        lists.lock(0).append(msg(2, 4150));
        // Horizon 4700: the delta (t=4150) is expired, resident msg (t=4000)
        // too — everything dies, cell consolidates to empty.
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(5200),
        );
        assert_eq!(rep.resident_hits, 1);
        assert_eq!(rep.h2d_bytes, 0, "expired delta must not ship");
        assert!(!objs.contains_key(&CellId(0)));
        assert_eq!(lists.lock(0).total_messages(), 0);
        assert!(
            !resident.contains(CellId(0)),
            "empty consolidation must drop residency"
        );
    }

    #[test]
    fn cleaning_pools_retired_slabs_for_reuse() {
        let (mut dev, lists, mut resident) = setup(1);
        for o in 0..12 {
            lists.lock(0).append(msg(o, 100));
        }
        let cfg = config();
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
        );
        // Warm-up cycle: one object keeps moving, population stays at 12,
        // so every later clean/append cycle recirculates the same slabs.
        lists.lock(0).append(msg(0, 200));
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(250),
        );
        let (allocs_warm, reuses_warm) = lists.lock(0).bucket_alloc_stats();
        for round in 0..4u64 {
            lists.lock(0).append(msg(0, 300 + round));
            clean_cells(
                &mut dev,
                &lists,
                &mut resident,
                &[CellId(0)],
                &cfg,
                Timestamp(350 + round),
            );
        }
        let (allocs, reuses) = lists.lock(0).bucket_alloc_stats();
        assert_eq!(
            allocs, allocs_warm,
            "steady-state clean/append cycles must not hit the heap"
        );
        assert!(reuses > reuses_warm, "cycles must run on pooled slabs");
    }

    #[test]
    fn clean_skip_tallies_read_heat() {
        let (mut dev, lists, mut resident) = setup(2);
        lists.lock(0).append(msg(1, 100));
        let cfg = config();
        let heat: Vec<AtomicU64> = (0..2).map(|_| AtomicU64::new(0)).collect();
        // First clean is a miss: no heat.
        clean_cells_with_heat(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
            Some(&heat),
        );
        assert_eq!(heat[0].load(Ordering::Relaxed), 0);
        // Two skip-served reads: two heat ticks, only on the read cell.
        for t in [160, 170] {
            clean_cells_with_heat(
                &mut dev,
                &lists,
                &mut resident,
                &[CellId(0)],
                &cfg,
                Timestamp(t),
                Some(&heat),
            );
        }
        assert_eq!(heat[0].load(Ordering::Relaxed), 2);
        assert_eq!(heat[1].load(Ordering::Relaxed), 0);
    }

    #[test]
    fn skip_disabled_by_config() {
        let (mut dev, lists, mut resident) = setup(1);
        lists.lock(0).append(msg(1, 100));
        let cfg = GGridConfig {
            clean_skip: false,
            ..config()
        };
        clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(150),
        );
        let launches = dev.launches();
        let (_, rep) = clean_cells(
            &mut dev,
            &lists,
            &mut resident,
            &[CellId(0)],
            &cfg,
            Timestamp(160),
        );
        assert_eq!(rep.cells_skipped, 0);
        assert_eq!(rep.cells_cleaned, 1);
        assert!(dev.launches() > launches, "ablation must re-run the kernel");
    }
}
