//! Message cleaning (paper Algorithm 2).
//!
//! Given a set of cells, freeze their message lists, ship the surviving
//! buckets to the device in pipelined groups (§V-A), run the X-shuffle
//! kernel, copy the result table ℛ back, and write the consolidated
//! per-object messages back into the cells' lists.
//!
//! Cells whose lists are still exactly the result of their last cleaning
//! pass (no append since — see the epoch tracking in
//! [`crate::message_list`]) are **skipped**: their consolidated messages
//! are served straight from the host cache, filtered by the caller's
//! expiry horizon, with no kernel launch and no transfer. The skip is
//! answer-preserving because cleaning a consolidated list is idempotent;
//! it only removes simulated device time and bus traffic.

use std::collections::HashMap;

use gpu_sim::{pipelined_makespan, Device, SimNanos};

use crate::config::GGridConfig;
use crate::grid::CellId;
use crate::message::{CachedMessage, Timestamp};
use crate::message_list::CellLists;
use crate::object_table::FxBuildHasher;
use crate::xshuffle::{xshuffle_clean, WireMessage};

/// Cost report of one cleaning round.
#[derive(Clone, Copy, Debug, Default)]
pub struct CleaningReport {
    /// End-to-end simulated time: pipelined upload+kernel, plus the result
    /// copy back.
    pub time: SimNanos,
    pub kernel_time: SimNanos,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub buckets: usize,
    pub messages: usize,
    /// Cells the kernel actually processed this round.
    pub cells_cleaned: usize,
    /// Cells served from the epoch-based clean-skip cache.
    pub cells_skipped: usize,
    /// Diagnostic surfaced from the kernel (Theorem 1 check).
    pub max_duplicates_seen: u32,
}

/// Objects found alive in the cleaned cells: newest position per object,
/// grouped by cell.
pub type CleanedObjects = HashMap<CellId, Vec<CachedMessage>, FxBuildHasher>;

/// Clean the message lists of `cells`.
///
/// `lists` is the per-cell message-list array (indexed by cell id). After
/// the call, each cleaned cell's list holds one consolidated message per
/// surviving object (plus anything that arrived during the simulated GPU
/// processing), and is stamped clean at its current epoch so repeat
/// requests can skip the kernel while no new message lands in the cell.
pub fn clean_cells(
    device: &mut Device,
    lists: &CellLists,
    cells: &[CellId],
    config: &GGridConfig,
    now: Timestamp,
) -> (CleanedObjects, CleaningReport) {
    let horizon = now.saturating_sub_ms(config.t_delta_ms);
    let mut out = CleanedObjects::default();
    let mut rep = CleaningReport::default();

    // Preprocessing (Algorithm 2 lines 1–5): split the request into cells
    // served from the clean-skip cache and cells needing a kernel pass;
    // freeze the latter's lists, drop expired buckets, and annotate
    // messages with their cell id.
    let mut work: Vec<CellId> = Vec::with_capacity(cells.len());
    let mut buckets: Vec<Vec<WireMessage>> = Vec::new();
    for &c in cells {
        let mut list = lists.lock(c.index());
        if config.clean_skip && list.is_clean() {
            rep.cells_skipped += 1;
            let cached = list.snapshot_clean(horizon);
            if !cached.is_empty() {
                out.insert(c, cached);
            }
            continue;
        }
        work.push(c);
        for bucket in list.take_for_cleaning(now, config.t_delta_ms) {
            buckets.push(
                bucket
                    .messages
                    .iter()
                    .map(|&msg| WireMessage { msg, cell: c })
                    .collect(),
            );
        }
    }
    rep.cells_cleaned = work.len();

    let messages: usize = buckets.iter().map(|b| b.len()).sum();
    if buckets.is_empty() {
        // Nothing survived the freeze: the worked cells are now empty,
        // which is the (trivial) consolidated state — stamp them so the
        // next request skips straight to the cache.
        for &c in &work {
            lists.lock(c.index()).mark_clean();
        }
        return (out, rep);
    }

    // Upload in pipelined groups: the device starts cleaning the first
    // group while later groups are still on the wire (§V-A).
    let chunks = config.transfer_chunks.clamp(1, buckets.len());
    let per_chunk = buckets.len().div_ceil(chunks);
    let mut chunk_bytes: Vec<u64> = Vec::with_capacity(chunks);
    for group in buckets.chunks(per_chunk) {
        let bytes: u64 = group
            .iter()
            .map(|b| b.len() as u64 * CachedMessage::WIRE_BYTES)
            .sum();
        chunk_bytes.push(bytes);
    }

    // Parallel processing (Algorithm 2 lines 6–9): one thread per bucket.
    let (output, report) = device.launch(buckets.len(), |ctx| {
        xshuffle_clean(ctx, &buckets, config.eta, horizon)
    });

    // Pipelined makespan: copy time per group against a proportional share
    // of the kernel time.
    let mut h2d_bytes = 0u64;
    let mut schedule: Vec<(SimNanos, SimNanos)> = Vec::with_capacity(chunk_bytes.len());
    for &bytes in &chunk_bytes {
        let copy = device.h2d(bytes);
        h2d_bytes += bytes;
        let share = if messages == 0 {
            SimNanos::ZERO
        } else {
            let frac = bytes as f64 / (messages as u64 * CachedMessage::WIRE_BYTES) as f64;
            SimNanos((report.time.0 as f64 * frac) as u64)
        };
        schedule.push((copy, share));
    }
    let overlapped = pipelined_makespan(&schedule);

    // Result computation + copy back (Algorithm 2 lines 10–11).
    let live_objects: usize = output.per_cell.values().map(|v| v.len()).sum();
    let d2h_bytes = live_objects as u64 * CachedMessage::WIRE_BYTES;
    let copy_back = device.d2h(d2h_bytes);

    // CPU side: install the consolidated lists and stamp their epochs.
    for &c in &work {
        let mut list = lists.lock(c.index());
        if let Some(msgs) = output.per_cell.get(&c) {
            list.restore_consolidated(msgs.clone());
        }
        list.mark_clean();
    }

    rep.time = overlapped + copy_back;
    rep.kernel_time = report.time;
    rep.h2d_bytes = h2d_bytes;
    rep.d2h_bytes = d2h_bytes;
    rep.buckets = buckets.len();
    rep.messages = messages;
    rep.max_duplicates_seen = output.max_duplicates_seen;
    out.extend(output.per_cell);
    (out, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ObjectId;
    use gpu_sim::DeviceSpec;
    use roadnet::{EdgeId, EdgePosition};

    fn msg(o: u64, t: u64) -> CachedMessage {
        CachedMessage::update(ObjectId(o), EdgePosition::new(EdgeId(0), 0), Timestamp(t))
    }

    fn config() -> GGridConfig {
        GGridConfig {
            eta: 4,
            bucket_capacity: 4,
            transfer_chunks: 2,
            t_delta_ms: 1000,
            ..Default::default()
        }
    }

    fn setup(n_cells: usize) -> (Device, CellLists) {
        (
            Device::new(DeviceSpec::test_tiny()),
            CellLists::new(n_cells, 4),
        )
    }

    #[test]
    fn cleans_only_requested_cells() {
        let (mut dev, lists) = setup(3);
        lists.lock(0).append(msg(1, 100));
        lists.lock(1).append(msg(2, 100));
        lists.lock(2).append(msg(3, 100));
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &[CellId(0), CellId(2)],
            &config(),
            Timestamp(150),
        );
        assert!(objs.contains_key(&CellId(0)));
        assert!(objs.contains_key(&CellId(2)));
        assert!(!objs.contains_key(&CellId(1)));
        assert_eq!(rep.messages, 2);
        assert_eq!(rep.cells_cleaned, 2);
        // Cell 1 untouched.
        assert_eq!(lists.lock(1).total_messages(), 1);
    }

    #[test]
    fn consolidation_shrinks_lists() {
        let (mut dev, lists) = setup(1);
        for t in 0..20 {
            lists.lock(0).append(msg(1, 100 + t));
            lists.lock(0).append(msg(2, 100 + t));
        }
        assert_eq!(lists.lock(0).total_messages(), 40);
        let (objs, _) = clean_cells(&mut dev, &lists, &[CellId(0)], &config(), Timestamp(200));
        assert_eq!(objs[&CellId(0)].len(), 2);
        // List now holds exactly one message per live object.
        assert_eq!(lists.lock(0).total_messages(), 2);
        // And they are the newest ones.
        let newest: Vec<u64> = objs[&CellId(0)].iter().map(|m| m.time.0).collect();
        assert!(newest.iter().all(|&t| t == 119));
    }

    #[test]
    fn empty_cells_cost_nothing() {
        let (mut dev, lists) = setup(2);
        let (objs, rep) = clean_cells(
            &mut dev,
            &lists,
            &[CellId(0), CellId(1)],
            &config(),
            Timestamp(100),
        );
        assert!(objs.is_empty());
        assert_eq!(rep.time, SimNanos::ZERO);
        assert_eq!(dev.ledger().h2d_transfers, 0);
    }

    #[test]
    fn transfers_metered_on_device() {
        let (mut dev, lists) = setup(1);
        for t in 0..10 {
            lists.lock(0).append(msg(t, 100 + t));
        }
        let cfg = GGridConfig {
            transfer_chunks: 3,
            ..config()
        };
        let (_, rep) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(200));
        assert_eq!(rep.h2d_bytes, 10 * CachedMessage::WIRE_BYTES);
        assert_eq!(dev.ledger().h2d_bytes, rep.h2d_bytes);
        assert_eq!(dev.ledger().d2h_bytes, rep.d2h_bytes);
        assert!(rep.time > SimNanos::ZERO);
    }

    #[test]
    fn expired_buckets_not_shipped() {
        let (mut dev, lists) = setup(1);
        lists.lock(0).append(msg(1, 10));
        lists.lock(0).append(msg(1, 11));
        lists.lock(0).append(msg(1, 12));
        lists.lock(0).append(msg(1, 13)); // bucket 0 full (cap 4), latest 13
        lists.lock(0).append(msg(2, 5000)); // bucket 1
        let cfg = GGridConfig {
            transfer_chunks: 1,
            t_delta_ms: 500,
            ..config()
        };
        let (objs, rep) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(5100));
        assert_eq!(rep.messages, 1, "stale bucket must be dropped on the CPU");
        assert_eq!(objs[&CellId(0)].len(), 1);
        assert_eq!(objs[&CellId(0)][0].object, ObjectId(2));
    }

    #[test]
    fn repeated_cleaning_is_idempotent() {
        let (mut dev, lists) = setup(1);
        lists.lock(0).append(msg(7, 100));
        let cfg = GGridConfig {
            transfer_chunks: 1,
            ..config()
        };
        let (a, _) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(150));
        let (b, _) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(160));
        assert_eq!(a[&CellId(0)], b[&CellId(0)]);
    }

    #[test]
    fn second_clean_skips_the_kernel() {
        let (mut dev, lists) = setup(1);
        for t in 0..8 {
            lists.lock(0).append(msg(t, 100 + t));
        }
        let cfg = config();
        let (a, rep_a) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(200));
        assert_eq!(rep_a.cells_cleaned, 1);
        assert_eq!(rep_a.cells_skipped, 0);
        let launches = dev.launches();
        let (b, rep_b) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(210));
        assert_eq!(rep_b.cells_skipped, 1);
        assert_eq!(rep_b.cells_cleaned, 0);
        assert_eq!(rep_b.time, SimNanos::ZERO);
        assert_eq!(dev.launches(), launches, "skip must not launch a kernel");
        assert_eq!(a[&CellId(0)], b[&CellId(0)]);
    }

    #[test]
    fn append_invalidates_the_skip() {
        let (mut dev, lists) = setup(1);
        lists.lock(0).append(msg(1, 100));
        let cfg = config();
        clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(150));
        lists.lock(0).append(msg(2, 160));
        let (objs, rep) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(170));
        assert_eq!(rep.cells_cleaned, 1, "appended cell must be re-cleaned");
        assert_eq!(rep.cells_skipped, 0);
        assert_eq!(objs[&CellId(0)].len(), 2);
    }

    #[test]
    fn skip_respects_a_later_horizon() {
        // A cached consolidated message that expires between two cleans
        // must not be served by the skip path.
        let (mut dev, lists) = setup(1);
        lists.lock(0).append(msg(1, 100));
        lists.lock(0).append(msg(2, 4000));
        let cfg = GGridConfig {
            t_delta_ms: 500,
            ..config()
        };
        // First clean (horizon 3600) drops object 1, keeps object 2.
        let (first, _) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(4100));
        assert_eq!(first[&CellId(0)].len(), 1);
        // Second clean (horizon 4100) skips, and the cached t=4000 message
        // is now past the horizon — the cell must come back empty.
        let (objs, rep) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(4600));
        assert_eq!(rep.cells_skipped, 1);
        assert!(!objs.contains_key(&CellId(0)));
    }

    #[test]
    fn skip_disabled_by_config() {
        let (mut dev, lists) = setup(1);
        lists.lock(0).append(msg(1, 100));
        let cfg = GGridConfig {
            clean_skip: false,
            ..config()
        };
        clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(150));
        let launches = dev.launches();
        let (_, rep) = clean_cells(&mut dev, &lists, &[CellId(0)], &cfg, Timestamp(160));
        assert_eq!(rep.cells_skipped, 0);
        assert_eq!(rep.cells_cleaned, 1);
        assert!(dev.launches() > launches, "ablation must re-run the kernel");
    }
}
