//! Message cleaning (paper Algorithm 2).
//!
//! Given a set of cells, freeze their message lists, ship the surviving
//! buckets to the device in pipelined groups (§V-A), run the X-shuffle
//! kernel, copy the result table ℛ back, and write the consolidated
//! per-object messages back into the cells' lists.

use std::collections::HashMap;

use gpu_sim::{pipelined_makespan, Device, SimNanos};

use crate::grid::CellId;
use crate::message::{CachedMessage, Timestamp};
use crate::message_list::MessageList;
use crate::object_table::FxBuildHasher;
use crate::xshuffle::{xshuffle_clean, WireMessage};

/// Cost report of one cleaning round.
#[derive(Clone, Copy, Debug, Default)]
pub struct CleaningReport {
    /// End-to-end simulated time: pipelined upload+kernel, plus the result
    /// copy back.
    pub time: SimNanos,
    pub kernel_time: SimNanos,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub buckets: usize,
    pub messages: usize,
    /// Diagnostic surfaced from the kernel (Theorem 1 check).
    pub max_duplicates_seen: u32,
}

/// Objects found alive in the cleaned cells: newest position per object,
/// grouped by cell.
pub type CleanedObjects = HashMap<CellId, Vec<CachedMessage>, FxBuildHasher>;

/// Clean the message lists of `cells`.
///
/// `lists` is the per-cell message-list array (indexed by cell id). After
/// the call, each cleaned cell's list holds one consolidated message per
/// surviving object (plus anything that arrived during the simulated GPU
/// processing — nothing, in the single-threaded simulation).
pub fn clean_cells(
    device: &mut Device,
    lists: &mut [MessageList],
    cells: &[CellId],
    eta: u32,
    transfer_chunks: usize,
    now: Timestamp,
    t_delta_ms: u64,
) -> (CleanedObjects, CleaningReport) {
    let horizon = now.saturating_sub_ms(t_delta_ms);

    // Preprocessing (Algorithm 2 lines 1–5): freeze each list, drop expired
    // buckets, and annotate messages with their cell id.
    let mut buckets: Vec<Vec<WireMessage>> = Vec::new();
    for &c in cells {
        for bucket in lists[c.index()].take_for_cleaning(now, t_delta_ms) {
            buckets.push(
                bucket
                    .messages
                    .iter()
                    .map(|&msg| WireMessage { msg, cell: c })
                    .collect(),
            );
        }
    }

    let messages: usize = buckets.iter().map(|b| b.len()).sum();
    if buckets.is_empty() {
        return (CleanedObjects::default(), CleaningReport::default());
    }

    // Upload in pipelined groups: the device starts cleaning the first
    // group while later groups are still on the wire (§V-A).
    let chunks = transfer_chunks.clamp(1, buckets.len());
    let per_chunk = buckets.len().div_ceil(chunks);
    let mut chunk_bytes: Vec<u64> = Vec::with_capacity(chunks);
    for group in buckets.chunks(per_chunk) {
        let bytes: u64 = group
            .iter()
            .map(|b| b.len() as u64 * CachedMessage::WIRE_BYTES)
            .sum();
        chunk_bytes.push(bytes);
    }

    // Parallel processing (Algorithm 2 lines 6–9): one thread per bucket.
    let (output, report) = device.launch(buckets.len(), |ctx| {
        xshuffle_clean(ctx, &buckets, eta, horizon)
    });

    // Pipelined makespan: copy time per group against a proportional share
    // of the kernel time.
    let mut h2d_bytes = 0u64;
    let mut schedule: Vec<(SimNanos, SimNanos)> = Vec::with_capacity(chunk_bytes.len());
    for &bytes in &chunk_bytes {
        let copy = device.h2d(bytes);
        h2d_bytes += bytes;
        let share = if messages == 0 {
            SimNanos::ZERO
        } else {
            let frac = bytes as f64 / (messages as u64 * CachedMessage::WIRE_BYTES) as f64;
            SimNanos((report.time.0 as f64 * frac) as u64)
        };
        schedule.push((copy, share));
    }
    let overlapped = pipelined_makespan(&schedule);

    // Result computation + copy back (Algorithm 2 lines 10–11).
    let live_objects: usize = output.per_cell.values().map(|v| v.len()).sum();
    let d2h_bytes = live_objects as u64 * CachedMessage::WIRE_BYTES;
    let copy_back = device.d2h(d2h_bytes);

    // CPU side: install the consolidated lists.
    for &c in cells {
        if let Some(msgs) = output.per_cell.get(&c) {
            lists[c.index()].restore_consolidated(msgs.clone());
        }
    }

    let rep = CleaningReport {
        time: overlapped + copy_back,
        kernel_time: report.time,
        h2d_bytes,
        d2h_bytes,
        buckets: buckets.len(),
        messages,
        max_duplicates_seen: output.max_duplicates_seen,
    };
    (output.per_cell, rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::ObjectId;
    use gpu_sim::DeviceSpec;
    use roadnet::{EdgeId, EdgePosition};

    fn msg(o: u64, t: u64) -> CachedMessage {
        CachedMessage::update(ObjectId(o), EdgePosition::new(EdgeId(0), 0), Timestamp(t))
    }

    fn setup(n_cells: usize) -> (Device, Vec<MessageList>) {
        (
            Device::new(DeviceSpec::test_tiny()),
            (0..n_cells).map(|_| MessageList::new(4)).collect(),
        )
    }

    #[test]
    fn cleans_only_requested_cells() {
        let (mut dev, mut lists) = setup(3);
        lists[0].append(msg(1, 100));
        lists[1].append(msg(2, 100));
        lists[2].append(msg(3, 100));
        let (objs, rep) = clean_cells(
            &mut dev,
            &mut lists,
            &[CellId(0), CellId(2)],
            4,
            2,
            Timestamp(150),
            1000,
        );
        assert!(objs.contains_key(&CellId(0)));
        assert!(objs.contains_key(&CellId(2)));
        assert!(!objs.contains_key(&CellId(1)));
        assert_eq!(rep.messages, 2);
        // Cell 1 untouched.
        assert_eq!(lists[1].total_messages(), 1);
    }

    #[test]
    fn consolidation_shrinks_lists() {
        let (mut dev, mut lists) = setup(1);
        for t in 0..20 {
            lists[0].append(msg(1, 100 + t));
            lists[0].append(msg(2, 100 + t));
        }
        assert_eq!(lists[0].total_messages(), 40);
        let (objs, _) = clean_cells(
            &mut dev,
            &mut lists,
            &[CellId(0)],
            4,
            2,
            Timestamp(200),
            1000,
        );
        assert_eq!(objs[&CellId(0)].len(), 2);
        // List now holds exactly one message per live object.
        assert_eq!(lists[0].total_messages(), 2);
        // And they are the newest ones.
        let newest: Vec<u64> = objs[&CellId(0)].iter().map(|m| m.time.0).collect();
        assert!(newest.iter().all(|&t| t == 119));
    }

    #[test]
    fn empty_cells_cost_nothing() {
        let (mut dev, mut lists) = setup(2);
        let (objs, rep) = clean_cells(
            &mut dev,
            &mut lists,
            &[CellId(0), CellId(1)],
            4,
            2,
            Timestamp(100),
            1000,
        );
        assert!(objs.is_empty());
        assert_eq!(rep.time, SimNanos::ZERO);
        assert_eq!(dev.ledger().h2d_transfers, 0);
    }

    #[test]
    fn transfers_metered_on_device() {
        let (mut dev, mut lists) = setup(1);
        for t in 0..10 {
            lists[0].append(msg(t, 100 + t));
        }
        let (_, rep) = clean_cells(
            &mut dev,
            &mut lists,
            &[CellId(0)],
            4,
            3,
            Timestamp(200),
            1000,
        );
        assert_eq!(rep.h2d_bytes, 10 * CachedMessage::WIRE_BYTES);
        assert_eq!(dev.ledger().h2d_bytes, rep.h2d_bytes);
        assert_eq!(dev.ledger().d2h_bytes, rep.d2h_bytes);
        assert!(rep.time > SimNanos::ZERO);
    }

    #[test]
    fn expired_buckets_not_shipped() {
        let (mut dev, mut lists) = setup(1);
        lists[0].append(msg(1, 10));
        lists[0].append(msg(1, 11));
        lists[0].append(msg(1, 12));
        lists[0].append(msg(1, 13)); // bucket 0 full (cap 4), latest 13
        lists[0].append(msg(2, 5000)); // bucket 1
        let (objs, rep) = clean_cells(
            &mut dev,
            &mut lists,
            &[CellId(0)],
            4,
            1,
            Timestamp(5100),
            500,
        );
        assert_eq!(rep.messages, 1, "stale bucket must be dropped on the CPU");
        assert_eq!(objs[&CellId(0)].len(), 1);
        assert_eq!(objs[&CellId(0)][0].object, ObjectId(2));
    }

    #[test]
    fn repeated_cleaning_is_idempotent() {
        let (mut dev, mut lists) = setup(1);
        lists[0].append(msg(7, 100));
        let (a, _) = clean_cells(&mut dev, &mut lists, &[CellId(0)], 4, 1, Timestamp(150), 1000);
        let (b, _) = clean_cells(&mut dev, &mut lists, &[CellId(0)], 4, 1, Timestamp(160), 1000);
        assert_eq!(a[&CellId(0)], b[&CellId(0)]);
    }
}
