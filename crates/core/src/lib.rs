//! # ggrid — the G-Grid index
//!
//! Reproduction of *"A GPU Accelerated Update Efficient Index for kNN
//! Queries in Road Networks"* (Li, Gu, Qi, He, Deng, Yu — ICDE 2018).
//!
//! The index answers snapshot k-nearest-neighbour queries over objects that
//! move on a road network and report their locations as timestamped
//! messages. Its two ideas:
//!
//! 1. **Lazy updates** (§IV): a message is *cached* in the per-cell
//!    [`message_list`] of the grid cell it lands in, instead of being applied
//!    to the index. Only when a query touches a cell are its cached messages
//!    *cleaned* — deduplicated down to the newest message per object — and
//!    that cleaning runs as a massively parallel GPU kernel built on the
//!    butterfly-shuffle [`xshuffle`] with the duplicate bound μ(η) of
//!    Theorem 1 ([`mu`]).
//! 2. **CPU–GPU collaboration** (§V): the GPU cleans messages, computes
//!    shortest-path distances over the candidate cells (a parallelised
//!    Bellman–Ford, Algorithm 5) and produces a candidate result set; the
//!    CPU refines it exactly by running bounded Dijkstra searches from the
//!    *unresolved vertices* on the candidate region's boundary
//!    (Algorithm 6).
//!
//! The entry point is [`server::GGridServer`]; the comparison interface
//! shared with the baseline indexes is [`api::MovingObjectIndex`].
//!
//! ```
//! use ggrid::prelude::*;
//! use roadnet::gen;
//!
//! let graph = gen::toy(42);
//! let mut server = GGridServer::new(graph, GGridConfig::default());
//! // An object reports its position on edge 0, 3 weight-units past its
//! // source vertex, at time 1000.
//! server.handle_update(ObjectId(7), EdgePosition::new(roadnet::EdgeId(0), 3), Timestamp(1000));
//! let answer = server.knn(EdgePosition::at_source(roadnet::EdgeId(5)), 1, Timestamp(1001));
//! assert_eq!(answer.len(), 1);
//! assert_eq!(answer[0].0, ObjectId(7));
//! ```

pub mod api;
pub mod batch;
pub mod busytime;
pub mod cleaning;
pub mod config;
pub mod grid;
pub mod ingest_buffer;
pub mod knn;
pub mod message;
pub mod message_list;
pub mod mu;
pub mod object_table;
pub mod residency;
pub mod scratch;
pub mod serve;
pub mod server;
pub mod shard;
pub mod stats;
pub mod subscription;
pub mod validate;
pub mod xshuffle;

/// Convenient re-exports for typical use.
pub mod prelude {
    pub use crate::api::{IndexSize, MovingObjectIndex, SimCosts};
    pub use crate::config::GGridConfig;
    pub use crate::message::{ObjectId, Timestamp};
    pub use crate::serve::{serve, ServeClient, ServeConfig, ServeOutcome, ServeQueue};
    pub use crate::server::GGridServer;
    pub use crate::subscription::{SubscriptionId, SubscriptionTickReport};
    pub use roadnet::{Distance, EdgePosition};
}

pub use api::{IndexSize, MovingObjectIndex, SimCosts};
pub use config::GGridConfig;
pub use message::{CachedMessage, ObjectId, Timestamp};
pub use server::GGridServer;
