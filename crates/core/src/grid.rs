//! The graph grid (paper §III-A).
//!
//! The road network is partitioned into `2^ψ × 2^ψ` cells of at most δᶜ
//! vertices each, using the multilevel bisection partitioner; sibling parts
//! of the recursion land in neighbouring cells. Cells are stored in one
//! array ordered by Z-value so nearby cells co-locate in memory — the layout
//! both the CPU and the (simulated) GPU copy of the grid share.
//!
//! Every vertex record stores the edges *entering* that vertex (destination
//! layout), capped at δᵛ per record; vertices with more in-edges spill into
//! *virtual vertices* — extra records in the same cell with the same vertex
//! id. An inverted index maps every edge to the cell of its **source**
//! vertex, which is the cell an object travelling on that edge belongs to.

use std::sync::Arc;

use roadnet::graph::{EdgeId, Graph, VertexId};
use roadnet::partition::hierarchical_bisection;
use roadnet::zorder;

/// Identifier of a grid cell: its Z-value / position in the cell array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CellId(pub u32);

impl CellId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge stored with its destination vertex: `e = ⟨id, v_s, w⟩`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridEdge {
    pub edge: EdgeId,
    pub source: VertexId,
    pub weight: u32,
}

/// One vertex record: `v = ⟨id, 𝒜_e, n⟩`. A vertex with more than δᵛ
/// in-edges occupies several records (the extras are *virtual vertices*).
#[derive(Clone, Debug)]
pub struct VertexRecord {
    pub vertex: VertexId,
    pub edges: Vec<GridEdge>,
    /// True for spill records of a vertex that exceeded δᵛ.
    pub is_virtual: bool,
}

/// One grid cell: `c = ⟨𝒜_v, n_v, n_e⟩`.
#[derive(Clone, Debug, Default)]
pub struct Cell {
    pub records: Vec<VertexRecord>,
    /// Real (non-virtual) vertices in the cell.
    pub num_vertices: u32,
    /// Edges whose source vertex is in this cell.
    pub num_out_edges: u32,
}

/// Per-cell CSR slice of the graph, in the layout the device keeps
/// resident: a dense vertex list plus in- and out-edge arrays indexed by
/// the vertex's *local* slot. Unlike the δᵛ-capped [`VertexRecord`]s, the
/// CSR stores every edge of every vertex exactly once (virtual spill
/// records are merged back), which is what the frontier kernel and the
/// boundary check relax over.
#[derive(Clone, Debug, Default)]
pub struct CellTopology {
    /// Real vertices of the cell, in record order.
    pub verts: Vec<VertexId>,
    /// `in_offsets[i]..in_offsets[i+1]` indexes `verts[i]`'s in-edges.
    pub in_offsets: Vec<u32>,
    /// Source vertex of each in-edge.
    pub in_src: Vec<VertexId>,
    pub in_weight: Vec<u32>,
    /// `out_offsets[i]..out_offsets[i+1]` indexes `verts[i]`'s out-edges.
    pub out_offsets: Vec<u32>,
    /// Destination vertex of each out-edge.
    pub out_dest: Vec<VertexId>,
    /// Cell (Z-value) of each out-edge's destination — the boundary check
    /// reads this instead of chasing the destination's cell through the
    /// vertex map.
    pub out_dest_cell: Vec<u32>,
    pub out_weight: Vec<u32>,
}

impl CellTopology {
    pub fn num_vertices(&self) -> usize {
        self.verts.len()
    }

    /// In-edges of the vertex at local slot `i`: `(source, weight)` pairs.
    pub fn in_edges_of(&self, i: usize) -> impl Iterator<Item = (VertexId, u32)> + '_ {
        let (a, b) = (self.in_offsets[i] as usize, self.in_offsets[i + 1] as usize);
        self.in_src[a..b]
            .iter()
            .copied()
            .zip(self.in_weight[a..b].iter().copied())
    }

    /// Out-edges of the vertex at local slot `i`:
    /// `(dest, dest_cell, weight)` triples.
    pub fn out_edges_of(&self, i: usize) -> impl Iterator<Item = (VertexId, u32, u32)> + '_ {
        let (a, b) = (
            self.out_offsets[i] as usize,
            self.out_offsets[i + 1] as usize,
        );
        (a..b).map(move |j| (self.out_dest[j], self.out_dest_cell[j], self.out_weight[j]))
    }

    pub fn out_degree_of(&self, i: usize) -> usize {
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// Wire footprint of the slice on the device: 4-byte vertex ids, 8-byte
    /// in-edge entries (source, weight), 12-byte out-edge entries (dest,
    /// dest cell, weight), plus both offset arrays.
    pub fn bytes(&self) -> u64 {
        let n = self.verts.len() as u64;
        let offs = 2 * (n + 1) * 4;
        n * 4 + self.in_src.len() as u64 * 8 + self.out_dest.len() as u64 * 12 + offs
    }
}

/// The graph grid.
pub struct GraphGrid {
    graph: Arc<Graph>,
    psi: u32,
    cells: Vec<Cell>,
    cell_of_vertex: Vec<u32>,
    /// Inverted index: edge → cell of its source vertex.
    cell_of_edge: Vec<u32>,
    /// Cell adjacency: cells connected by at least one edge in either
    /// direction (`getNeighbors` in Algorithm 4).
    neighbors: Vec<Vec<CellId>>,
    /// Per-cell CSR slices (device-resident topology).
    topologies: Vec<CellTopology>,
    /// Local slot of each vertex inside its cell's [`CellTopology`].
    topo_slot: Vec<u32>,
    /// Mean edge weight, rounded down (≥ 1); the frontier kernel's default
    /// bucket width δ.
    mean_edge_weight: u64,
    cell_capacity: usize,
    vertex_capacity: usize,
}

impl GraphGrid {
    /// Build the grid: choose ψ from `⌈½·log₂(|V|/δᶜ)⌉`, partition, and
    /// deepen if balance slack ever overflows a cell.
    pub fn build(graph: Arc<Graph>, cell_capacity: usize, vertex_capacity: usize) -> Self {
        assert!(cell_capacity >= 1 && vertex_capacity >= 1);
        let n = graph.num_vertices().max(1);
        let ratio = (n as f64 / cell_capacity as f64).max(1.0);
        let mut psi = ((ratio.log2() / 2.0).ceil() as u32).min(15);
        loop {
            let partition = hierarchical_bisection(&graph, 2 * psi);
            let sizes = partition.part_sizes();
            if sizes.iter().all(|&s| s <= cell_capacity) || psi >= 15 {
                return Self::assemble(
                    graph,
                    psi,
                    partition.assignment,
                    cell_capacity,
                    vertex_capacity,
                );
            }
            psi += 1;
        }
    }

    fn assemble(
        graph: Arc<Graph>,
        psi: u32,
        part_of_vertex: Vec<u32>,
        cell_capacity: usize,
        vertex_capacity: usize,
    ) -> Self {
        let side = 1u32 << psi;
        let num_cells = (side as usize) * (side as usize);

        // Map each part id (a 2ψ-bit string of bisection choices, MSB first)
        // onto grid coordinates by de-interleaving: even splits refine x,
        // odd splits refine y. Store the cell at the Z-value of (x, y).
        let part_to_z = |part: u32| -> u32 {
            let depth = 2 * psi;
            let (mut x, mut y) = (0u32, 0u32);
            for i in 0..depth {
                let bit = (part >> (depth - 1 - i)) & 1;
                if i % 2 == 0 {
                    x = (x << 1) | bit;
                } else {
                    y = (y << 1) | bit;
                }
            }
            zorder::encode(x, y)
        };

        // Cell membership in CSR form (counting sort). The old build kept
        // one `Vec<VertexId>` per cell — at paper scale (ψ = 9 → 262 144
        // cells holding ~1 vertex each) that is a heap allocation per cell;
        // offsets + one flat array is two allocations total, and placing
        // vertices in ascending id order preserves the per-cell order the
        // Vec-push build produced.
        let mut cell_of_vertex = vec![0u32; graph.num_vertices()];
        let mut member_offsets = vec![0u32; num_cells + 1];
        for v in graph.vertices() {
            let z = part_to_z(part_of_vertex[v.index()]);
            cell_of_vertex[v.index()] = z;
            member_offsets[z as usize + 1] += 1;
        }
        drop(part_of_vertex);
        for i in 0..num_cells {
            member_offsets[i + 1] += member_offsets[i];
        }
        let mut member_flat = vec![VertexId(0); graph.num_vertices()];
        let mut cursor = member_offsets.clone();
        for v in graph.vertices() {
            let z = cell_of_vertex[v.index()] as usize;
            member_flat[cursor[z] as usize] = v;
            cursor[z] += 1;
        }
        drop(cursor);
        let members = |c: usize| -> &[VertexId] {
            &member_flat[member_offsets[c] as usize..member_offsets[c + 1] as usize]
        };

        // Vertex records with δᵛ-capped edge arrays and virtual spill,
        // streamed cell by cell through one reused in-edge buffer.
        let mut cells: Vec<Cell> = Vec::with_capacity(num_cells);
        let mut in_buf: Vec<GridEdge> = Vec::new();
        for c in 0..num_cells {
            let mut cell = Cell::default();
            for &v in members(c) {
                in_buf.clear();
                in_buf.extend(graph.in_edges(v).map(|e| {
                    let edge = graph.edge(e);
                    GridEdge {
                        edge: e,
                        source: edge.source,
                        weight: edge.weight,
                    }
                }));
                cell.num_vertices += 1;
                if in_buf.is_empty() {
                    cell.records.push(VertexRecord {
                        vertex: v,
                        edges: Vec::new(),
                        is_virtual: false,
                    });
                } else {
                    for (i, chunk) in in_buf.chunks(vertex_capacity).enumerate() {
                        cell.records.push(VertexRecord {
                            vertex: v,
                            edges: chunk.to_vec(),
                            is_virtual: i > 0,
                        });
                    }
                }
            }
            cells.push(cell);
        }

        // Inverted index and out-edge counts.
        let mut cell_of_edge = vec![0u32; graph.num_edges()];
        for e in graph.edge_ids() {
            let src = graph.edge(e).source;
            let z = cell_of_vertex[src.index()];
            cell_of_edge[e.index()] = z;
            cells[z as usize].num_out_edges += 1;
        }

        // Cell adjacency from edges crossing cells (either direction): one
        // global pair list, sorted and deduplicated, then grouped — no
        // per-cell push Vecs on the way.
        let mut cross: Vec<(u32, u32)> = Vec::new();
        for e in graph.edge_ids() {
            let edge = graph.edge(e);
            let a = cell_of_vertex[edge.source.index()];
            let b = cell_of_vertex[edge.dest.index()];
            if a != b {
                cross.push((a, b));
                cross.push((b, a));
            }
        }
        cross.sort_unstable();
        cross.dedup();
        let mut neighbors: Vec<Vec<CellId>> = vec![Vec::new(); num_cells];
        for &(a, b) in &cross {
            neighbors[a as usize].push(CellId(b));
        }
        drop(cross);

        // Per-cell CSR slices: one entry per real vertex (virtual spill
        // merged back), every in- and out-edge stored exactly once.
        let mut topo_slot = vec![0u32; graph.num_vertices()];
        let mut topologies: Vec<CellTopology> = Vec::with_capacity(num_cells);
        for c in 0..num_cells {
            let mut t = CellTopology {
                in_offsets: vec![0],
                out_offsets: vec![0],
                ..Default::default()
            };
            for (slot, &v) in members(c).iter().enumerate() {
                topo_slot[v.index()] = slot as u32;
                t.verts.push(v);
                for e in graph.in_edges(v) {
                    let edge = graph.edge(e);
                    t.in_src.push(edge.source);
                    t.in_weight.push(edge.weight);
                }
                t.in_offsets.push(t.in_src.len() as u32);
                for e in graph.out_edges(v) {
                    let edge = graph.edge(e);
                    t.out_dest.push(edge.dest);
                    t.out_dest_cell.push(cell_of_vertex[edge.dest.index()]);
                    t.out_weight.push(edge.weight);
                }
                t.out_offsets.push(t.out_dest.len() as u32);
            }
            topologies.push(t);
        }

        let weight_sum: u64 = graph.edge_ids().map(|e| graph.edge(e).weight as u64).sum();
        let mean_edge_weight = (weight_sum / graph.num_edges().max(1) as u64).max(1);

        Self {
            graph,
            psi,
            cells,
            cell_of_vertex,
            cell_of_edge,
            neighbors,
            topologies,
            topo_slot,
            mean_edge_weight,
            cell_capacity,
            vertex_capacity,
        }
    }

    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    pub fn psi(&self) -> u32 {
        self.psi
    }

    /// δᶜ this grid was built with.
    pub fn cell_capacity(&self) -> usize {
        self.cell_capacity
    }

    /// δᵛ this grid was built with.
    pub fn vertex_capacity(&self) -> usize {
        self.vertex_capacity
    }

    /// Grid side length `2^ψ`.
    pub fn side(&self) -> u32 {
        1 << self.psi
    }

    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    pub fn cell(&self, c: CellId) -> &Cell {
        &self.cells[c.index()]
    }

    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Cell an object on `e` belongs to (cell of `e`'s source vertex) — the
    /// `getCell` of Algorithms 1 and 4, backed by the inverted index.
    pub fn cell_of_edge(&self, e: EdgeId) -> CellId {
        CellId(self.cell_of_edge[e.index()])
    }

    pub fn cell_of_vertex(&self, v: VertexId) -> CellId {
        CellId(self.cell_of_vertex[v.index()])
    }

    /// Cells connected to `c` by at least one edge.
    pub fn neighbors(&self, c: CellId) -> &[CellId] {
        &self.neighbors[c.index()]
    }

    /// Real vertices of a cell (virtual records deduplicated).
    pub fn vertices_in(&self, c: CellId) -> impl Iterator<Item = VertexId> + '_ {
        self.cell(c)
            .records
            .iter()
            .filter(|r| !r.is_virtual)
            .map(|r| r.vertex)
    }

    /// Total vertex records across all cells (one GPU thread each in the
    /// shortest-distance kernel).
    pub fn total_records(&self) -> usize {
        self.cells.iter().map(|c| c.records.len()).sum()
    }

    /// CSR slice of cell `c` — the layout kept resident on the device for
    /// the frontier kernel and the boundary check.
    pub fn topology(&self, c: CellId) -> &CellTopology {
        &self.topologies[c.index()]
    }

    /// Local slot of `v` inside its cell's [`CellTopology`].
    pub fn topo_slot_of(&self, v: VertexId) -> usize {
        self.topo_slot[v.index()] as usize
    }

    /// Mean edge weight (≥ 1): the frontier kernel's default bucket width δ
    /// when `GGridConfig::sdist_delta` is 0 (auto).
    pub fn mean_edge_weight(&self) -> u64 {
        self.mean_edge_weight
    }

    /// Bytes of the grid in the paper's §VII-C1 layout: 32-byte vertex
    /// records (δᵛ = 2 edges of 12 bytes plus header), cells padded to
    /// 128-byte lines, plus the inverted index (8 bytes per edge) and the
    /// vertex→cell map.
    pub fn grid_bytes(&self) -> u64 {
        let record_bytes = 8 + 12 * self.vertex_capacity as u64;
        let cell_payload = 8 + record_bytes * self.cell_capacity as u64;
        let cell_bytes = cell_payload.div_ceil(128) * 128;
        let cells = self.cells.len() as u64 * cell_bytes;
        let inverted = self.cell_of_edge.len() as u64 * 8;
        let vmap = self.cell_of_vertex.len() as u64 * 4;
        cells + inverted + vmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::gen;

    fn build_toy() -> GraphGrid {
        let g = Arc::new(gen::toy(42));
        GraphGrid::build(g, 3, 2)
    }

    #[test]
    fn every_vertex_lands_in_exactly_one_cell() {
        let grid = build_toy();
        let mut seen = vec![false; grid.graph().num_vertices()];
        for c in grid.cell_ids() {
            for v in grid.vertices_in(c) {
                assert!(!seen[v.index()], "{v:?} appears twice");
                seen[v.index()] = true;
                assert_eq!(grid.cell_of_vertex(v), c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_capacity_respected() {
        let grid = build_toy();
        for c in grid.cell_ids() {
            assert!(grid.cell(c).num_vertices as usize <= 3);
        }
    }

    #[test]
    fn vertex_capacity_spills_to_virtual() {
        let grid = build_toy();
        let mut any_virtual = false;
        for c in grid.cell_ids() {
            for r in &grid.cell(c).records {
                assert!(r.edges.len() <= 2, "record over vertex capacity");
                any_virtual |= r.is_virtual;
            }
        }
        // toy graph has degree-3+ vertices, so spill must occur with δᵛ=2.
        assert!(any_virtual);
    }

    #[test]
    fn all_in_edges_stored_exactly_once() {
        let grid = build_toy();
        let g = grid.graph().clone();
        let mut stored = vec![0u32; g.num_edges()];
        for c in grid.cell_ids() {
            for r in &grid.cell(c).records {
                for ge in &r.edges {
                    stored[ge.edge.index()] += 1;
                    // The record's cell is the destination's cell.
                    assert_eq!(grid.cell_of_vertex(r.vertex), c);
                    assert_eq!(g.edge(ge.edge).dest, r.vertex);
                    assert_eq!(g.edge(ge.edge).source, ge.source);
                }
            }
        }
        assert!(stored.iter().all(|&s| s == 1));
    }

    #[test]
    fn inverted_index_points_to_source_cell() {
        let grid = build_toy();
        let g = grid.graph().clone();
        for e in g.edge_ids() {
            let src = g.edge(e).source;
            assert_eq!(grid.cell_of_edge(e), grid.cell_of_vertex(src));
        }
    }

    #[test]
    fn out_edge_counts_sum_to_total() {
        let grid = build_toy();
        let total: u32 = grid.cell_ids().map(|c| grid.cell(c).num_out_edges).sum();
        assert_eq!(total as usize, grid.graph().num_edges());
    }

    #[test]
    fn neighbors_symmetric_and_irreflexive() {
        let grid = build_toy();
        for c in grid.cell_ids() {
            for &n in grid.neighbors(c) {
                assert_ne!(n, c);
                assert!(grid.neighbors(n).contains(&c), "{c:?} ↔ {n:?}");
            }
        }
    }

    #[test]
    fn cross_cell_edges_imply_neighborhood() {
        let grid = build_toy();
        let g = grid.graph().clone();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let a = grid.cell_of_vertex(edge.source);
            let b = grid.cell_of_vertex(edge.dest);
            if a != b {
                assert!(grid.neighbors(a).contains(&b));
            }
        }
    }

    #[test]
    fn psi_formula() {
        // 64 vertices, δᶜ = 3 → |V|/δᶜ ≈ 21.3 → ψ = ⌈log₂(21.3)/2⌉ = 3 or
        // deeper if balance required; grid must have ≥ ceil(64/3) cells.
        let grid = build_toy();
        assert!(grid.num_cells() >= 22);
        assert_eq!(grid.num_cells(), (grid.side() * grid.side()) as usize);
    }

    #[test]
    fn single_cell_degenerate_grid() {
        let g = Arc::new(gen::toy(1));
        let grid = GraphGrid::build(g.clone(), g.num_vertices(), 8);
        assert_eq!(grid.num_cells(), 1);
        assert!(grid.neighbors(CellId(0)).is_empty());
        assert_eq!(grid.vertices_in(CellId(0)).count(), g.num_vertices());
    }

    #[test]
    fn topology_matches_graph_edges_exactly_once() {
        let grid = build_toy();
        let g = grid.graph().clone();
        let mut in_stored = vec![0u32; g.num_edges()];
        let mut out_stored = vec![0u32; g.num_edges()];
        for c in grid.cell_ids() {
            let t = grid.topology(c);
            assert_eq!(t.num_vertices() as u32, grid.cell(c).num_vertices);
            for (slot, &v) in t.verts.iter().enumerate() {
                assert_eq!(grid.cell_of_vertex(v), c);
                assert_eq!(grid.topo_slot_of(v), slot);
                for (src, w) in t.in_edges_of(slot) {
                    let e = g
                        .in_edges(v)
                        .find(|&e| {
                            g.edge(e).source == src
                                && g.edge(e).weight == w
                                && in_stored[e.index()] == 0
                        })
                        .expect("in-edge not in graph");
                    in_stored[e.index()] += 1;
                }
                for (dest, dest_cell, w) in t.out_edges_of(slot) {
                    assert_eq!(CellId(dest_cell), grid.cell_of_vertex(dest));
                    let e = g
                        .out_edges(v)
                        .find(|&e| {
                            g.edge(e).dest == dest
                                && g.edge(e).weight == w
                                && out_stored[e.index()] == 0
                        })
                        .expect("out-edge not in graph");
                    out_stored[e.index()] += 1;
                }
                assert_eq!(t.out_degree_of(slot), g.out_degree(v));
            }
        }
        // Every edge appears exactly once on each side — virtual spill
        // records are merged back into one CSR slot.
        assert!(in_stored.iter().all(|&s| s == 1));
        assert!(out_stored.iter().all(|&s| s == 1));
    }

    #[test]
    fn topology_bytes_positive_and_mean_weight_sane() {
        let grid = build_toy();
        let total: u64 = grid.cell_ids().map(|c| grid.topology(c).bytes()).sum();
        assert!(total > 0);
        let g = grid.graph().clone();
        let max_w = g.edge_ids().map(|e| g.edge(e).weight as u64).max().unwrap();
        assert!(grid.mean_edge_weight() >= 1);
        assert!(grid.mean_edge_weight() <= max_w);
    }

    #[test]
    fn grid_bytes_positive_and_scales() {
        let small = build_toy();
        let big = GraphGrid::build(
            Arc::new(gen::grid_city(&gen::GridCityParams {
                rows: 16,
                cols: 16,
                ..Default::default()
            })),
            3,
            2,
        );
        assert!(small.grid_bytes() > 0);
        assert!(big.grid_bytes() > small.grid_bytes());
    }
}
