//! The graph grid (paper §III-A).
//!
//! The road network is partitioned into `2^ψ × 2^ψ` cells of at most δᶜ
//! vertices each, using the multilevel bisection partitioner; sibling parts
//! of the recursion land in neighbouring cells. Cells are stored in one
//! array ordered by Z-value so nearby cells co-locate in memory — the layout
//! both the CPU and the (simulated) GPU copy of the grid share.
//!
//! Every vertex record stores the edges *entering* that vertex (destination
//! layout), capped at δᵛ per record; vertices with more in-edges spill into
//! *virtual vertices* — extra records in the same cell with the same vertex
//! id. An inverted index maps every edge to the cell of its **source**
//! vertex, which is the cell an object travelling on that edge belongs to.

use std::sync::Arc;

use roadnet::graph::{EdgeId, Graph, VertexId};
use roadnet::partition::hierarchical_bisection;
use roadnet::zorder;

/// Identifier of a grid cell: its Z-value / position in the cell array.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct CellId(pub u32);

impl CellId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An edge stored with its destination vertex: `e = ⟨id, v_s, w⟩`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridEdge {
    pub edge: EdgeId,
    pub source: VertexId,
    pub weight: u32,
}

/// One vertex record: `v = ⟨id, 𝒜_e, n⟩`. A vertex with more than δᵛ
/// in-edges occupies several records (the extras are *virtual vertices*).
#[derive(Clone, Debug)]
pub struct VertexRecord {
    pub vertex: VertexId,
    pub edges: Vec<GridEdge>,
    /// True for spill records of a vertex that exceeded δᵛ.
    pub is_virtual: bool,
}

/// One grid cell: `c = ⟨𝒜_v, n_v, n_e⟩`.
#[derive(Clone, Debug, Default)]
pub struct Cell {
    pub records: Vec<VertexRecord>,
    /// Real (non-virtual) vertices in the cell.
    pub num_vertices: u32,
    /// Edges whose source vertex is in this cell.
    pub num_out_edges: u32,
}

/// The graph grid.
pub struct GraphGrid {
    graph: Arc<Graph>,
    psi: u32,
    cells: Vec<Cell>,
    cell_of_vertex: Vec<u32>,
    /// Inverted index: edge → cell of its source vertex.
    cell_of_edge: Vec<u32>,
    /// Cell adjacency: cells connected by at least one edge in either
    /// direction (`getNeighbors` in Algorithm 4).
    neighbors: Vec<Vec<CellId>>,
    cell_capacity: usize,
    vertex_capacity: usize,
}

impl GraphGrid {
    /// Build the grid: choose ψ from `⌈½·log₂(|V|/δᶜ)⌉`, partition, and
    /// deepen if balance slack ever overflows a cell.
    pub fn build(graph: Arc<Graph>, cell_capacity: usize, vertex_capacity: usize) -> Self {
        assert!(cell_capacity >= 1 && vertex_capacity >= 1);
        let n = graph.num_vertices().max(1);
        let ratio = (n as f64 / cell_capacity as f64).max(1.0);
        let mut psi = ((ratio.log2() / 2.0).ceil() as u32).min(15);
        loop {
            let partition = hierarchical_bisection(&graph, 2 * psi);
            let sizes = partition.part_sizes();
            if sizes.iter().all(|&s| s <= cell_capacity) || psi >= 15 {
                return Self::assemble(
                    graph,
                    psi,
                    partition.assignment,
                    cell_capacity,
                    vertex_capacity,
                );
            }
            psi += 1;
        }
    }

    fn assemble(
        graph: Arc<Graph>,
        psi: u32,
        part_of_vertex: Vec<u32>,
        cell_capacity: usize,
        vertex_capacity: usize,
    ) -> Self {
        let side = 1u32 << psi;
        let num_cells = (side as usize) * (side as usize);

        // Map each part id (a 2ψ-bit string of bisection choices, MSB first)
        // onto grid coordinates by de-interleaving: even splits refine x,
        // odd splits refine y. Store the cell at the Z-value of (x, y).
        let part_to_z = |part: u32| -> u32 {
            let depth = 2 * psi;
            let (mut x, mut y) = (0u32, 0u32);
            for i in 0..depth {
                let bit = (part >> (depth - 1 - i)) & 1;
                if i % 2 == 0 {
                    x = (x << 1) | bit;
                } else {
                    y = (y << 1) | bit;
                }
            }
            zorder::encode(x, y)
        };

        let mut cell_of_vertex = vec![0u32; graph.num_vertices()];
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_cells];
        for v in graph.vertices() {
            let z = part_to_z(part_of_vertex[v.index()]);
            cell_of_vertex[v.index()] = z;
            members[z as usize].push(v);
        }

        // Vertex records with δᵛ-capped edge arrays and virtual spill.
        let mut cells: Vec<Cell> = Vec::with_capacity(num_cells);
        for mem in &members {
            let mut cell = Cell::default();
            for &v in mem {
                let in_edges: Vec<GridEdge> = graph
                    .in_edges(v)
                    .map(|e| {
                        let edge = graph.edge(e);
                        GridEdge {
                            edge: e,
                            source: edge.source,
                            weight: edge.weight,
                        }
                    })
                    .collect();
                cell.num_vertices += 1;
                if in_edges.is_empty() {
                    cell.records.push(VertexRecord {
                        vertex: v,
                        edges: Vec::new(),
                        is_virtual: false,
                    });
                } else {
                    for (i, chunk) in in_edges.chunks(vertex_capacity).enumerate() {
                        cell.records.push(VertexRecord {
                            vertex: v,
                            edges: chunk.to_vec(),
                            is_virtual: i > 0,
                        });
                    }
                }
            }
            cells.push(cell);
        }

        // Inverted index and out-edge counts.
        let mut cell_of_edge = vec![0u32; graph.num_edges()];
        for e in graph.edge_ids() {
            let src = graph.edge(e).source;
            let z = cell_of_vertex[src.index()];
            cell_of_edge[e.index()] = z;
            cells[z as usize].num_out_edges += 1;
        }

        // Cell adjacency from edges crossing cells (either direction).
        let mut neighbor_sets: Vec<Vec<u32>> = vec![Vec::new(); num_cells];
        for e in graph.edge_ids() {
            let edge = graph.edge(e);
            let a = cell_of_vertex[edge.source.index()];
            let b = cell_of_vertex[edge.dest.index()];
            if a != b {
                neighbor_sets[a as usize].push(b);
                neighbor_sets[b as usize].push(a);
            }
        }
        let neighbors = neighbor_sets
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v.into_iter().map(CellId).collect()
            })
            .collect();

        Self {
            graph,
            psi,
            cells,
            cell_of_vertex,
            cell_of_edge,
            neighbors,
            cell_capacity,
            vertex_capacity,
        }
    }

    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    pub fn psi(&self) -> u32 {
        self.psi
    }

    /// δᶜ this grid was built with.
    pub fn cell_capacity(&self) -> usize {
        self.cell_capacity
    }

    /// δᵛ this grid was built with.
    pub fn vertex_capacity(&self) -> usize {
        self.vertex_capacity
    }

    /// Grid side length `2^ψ`.
    pub fn side(&self) -> u32 {
        1 << self.psi
    }

    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    pub fn cell(&self, c: CellId) -> &Cell {
        &self.cells[c.index()]
    }

    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Cell an object on `e` belongs to (cell of `e`'s source vertex) — the
    /// `getCell` of Algorithms 1 and 4, backed by the inverted index.
    pub fn cell_of_edge(&self, e: EdgeId) -> CellId {
        CellId(self.cell_of_edge[e.index()])
    }

    pub fn cell_of_vertex(&self, v: VertexId) -> CellId {
        CellId(self.cell_of_vertex[v.index()])
    }

    /// Cells connected to `c` by at least one edge.
    pub fn neighbors(&self, c: CellId) -> &[CellId] {
        &self.neighbors[c.index()]
    }

    /// Real vertices of a cell (virtual records deduplicated).
    pub fn vertices_in(&self, c: CellId) -> impl Iterator<Item = VertexId> + '_ {
        self.cell(c)
            .records
            .iter()
            .filter(|r| !r.is_virtual)
            .map(|r| r.vertex)
    }

    /// Total vertex records across all cells (one GPU thread each in the
    /// shortest-distance kernel).
    pub fn total_records(&self) -> usize {
        self.cells.iter().map(|c| c.records.len()).sum()
    }

    /// Bytes of the grid in the paper's §VII-C1 layout: 32-byte vertex
    /// records (δᵛ = 2 edges of 12 bytes plus header), cells padded to
    /// 128-byte lines, plus the inverted index (8 bytes per edge) and the
    /// vertex→cell map.
    pub fn grid_bytes(&self) -> u64 {
        let record_bytes = 8 + 12 * self.vertex_capacity as u64;
        let cell_payload = 8 + record_bytes * self.cell_capacity as u64;
        let cell_bytes = cell_payload.div_ceil(128) * 128;
        let cells = self.cells.len() as u64 * cell_bytes;
        let inverted = self.cell_of_edge.len() as u64 * 8;
        let vmap = self.cell_of_vertex.len() as u64 * 4;
        cells + inverted + vmap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::gen;

    fn build_toy() -> GraphGrid {
        let g = Arc::new(gen::toy(42));
        GraphGrid::build(g, 3, 2)
    }

    #[test]
    fn every_vertex_lands_in_exactly_one_cell() {
        let grid = build_toy();
        let mut seen = vec![false; grid.graph().num_vertices()];
        for c in grid.cell_ids() {
            for v in grid.vertices_in(c) {
                assert!(!seen[v.index()], "{v:?} appears twice");
                seen[v.index()] = true;
                assert_eq!(grid.cell_of_vertex(v), c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_capacity_respected() {
        let grid = build_toy();
        for c in grid.cell_ids() {
            assert!(grid.cell(c).num_vertices as usize <= 3);
        }
    }

    #[test]
    fn vertex_capacity_spills_to_virtual() {
        let grid = build_toy();
        let mut any_virtual = false;
        for c in grid.cell_ids() {
            for r in &grid.cell(c).records {
                assert!(r.edges.len() <= 2, "record over vertex capacity");
                any_virtual |= r.is_virtual;
            }
        }
        // toy graph has degree-3+ vertices, so spill must occur with δᵛ=2.
        assert!(any_virtual);
    }

    #[test]
    fn all_in_edges_stored_exactly_once() {
        let grid = build_toy();
        let g = grid.graph().clone();
        let mut stored = vec![0u32; g.num_edges()];
        for c in grid.cell_ids() {
            for r in &grid.cell(c).records {
                for ge in &r.edges {
                    stored[ge.edge.index()] += 1;
                    // The record's cell is the destination's cell.
                    assert_eq!(grid.cell_of_vertex(r.vertex), c);
                    assert_eq!(g.edge(ge.edge).dest, r.vertex);
                    assert_eq!(g.edge(ge.edge).source, ge.source);
                }
            }
        }
        assert!(stored.iter().all(|&s| s == 1));
    }

    #[test]
    fn inverted_index_points_to_source_cell() {
        let grid = build_toy();
        let g = grid.graph().clone();
        for e in g.edge_ids() {
            let src = g.edge(e).source;
            assert_eq!(grid.cell_of_edge(e), grid.cell_of_vertex(src));
        }
    }

    #[test]
    fn out_edge_counts_sum_to_total() {
        let grid = build_toy();
        let total: u32 = grid.cell_ids().map(|c| grid.cell(c).num_out_edges).sum();
        assert_eq!(total as usize, grid.graph().num_edges());
    }

    #[test]
    fn neighbors_symmetric_and_irreflexive() {
        let grid = build_toy();
        for c in grid.cell_ids() {
            for &n in grid.neighbors(c) {
                assert_ne!(n, c);
                assert!(grid.neighbors(n).contains(&c), "{c:?} ↔ {n:?}");
            }
        }
    }

    #[test]
    fn cross_cell_edges_imply_neighborhood() {
        let grid = build_toy();
        let g = grid.graph().clone();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            let a = grid.cell_of_vertex(edge.source);
            let b = grid.cell_of_vertex(edge.dest);
            if a != b {
                assert!(grid.neighbors(a).contains(&b));
            }
        }
    }

    #[test]
    fn psi_formula() {
        // 64 vertices, δᶜ = 3 → |V|/δᶜ ≈ 21.3 → ψ = ⌈log₂(21.3)/2⌉ = 3 or
        // deeper if balance required; grid must have ≥ ceil(64/3) cells.
        let grid = build_toy();
        assert!(grid.num_cells() >= 22);
        assert_eq!(grid.num_cells(), (grid.side() * grid.side()) as usize);
    }

    #[test]
    fn single_cell_degenerate_grid() {
        let g = Arc::new(gen::toy(1));
        let grid = GraphGrid::build(g.clone(), g.num_vertices(), 8);
        assert_eq!(grid.num_cells(), 1);
        assert!(grid.neighbors(CellId(0)).is_empty());
        assert_eq!(grid.vertices_in(CellId(0)).count(), g.num_vertices());
    }

    #[test]
    fn grid_bytes_positive_and_scales() {
        let small = build_toy();
        let big = GraphGrid::build(
            Arc::new(gen::grid_city(&gen::GridCityParams {
                rows: 16,
                cols: 16,
                ..Default::default()
            })),
            3,
            2,
        );
        assert!(small.grid_bytes() > 0);
        assert!(big.grid_bytes() > small.grid_bytes());
    }
}
