//! The query server: G-Grid state plus the update and query entry points.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use gpu_sim::Device;
use parking_lot::Mutex;
use roadnet::dijkstra::{DijkstraEngine, SearchBounds};
use roadnet::graph::{Distance, Graph, INFINITY};
use roadnet::EdgePosition;

use crate::api::{IndexSize, MovingObjectIndex, SimCosts};
use crate::batch::BatchCleanCache;
use crate::cleaning::{CleanedObjects, CleaningReport};
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::ingest_buffer::{BufferedEntry, ThreadIngestDispatcher};
use crate::knn::{run_knn, KnnResult};
use crate::message::{CachedMessage, ObjectId, Timestamp};
use crate::message_list::CellLists;
use crate::object_table::{shard_of, ShardedObjectTable};
use crate::scratch::ScratchPool;
use crate::shard::{MigrationReport, ShardSet};
use crate::stats::{guard_hist_bucket, IngestCounters, QueryBreakdown, ServerCounters};
use crate::subscription::{
    guard_cover, slacked, Subscription, SubscriptionId, SubscriptionRegistry,
    SubscriptionTickReport,
};

/// A G-Grid query server (paper §III–§V).
///
/// Owns the graph grid (mirrored on the simulated GPU), the object table,
/// the per-cell message lists, and the device. Updates are O(1) cache
/// appends (Algorithm 1); queries run the CPU–GPU pipeline of Algorithm 4.
///
/// Shared state is lock-guarded for the concurrent query and ingest
/// engines: the message lists sit behind one mutex per cell ([`CellLists`])
/// and the object table is sharded 64 ways, each shard behind its own
/// reader–writer lock ([`ShardedObjectTable`]), so refinement workers read
/// while ingest workers write — and the whole ingest path takes `&self`.
///
/// **Lock order** (documented invariant): a cell mutex and a table-shard
/// lock are never held at the same time. The ingest path acquires them
/// strictly alternately (dest-cell mutex → release → shard lock → release →
/// prev-cell mutex), and no path acquires two cell mutexes or two shard
/// locks simultaneously, so no lock cycle can form.
///
/// Concurrent `handle_update`/`ingest_batch` callers must serialize updates
/// *of the same object* themselves (the parallel ingest workers do, by
/// owning disjoint object-id shards); calls for different objects may run
/// freely in parallel.
pub struct GGridServer {
    graph: Arc<Graph>,
    grid: Arc<GraphGrid>,
    config: GGridConfig,
    object_table: ShardedObjectTable,
    lists: CellLists,
    /// The simulated devices with their residency/topology stores and the
    /// cell → shard map (`config.num_devices` of them; one is the paper's
    /// single-GPU deployment).
    shards: ShardSet,
    pool: ScratchPool,
    counters: ServerCounters,
    ingest: IngestCounters,
    last_breakdown: QueryBreakdown,
    subs: SubscriptionRegistry,
    /// Cells dirtied by ingest since the last `tick_subscriptions`, drained
    /// by the tick. Only fed while at least one subscription exists (see
    /// `track_dirty`), so ingest pays nothing for the request/response use.
    subs_dirty: Mutex<Vec<CellId>>,
    /// Fast gate on `subs_dirty`: true once `subscribe_knn` has ever run.
    track_dirty: AtomicBool,
    /// Per-cell dirtied counts for the current rebalance epoch — the load
    /// signal [`Self::rebalance_shards`] migrates by. Empty (never tallied)
    /// while `num_devices == 1`, so single-device ingest pays nothing.
    cell_dirt: Vec<AtomicU64>,
    /// Replica-coherence queue: cells dirtied by the `&self` ingest paths
    /// while some shard hosted a read-replica of them. Drained by
    /// [`Self::sync_replicas`] at every `&mut` read entry point (right
    /// after the ingest flush), which tears the stale replicas down —
    /// so a dirtied cell's replicas are always invalidated *before* the
    /// next read could consult them. Only fed while `num_devices > 1` and
    /// a replica actually exists, so unreplicated ingest pays one
    /// `has_replicas` scan at most.
    replica_dirty: Mutex<Vec<CellId>>,
    /// Thread-local ingest buffers (DESIGN.md §5.9): the lock-free fast
    /// path of [`Self::ingest_buffered`], drained into the shared message
    /// lists by [`Self::flush_ingest`] and the implicit barriers on every
    /// query/clean/tick entry point.
    dispatch: ThreadIngestDispatcher,
}

impl GGridServer {
    /// Build a server over `graph` with the paper's simulated evaluation
    /// device (Quadro P2000).
    pub fn new(graph: Graph, config: GGridConfig) -> Self {
        Self::with_device(graph, config, Device::quadro_p2000())
    }

    /// Build with an explicit simulated device.
    pub fn with_device(graph: Graph, config: GGridConfig, device: Device) -> Self {
        let graph = Arc::new(graph);
        let grid = Arc::new(GraphGrid::build(
            graph.clone(),
            config.cell_capacity,
            config.vertex_capacity,
        ));
        Self::with_shared_grid(grid, config, device)
    }

    /// Build a server over a pre-built (shared) graph grid. The grid is
    /// immutable after construction, so harnesses sweeping query-side
    /// parameters can partition the network once and spin up fresh servers
    /// cheaply.
    pub fn with_shared_grid(grid: Arc<GraphGrid>, config: GGridConfig, device: Device) -> Self {
        config.validate();
        assert!(grid.graph().num_vertices() > 0, "grid over an empty graph");
        // A shared grid must have been built with the same capacities the
        // config declares, or validation and size accounting would lie.
        assert_eq!(
            (grid.cell_capacity(), grid.vertex_capacity()),
            (config.cell_capacity, config.vertex_capacity),
            "shared grid was built with different δc/δv than the config"
        );
        let graph = grid.graph().clone();
        // Partition the z-ordered cells over the devices; every device
        // reserves the graph-grid mirror (§III-A) and owns its residency
        // stores (the per-device `device_budget_bytes`).
        let shards = ShardSet::new(&grid, &config, device);
        let lists = CellLists::new(grid.num_cells(), config.bucket_capacity);
        let pool = ScratchPool::with_budget(graph.num_vertices(), config.scratch_budget_bytes);
        let subs = SubscriptionRegistry::new(grid.num_cells());
        let cell_dirt = if config.num_devices > 1 {
            (0..grid.num_cells()).map(|_| AtomicU64::new(0)).collect()
        } else {
            Vec::new()
        };
        let dispatch = ThreadIngestDispatcher::new(config.ingest_workers);
        Self {
            graph,
            grid,
            config,
            object_table: ShardedObjectTable::new(),
            lists,
            shards,
            pool,
            counters: ServerCounters::default(),
            ingest: IngestCounters::default(),
            last_breakdown: QueryBreakdown::default(),
            subs,
            subs_dirty: Mutex::new(Vec::new()),
            track_dirty: AtomicBool::new(false),
            cell_dirt,
            replica_dirty: Mutex::new(Vec::new()),
            dispatch,
        }
    }

    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    pub fn grid(&self) -> &GraphGrid {
        &self.grid
    }

    pub fn config(&self) -> &GGridConfig {
        &self.config
    }

    /// Shard 0's device (the single device when `num_devices == 1`).
    pub fn device(&self) -> &Device {
        &self.shards.shard(0).device
    }

    /// Number of shard devices serving this index.
    pub fn num_shards(&self) -> usize {
        self.shards.num_shards()
    }

    /// The contiguous z-order cell range each shard currently owns.
    pub fn shard_ranges(&self) -> Vec<std::ops::Range<u32>> {
        (0..self.shards.num_shards())
            .map(|d| self.shards.map().range(d))
            .collect()
    }

    /// Lifetime kernel-launch count per shard device (tests: routing
    /// assertions).
    pub fn device_launches(&self) -> Vec<u64> {
        (0..self.shards.num_shards())
            .map(|d| self.shards.shard(d).device.launches())
            .collect()
    }

    /// A point-in-time snapshot of the server counters: the query-side
    /// counters (owned by `&mut self` paths) merged with the atomic
    /// ingest-side counters and the per-cell bucket-pool statistics.
    pub fn counters(&self) -> ServerCounters {
        let mut c = self.counters;
        self.ingest.merge_into(&mut c);
        c.bucket_allocs = self.lists.sum_over(|l| l.bucket_alloc_stats().0);
        c.bucket_reuses = self.lists.sum_over(|l| l.bucket_alloc_stats().1);
        let (flushes, buffered, high_water) = self.dispatch.stats();
        c.ingest_flushes = flushes;
        c.buffered_messages = buffered;
        c.buffer_bytes_high_water = high_water;
        c.snapshot_reuses = self.object_table.snapshot_reuses();
        c.subs_active = self.subs.active() as u64;
        for d in 0..self.shards.num_shards() {
            c.shard_busy_ns[d] = self.shards.shard(d).lifetime_busy_ns();
        }
        // Replication gauges live on the shard set (promotions happen in
        // the query pipeline, teardowns in sync/migration paths).
        c.replicas_active = self.shards.replicas_active();
        c.replica_invalidations = self.shards.replica_invalidations();
        c.migrations_skipped_read_hot = self.shards.migrations_skipped_read_hot();
        c
    }

    /// Breakdown of the most recent query.
    pub fn last_breakdown(&self) -> &QueryBreakdown {
        &self.last_breakdown
    }

    /// Number of cells whose consolidated lists are device-resident
    /// (summed over all shards).
    pub fn resident_cells(&self) -> usize {
        (0..self.shards.num_shards())
            .map(|d| self.shards.shard(d).resident.resident_cells())
            .sum()
    }

    /// Bytes of consolidated cell state held in device memory (all shards).
    pub fn resident_bytes(&self) -> u64 {
        (0..self.shards.num_shards())
            .map(|d| self.shards.shard(d).resident.resident_bytes())
            .sum()
    }

    /// Whether the cell containing `edge` is device-resident right now
    /// (on its owning shard).
    pub fn is_resident(&self, edge: roadnet::EdgeId) -> bool {
        let cell = self.grid.cell_of_edge(edge);
        let owner = self.shards.owner_of(cell);
        self.shards.shard(owner).resident.contains(cell)
    }

    /// Forcibly evict the resident state of the cell containing `edge`
    /// (tests and ablations — simulates device-memory pressure from
    /// elsewhere). The next clean of that cell takes the full-upload path
    /// and re-promotes it.
    pub fn evict_resident(&mut self, edge: roadnet::EdgeId) -> bool {
        let cell = self.grid.cell_of_edge(edge);
        let owner = self.shards.owner_of(cell);
        let sh = self.shards.shard_mut(owner);
        let evicted = sh.resident.force_evict(&mut sh.device, cell);
        if evicted {
            self.counters.evictions += 1;
        }
        evicted
    }

    /// Forcibly evict every resident cell on every shard.
    pub fn evict_all_resident(&mut self) {
        for d in 0..self.shards.num_shards() {
            let sh = self.shards.shard_mut(d);
            self.counters.evictions += sh.resident.resident_cells() as u64;
            sh.resident.clear(&mut sh.device);
        }
    }

    /// Number of cells whose CSR topology slices are device-resident
    /// (summed over all shards).
    pub fn topology_resident_cells(&self) -> usize {
        (0..self.shards.num_shards())
            .map(|d| self.shards.shard(d).topo.resident_cells())
            .sum()
    }

    /// Bytes of topology slices held in device memory (all shards).
    pub fn topology_resident_bytes(&self) -> u64 {
        (0..self.shards.num_shards())
            .map(|d| self.shards.shard(d).topo.resident_bytes())
            .sum()
    }

    /// Forcibly evict every resident topology slice (tests and ablations —
    /// the next query re-uploads what it touches).
    pub fn evict_all_topology(&mut self) {
        for d in 0..self.shards.num_shards() {
            let sh = self.shards.shard_mut(d);
            sh.topo.clear(&mut sh.device);
        }
    }

    /// Read access to the per-cell message lists (diagnostics/validation).
    pub(crate) fn cell_lists(&self) -> &CellLists {
        &self.lists
    }

    /// Read access to the object table (diagnostics/validation).
    pub(crate) fn object_table(&self) -> &ShardedObjectTable {
        &self.object_table
    }

    /// Number of messages currently cached across all cells.
    pub fn cached_messages(&self) -> usize {
        self.lists.sum_over(|l| l.total_messages())
    }

    /// Latest known position of an object, if it ever reported.
    pub fn object_position(&self, o: ObjectId) -> Option<(EdgePosition, Timestamp)> {
        self.object_table.get(o).map(|e| (e.position, e.time))
    }

    pub fn num_objects(&self) -> usize {
        self.object_table.len()
    }

    /// Append `m` to one cell's message list, metering the lock.
    fn append_one(&self, cell: CellId, m: CachedMessage) {
        let w0 = Instant::now();
        let mut list = self.lists.lock(cell.index());
        self.ingest
            .cell_lock_wait_ns
            .fetch_add(w0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.ingest.cell_locks.fetch_add(1, Ordering::Relaxed);
        list.append(m);
    }

    /// Algorithm 1: cache a location update.
    ///
    /// Lock scope is as narrow as it gets: the destination cell's mutex is
    /// released before the table shard lock is taken, and the shard lock is
    /// released before the previous cell's mutex is taken — no two locks
    /// are ever held together, and [`ShardedObjectTable::set`] returning
    /// the previous entry makes the old lookup-then-set double walk a
    /// single probe.
    pub fn handle_update(&self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        debug_assert!(position.is_valid(&self.graph), "invalid object position");
        let t0 = Instant::now();
        let cell = self.grid.cell_of_edge(position.edge);
        self.append_one(cell, CachedMessage::update(object, position, time));
        let mut dirtied = 1u64;
        let prev = self.object_table.set(object, cell, position, time);
        self.ingest.shard_locks.fetch_add(1, Ordering::Relaxed);
        let mut tombstone_cell = None;
        if let Some(prev) = prev {
            if prev.cell != cell {
                self.append_one(prev.cell, CachedMessage::tombstone(object, time));
                self.ingest
                    .tombstones_written
                    .fetch_add(1, Ordering::Relaxed);
                dirtied = 2;
                tombstone_cell = Some(prev.cell);
            }
        }
        self.ingest
            .cells_dirtied
            .fetch_add(dirtied, Ordering::Relaxed);
        if self.track_dirty.load(Ordering::Relaxed) {
            let mut pending = self.subs_dirty.lock();
            pending.push(cell);
            pending.extend(tombstone_cell);
        }
        if self.config.num_devices > 1 {
            for c in std::iter::once(cell).chain(tombstone_cell) {
                let owner = self.shards.owner_of(c);
                self.ingest.shard_dirtied[owner].fetch_add(1, Ordering::Relaxed);
                self.cell_dirt[c.index()].fetch_add(1, Ordering::Relaxed);
                if self.shards.has_replicas(c) {
                    self.replica_dirty.lock().push(c);
                }
            }
        }
        self.ingest.updates_ingested.fetch_add(1, Ordering::Relaxed);
        let ns = t0.elapsed().as_nanos() as u64;
        self.ingest.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.ingest.critical_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Group-commit ingestion (the batched Algorithm 1): apply `updates`
    /// with per-object order preserved, acquiring each touched cell's mutex
    /// **once for the whole batch** and bumping its dirty epoch once, so a
    /// batch leaves untouched cells' clean-skip stamps warm and touched
    /// cells pay one invalidation instead of one per message.
    ///
    /// The resulting per-cell message sequences are byte-identical to
    /// calling [`Self::handle_update`] once per element in order — and
    /// identical for every `ingest_workers` count:
    ///
    /// * **Phase 1 (table)** walks the batch in order; with `W` workers,
    ///   worker `w` owns the updates whose object shard satisfies
    ///   `shard_of(o) % W == w`, so all updates of one object are applied
    ///   by one worker in batch order. Each update emits its destination
    ///   placement and, on a cell move, a tombstone placement for the
    ///   previous cell, both tagged with the update's batch index.
    /// * **Phase 2 (append)** sorts placements by `(cell, batch index)` —
    ///   a total order, since one update contributes at most one message
    ///   per cell — and appends each cell's run under one lock hold.
    ///   Runs are striped over the workers; no two workers touch one cell.
    ///
    /// Returns the set of cells whose dirty epoch the batch bumped (the
    /// run heads — one entry per touched cell, sorted), so consumers like
    /// the subscription tick never re-derive it from message placement.
    /// Materialising that set costs an allocation per batch, so it is only
    /// built when someone will consume it — a registered subscription
    /// (`track_dirty`) or shard routing/rebalancing (`num_devices > 1`);
    /// otherwise the returned vector is empty.
    pub fn ingest_batch(&self, updates: &[(ObjectId, EdgePosition, Timestamp)]) -> Vec<CellId> {
        if updates.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        let workers = self.config.ingest_workers.clamp(1, updates.len());
        self.ingest.observe_batch(updates.len());
        self.ingest
            .batched_updates
            .fetch_add(updates.len() as u64, Ordering::Relaxed);

        // Phase 1 — object table. One shard-lock acquisition per update
        // (set returns the previous entry: single probe).
        let place = |w: usize| -> (Vec<(CellId, u32, CachedMessage)>, u64) {
            let started = Instant::now();
            let mut out: Vec<(CellId, u32, CachedMessage)> =
                Vec::with_capacity(updates.len() / workers + 2);
            for (idx, &(o, position, time)) in updates.iter().enumerate() {
                if shard_of(o) % workers != w {
                    continue;
                }
                debug_assert!(position.is_valid(&self.graph), "invalid object position");
                let cell = self.grid.cell_of_edge(position.edge);
                out.push((cell, idx as u32, CachedMessage::update(o, position, time)));
                let prev = self.object_table.set(o, cell, position, time);
                if let Some(prev) = prev {
                    if prev.cell != cell {
                        out.push((prev.cell, idx as u32, CachedMessage::tombstone(o, time)));
                    }
                }
            }
            (out, started.elapsed().as_nanos() as u64)
        };
        let (mut placements, busy1, critical1) = if workers == 1 {
            let (out, ns) = place(0);
            (out, ns, ns)
        } else {
            let parts = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let place = &place;
                        s.spawn(move |_| place(w))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ingest worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("ingest scope failed");
            let mut merged = Vec::with_capacity(updates.len());
            let (mut busy, mut critical) = (0u64, 0u64);
            for (out, ns) in parts {
                merged.extend(out);
                busy += ns;
                critical = critical.max(ns);
            }
            (merged, busy, critical)
        };
        self.ingest
            .shard_locks
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        let tombstones = placements
            .iter()
            .filter(|(_, _, m)| m.is_tombstone())
            .count() as u64;
        self.ingest
            .tombstones_written
            .fetch_add(tombstones, Ordering::Relaxed);
        self.ingest
            .tombstones_batched
            .fetch_add(tombstones, Ordering::Relaxed);

        // Phase 2 — group-commit appends. (cell, batch-index) keys are
        // unique, so the unstable sort is deterministic, and the per-cell
        // order equals the sequential interleave.
        placements.sort_unstable_by_key(|&(c, idx, _)| (c, idx));
        let mut runs: Vec<&[(CellId, u32, CachedMessage)]> = Vec::new();
        let mut rest = placements.as_slice();
        while let Some(&(cell, _, _)) = rest.first() {
            let len = rest.iter().take_while(|&&(c, _, _)| c == cell).count();
            let (run, tail) = rest.split_at(len);
            runs.push(run);
            rest = tail;
        }
        let sharded = self.config.num_devices > 1;
        let dirty: Vec<CellId> = if self.track_dirty.load(Ordering::Relaxed) || sharded {
            runs.iter().map(|run| run[0].0).collect()
        } else {
            Vec::new()
        };
        if sharded {
            for &c in &dirty {
                let owner = self.shards.owner_of(c);
                self.ingest.shard_dirtied[owner].fetch_add(1, Ordering::Relaxed);
                self.cell_dirt[c.index()].fetch_add(1, Ordering::Relaxed);
                if self.shards.has_replicas(c) {
                    self.replica_dirty.lock().push(c);
                }
            }
        }
        self.ingest
            .cells_dirtied
            .fetch_add(runs.len() as u64, Ordering::Relaxed);
        let commit = |w: usize| -> u64 {
            let started = Instant::now();
            for run in runs.iter().skip(w).step_by(workers) {
                let cell = run[0].0;
                let w0 = Instant::now();
                let mut list = self.lists.lock(cell.index());
                self.ingest
                    .cell_lock_wait_ns
                    .fetch_add(w0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                list.append_batch(run.iter().map(|(_, _, m)| m));
            }
            started.elapsed().as_nanos() as u64
        };
        let (busy2, critical2) = if workers == 1 {
            let ns = commit(0);
            (ns, ns)
        } else {
            let times = crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let commit = &commit;
                        s.spawn(move |_| commit(w))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ingest worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("ingest scope failed");
            let busy: u64 = times.iter().sum();
            (busy, times.into_iter().max().unwrap_or(0))
        };
        self.ingest
            .cell_locks
            .fetch_add(runs.len() as u64, Ordering::Relaxed);
        self.ingest
            .updates_ingested
            .fetch_add(updates.len() as u64, Ordering::Relaxed);

        // Serial glue (sorting, run splitting) is on the critical path of
        // either worker count; the phase barriers add their slowest worker.
        let serial = (t0.elapsed().as_nanos() as u64).saturating_sub(busy1 + busy2);
        self.ingest
            .busy_ns
            .fetch_add(busy1 + busy2 + serial, Ordering::Relaxed);
        self.ingest
            .critical_ns
            .fetch_add(critical1 + critical2 + serial, Ordering::Relaxed);
        if self.track_dirty.load(Ordering::Relaxed) {
            self.subs_dirty.lock().extend_from_slice(&dirty);
        }
        dirty
    }

    /// Buffered ingestion (the lock-free Algorithm 1, DESIGN.md §5.9):
    /// apply `updates` to the object table now, but stage the resulting
    /// cell placements/tombstones in thread-private buffers instead of the
    /// shared message lists. During the parallel phase **no worker touches
    /// a cell mutex** — each worker locks only its own (uncontended)
    /// buffer slot once per call — so a hot cell shared by every arrival
    /// batch costs zero contention in steady state.
    ///
    /// Buffered messages become visible at the next flush: a cell whose
    /// buffered count reaches `config.ingest_buffer_cap` (or everything,
    /// when the footprint exceeds `config.ingest_buffer_bytes`) is
    /// committed at the end of this call; the rest waits for
    /// [`Self::flush_ingest`] or the implicit barrier every query, clean,
    /// subscription and rebalance entry point runs first. Each flushed
    /// cell pays **one** lock hold and **one** dirty-epoch bump per flush,
    /// however many ingest calls contributed.
    ///
    /// Every staged message carries a global monotone sequence number (an
    /// update and its departure tombstone share one), and the flush merges
    /// the workers' per-cell runs in sequence order — so the per-cell
    /// message sequences after a flush are byte-identical to
    /// [`Self::ingest_batch`] over the same calls, for every worker count
    /// (proptested in `tests/ingest_buffer.rs`).
    ///
    /// Returns the cells committed by this call's end-of-call flush (empty
    /// while everything still sits in the buffers).
    pub fn ingest_buffered(&self, updates: &[(ObjectId, EdgePosition, Timestamp)]) -> Vec<CellId> {
        if updates.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        let workers = self.config.ingest_workers.clamp(1, updates.len());
        self.ingest.observe_batch(updates.len());
        self.ingest
            .batched_updates
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        let base = self.dispatch.next_seq(updates.len());

        // Phase 1 — object table + private buffers. Same object sharding
        // as `ingest_batch` (worker `w` owns `shard_of(o) % workers == w`,
        // so per-object order is preserved); the only lock a worker takes
        // besides the table shards is its own buffer slot, once.
        let place = |w: usize| -> (u64, u64, u64) {
            let started = Instant::now();
            let mut buf = self.dispatch.worker(w);
            let (mut staged, mut tombstones) = (0u64, 0u64);
            for (idx, &(o, position, time)) in updates.iter().enumerate() {
                if shard_of(o) % workers != w {
                    continue;
                }
                debug_assert!(position.is_valid(&self.graph), "invalid object position");
                let cell = self.grid.cell_of_edge(position.edge);
                let seq = base + idx as u64;
                buf.push(cell, seq, CachedMessage::update(o, position, time));
                staged += 1;
                let prev = self.object_table.set(o, cell, position, time);
                if let Some(prev) = prev {
                    if prev.cell != cell {
                        buf.push(prev.cell, seq, CachedMessage::tombstone(o, time));
                        staged += 1;
                        tombstones += 1;
                    }
                }
            }
            (staged, tombstones, started.elapsed().as_nanos() as u64)
        };
        let parts: Vec<(u64, u64, u64)> = if workers == 1 {
            vec![place(0)]
        } else {
            crossbeam::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let place = &place;
                        s.spawn(move |_| place(w))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("ingest worker panicked"))
                    .collect()
            })
            .expect("ingest scope failed")
        };
        let staged: u64 = parts.iter().map(|&(n, _, _)| n).sum();
        let tombstones: u64 = parts.iter().map(|&(_, t, _)| t).sum();
        let busy1: u64 = parts.iter().map(|&(_, _, ns)| ns).sum();
        let critical1: u64 = parts.iter().map(|&(_, _, ns)| ns).max().unwrap_or(0);
        self.dispatch.note_buffered(staged);
        self.ingest
            .shard_locks
            .fetch_add(updates.len() as u64, Ordering::Relaxed);
        self.ingest
            .tombstones_written
            .fetch_add(tombstones, Ordering::Relaxed);
        self.ingest
            .tombstones_batched
            .fetch_add(tombstones, Ordering::Relaxed);
        self.ingest
            .updates_ingested
            .fetch_add(updates.len() as u64, Ordering::Relaxed);

        // End-of-call flush: everything, when the global byte budget is
        // blown; otherwise only the cells whose buffers filled up.
        let over_budget = self.config.ingest_buffer_bytes > 0
            && self.dispatch.buffered_bytes() > self.config.ingest_buffer_bytes;
        let committed = if over_budget {
            self.commit_buffered(self.dispatch.drain_all())
        } else {
            let full: Vec<(CellId, Vec<BufferedEntry>)> = self
                .dispatch
                .cells_over(self.config.ingest_buffer_cap)
                .into_iter()
                .filter_map(|c| self.dispatch.drain_cell(c).map(|run| (c, run)))
                .collect();
            self.commit_buffered(full)
        };

        // The phase barrier puts serial glue (flushing included) on the
        // critical path of every worker count.
        let serial = (t0.elapsed().as_nanos() as u64).saturating_sub(busy1);
        self.ingest
            .busy_ns
            .fetch_add(busy1 + serial, Ordering::Relaxed);
        self.ingest
            .critical_ns
            .fetch_add(critical1 + serial, Ordering::Relaxed);
        committed
    }

    /// The explicit visibility barrier of [`Self::ingest_buffered`]: drain
    /// every thread-local ingest buffer into the shared message lists (one
    /// lock + one dirty-epoch bump per touched cell) and return the cells
    /// committed. Every query/clean/subscription/rebalance entry point
    /// calls this implicitly, so buffered ingestion never changes an
    /// answer — only when the cell locks are paid.
    pub fn flush_ingest(&self) -> Vec<CellId> {
        let groups = self.dispatch.drain_all();
        self.commit_buffered(groups)
    }

    /// Commit drained buffer groups to their cells: per cell one metered
    /// lock hold, one `append_batch` (sequence order), one epoch bump —
    /// plus the same dirty-tracking side effects as the other ingest
    /// paths. No buffer-slot mutex is held in here (the groups are owned),
    /// so the cell locks nest under nothing.
    fn commit_buffered(&self, groups: Vec<(CellId, Vec<BufferedEntry>)>) -> Vec<CellId> {
        if groups.is_empty() {
            return Vec::new();
        }
        let t0 = Instant::now();
        let sharded = self.config.num_devices > 1;
        let track = self.track_dirty.load(Ordering::Relaxed);
        // One entry per committed cell — cheap relative to the commit
        // itself (a flush amortizes many messages per cell), so unlike
        // `ingest_batch` it is always materialised.
        let dirty: Vec<CellId> = groups.iter().map(|&(c, _)| c).collect();
        for (cell, run) in groups {
            let w0 = Instant::now();
            let mut list = self.lists.lock(cell.index());
            self.ingest
                .cell_lock_wait_ns
                .fetch_add(w0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            list.append_batch(run.iter().map(|(_, m)| m));
            drop(list);
            self.ingest.cell_locks.fetch_add(1, Ordering::Relaxed);
            self.ingest.cells_dirtied.fetch_add(1, Ordering::Relaxed);
            if sharded {
                let owner = self.shards.owner_of(cell);
                self.ingest.shard_dirtied[owner].fetch_add(1, Ordering::Relaxed);
                self.cell_dirt[cell.index()].fetch_add(1, Ordering::Relaxed);
                if self.shards.has_replicas(cell) {
                    self.replica_dirty.lock().push(cell);
                }
            }
            self.dispatch.recycle(run);
        }
        self.dispatch.note_flush();
        if track {
            self.subs_dirty.lock().extend_from_slice(&dirty);
        }
        let ns = t0.elapsed().as_nanos() as u64;
        self.ingest.busy_ns.fetch_add(ns, Ordering::Relaxed);
        self.ingest.critical_ns.fetch_add(ns, Ordering::Relaxed);
        dirty
    }

    /// The replica-coherence barrier: tear down the read-replicas of every
    /// cell the ingest stream dirtied since the last sync. Runs at every
    /// `&mut self` read entry point right after the ingest flush (ingest is
    /// `&self` and cannot mutate the devices itself), so no stale replica
    /// survives to the next read. Replicas are never consulted for answer
    /// bytes — answers come from the host-side consolidated lists — so this
    /// coherence is about the *modeled machine*: a replica's mirror must
    /// equal the owner's consolidated state whenever it is counted as a
    /// hit, and the epoch check in [`ShardSet::replica_valid`] backstops
    /// this invariant.
    fn sync_replicas(&mut self) {
        if self.config.num_devices <= 1 {
            return;
        }
        let mut dirty: Vec<CellId> = std::mem::take(&mut *self.replica_dirty.lock());
        if dirty.is_empty() {
            return;
        }
        dirty.sort_unstable();
        dirty.dedup();
        for c in dirty {
            self.shards.invalidate_replicas(c);
        }
    }

    /// The one cell-cleaning entry point on the server: the eager-clean
    /// calls ([`Self::clean_all`], [`Self::clean_cell_of_edge`]) and the
    /// subscription tick's shared pre-clean and delta repairs all go
    /// through here, so there is exactly one place that drives
    /// [`crate::cleaning::clean_cells`] from `&mut self`. Callers fold the
    /// report into the counters themselves (queries and subscriptions
    /// attribute it differently).
    fn clean_cells_shared(
        &mut self,
        cells: &[CellId],
        now: Timestamp,
    ) -> (CleanedObjects, CleaningReport) {
        self.shards
            .clean_cells(&self.lists, cells, &self.config, now)
    }

    /// Eagerly clean the message list of the cell containing `edge`
    /// (ablation support: calling this after every update degenerates the
    /// lazy strategy into the eager one the paper compares against).
    pub fn clean_cell_of_edge(&mut self, edge: roadnet::EdgeId, now: Timestamp) {
        self.flush_ingest();
        self.sync_replicas();
        let cell = self.grid.cell_of_edge(edge);
        let (_, rep) = self.clean_cells_shared(&[cell], now);
        self.counters.record_cleaning(&rep);
    }

    /// Eagerly clean every cell (used by tests and ablations).
    pub fn clean_all(&mut self, now: Timestamp) {
        self.flush_ingest();
        self.sync_replicas();
        let cells: Vec<CellId> = self.grid.cell_ids().collect();
        let (_, rep) = self.clean_cells_shared(&cells, now);
        self.counters.record_cleaning(&rep);
    }

    /// Answer a kNN query issued at `now`; returns up to `k`
    /// `(object, distance)` pairs, nearest first.
    pub fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        self.knn_detailed(q, k, now).items
    }

    /// Process a batch of queries, sharing one device cleaning pass for
    /// the union of their candidate regions (paper Fig 5's "G-Grid" vs
    /// "G-Grid (L)" distinction).
    pub fn knn_batch(
        &mut self,
        queries: &[(EdgePosition, usize)],
        now: Timestamp,
    ) -> crate::batch::BatchResult {
        self.flush_ingest();
        self.sync_replicas();
        let result = crate::batch::run_knn_batch(
            &mut self.shards,
            &self.grid,
            &self.lists,
            &self.pool,
            &self.config,
            queries,
            now,
        );
        // The shared pass is already attributed into the per-query
        // breakdowns (exact proportional split), so recording those covers
        // the whole batch with no special case for the shared record.
        for b in &result.per_query {
            self.counters.record_query(b);
        }
        self.counters.batch_shared_cells += result.shared_cells as u64;
        self.counters.kernel_launches = self.shards.total_launches();
        result
    }

    /// As [`Self::knn`] but returning the full cost breakdown.
    pub fn knn_detailed(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> KnnResult {
        self.flush_ingest();
        self.sync_replicas();
        let result = self.query_pipeline(q, k, now, None);
        self.counters.record_query(&result.breakdown);
        result
    }

    /// The shared full-pipeline path: ad-hoc queries and subscription full
    /// (re-)evaluations both come through here, so there is exactly one
    /// refinement implementation behind every entry point. The caller
    /// records the breakdown (as a query or as subscription work).
    fn query_pipeline(
        &mut self,
        q: EdgePosition,
        k: usize,
        now: Timestamp,
        cache: Option<&BatchCleanCache>,
    ) -> KnnResult {
        let result = run_knn(
            &mut self.shards,
            &self.grid,
            &self.lists,
            &self.pool,
            &self.config,
            q,
            k,
            now,
            cache,
        );
        self.last_breakdown = result.breakdown;
        self.counters.kernel_launches = self.shards.total_launches();
        result
    }

    /// End a rebalance epoch: if the busiest shard's device busy time since
    /// the previous call exceeds `rebalance_threshold` × the mean, migrate
    /// a run of boundary cells (with their pending dirt, evicting their
    /// resident state) from it to its colder neighbour in z-order. Call
    /// once per serving epoch; a no-op while `num_devices == 1`. See
    /// DESIGN.md §5.8.
    pub fn rebalance_shards(&mut self) -> Option<MigrationReport> {
        if self.config.num_devices <= 1 {
            return None;
        }
        // Buffered dirt must land in `cell_dirt` before the epoch is read,
        // and stale replicas must die before the migrator reasons about
        // which cells replication is already serving.
        self.flush_ingest();
        self.sync_replicas();
        let dirt: Vec<u64> = self
            .cell_dirt
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .collect();
        let replicate = if self.config.replication_enabled() {
            self.config.replicate_threshold
        } else {
            0
        };
        let report = self
            .shards
            .maybe_rebalance(&dirt, self.config.rebalance_threshold, replicate);
        if let Some(rep) = report {
            self.counters.rebalances += 1;
            self.counters.cells_migrated += rep.cells_moved as u64;
            self.counters.evictions += rep.resident_evicted;
            // Migrated dirt has been re-homed; start the next epoch's tally
            // from zero so one hot burst doesn't keep ping-ponging cells.
            for d in &self.cell_dirt {
                d.store(0, Ordering::Relaxed);
            }
        }
        // Age the replication signal with the epoch, mirroring the dirt
        // reset above: recent read traffic decides what stays replicated.
        self.shards.decay_read_heat();
        report
    }
}

/// Continuous kNN subscriptions (standing queries). See
/// [`crate::subscription`] and DESIGN.md §5.7.
impl GGridServer {
    /// Register a standing kNN query. The result is evaluated once now and
    /// then kept incrementally correct: after each `ingest_batch` /
    /// `handle_update`, a [`Self::tick_subscriptions`] call re-validates
    /// exactly the subscriptions whose guard region intersects a dirtied
    /// cell (or whose members may have aged out), repairing them with a
    /// bounded delta search where possible. [`Self::subscription_result`]
    /// is byte-identical to a fresh `knn(q, k, now)` after every tick.
    ///
    /// Panics when `config.max_subscriptions` are already active.
    pub fn subscribe_knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> SubscriptionId {
        assert!(k >= 1, "k must be at least 1");
        assert!(
            self.subs.active() < self.config.max_subscriptions,
            "subscription limit reached (max_subscriptions = {})",
            self.config.max_subscriptions
        );
        self.track_dirty.store(true, Ordering::Relaxed);
        self.flush_ingest();
        self.sync_replicas();
        let t0 = Instant::now();
        let mut inner = 0u64;
        let sub = self.evaluate_full(q, k, now, None, &mut inner);
        // Cover computation and registry bookkeeping, outside the pipeline.
        let extra = (t0.elapsed().as_nanos() as u64).saturating_sub(inner);
        self.counters.record_subscription(&QueryBreakdown {
            cpu_ns: extra,
            ..Default::default()
        });
        self.subs.insert(sub)
    }

    /// Drop a subscription. Returns false for an unknown/stale id.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.subs.remove(id).is_some()
    }

    /// The subscription's maintained top-k (as of the last tick), nearest
    /// first, ties on object id.
    pub fn subscription_result(&self, id: SubscriptionId) -> Option<&[(ObjectId, Distance)]> {
        self.subs.get(id).map(|s| s.result.as_slice())
    }

    /// The subscription's guard state: `(guard radius, guard cells,
    /// covers_all)` (diagnostics and tests — e.g. picking an edge outside
    /// every guard region).
    pub fn subscription_guard(&self, id: SubscriptionId) -> Option<(Distance, Vec<CellId>, bool)> {
        self.subs
            .get(id)
            .map(|s| (s.guard_radius, s.guard_cells.clone(), s.covers_all))
    }

    /// Number of active subscriptions.
    pub fn subscriptions_active(&self) -> usize {
        self.subs.active()
    }

    /// Re-validate the standing queries against everything ingested since
    /// the last tick. Subscriptions whose guard region intersects no
    /// dirtied cell (and whose members cannot have aged out) are skipped
    /// at zero device cost; the rest are repaired by the bounded delta
    /// search, falling back to a full re-query through the shared pipeline
    /// when the guard cannot certify the answer.
    pub fn tick_subscriptions(&mut self, now: Timestamp) -> SubscriptionTickReport {
        // Barrier before the dirty drain: buffered cells must register as
        // dirtied so the tick re-validates the subscriptions they touch.
        self.flush_ingest();
        self.sync_replicas();
        let wall0 = Instant::now();
        let subs_ns0 = self.counters.subs_modeled_ns();
        let mut dirty: Vec<CellId> = std::mem::take(&mut *self.subs_dirty.lock());
        dirty.sort_unstable();
        dirty.dedup();
        let active = self.subs.active();
        let mut report = SubscriptionTickReport {
            active,
            dirty_cells: dirty.len(),
            ..Default::default()
        };
        if active == 0 {
            return report;
        }
        let affected = self.subs.affected(&dirty, now);
        report.invalidated = affected.len();
        report.skipped = active - affected.len();

        let mut tick_b = QueryBreakdown::default();
        let mut inner = 0u64;

        // Shared pre-clean: every guard cell a repair will read,
        // consolidated in one pass and served to the repairs through the
        // epoch-checked cache — untouched cells cost a host snapshot, no
        // device work. Dirty cells under no guard are left alone; the
        // next ad-hoc query that actually visits them cleans them.
        let cache = if affected.is_empty() {
            None
        } else {
            let mut union: Vec<CellId> = Vec::new();
            for &id in &affected {
                if let Some(sub) = self.subs.get(id) {
                    union.extend_from_slice(&sub.guard_cells);
                }
            }
            union.sort_unstable();
            union.dedup();
            let t0 = Instant::now();
            let (cleaned, rep) = self.clean_cells_shared(&union, now);
            tick_b.emulation_ns += t0.elapsed().as_nanos() as u64;
            tick_b.record_cleaning(&rep);
            Some(BatchCleanCache::build(&self.lists, &union, &cleaned))
        };

        for id in affected {
            let Some(mut sub) = self.subs.take(id) else {
                continue;
            };
            if !sub.covers_all && self.try_delta_repair(&mut sub, now, cache.as_ref(), &mut tick_b)
            {
                report.repaired_delta += 1;
            } else {
                sub = self.evaluate_full(sub.q, sub.k, now, cache.as_ref(), &mut inner);
                report.repaired_full += 1;
            }
            self.subs.put_back(id, sub);
        }

        self.counters.subs_ticks += 1;
        self.counters.subs_invalidated += report.invalidated as u64;
        self.counters.subs_repaired_delta += report.repaired_delta as u64;
        self.counters.subs_repaired_full += report.repaired_full as u64;
        self.counters.subs_skipped += report.skipped as u64;
        self.counters.subs_active = active as u64;

        // Tick bookkeeping (drain, invalidation scan, delta searches) is
        // the wall time minus what the full evaluations and the emulated
        // device work already accounted for.
        tick_b.cpu_ns = (wall0.elapsed().as_nanos() as u64)
            .saturating_sub(tick_b.emulation_ns.saturating_add(inner));
        self.counters.record_subscription(&tick_b);
        self.counters
            .subs_tick_ns_hist
            .record(self.counters.subs_modeled_ns().saturating_sub(subs_ns0));
        report
    }

    /// Full (re-)evaluation of a standing query through the shared
    /// pipeline: a k+1 query yields the top-k plus the guard distance; the
    /// guard cover is read off one bounded Dijkstra. `inner` accumulates
    /// the host time the pipeline already accounted for.
    fn evaluate_full(
        &mut self,
        q: EdgePosition,
        k: usize,
        now: Timestamp,
        cache: Option<&BatchCleanCache>,
        inner: &mut u64,
    ) -> Subscription {
        let r = self.query_pipeline(q, k + 1, now, cache);
        self.counters.record_subscription(&r.breakdown);
        *inner += r.breakdown.cpu_ns + r.breakdown.emulation_ns;
        let mut items = r.items;
        let guard_seed = if items.len() == k + 1 {
            items[k].1
        } else {
            // Fewer than k+1 candidates exist: nothing bounds where the
            // next arrival may matter, so the whole network guards.
            INFINITY
        };
        items.truncate(k);
        let guard_radius = slacked(guard_seed, self.config.guard_slack);
        let (guard_cells, covers_all) = self.compute_cover(q, guard_radius);
        let expires_at = self.member_expiry(items.iter().map(|&(o, _)| {
            self.object_table
                .get(o)
                .map(|e| e.time)
                .unwrap_or(Timestamp(u64::MAX))
        }));
        self.counters.guard_radius_hist[guard_hist_bucket(guard_radius)] += 1;
        Subscription {
            q,
            k,
            result: items,
            guard_radius,
            guard_cells,
            covers_all,
            expires_at,
        }
    }

    /// The guard-cell cover of `ball(q, guard)` (see
    /// [`crate::subscription::guard_cover`]).
    fn compute_cover(&self, q: EdgePosition, guard: Distance) -> (Vec<CellId>, bool) {
        if guard >= INFINITY {
            return (Vec::new(), true);
        }
        let mut engine = DijkstraEngine::with_scratch(&self.graph, self.pool.acquire_engine());
        engine.run_from_position(q, SearchBounds::radius(guard));
        let cells = guard_cover(
            &self.grid,
            &self.graph,
            engine.settled(),
            |v| engine.distance(v),
            guard,
            q,
        );
        self.pool.release_engine(engine.into_scratch());
        (cells, false)
    }

    /// Earliest instant at which a member's report leaves the freshness
    /// horizon: `min(report time) + t_Δ + 1` (cleaning keeps messages with
    /// `time ≥ now − t_Δ`, so the first dead instant is one past the sum).
    fn member_expiry(&self, times: impl Iterator<Item = Timestamp>) -> Timestamp {
        let mut earliest = u64::MAX;
        for t in times {
            earliest = earliest.min(t.0.saturating_add(self.config.t_delta_ms).saturating_add(1));
        }
        Timestamp(earliest)
    }

    /// Bounded delta repair: re-rank the live objects of the guard cells
    /// with one Dijkstra bounded by the guard radius. Succeeds when at
    /// least k candidates score within the guard — every other object is
    /// provably farther (DESIGN.md §5.7), so the top-k is exact. The guard
    /// may shrink (never grow) from the fresh (k+1)-th distance, keeping
    /// the cover recomputation within the already-settled ball. Returns
    /// false (caller falls back to a full re-query) otherwise.
    fn try_delta_repair(
        &mut self,
        sub: &mut Subscription,
        now: Timestamp,
        cache: Option<&BatchCleanCache>,
        tick_b: &mut QueryBreakdown,
    ) -> bool {
        let guard = sub.guard_radius;
        debug_assert!(guard < INFINITY);
        let mut msgs: Vec<CachedMessage> = Vec::new();
        let mut misses: Vec<CellId> = Vec::new();
        for &c in &sub.guard_cells {
            match cache.and_then(|ca| ca.lookup(&self.lists, c)) {
                Some(m) => {
                    msgs.extend_from_slice(m);
                    tick_b.cells_skipped += 1;
                }
                None => misses.push(c),
            }
        }
        if !misses.is_empty() {
            let t0 = Instant::now();
            let (cleaned, rep) = self.clean_cells_shared(&misses, now);
            tick_b.emulation_ns += t0.elapsed().as_nanos() as u64;
            tick_b.record_cleaning(&rep);
            for c in &misses {
                if let Some(m) = cleaned.get(c) {
                    msgs.extend_from_slice(m);
                }
            }
        }

        let mut engine = DijkstraEngine::with_scratch(&self.graph, self.pool.acquire_engine());
        engine.run_from_position(sub.q, SearchBounds::radius(guard));
        let mut scored: Vec<(Distance, ObjectId, Timestamp)> = msgs
            .iter()
            .filter_map(|m| {
                let p = m.position?;
                let d = engine.position_distance(sub.q, p);
                // Only distances within the bound are exact; candidates
                // beyond it are dominated by the guard argument anyway.
                (d <= guard).then_some((d, m.object, m.time))
            })
            .collect();
        scored.sort_unstable_by_key(|&(d, o, _)| (d, o));
        tick_b.refine_settled += engine.settled().len() as u64;
        tick_b.refine_relaxed += engine.relaxed();

        let k = sub.k;
        if scored.len() < k {
            // The true k-th neighbour may lie beyond the guard; the guard
            // cannot certify a short answer.
            self.pool.release_engine(engine.into_scratch());
            return false;
        }
        sub.result = scored[..k].iter().map(|&(d, o, _)| (o, d)).collect();
        if scored.len() > k {
            let new_guard = slacked(scored[k].0, self.config.guard_slack).min(guard);
            if new_guard < guard {
                sub.guard_radius = new_guard;
                sub.guard_cells = guard_cover(
                    &self.grid,
                    &self.graph,
                    engine.settled(),
                    |v| engine.distance(v),
                    new_guard,
                    sub.q,
                );
            }
        }
        sub.expires_at = self.member_expiry(scored[..k].iter().map(|&(_, _, t)| t));
        self.counters.guard_radius_hist[guard_hist_bucket(sub.guard_radius)] += 1;
        self.pool.release_engine(engine.into_scratch());
        true
    }
}

impl MovingObjectIndex for GGridServer {
    fn name(&self) -> &'static str {
        "G-Grid"
    }

    fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        GGridServer::handle_update(self, object, position, time)
    }

    fn ingest_batch(&mut self, updates: &[(ObjectId, EdgePosition, Timestamp)]) {
        let _ = GGridServer::ingest_batch(self, updates);
    }

    fn ingest_buffered(&mut self, updates: &[(ObjectId, EdgePosition, Timestamp)]) {
        let _ = GGridServer::ingest_buffered(self, updates);
    }

    fn flush_ingest(&mut self) {
        let _ = GGridServer::flush_ingest(self);
    }

    fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        GGridServer::knn(self, q, k, now)
    }

    fn sim_costs(&self) -> SimCosts {
        let mut costs = SimCosts::default();
        for d in 0..self.shards.num_shards() {
            let dev = &self.shards.shard(d).device;
            let ledger = dev.ledger();
            costs.gpu_time.0 += dev.kernel_time().0;
            costs.transfer_time.0 += ledger.total_time().0;
            costs.h2d_bytes += ledger.h2d_bytes;
            costs.d2h_bytes += ledger.d2h_bytes;
        }
        costs
    }

    fn emulated_host_ns(&self) -> u64 {
        self.counters.emulation_ns
    }

    fn index_size(&self) -> IndexSize {
        let lists: u64 = self.lists.sum_over(|l| l.size_bytes());
        IndexSize {
            // Graph grid + object table + message lists + pooled scratch
            // and staged ingest buffers live on the CPU.
            cpu_bytes: self.grid.grid_bytes()
                + self.object_table.size_bytes()
                + lists
                + self.pool.scratch_bytes()
                + self.dispatch.buffered_bytes(),
            // Every shard device holds a mirror of the graph grid to
            // streamline the computation (Fig 6's "G-Grid (GPU)") plus
            // whatever consolidated cell lists and topology slices are
            // resident on that shard. Read-replicas are counted here too:
            // each replica's bytes sit in the *hosting* shard's resident
            // store (tagged `BufferTag::Replica` on its device ledger) and
            // leave both sums the moment the replica is invalidated.
            gpu_bytes: self.grid.grid_bytes() * self.shards.num_shards() as u64
                + self.resident_bytes()
                + self.topology_resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::reference_knn;
    use roadnet::gen;
    use roadnet::EdgeId;

    fn small_config() -> GGridConfig {
        GGridConfig {
            bucket_capacity: 8,
            eta: 4,
            ..Default::default()
        }
    }

    fn pos(e: u32, d: u32) -> EdgePosition {
        EdgePosition::new(EdgeId(e), d)
    }

    #[test]
    fn single_object_found() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(100));
        let r = s.knn(pos(3, 0), 1, Timestamp(200));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, ObjectId(1));
    }

    #[test]
    fn updates_are_cached_not_applied() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        for t in 0..50 {
            s.handle_update(ObjectId(1), pos(0, 0), Timestamp(100 + t));
        }
        // All 50 messages cached; no cleaning happened yet.
        assert_eq!(
            s.cached_messages() as u64,
            50 + s.counters().tombstones_written
        );
        // A query cleans the touched region.
        s.knn(pos(0, 0), 1, Timestamp(200));
        assert!(s.cached_messages() < 50);
    }

    #[test]
    fn tombstone_written_on_cell_change() {
        let g = gen::toy(42);
        let grid_probe = {
            let s = GGridServer::new(g.clone(), small_config());
            // Find two edges in different cells.
            let c0 = s.grid().cell_of_edge(EdgeId(0));
            let mut other = None;
            for e in g.edge_ids() {
                if s.grid().cell_of_edge(e) != c0 {
                    other = Some(e);
                    break;
                }
            }
            let other = other.expect("toy graph spans multiple cells");
            s.handle_update(ObjectId(5), pos(0, 0), Timestamp(10));
            assert_eq!(s.counters().tombstones_written, 0);
            s.handle_update(ObjectId(5), EdgePosition::at_source(other), Timestamp(20));
            assert_eq!(s.counters().tombstones_written, 1);
            s
        };
        let _ = grid_probe;
    }

    #[test]
    fn matches_reference_knn() {
        let g = gen::toy(7);
        let mut s = GGridServer::new(g.clone(), small_config());
        // Scatter 12 objects deterministically.
        let objects: Vec<(u64, EdgePosition)> = (0..12u64)
            .map(|i| {
                let e = EdgeId(((i * 13 + 5) % g.num_edges() as u64) as u32);
                let off = (i % (g.edge(e).weight as u64 + 1)) as u32;
                (i, EdgePosition::new(e, off))
            })
            .collect();
        for &(i, p) in &objects {
            s.handle_update(ObjectId(i), p, Timestamp(100 + i));
        }
        for (qi, k) in [(0u32, 1usize), (5, 3), (10, 5), (20, 12)] {
            let q = EdgePosition::at_source(EdgeId(qi % g.num_edges() as u32));
            let got = s.knn(q, k, Timestamp(500));
            let want = reference_knn(&g, q, &objects, k);
            let got_d: Vec<Distance> = got.iter().map(|&(_, d)| d).collect();
            let want_d: Vec<Distance> = want.iter().map(|&(_, d)| d).collect();
            assert_eq!(got_d, want_d, "distances diverge for k={k} q={q:?}");
        }
    }

    #[test]
    fn object_move_reflected_in_answers() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g.clone(), small_config());
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(10));
        // Move far away (edge in another cell).
        let far = g
            .edge_ids()
            .find(|&e| {
                GGridServer::new(g.clone(), small_config())
                    .grid()
                    .cell_of_edge(e)
                    != s.grid().cell_of_edge(EdgeId(0))
            })
            .unwrap();
        s.handle_update(ObjectId(1), EdgePosition::at_source(far), Timestamp(20));
        let r = s.knn(EdgePosition::at_source(far), 1, Timestamp(30));
        assert_eq!(r.len(), 1);
        // The reported distance must be to the *new* location.
        let want = reference_knn(
            &g,
            EdgePosition::at_source(far),
            &[(1, EdgePosition::at_source(far))],
            1,
        );
        assert_eq!(r[0].1, want[0].1);
    }

    #[test]
    fn expired_objects_disappear() {
        let g = gen::toy(42);
        let cfg = GGridConfig {
            t_delta_ms: 100,
            ..small_config()
        };
        let mut s = GGridServer::new(g, cfg);
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(10));
        // Way past t_Δ: the object violated the contract; it is gone.
        let r = s.knn(pos(0, 0), 1, Timestamp(10_000));
        assert!(r.is_empty());
    }

    #[test]
    fn k_larger_than_population() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(10));
        s.handle_update(ObjectId(2), pos(1, 0), Timestamp(10));
        let r = s.knn(pos(0, 0), 10, Timestamp(20));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn no_objects_empty_answer() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        let r = s.knn(pos(0, 0), 3, Timestamp(20));
        assert!(r.is_empty());
    }

    #[test]
    fn counters_and_sizes_populate() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        for i in 0..20 {
            s.handle_update(ObjectId(i), pos((i % 10) as u32, 0), Timestamp(10 + i));
        }
        s.knn(pos(0, 0), 4, Timestamp(100));
        assert_eq!(s.counters().updates_ingested, 20);
        assert_eq!(s.counters().queries, 1);
        assert!(s.counters().gpu_time > gpu_sim::SimNanos::ZERO);
        let sz = s.index_size();
        assert!(sz.cpu_bytes > 0 && sz.gpu_bytes > 0);
        let costs = s.sim_costs();
        assert!(costs.h2d_bytes > 0);
        assert!(costs.total_time() > gpu_sim::SimNanos::ZERO);
    }

    #[test]
    fn repeated_queries_stay_consistent() {
        let g = gen::toy(3);
        let mut s = GGridServer::new(g, small_config());
        for i in 0..15 {
            s.handle_update(ObjectId(i), pos((i % 8) as u32, 0), Timestamp(50 + i));
        }
        let q = pos(2, 0);
        let first = s.knn(q, 5, Timestamp(100));
        for _ in 0..3 {
            assert_eq!(s.knn(q, 5, Timestamp(100)), first);
        }
    }
}
