//! The query server: G-Grid state plus the update and query entry points.

use std::sync::Arc;

use gpu_sim::Device;
use parking_lot::{RwLock, RwLockReadGuard};
use roadnet::graph::{Distance, Graph};
use roadnet::EdgePosition;

use crate::api::{IndexSize, MovingObjectIndex, SimCosts};
use crate::config::GGridConfig;
use crate::grid::GraphGrid;
use crate::knn::{run_knn, KnnResult};
use crate::message::{CachedMessage, ObjectId, Timestamp};
use crate::message_list::CellLists;
use crate::object_table::ObjectTable;
use crate::residency::{ResidentCellStore, TopologyStore};
use crate::scratch::ScratchPool;
use crate::stats::{QueryBreakdown, ServerCounters};

/// A G-Grid query server (paper §III–§V).
///
/// Owns the graph grid (mirrored on the simulated GPU), the object table,
/// the per-cell message lists, and the device. Updates are O(1) cache
/// appends (Algorithm 1); queries run the CPU–GPU pipeline of Algorithm 4.
///
/// Shared state is lock-guarded for the concurrent query engine: the
/// message lists sit behind one mutex per cell ([`CellLists`]) and the
/// object table behind a reader–writer lock, so refinement workers and the
/// batch pipeline read while the ingest path writes.
pub struct GGridServer {
    graph: Arc<Graph>,
    grid: Arc<GraphGrid>,
    config: GGridConfig,
    object_table: RwLock<ObjectTable>,
    lists: CellLists,
    device: Device,
    resident: ResidentCellStore,
    topo: TopologyStore,
    pool: ScratchPool,
    counters: ServerCounters,
    last_breakdown: QueryBreakdown,
}

impl GGridServer {
    /// Build a server over `graph` with the paper's simulated evaluation
    /// device (Quadro P2000).
    pub fn new(graph: Graph, config: GGridConfig) -> Self {
        Self::with_device(graph, config, Device::quadro_p2000())
    }

    /// Build with an explicit simulated device.
    pub fn with_device(graph: Graph, config: GGridConfig, device: Device) -> Self {
        let graph = Arc::new(graph);
        let grid = Arc::new(GraphGrid::build(
            graph.clone(),
            config.cell_capacity,
            config.vertex_capacity,
        ));
        Self::with_shared_grid(grid, config, device)
    }

    /// Build a server over a pre-built (shared) graph grid. The grid is
    /// immutable after construction, so harnesses sweeping query-side
    /// parameters can partition the network once and spin up fresh servers
    /// cheaply.
    pub fn with_shared_grid(grid: Arc<GraphGrid>, config: GGridConfig, mut device: Device) -> Self {
        config.validate();
        assert!(grid.graph().num_vertices() > 0, "grid over an empty graph");
        // A shared grid must have been built with the same capacities the
        // config declares, or validation and size accounting would lie.
        assert_eq!(
            (grid.cell_capacity(), grid.vertex_capacity()),
            (config.cell_capacity, config.vertex_capacity),
            "shared grid was built with different δc/δv than the config"
        );
        let graph = grid.graph().clone();
        // The GPU holds a mirror of the graph grid (§III-A); reserve it.
        device
            .alloc(grid.grid_bytes())
            .expect("graph grid does not fit in device memory");
        let lists = CellLists::new(grid.num_cells(), config.bucket_capacity);
        let resident = ResidentCellStore::new(config.device_budget_bytes);
        // Topology residency shares the cell-state device budget; a zero
        // budget disables it, as does the dedicated config switch.
        let topo = TopologyStore::new(if config.topology_resident {
            config.device_budget_bytes
        } else {
            0
        });
        let pool = ScratchPool::new(graph.num_vertices());
        Self {
            graph,
            grid,
            config,
            object_table: RwLock::new(ObjectTable::new()),
            lists,
            device,
            resident,
            topo,
            pool,
            counters: ServerCounters::default(),
            last_breakdown: QueryBreakdown::default(),
        }
    }

    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    pub fn grid(&self) -> &GraphGrid {
        &self.grid
    }

    pub fn config(&self) -> &GGridConfig {
        &self.config
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    pub fn counters(&self) -> &ServerCounters {
        &self.counters
    }

    /// Breakdown of the most recent query.
    pub fn last_breakdown(&self) -> &QueryBreakdown {
        &self.last_breakdown
    }

    /// Number of cells whose consolidated lists are device-resident.
    pub fn resident_cells(&self) -> usize {
        self.resident.resident_cells()
    }

    /// Bytes of consolidated cell state held in device memory.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.resident_bytes()
    }

    /// Whether the cell containing `edge` is device-resident right now.
    pub fn is_resident(&self, edge: roadnet::EdgeId) -> bool {
        self.resident.contains(self.grid.cell_of_edge(edge))
    }

    /// Forcibly evict the resident state of the cell containing `edge`
    /// (tests and ablations — simulates device-memory pressure from
    /// elsewhere). The next clean of that cell takes the full-upload path
    /// and re-promotes it.
    pub fn evict_resident(&mut self, edge: roadnet::EdgeId) -> bool {
        let cell = self.grid.cell_of_edge(edge);
        let evicted = self.resident.force_evict(&mut self.device, cell);
        if evicted {
            self.counters.evictions += 1;
        }
        evicted
    }

    /// Forcibly evict every resident cell.
    pub fn evict_all_resident(&mut self) {
        self.counters.evictions += self.resident.resident_cells() as u64;
        self.resident.clear(&mut self.device);
    }

    /// Number of cells whose CSR topology slices are device-resident.
    pub fn topology_resident_cells(&self) -> usize {
        self.topo.resident_cells()
    }

    /// Bytes of topology slices held in device memory.
    pub fn topology_resident_bytes(&self) -> u64 {
        self.topo.resident_bytes()
    }

    /// Forcibly evict every resident topology slice (tests and ablations —
    /// the next query re-uploads what it touches).
    pub fn evict_all_topology(&mut self) {
        self.topo.clear(&mut self.device);
    }

    /// Read access to the per-cell message lists (diagnostics/validation).
    pub(crate) fn cell_lists(&self) -> &CellLists {
        &self.lists
    }

    /// Read access to the object table (diagnostics/validation).
    pub(crate) fn object_table(&self) -> RwLockReadGuard<'_, ObjectTable> {
        self.object_table.read()
    }

    /// Number of messages currently cached across all cells.
    pub fn cached_messages(&self) -> usize {
        self.lists.sum_over(|l| l.total_messages())
    }

    /// Latest known position of an object, if it ever reported.
    pub fn object_position(&self, o: ObjectId) -> Option<(EdgePosition, Timestamp)> {
        self.object_table
            .read()
            .get(o)
            .map(|e| (e.position, e.time))
    }

    pub fn num_objects(&self) -> usize {
        self.object_table.read().len()
    }

    /// Algorithm 1: cache a location update.
    pub fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        debug_assert!(position.is_valid(&self.graph), "invalid object position");
        let cell = self.grid.cell_of_edge(position.edge);
        self.lists
            .lock(cell.index())
            .append(CachedMessage::update(object, position, time));
        let mut table = self.object_table.write();
        if let Some(prev) = table.get(object) {
            if prev.cell != cell {
                let prev_cell = prev.cell;
                self.lists
                    .lock(prev_cell.index())
                    .append(CachedMessage::tombstone(object, time));
                self.counters.tombstones_written += 1;
            }
        }
        table.set(object, cell, position, time);
        self.counters.updates_ingested += 1;
    }

    /// Eagerly clean the message list of the cell containing `edge`
    /// (ablation support: calling this after every update degenerates the
    /// lazy strategy into the eager one the paper compares against).
    pub fn clean_cell_of_edge(&mut self, edge: roadnet::EdgeId, now: Timestamp) {
        let cell = self.grid.cell_of_edge(edge);
        let (_, rep) = crate::cleaning::clean_cells(
            &mut self.device,
            &self.lists,
            &mut self.resident,
            &[cell],
            &self.config,
            now,
        );
        self.counters.gpu_time += rep.time;
        self.counters.h2d_bytes += rep.h2d_bytes;
        self.counters.h2d_delta_bytes += rep.h2d_delta_bytes;
        self.counters.h2d_full_bytes += rep.h2d_full_bytes;
        self.counters.d2h_bytes += rep.d2h_bytes;
        self.counters.messages_cleaned += rep.messages as u64;
        self.counters.clean_skip_hits += rep.cells_skipped as u64;
        self.counters.clean_skip_misses += rep.cells_cleaned as u64;
        self.counters.resident_hits += rep.resident_hits as u64;
        self.counters.evictions += rep.evictions;
    }

    /// Eagerly clean every cell (used by tests and ablations).
    pub fn clean_all(&mut self, now: Timestamp) {
        let cells: Vec<crate::grid::CellId> = self.grid.cell_ids().collect();
        let (_, rep) = crate::cleaning::clean_cells(
            &mut self.device,
            &self.lists,
            &mut self.resident,
            &cells,
            &self.config,
            now,
        );
        self.counters.gpu_time += rep.time;
        self.counters.messages_cleaned += rep.messages as u64;
        self.counters.clean_skip_hits += rep.cells_skipped as u64;
        self.counters.clean_skip_misses += rep.cells_cleaned as u64;
        self.counters.resident_hits += rep.resident_hits as u64;
        self.counters.evictions += rep.evictions;
    }

    /// Answer a kNN query issued at `now`; returns up to `k`
    /// `(object, distance)` pairs, nearest first.
    pub fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        self.knn_detailed(q, k, now).items
    }

    /// Process a batch of queries, sharing one device cleaning pass for
    /// the union of their candidate regions (paper Fig 5's "G-Grid" vs
    /// "G-Grid (L)" distinction).
    pub fn knn_batch(
        &mut self,
        queries: &[(EdgePosition, usize)],
        now: Timestamp,
    ) -> crate::batch::BatchResult {
        let result = crate::batch::run_knn_batch(
            &mut self.device,
            &self.grid,
            &self.lists,
            &mut self.resident,
            &mut self.topo,
            &self.pool,
            &self.config,
            queries,
            now,
        );
        self.counters.record_query(&result.shared);
        self.counters.queries -= 1; // the shared pass is not a query
        for b in &result.per_query {
            self.counters.record_query(b);
        }
        self.counters.kernel_launches = self.device.launches();
        result
    }

    /// As [`Self::knn`] but returning the full cost breakdown.
    pub fn knn_detailed(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> KnnResult {
        let result = run_knn(
            &mut self.device,
            &self.grid,
            &self.lists,
            &mut self.resident,
            &mut self.topo,
            &self.pool,
            &self.config,
            q,
            k,
            now,
        );
        self.last_breakdown = result.breakdown;
        self.counters.record_query(&result.breakdown);
        self.counters.kernel_launches = self.device.launches();
        result
    }
}

impl MovingObjectIndex for GGridServer {
    fn name(&self) -> &'static str {
        "G-Grid"
    }

    fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        GGridServer::handle_update(self, object, position, time)
    }

    fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        GGridServer::knn(self, q, k, now)
    }

    fn sim_costs(&self) -> SimCosts {
        let ledger = self.device.ledger();
        SimCosts {
            gpu_time: self.device.kernel_time(),
            transfer_time: ledger.total_time(),
            h2d_bytes: ledger.h2d_bytes,
            d2h_bytes: ledger.d2h_bytes,
        }
    }

    fn emulated_host_ns(&self) -> u64 {
        self.counters.emulation_ns
    }

    fn index_size(&self) -> IndexSize {
        let lists: u64 = self.lists.sum_over(|l| l.size_bytes());
        IndexSize {
            // Graph grid + object table + message lists live on the CPU.
            cpu_bytes: self.grid.grid_bytes() + self.object_table.read().size_bytes() + lists,
            // The GPU holds a mirror of the graph grid to streamline the
            // computation (Fig 6's "G-Grid (GPU)") plus whatever
            // consolidated cell lists and topology slices are resident.
            gpu_bytes: self.grid.grid_bytes()
                + self.resident.resident_bytes()
                + self.topo.resident_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::reference_knn;
    use roadnet::gen;
    use roadnet::EdgeId;

    fn small_config() -> GGridConfig {
        GGridConfig {
            bucket_capacity: 8,
            eta: 4,
            ..Default::default()
        }
    }

    fn pos(e: u32, d: u32) -> EdgePosition {
        EdgePosition::new(EdgeId(e), d)
    }

    #[test]
    fn single_object_found() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(100));
        let r = s.knn(pos(3, 0), 1, Timestamp(200));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, ObjectId(1));
    }

    #[test]
    fn updates_are_cached_not_applied() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        for t in 0..50 {
            s.handle_update(ObjectId(1), pos(0, 0), Timestamp(100 + t));
        }
        // All 50 messages cached; no cleaning happened yet.
        assert_eq!(
            s.cached_messages() as u64,
            50 + s.counters().tombstones_written
        );
        // A query cleans the touched region.
        s.knn(pos(0, 0), 1, Timestamp(200));
        assert!(s.cached_messages() < 50);
    }

    #[test]
    fn tombstone_written_on_cell_change() {
        let g = gen::toy(42);
        let grid_probe = {
            let mut s = GGridServer::new(g.clone(), small_config());
            // Find two edges in different cells.
            let c0 = s.grid().cell_of_edge(EdgeId(0));
            let mut other = None;
            for e in g.edge_ids() {
                if s.grid().cell_of_edge(e) != c0 {
                    other = Some(e);
                    break;
                }
            }
            let other = other.expect("toy graph spans multiple cells");
            s.handle_update(ObjectId(5), pos(0, 0), Timestamp(10));
            assert_eq!(s.counters().tombstones_written, 0);
            s.handle_update(ObjectId(5), EdgePosition::at_source(other), Timestamp(20));
            assert_eq!(s.counters().tombstones_written, 1);
            s
        };
        let _ = grid_probe;
    }

    #[test]
    fn matches_reference_knn() {
        let g = gen::toy(7);
        let mut s = GGridServer::new(g.clone(), small_config());
        // Scatter 12 objects deterministically.
        let objects: Vec<(u64, EdgePosition)> = (0..12u64)
            .map(|i| {
                let e = EdgeId(((i * 13 + 5) % g.num_edges() as u64) as u32);
                let off = (i % (g.edge(e).weight as u64 + 1)) as u32;
                (i, EdgePosition::new(e, off))
            })
            .collect();
        for &(i, p) in &objects {
            s.handle_update(ObjectId(i), p, Timestamp(100 + i));
        }
        for (qi, k) in [(0u32, 1usize), (5, 3), (10, 5), (20, 12)] {
            let q = EdgePosition::at_source(EdgeId(qi % g.num_edges() as u32));
            let got = s.knn(q, k, Timestamp(500));
            let want = reference_knn(&g, q, &objects, k);
            let got_d: Vec<Distance> = got.iter().map(|&(_, d)| d).collect();
            let want_d: Vec<Distance> = want.iter().map(|&(_, d)| d).collect();
            assert_eq!(got_d, want_d, "distances diverge for k={k} q={q:?}");
        }
    }

    #[test]
    fn object_move_reflected_in_answers() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g.clone(), small_config());
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(10));
        // Move far away (edge in another cell).
        let far = g
            .edge_ids()
            .find(|&e| {
                GGridServer::new(g.clone(), small_config())
                    .grid()
                    .cell_of_edge(e)
                    != s.grid().cell_of_edge(EdgeId(0))
            })
            .unwrap();
        s.handle_update(ObjectId(1), EdgePosition::at_source(far), Timestamp(20));
        let r = s.knn(EdgePosition::at_source(far), 1, Timestamp(30));
        assert_eq!(r.len(), 1);
        // The reported distance must be to the *new* location.
        let want = reference_knn(
            &g,
            EdgePosition::at_source(far),
            &[(1, EdgePosition::at_source(far))],
            1,
        );
        assert_eq!(r[0].1, want[0].1);
    }

    #[test]
    fn expired_objects_disappear() {
        let g = gen::toy(42);
        let cfg = GGridConfig {
            t_delta_ms: 100,
            ..small_config()
        };
        let mut s = GGridServer::new(g, cfg);
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(10));
        // Way past t_Δ: the object violated the contract; it is gone.
        let r = s.knn(pos(0, 0), 1, Timestamp(10_000));
        assert!(r.is_empty());
    }

    #[test]
    fn k_larger_than_population() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        s.handle_update(ObjectId(1), pos(0, 0), Timestamp(10));
        s.handle_update(ObjectId(2), pos(1, 0), Timestamp(10));
        let r = s.knn(pos(0, 0), 10, Timestamp(20));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn no_objects_empty_answer() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        let r = s.knn(pos(0, 0), 3, Timestamp(20));
        assert!(r.is_empty());
    }

    #[test]
    fn counters_and_sizes_populate() {
        let g = gen::toy(42);
        let mut s = GGridServer::new(g, small_config());
        for i in 0..20 {
            s.handle_update(ObjectId(i), pos((i % 10) as u32, 0), Timestamp(10 + i));
        }
        s.knn(pos(0, 0), 4, Timestamp(100));
        assert_eq!(s.counters().updates_ingested, 20);
        assert_eq!(s.counters().queries, 1);
        assert!(s.counters().gpu_time > gpu_sim::SimNanos::ZERO);
        let sz = s.index_size();
        assert!(sz.cpu_bytes > 0 && sz.gpu_bytes > 0);
        let costs = s.sim_costs();
        assert!(costs.h2d_bytes > 0);
        assert!(costs.total_time() > gpu_sim::SimNanos::ZERO);
    }

    #[test]
    fn repeated_queries_stay_consistent() {
        let g = gen::toy(3);
        let mut s = GGridServer::new(g, small_config());
        for i in 0..15 {
            s.handle_update(ObjectId(i), pos((i % 8) as u32, 0), Timestamp(50 + i));
        }
        let q = pos(2, 0);
        let first = s.knn(q, 5, Timestamp(100));
        for _ in 0..3 {
            assert_eq!(s.knn(q, 5, Timestamp(100)), first);
        }
    }
}
