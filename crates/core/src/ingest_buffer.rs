//! Lock-free thread-local ingest buffering (DESIGN.md §5.9).
//!
//! PR 4's group commit made ingestion *low-contention*: one cell-mutex
//! acquisition and one dirty-epoch bump per touched cell per batch. But a
//! hot cell still serializes its commit on every batch — a fleet reporting
//! in small arrival batches pays the shared-cell toll once per batch even
//! though nothing reads the messages until the next query. The
//! [`ThreadIngestDispatcher`] removes that toll from the steady state,
//! following the `BucketsThreadDispatcher` pattern (thread-private
//! per-bucket buffers, flushed to the shared structure in bulk):
//!
//! * each ingest worker owns a private per-cell buffer set — during the
//!   placement phase it appends `(sequence, message)` entries there and
//!   **never touches a shared [`MessageList`]**;
//! * the shared list is touched only on *flush*: all workers' entries for a
//!   cell are gathered, merged into global-sequence order, and committed
//!   under **one** lock hold with **one** epoch bump — regardless of how
//!   many ingest calls contributed;
//! * flushes fire when a cell's buffered count crosses
//!   `ingest_buffer_cap`, when the global buffered footprint crosses
//!   `ingest_buffer_bytes`, or at an explicit
//!   [`flush_ingest`](crate::server::GGridServer::flush_ingest) barrier
//!   (queries, cleans, and subscription ticks flush implicitly, so
//!   visibility semantics are unchanged).
//!
//! Every buffered entry carries a global monotone sequence number assigned
//! at ingest entry, and an update and its departure tombstone share one
//! sequence. Sorting a cell's gathered entries by sequence therefore
//! reconstructs exactly the per-cell arrival interleave of the sequential
//! reference — the same `(cell, batch index)` total order PR 4's group
//! commit sorts by — so flushed state is byte-identical to the unbuffered
//! path (proptested in `tests/ingest_buffer.rs`).
//!
//! **Lock order.** A worker-slot mutex may be held around object-table
//! shard locks (the placement phase buffers while it walks the table), but
//! never around a cell mutex: draining returns owned entry vectors before
//! the commit path takes any cell lock. Cell mutexes and shard locks keep
//! their existing never-held-together invariant, so no new cycle is
//! possible. Worker slots are touched by their owning worker only during a
//! call, so the slot mutexes are uncontended in steady state — the shared
//! path is lock-free in the sense that matters: zero contended
//! acquisitions per buffered message.
//!
//! Retired per-cell buffer vectors recycle through a per-worker slab pool
//! (the dispatcher's analogue of the message lists' bucket free lists), so
//! steady-state buffering allocates nothing; the commit itself then reuses
//! each cell's bucket slabs through [`MessageList::append_batch`].
//!
//! [`MessageList`]: crate::message_list::MessageList

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};

use crate::grid::CellId;
use crate::message::CachedMessage;
use crate::object_table::FxBuildHasher;

/// A buffered placement: global ingest sequence plus the message itself.
pub type BufferedEntry = (u64, CachedMessage);

/// Bytes one buffered entry occupies (sequence word + wire message).
pub const ENTRY_BYTES: u64 = 8 + CachedMessage::WIRE_BYTES;

/// Slabs pooled per worker — enough to absorb a barrier flush's worth of
/// retirements without hoarding memory on quiet workers.
const SLAB_POOL_CAP: usize = 64;

/// One ingest worker's private buffers: per-cell entry vectors plus a slab
/// pool recycling retired vectors.
#[derive(Default)]
pub struct WorkerBuffers {
    cells: HashMap<CellId, Vec<BufferedEntry>, FxBuildHasher>,
    free: Vec<Vec<BufferedEntry>>,
}

impl WorkerBuffers {
    /// Append an entry to this worker's buffer for `cell`. Entries are
    /// pushed in ascending sequence order by construction (the worker walks
    /// its updates in batch order), so each per-cell vector is a sorted run.
    #[inline]
    pub fn push(&mut self, cell: CellId, seq: u64, m: CachedMessage) {
        let buf = self.cells.entry(cell).or_insert_with(|| {
            self.free
                .pop()
                .unwrap_or_else(|| Vec::with_capacity(SLAB_POOL_CAP))
        });
        buf.push((seq, m));
    }

    fn recycle(&mut self, mut slab: Vec<BufferedEntry>) {
        if self.free.len() < SLAB_POOL_CAP {
            slab.clear();
            self.free.push(slab);
        }
    }
}

/// Thread-local ingest buffering for a server: one private buffer set per
/// ingest worker, flushed to the shared cell lists in bulk. See the module
/// docs for the protocol and lock-order argument.
pub struct ThreadIngestDispatcher {
    workers: Vec<Mutex<WorkerBuffers>>,
    /// Global ingest sequence: each update claims one value; an update and
    /// its tombstone share it (exactly PR 4's batch-index tagging, made
    /// monotone across calls).
    seq: AtomicU64,
    /// Entries currently buffered across all workers.
    buffered_now: AtomicU64,
    /// Lifetime entries that passed through the buffers.
    buffered_total: AtomicU64,
    /// High-water mark of the buffered footprint, in bytes.
    bytes_high_water: AtomicU64,
    /// Flush events that committed at least one cell.
    flushes: AtomicU64,
}

impl ThreadIngestDispatcher {
    pub fn new(num_workers: usize) -> Self {
        Self {
            workers: (0..num_workers.max(1))
                .map(|_| Mutex::new(WorkerBuffers::default()))
                .collect(),
            seq: AtomicU64::new(0),
            buffered_now: AtomicU64::new(0),
            buffered_total: AtomicU64::new(0),
            bytes_high_water: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
        }
    }

    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Claim `n` consecutive sequence numbers; returns the first.
    pub fn next_seq(&self, n: usize) -> u64 {
        self.seq.fetch_add(n as u64, Ordering::Relaxed)
    }

    /// Lock worker `w`'s private buffer set for a placement phase. Each
    /// worker locks only its own slot, so this never contends within one
    /// ingest call.
    pub fn worker(&self, w: usize) -> MutexGuard<'_, WorkerBuffers> {
        self.workers[w % self.workers.len()].lock()
    }

    /// Account `n` entries buffered by a finished placement phase and
    /// refresh the byte high-water mark.
    pub fn note_buffered(&self, n: u64) {
        if n == 0 {
            return;
        }
        let now = self.buffered_now.fetch_add(n, Ordering::Relaxed) + n;
        self.buffered_total.fetch_add(n, Ordering::Relaxed);
        self.bytes_high_water
            .fetch_max(now * ENTRY_BYTES, Ordering::Relaxed);
    }

    /// Entries currently buffered (all workers).
    pub fn buffered_entries(&self) -> u64 {
        self.buffered_now.load(Ordering::Relaxed)
    }

    /// Current buffered footprint in bytes.
    pub fn buffered_bytes(&self) -> u64 {
        self.buffered_entries() * ENTRY_BYTES
    }

    /// `(flush events, lifetime buffered entries, byte high-water)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.flushes.load(Ordering::Relaxed),
            self.buffered_total.load(Ordering::Relaxed),
            self.bytes_high_water.load(Ordering::Relaxed),
        )
    }

    /// Cells whose buffered entry count (summed over workers) reached
    /// `cap`, in ascending cell order.
    pub fn cells_over(&self, cap: usize) -> Vec<CellId> {
        let mut totals: HashMap<CellId, usize, FxBuildHasher> = HashMap::default();
        for slot in &self.workers {
            let g = slot.lock();
            for (&cell, buf) in &g.cells {
                *totals.entry(cell).or_default() += buf.len();
            }
        }
        let mut over: Vec<CellId> = totals
            .into_iter()
            .filter(|&(_, n)| n >= cap)
            .map(|(c, _)| c)
            .collect();
        over.sort_unstable();
        over
    }

    /// Remove and merge every worker's buffered entries for `cell`,
    /// returning them in global sequence order (`None` if nothing was
    /// buffered). Worker-slot locks are taken one at a time and released
    /// before the caller takes the cell mutex — see the lock-order note.
    pub fn drain_cell(&self, cell: CellId) -> Option<Vec<BufferedEntry>> {
        let mut merged: Option<Vec<BufferedEntry>> = None;
        for slot in &self.workers {
            let mut g = slot.lock();
            if let Some(run) = g.cells.remove(&cell) {
                match &mut merged {
                    None => merged = Some(run),
                    Some(m) => {
                        m.extend_from_slice(&run);
                        g.recycle(run);
                    }
                }
            }
        }
        let mut merged = merged?;
        // Per-worker runs are already sequence-ascending; the concatenation
        // of a handful of runs sorts in near-linear time. Sequences are
        // unique, so the unstable sort is deterministic.
        merged.sort_unstable_by_key(|&(seq, _)| seq);
        self.buffered_now
            .fetch_sub(merged.len() as u64, Ordering::Relaxed);
        Some(merged)
    }

    /// Remove **all** buffered entries, grouped per cell in ascending cell
    /// order, each group in global sequence order.
    pub fn drain_all(&self) -> Vec<(CellId, Vec<BufferedEntry>)> {
        let mut groups: HashMap<CellId, Vec<BufferedEntry>, FxBuildHasher> = HashMap::default();
        let mut drained = 0u64;
        for slot in &self.workers {
            let mut g = slot.lock();
            let cells = std::mem::take(&mut g.cells);
            for (cell, run) in cells {
                drained += run.len() as u64;
                match groups.entry(cell) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(run);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        e.get_mut().extend_from_slice(&run);
                        g.recycle(run);
                    }
                }
            }
        }
        self.buffered_now.fetch_sub(drained, Ordering::Relaxed);
        let mut out: Vec<(CellId, Vec<BufferedEntry>)> = groups.into_iter().collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        for (_, run) in &mut out {
            run.sort_unstable_by_key(|&(seq, _)| seq);
        }
        out
    }

    /// Return a drained (committed) entry vector to the slab pool.
    pub fn recycle(&self, slab: Vec<BufferedEntry>) {
        self.workers[0].lock().recycle(slab);
    }

    /// Record one flush event that committed at least one cell.
    pub fn note_flush(&self) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ObjectId, Timestamp};
    use roadnet::{EdgeId, EdgePosition};

    fn msg(o: u64, t: u64) -> CachedMessage {
        CachedMessage::update(
            ObjectId(o),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(t),
        )
    }

    #[test]
    fn drain_cell_merges_workers_in_sequence_order() {
        let d = ThreadIngestDispatcher::new(2);
        let base = d.next_seq(4);
        assert_eq!(base, 0);
        d.worker(0).push(CellId(7), 0, msg(0, 10));
        d.worker(1).push(CellId(7), 1, msg(1, 11));
        d.worker(0).push(CellId(7), 2, msg(0, 12));
        d.worker(1).push(CellId(9), 3, msg(3, 13));
        d.note_buffered(4);
        assert_eq!(d.buffered_entries(), 4);

        let run = d.drain_cell(CellId(7)).unwrap();
        let seqs: Vec<u64> = run.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(d.buffered_entries(), 1);
        assert!(d.drain_cell(CellId(7)).is_none());
        d.recycle(run);

        let rest = d.drain_all();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].0, CellId(9));
        assert_eq!(d.buffered_entries(), 0);
    }

    #[test]
    fn cells_over_reports_combined_counts() {
        let d = ThreadIngestDispatcher::new(2);
        for i in 0..3u64 {
            d.worker(0).push(CellId(1), i, msg(i, i));
        }
        for i in 3..5u64 {
            d.worker(1).push(CellId(1), i, msg(i, i));
        }
        d.worker(1).push(CellId(2), 5, msg(5, 5));
        d.note_buffered(6);
        assert_eq!(d.cells_over(5), vec![CellId(1)]);
        assert_eq!(d.cells_over(1), vec![CellId(1), CellId(2)]);
        assert!(d.cells_over(7).is_empty());
    }

    #[test]
    fn stats_track_totals_and_high_water() {
        let d = ThreadIngestDispatcher::new(1);
        d.worker(0).push(CellId(0), 0, msg(0, 1));
        d.worker(0).push(CellId(0), 1, msg(1, 2));
        d.note_buffered(2);
        let _ = d.drain_all();
        d.note_flush();
        d.worker(0).push(CellId(0), 2, msg(2, 3));
        d.note_buffered(1);
        let (flushes, total, high) = d.stats();
        assert_eq!(flushes, 1);
        assert_eq!(total, 3);
        assert_eq!(high, 2 * ENTRY_BYTES);
        assert_eq!(d.buffered_bytes(), ENTRY_BYTES);
    }

    #[test]
    fn slabs_recycle_through_the_pool() {
        let d = ThreadIngestDispatcher::new(1);
        d.worker(0).push(CellId(3), 0, msg(0, 1));
        d.note_buffered(1);
        let run = d.drain_cell(CellId(3)).unwrap();
        let cap = run.capacity();
        d.recycle(run);
        // The next buffer for any cell must come from the pool.
        d.worker(0).push(CellId(4), 1, msg(1, 2));
        let g = d.worker(0);
        assert_eq!(g.cells[&CellId(4)].capacity(), cap);
    }
}
