//! Continuous kNN subscriptions: standing queries kept incrementally
//! correct across the ingest stream.
//!
//! A subscription stores its current top-k together with a **guard
//! radius** — (1 + slack) × the network distance of the (k+1)-th candidate
//! at the last full evaluation — and the **guard cells**: every grid cell
//! containing an edge whose source vertex lies within the guard radius of
//! the query point (plus the query's own cell). The registry here keeps a
//! cell→subscriptions inverted index over those guard regions, so when an
//! ingest batch reports the cells whose dirty epoch it bumped, only the
//! subscriptions whose guard region intersects a dirtied cell need any
//! work at all; the rest are provably still correct (see DESIGN.md §5.7
//! for the argument) and are skipped without touching the device.
//!
//! The approach follows the safe-region idea of Lettich et al.
//! (arXiv:1412.6170; companion range-query work arXiv:1411.3212): reuse
//! per-query state across ticks instead of re-answering from scratch.
//!
//! Index maintenance is eager and exact: `insert`/`remove` and the tick's
//! take-repair-put-back cycle keep `by_cell` free of stale entries, so the
//! invalidation scan is a plain lookup with no tombstone filtering.

use roadnet::graph::{Distance, Graph, VertexId, INFINITY};
use roadnet::EdgePosition;

use crate::grid::{CellId, GraphGrid};
use crate::message::{ObjectId, Timestamp};

/// Handle of a standing kNN query, returned by
/// [`crate::server::GGridServer::subscribe_knn`]. Generation-tagged: a
/// handle kept across `unsubscribe` never aliases a later subscription
/// that reuses the same slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u64);

impl SubscriptionId {
    fn new(slot: u32, gen: u32) -> Self {
        Self(((gen as u64) << 32) | slot as u64)
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Opaque numeric form (diagnostics, logs).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// State of one standing query.
#[derive(Clone, Debug)]
pub(crate) struct Subscription {
    pub q: EdgePosition,
    pub k: usize,
    /// Current top-k, nearest first, ties on object id — byte-identical to
    /// what a fresh `knn(q, k, now)` would return.
    pub result: Vec<(ObjectId, Distance)>,
    /// Distance below which the result set is provably closed under
    /// updates outside the guard cells. `INFINITY` when the last
    /// evaluation found no (k+1)-th candidate (the whole network guards).
    pub guard_radius: Distance,
    /// Sorted, deduplicated cell cover of the guard ball; empty when
    /// `covers_all`.
    pub guard_cells: Vec<CellId>,
    pub covers_all: bool,
    /// Earliest instant at which a current member's last report may leave
    /// the freshness horizon t_Δ — the one way the result can change with
    /// no cell dirtied, so a tick at/after this time re-validates even
    /// without a guard intersection.
    pub expires_at: Timestamp,
}

/// Outcome of one [`crate::server::GGridServer::tick_subscriptions`] call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SubscriptionTickReport {
    /// Subscriptions active when the tick ran.
    pub active: usize,
    /// Distinct dirtied cells the tick drained from the ingest stream.
    pub dirty_cells: usize,
    /// Subscriptions re-validated (guard intersection or possible expiry).
    pub invalidated: usize,
    /// Re-validated subscriptions repaired by the bounded delta search.
    pub repaired_delta: usize,
    /// Re-validated subscriptions that fell back to a full re-query.
    pub repaired_full: usize,
    /// Subscriptions untouched by this tick (avoided re-evaluations).
    pub skipped: usize,
}

/// Slab of subscriptions plus the cell→subscriptions inverted index.
#[derive(Debug, Default)]
pub(crate) struct SubscriptionRegistry {
    slots: Vec<Option<Subscription>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    /// `by_cell[c]` = ids of live subscriptions whose guard cells include
    /// `c`. Maintained eagerly; no stale entries.
    by_cell: Vec<Vec<SubscriptionId>>,
    /// Live subscriptions with an unbounded guard (`covers_all`): every
    /// dirtied cell invalidates them.
    global: Vec<SubscriptionId>,
    active: usize,
}

impl SubscriptionRegistry {
    pub fn new(num_cells: usize) -> Self {
        Self {
            by_cell: vec![Vec::new(); num_cells],
            ..Self::default()
        }
    }

    pub fn active(&self) -> usize {
        self.active
    }

    pub fn insert(&mut self, sub: Subscription) -> SubscriptionId {
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                (self.slots.len() - 1) as u32
            }
        };
        self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
        let id = SubscriptionId::new(slot, self.gens[slot as usize]);
        self.index(id, &sub);
        self.slots[slot as usize] = Some(sub);
        self.active += 1;
        id
    }

    pub fn get(&self, id: SubscriptionId) -> Option<&Subscription> {
        if self.gens.get(id.slot()) != Some(&id.gen()) {
            return None;
        }
        self.slots[id.slot()].as_ref()
    }

    pub fn remove(&mut self, id: SubscriptionId) -> Option<Subscription> {
        let sub = self.take(id)?;
        self.free.push(id.slot() as u32);
        Some(sub)
    }

    /// Detach a subscription for repair: the slot stays reserved (the same
    /// id is restored by [`Self::put_back`]) but its index entries are
    /// removed, so the repair can rewrite the guard cover freely.
    pub fn take(&mut self, id: SubscriptionId) -> Option<Subscription> {
        if self.gens.get(id.slot()) != Some(&id.gen()) {
            return None;
        }
        let sub = self.slots[id.slot()].take()?;
        self.unindex(id, &sub);
        self.active -= 1;
        Some(sub)
    }

    pub fn put_back(&mut self, id: SubscriptionId, sub: Subscription) {
        debug_assert_eq!(self.gens[id.slot()], id.gen());
        debug_assert!(self.slots[id.slot()].is_none());
        self.index(id, &sub);
        self.slots[id.slot()] = Some(sub);
        self.active += 1;
    }

    fn index(&mut self, id: SubscriptionId, sub: &Subscription) {
        if sub.covers_all {
            self.global.push(id);
        } else {
            for &c in &sub.guard_cells {
                self.by_cell[c.index()].push(id);
            }
        }
    }

    fn unindex(&mut self, id: SubscriptionId, sub: &Subscription) {
        if sub.covers_all {
            self.global.retain(|&x| x != id);
        } else {
            for &c in &sub.guard_cells {
                self.by_cell[c.index()].retain(|&x| x != id);
            }
        }
    }

    /// Ids of every subscription a tick at `now` over `dirty` (sorted,
    /// deduplicated cells) must re-validate: guard region intersects a
    /// dirtied cell, unbounded guard with any dirt at all, or a member's
    /// report may have left the freshness horizon. Sorted by id, so the
    /// repair order — and every counter downstream — is deterministic.
    pub fn affected(&self, dirty: &[CellId], now: Timestamp) -> Vec<SubscriptionId> {
        let mut out: Vec<SubscriptionId> = Vec::new();
        for &c in dirty {
            out.extend_from_slice(&self.by_cell[c.index()]);
        }
        if !dirty.is_empty() {
            out.extend_from_slice(&self.global);
        }
        for (slot, sub) in self.slots.iter().enumerate() {
            if let Some(sub) = sub {
                if now >= sub.expires_at {
                    out.push(SubscriptionId::new(slot as u32, self.gens[slot]));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// The guard-cell cover of `ball(q, guard)`, read off a bounded Dijkstra
/// from `q` whose settled set includes every vertex within `guard`: the
/// cell of every out-edge of every settled vertex within the radius, plus
/// the query's own cell (an object on `q.edge` behind the query point is
/// at distance `offset` difference without passing any vertex).
///
/// Any object strictly outside these cells sits on an edge whose source
/// vertex is farther than `guard`, hence at network distance > guard from
/// `q` — the containment DESIGN.md §5.7's correctness argument rests on.
pub(crate) fn guard_cover(
    grid: &GraphGrid,
    graph: &Graph,
    settled: &[VertexId],
    dist: impl Fn(VertexId) -> Distance,
    guard: Distance,
    q: EdgePosition,
) -> Vec<CellId> {
    let mut cells: Vec<CellId> = vec![grid.cell_of_edge(q.edge)];
    for &v in settled {
        if dist(v) > guard {
            continue;
        }
        for e in graph.out_edges(v) {
            cells.push(grid.cell_of_edge(e));
        }
    }
    cells.sort_unstable();
    cells.dedup();
    cells
}

/// Widen a guard distance by the configured slack, saturating at
/// `INFINITY` (an unbounded guard).
pub(crate) fn slacked(d: Distance, slack: f64) -> Distance {
    if d >= INFINITY {
        return INFINITY;
    }
    let widened = d.saturating_add((d as f64 * slack) as Distance);
    widened.min(INFINITY)
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::EdgeId;

    fn sub_with_cells(cells: Vec<u32>) -> Subscription {
        Subscription {
            q: EdgePosition::at_source(EdgeId(0)),
            k: 1,
            result: Vec::new(),
            guard_radius: 10,
            guard_cells: cells.into_iter().map(CellId).collect(),
            covers_all: false,
            expires_at: Timestamp(u64::MAX),
        }
    }

    #[test]
    fn ids_are_generation_tagged() {
        let mut r = SubscriptionRegistry::new(4);
        let a = r.insert(sub_with_cells(vec![0]));
        r.remove(a);
        let b = r.insert(sub_with_cells(vec![1]));
        // Slot reuse must not revive the old handle.
        assert_eq!(a.slot(), b.slot());
        assert_ne!(a, b);
        assert!(r.get(a).is_none());
        assert!(r.get(b).is_some());
    }

    #[test]
    fn affected_matches_guard_intersections() {
        let mut r = SubscriptionRegistry::new(4);
        let a = r.insert(sub_with_cells(vec![0, 1]));
        let b = r.insert(sub_with_cells(vec![2]));
        let never = Timestamp(0);
        assert_eq!(r.affected(&[CellId(1)], never), vec![a]);
        assert_eq!(r.affected(&[CellId(2)], never), vec![b]);
        assert_eq!(r.affected(&[CellId(1), CellId(2)], never), vec![a, b]);
        assert!(r.affected(&[CellId(3)], never).is_empty());
        assert!(r.affected(&[], never).is_empty());
    }

    #[test]
    fn covers_all_hit_by_any_dirt_and_expiry_needs_none() {
        let mut r = SubscriptionRegistry::new(4);
        let mut s = sub_with_cells(vec![]);
        s.covers_all = true;
        s.expires_at = Timestamp(100);
        let a = r.insert(s);
        assert_eq!(r.affected(&[CellId(3)], Timestamp(0)), vec![a]);
        // No dirt, but the member may have expired.
        assert_eq!(r.affected(&[], Timestamp(100)), vec![a]);
        assert!(r.affected(&[], Timestamp(99)).is_empty());
    }

    #[test]
    fn take_put_back_reindexes_new_cover() {
        let mut r = SubscriptionRegistry::new(4);
        let a = r.insert(sub_with_cells(vec![0]));
        let mut sub = r.take(a).unwrap();
        assert_eq!(r.active(), 0);
        assert!(r.affected(&[CellId(0)], Timestamp(0)).is_empty());
        sub.guard_cells = vec![CellId(3)];
        r.put_back(a, sub);
        assert_eq!(r.active(), 1);
        assert!(r.affected(&[CellId(0)], Timestamp(0)).is_empty());
        assert_eq!(r.affected(&[CellId(3)], Timestamp(0)), vec![a]);
    }

    #[test]
    fn slack_widens_and_saturates() {
        assert_eq!(slacked(100, 0.25), 125);
        assert_eq!(slacked(100, 0.0), 100);
        assert_eq!(slacked(INFINITY, 0.25), INFINITY);
        assert_eq!(slacked(INFINITY - 1, 4.0), INFINITY);
    }
}
