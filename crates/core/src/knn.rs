//! kNN query processing (paper §V, Algorithms 4–6).
//!
//! The query runs as a CPU–GPU pipeline:
//!
//! 1. **Candidate cells** — starting from the query's cell, expand through
//!    cell adjacency, cleaning each frontier on the device, until at least
//!    ρ·k live objects are known (Algorithm 4 lines 1–4).
//! 2. **Candidate distances** — a parallelised Bellman–Ford over the
//!    subgraph induced by the candidate cells computes shortest distances
//!    to every vertex (Algorithm 5, `GPU_SDist`); object distances follow
//!    as `D[source(o.e)] + o.d`, and a parallel selection yields the k best
//!    (`GPU_First_k`).
//! 3. **Unresolved vertices** — boundary vertices of the candidate region
//!    closer than the k-th candidate (`GPU_Unresolved`, Definition 3).
//! 4. **Refinement** — the CPU runs a bounded Dijkstra from every
//!    unresolved vertex over the *full* graph (Algorithm 6), lazily
//!    cleaning any newly touched cells, and merges the improved distance
//!    estimates into the final answer.
//!
//! Step 4 makes the answer exact: any true shortest path that leaves the
//! candidate region must exit through an unresolved vertex `v` with
//! `D[v] < l`, and the refinement search from `v` has radius `l − D[v]`,
//! enough to reach every such answer object.
//!
//! ## Concurrency
//!
//! The pipeline is split into three phases so a batch scheduler can overlap
//! queries: [`knn_device_phase`] (steps 1–3, needs the device and the
//! message lists), [`refine_unresolved`] (step 4's Dijkstra expansions —
//! pure CPU, no shared state, safe to run on a worker thread while the
//! device serves the next query), and [`knn_finalize`] (lazy cleaning of
//! refinement-touched cells plus the final selection). `refine_unresolved`
//! itself fans the per-vertex expansions out over
//! `GGridConfig::refine_workers` scoped threads; per-worker distance maps
//! are merged with `min`, which is commutative and associative, so the
//! merged result — and therefore the answer — is bit-identical for every
//! worker count.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use gpu_sim::Device;
use roadnet::dijkstra::{DijkstraEngine, SearchBounds};
use roadnet::graph::{Distance, VertexId, INFINITY};
use roadnet::EdgePosition;

use crate::cleaning::clean_cells;
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::message::{CachedMessage, ObjectId, Timestamp};
use crate::message_list::CellLists;
use crate::object_table::FxBuildHasher;
use crate::residency::ResidentCellStore;
use crate::stats::QueryBreakdown;

/// Result of a kNN query.
#[derive(Clone, Debug)]
pub struct KnnResult {
    /// Up to `k` `(object, network distance)` pairs, nearest first; ties
    /// break on object id.
    pub items: Vec<(ObjectId, Distance)>,
    pub breakdown: QueryBreakdown,
}

/// State of a query between the device phase and finalisation.
///
/// Everything here is owned, so a batch scheduler can hold several pending
/// queries while their refinements run on worker threads.
pub(crate) struct PendingKnn {
    pub k: usize,
    pub in_set: Vec<bool>,
    pub set: Vec<CellId>,
    pub objects: Vec<CachedMessage>,
    pub estimates: HashMap<ObjectId, Distance, FxBuildHasher>,
    pub positions: HashMap<ObjectId, EdgePosition, FxBuildHasher>,
    /// Distance of the k-th candidate (Definition 3).
    pub l: Distance,
    pub unresolved: Vec<(VertexId, Distance)>,
    pub breakdown: QueryBreakdown,
}

/// Result of the CPU refinement phase (Algorithm 6's searches).
pub(crate) struct RefineOutcome {
    /// `best_outer[u]` = min over unresolved `v` of `D[v] + dist_v(u)`.
    pub best_outer: HashMap<VertexId, Distance, FxBuildHasher>,
    /// Cells outside the candidate set the searches settled vertices in,
    /// sorted and deduplicated.
    pub touched_cells: Vec<CellId>,
    /// Measured wall time of the phase on this host.
    pub wall_ns: u64,
    /// Summed busy time across workers (the serial work volume).
    pub busy_ns: u64,
    /// Critical path: the busiest single worker. This is the phase's
    /// modeled duration on a host with ≥ `workers` free cores — the
    /// refinement analogue of the simulated device clock, and what the
    /// batch pipeline charges on its host stream.
    pub critical_ns: u64,
    /// Worker threads actually used.
    pub workers: usize,
}

impl RefineOutcome {
    fn empty() -> Self {
        Self {
            best_outer: HashMap::with_hasher(FxBuildHasher::default()),
            touched_cells: Vec::new(),
            wall_ns: 0,
            busy_ns: 0,
            critical_ns: 0,
            workers: 0,
        }
    }
}

/// Execute a kNN query against the G-Grid state.
#[allow(clippy::too_many_arguments)]
pub fn run_knn(
    device: &mut Device,
    grid: &GraphGrid,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    config: &GGridConfig,
    q: EdgePosition,
    k: usize,
    now: Timestamp,
) -> KnnResult {
    let pending = knn_device_phase(device, grid, lists, resident, config, q, k, now);
    let refined = refine_unresolved(
        grid,
        &pending.unresolved,
        pending.l,
        &pending.in_set,
        config.refine_workers,
    );
    knn_finalize(device, grid, lists, resident, config, now, pending, refined)
}

/// One cleaning round of the expansion: clean the not-yet-included cells,
/// merge their live objects into the pool, and grow the candidate set.
#[allow(clippy::too_many_arguments)]
fn clean_round(
    device: &mut Device,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    config: &GGridConfig,
    now: Timestamp,
    cells: &[CellId],
    in_set: &mut [bool],
    set: &mut Vec<CellId>,
    objects: &mut Vec<CachedMessage>,
    breakdown: &mut QueryBreakdown,
    cpu_excluded: &mut Duration,
) {
    let fresh: Vec<CellId> = cells
        .iter()
        .copied()
        .filter(|c| !in_set[c.index()])
        .collect();
    if fresh.is_empty() {
        return;
    }
    let t0 = Instant::now();
    let (cleaned, rep) = clean_cells(device, lists, resident, &fresh, config, now);
    *cpu_excluded += t0.elapsed();
    breakdown.cleaning += rep.time;
    breakdown.copy_back += rep.copy_back_time;
    breakdown.h2d_bytes += rep.h2d_bytes;
    breakdown.h2d_delta_bytes += rep.h2d_delta_bytes;
    breakdown.h2d_full_bytes += rep.h2d_full_bytes;
    breakdown.d2h_bytes += rep.d2h_bytes;
    breakdown.messages_cleaned += rep.messages;
    breakdown.cells_cleaned += rep.cells_cleaned;
    breakdown.cells_skipped += rep.cells_skipped;
    breakdown.resident_hits += rep.resident_hits;
    breakdown.evictions += rep.evictions;
    for c in fresh {
        in_set[c.index()] = true;
        set.push(c);
        if let Some(msgs) = cleaned.get(&c) {
            objects.extend_from_slice(msgs);
        }
    }
}

/// Steps 1–3: everything that needs the device and the message lists.
#[allow(clippy::too_many_arguments)]
pub(crate) fn knn_device_phase(
    device: &mut Device,
    grid: &GraphGrid,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    config: &GGridConfig,
    q: EdgePosition,
    k: usize,
    now: Timestamp,
) -> PendingKnn {
    assert!(k >= 1, "k must be at least 1");
    let graph = grid.graph().clone();
    assert!(q.is_valid(&graph), "query position invalid for this graph");
    let mut breakdown = QueryBreakdown::default();
    let cpu_start = Instant::now();
    let mut cpu_excluded = Duration::ZERO; // host time spent emulating kernels

    // ---- Step 1: candidate cells (Algorithm 4 lines 1-4) ----
    let mut in_set = vec![false; grid.num_cells()];
    let mut set: Vec<CellId> = Vec::new();
    let c_q = grid.cell_of_edge(q.edge);
    let mut first_round = vec![c_q];
    first_round.extend_from_slice(grid.neighbors(c_q));

    let mut objects: Vec<CachedMessage> = Vec::new();
    let target = ((config.rho * k as f64).ceil() as usize).max(k);

    clean_round(
        device,
        lists,
        resident,
        config,
        now,
        &first_round,
        &mut in_set,
        &mut set,
        &mut objects,
        &mut breakdown,
        &mut cpu_excluded,
    );

    loop {
        if objects.len() >= target {
            break;
        }
        let frontier = frontier_of(grid, &in_set, &set);
        if frontier.is_empty() {
            break;
        }
        clean_round(
            device,
            lists,
            resident,
            config,
            now,
            &frontier,
            &mut in_set,
            &mut set,
            &mut objects,
            &mut breakdown,
            &mut cpu_excluded,
        );
    }

    // ---- Step 2: candidate distances, with a robustness loop: if fewer
    // than k candidates are reachable inside the induced subgraph, keep
    // expanding (degenerate topologies only; normally runs once). ----
    let (dist, candidates) = loop {
        let t0 = Instant::now();
        let (dist, sdist_time) = gpu_sdist(device, grid, &in_set, &set, q, &graph);
        let (candidates, firstk_time) = gpu_first_k(device, q, &dist, &objects, &graph);
        cpu_excluded += t0.elapsed();
        breakdown.candidate += sdist_time + firstk_time;

        let finite = candidates.iter().filter(|c| c.1 < INFINITY).count();
        if finite >= k.min(objects.len()) {
            break (dist, candidates);
        }
        let frontier = frontier_of(grid, &in_set, &set);
        if frontier.is_empty() {
            break (dist, candidates);
        }
        clean_round(
            device,
            lists,
            resident,
            config,
            now,
            &frontier,
            &mut in_set,
            &mut set,
            &mut objects,
            &mut breakdown,
            &mut cpu_excluded,
        );
    };
    breakdown.candidates = candidates.len();

    // Best estimate per object so far.
    let mut estimates: HashMap<ObjectId, Distance, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    let mut positions: HashMap<ObjectId, EdgePosition, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    for &(o, d, p) in &candidates {
        estimates.insert(o, d);
        positions.insert(o, p);
    }

    // l = distance of the k-th candidate (Definition 3).
    let l = kth_distance(&candidates, k);

    // ---- Step 3: unresolved vertices ----
    let all_covered = set.len() == grid.num_cells();
    let unresolved: Vec<(VertexId, Distance)> = if all_covered || l >= INFINITY {
        Vec::new()
    } else {
        let t0 = Instant::now();
        let (u, t) = gpu_unresolved(device, grid, &in_set, &set, &dist, l);
        cpu_excluded += t0.elapsed();
        breakdown.candidate += t;
        u
    };
    breakdown.unresolved = unresolved.len();

    // Copy the candidate set and unresolved set back to the host
    // (Algorithm 4 line 10 input).
    let out_bytes = candidates.len() as u64 * 16 + unresolved.len() as u64 * 12;
    if out_bytes > 0 {
        breakdown.transfer_out += device.d2h(out_bytes);
        breakdown.d2h_bytes += out_bytes;
    }

    let wall = cpu_start.elapsed();
    breakdown.cpu_ns += wall.saturating_sub(cpu_excluded).as_nanos() as u64;
    breakdown.emulation_ns += cpu_excluded.as_nanos() as u64;

    PendingKnn {
        k,
        in_set,
        set,
        objects,
        estimates,
        positions,
        l,
        unresolved,
        breakdown,
    }
}

/// Step 4's searches (Algorithm 6): bounded Dijkstra from every unresolved
/// vertex over the full graph, fanned out over `workers` scoped threads.
///
/// Pure CPU and side-effect free: it never touches the device or the
/// message lists, which is what lets a batch scheduler run it concurrently
/// with another query's device phase. Determinism: each worker builds a
/// local `best_outer`, maps are merged with `min` (order-independent), and
/// `touched_cells` is recomputed from the merged map and sorted — so the
/// outcome is identical for every worker count, including 1.
pub(crate) fn refine_unresolved(
    grid: &GraphGrid,
    unresolved: &[(VertexId, Distance)],
    l: Distance,
    in_set: &[bool],
    workers: usize,
) -> RefineOutcome {
    if unresolved.is_empty() {
        return RefineOutcome::empty();
    }
    let graph = grid.graph().clone();
    let t0 = Instant::now();

    let expand = |chunk: Vec<(VertexId, Distance)>| {
        let started = Instant::now();
        let mut engine = DijkstraEngine::new(&graph);
        let mut local: HashMap<VertexId, Distance, FxBuildHasher> =
            HashMap::with_hasher(FxBuildHasher::default());
        for (v, dv) in chunk {
            let radius = l - dv; // l > dv by construction
            engine.run_seeded(&[(v, 0)], SearchBounds::radius(radius));
            for &u in engine.settled() {
                let du = dv + engine.distance(u);
                local
                    .entry(u)
                    .and_modify(|d| *d = (*d).min(du))
                    .or_insert(du);
            }
        }
        (local, started.elapsed().as_nanos() as u64)
    };

    let workers = workers.max(1).min(unresolved.len());
    let (mut best_outer, mut busy_ns, mut critical_ns) = if workers == 1 {
        let (local, ns) = expand(unresolved.to_vec());
        (local, ns, ns)
    } else {
        // Deal vertices round-robin: adjacent unresolved vertices sit on
        // the same stretch of the region boundary and have correlated
        // search radii, so contiguous chunks would load one worker with
        // all the heavy expansions. Striding spreads them evenly; the
        // min-merge makes the partition irrelevant to the result.
        let partials = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let chunk: Vec<(VertexId, Distance)> = unresolved
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .copied()
                        .collect();
                    let expand = &expand;
                    s.spawn(move |_| expand(chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("refinement worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("refinement scope failed");

        let mut merged: HashMap<VertexId, Distance, FxBuildHasher> =
            HashMap::with_hasher(FxBuildHasher::default());
        let mut busy = 0u64;
        let mut critical = 0u64;
        for (local, worker_ns) in partials {
            busy += worker_ns;
            critical = critical.max(worker_ns);
            for (u, du) in local {
                merged
                    .entry(u)
                    .and_modify(|d| *d = (*d).min(du))
                    .or_insert(du);
            }
        }
        (merged, busy, critical)
    };
    best_outer.shrink_to_fit();

    let mut touched_cells: Vec<CellId> = best_outer
        .keys()
        .map(|&u| grid.cell_of_vertex(u))
        .filter(|c| !in_set[c.index()])
        .collect();
    touched_cells.sort_unstable();
    touched_cells.dedup();

    let wall_ns = t0.elapsed().as_nanos() as u64;
    busy_ns = busy_ns.max(1);
    critical_ns = critical_ns.max(1);
    RefineOutcome {
        best_outer,
        touched_cells,
        wall_ns: wall_ns.max(1),
        busy_ns,
        critical_ns,
        workers,
    }
}

/// Close out a query: lazily clean the refinement-touched cells, improve
/// the estimates through the unresolved vertices, and select the answer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn knn_finalize(
    device: &mut Device,
    grid: &GraphGrid,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    config: &GGridConfig,
    now: Timestamp,
    pending: PendingKnn,
    refined: RefineOutcome,
) -> KnnResult {
    let PendingKnn {
        k,
        mut in_set,
        mut set,
        mut objects,
        mut estimates,
        mut positions,
        l: _,
        unresolved,
        mut breakdown,
    } = pending;
    let graph = grid.graph();
    let cpu_start = Instant::now();
    let mut cpu_excluded = Duration::ZERO;

    if !unresolved.is_empty() {
        breakdown.refine_ns = refined.wall_ns;
        breakdown.refine_busy_ns = refined.busy_ns;
        breakdown.refine_critical_ns = refined.critical_ns;
        breakdown.refine_workers = refined.workers;

        // Lazily clean the cells the refinement wandered into and add their
        // objects to the pool.
        clean_round(
            device,
            lists,
            resident,
            config,
            now,
            &refined.touched_cells,
            &mut in_set,
            &mut set,
            &mut objects,
            &mut breakdown,
            &mut cpu_excluded,
        );
        for m in &objects {
            if let Some(p) = m.position {
                positions.entry(m.object).or_insert(p);
            }
        }

        // Improve estimates through the unresolved vertices.
        for (&o, &p) in positions.iter() {
            let src = graph.edge(p.edge).source;
            if let Some(&outer) = refined.best_outer.get(&src) {
                let est = outer.saturating_add(p.from_source());
                estimates
                    .entry(o)
                    .and_modify(|d| *d = (*d).min(est))
                    .or_insert(est);
            }
        }
    }

    // ---- Final selection ----
    let mut final_items: Vec<(ObjectId, Distance)> = estimates
        .into_iter()
        .filter(|&(_, d)| d < INFINITY)
        .collect();
    final_items.sort_by_key(|&(o, d)| (d, o));
    final_items.truncate(k);

    let wall = cpu_start.elapsed();
    // Refinement wall time counts as CPU work (it did before the split).
    breakdown.cpu_ns += wall.saturating_sub(cpu_excluded).as_nanos() as u64 + breakdown.refine_ns;
    breakdown.emulation_ns += cpu_excluded.as_nanos() as u64;

    KnnResult {
        items: final_items,
        breakdown,
    }
}

/// Cells adjacent to the current set but not in it (`neighbors(L) \ L`).
fn frontier_of(grid: &GraphGrid, in_set: &[bool], set: &[CellId]) -> Vec<CellId> {
    let mut out: Vec<CellId> = set
        .iter()
        .flat_map(|&c| grid.neighbors(c).iter().copied())
        .filter(|c| !in_set[c.index()])
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Distance of the k-th nearest candidate, or `INFINITY` when fewer than k
/// candidates are reachable.
fn kth_distance(candidates: &[(ObjectId, Distance, EdgePosition)], k: usize) -> Distance {
    let mut ds: Vec<Distance> = candidates
        .iter()
        .map(|&(_, d, _)| d)
        .filter(|&d| d < INFINITY)
        .collect();
    if ds.len() < k {
        return INFINITY;
    }
    ds.sort_unstable();
    ds[k - 1]
}

/// Algorithm 5 `GPU_SDist`: Bellman–Ford over the subgraph induced by the
/// candidate cells, one thread per vertex record, relaxing each record's
/// (≤ δᵛ) stored in-edges per round until fixpoint.
fn gpu_sdist(
    device: &mut Device,
    grid: &GraphGrid,
    in_set: &[bool],
    set: &[CellId],
    q: EdgePosition,
    graph: &roadnet::Graph,
) -> (
    HashMap<VertexId, Distance, FxBuildHasher>,
    gpu_sim::SimNanos,
) {
    // Collect the records (threads) of the candidate cells.
    let mut records: Vec<(&crate::grid::VertexRecord, ())> = Vec::new();
    for &c in set {
        for r in &grid.cell(c).records {
            records.push((r, ()));
        }
    }
    let threads = records.len().max(1);

    let mut dist: HashMap<VertexId, Distance, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    for &c in set {
        for v in grid.vertices_in(c) {
            dist.insert(v, INFINITY);
        }
    }
    // Seed: the only way off the query edge is its destination vertex.
    let q_dest = graph.edge(q.edge).dest;
    if let Some(d) = dist.get_mut(&q_dest) {
        *d = q.to_dest(graph);
    }

    let (_, report) = device.launch(threads, |ctx| {
        let max_rounds = records.len().max(1);
        for _round in 0..max_rounds {
            let mut changed = false;
            // One round: every record relaxes its stored in-edges.
            for (r, ()) in &records {
                ctx.charge_alu_one(2 + 4 * r.edges.len() as u64);
                ctx.charge_read(12 * r.edges.len() as u64 + 8);
                let mut best = *dist.get(&r.vertex).unwrap_or(&INFINITY);
                for e in &r.edges {
                    if let Some(&ds) = dist.get(&e.source) {
                        let nd = ds.saturating_add(e.weight as Distance);
                        if nd < best {
                            best = nd;
                            changed = true;
                        }
                    }
                }
                if changed {
                    ctx.charge_write(8);
                }
                dist.insert(r.vertex, best);
            }
            ctx.sync_threads();
            if !changed {
                break;
            }
        }
        let _ = in_set;
    });
    (dist, report.time)
}

/// Distance from the query to an object position given the induced vertex
/// distances, including the along-the-edge shortcut when both share an edge.
fn object_distance(
    q: EdgePosition,
    p: EdgePosition,
    dist: &HashMap<VertexId, Distance, FxBuildHasher>,
    graph: &roadnet::Graph,
) -> Distance {
    let src = graph.edge(p.edge).source;
    let via = dist
        .get(&src)
        .copied()
        .unwrap_or(INFINITY)
        .saturating_add(p.from_source());
    if p.edge == q.edge && p.offset >= q.offset {
        via.min((p.offset - q.offset) as Distance)
    } else {
        via
    }
}

/// `GPU_First_k`: per-object distance computation and parallel selection.
/// Returns every candidate `(object, distance, position)` sorted ascending
/// by `(distance, object)`.
fn gpu_first_k(
    device: &mut Device,
    q: EdgePosition,
    dist: &HashMap<VertexId, Distance, FxBuildHasher>,
    objects: &[CachedMessage],
    graph: &roadnet::Graph,
) -> (Vec<(ObjectId, Distance, EdgePosition)>, gpu_sim::SimNanos) {
    let live: Vec<(ObjectId, EdgePosition)> = objects
        .iter()
        .filter_map(|m| m.position.map(|p| (m.object, p)))
        .collect();
    let n = live.len();
    type SortKey = (Distance, u64, u32, u32);
    const SENTINEL: SortKey = (u64::MAX, u64::MAX, u32::MAX, u32::MAX);
    let (scored, report) = device.launch(n.max(1), |ctx| {
        // One thread per object: distance = D[source(o.e)] + o.d.
        ctx.charge_alu_all(6);
        ctx.charge_read(32 * n as u64);
        let keys: Vec<SortKey> = live
            .iter()
            .map(|&(o, p)| (object_distance(q, p, dist, graph), o.0, p.edge.0, p.offset))
            .collect();
        // Parallel bitonic sort on the device (the paper's O(log ρk)
        // parallel selection); comparisons are charged by the network.
        let sorted = gpu_sim::collective::bitonic_sort(ctx, keys, SENTINEL);
        ctx.charge_write(16 * n as u64);
        sorted
            .into_iter()
            .map(|(d, o, e, off)| (ObjectId(o), d, EdgePosition::new(roadnet::EdgeId(e), off)))
            .collect::<Vec<_>>()
    });
    (scored, report.time)
}

/// `GPU_Unresolved`: boundary vertices of the candidate region closer to
/// the query than the k-th candidate (Definition 3). A vertex is on the
/// boundary when one of its out-edges leaves the region; each thread
/// performs the O(out-degree) boolean check.
fn gpu_unresolved(
    device: &mut Device,
    grid: &GraphGrid,
    in_set: &[bool],
    set: &[CellId],
    dist: &HashMap<VertexId, Distance, FxBuildHasher>,
    l: Distance,
) -> (Vec<(VertexId, Distance)>, gpu_sim::SimNanos) {
    let graph = grid.graph().clone();
    let vertices: Vec<VertexId> = set.iter().flat_map(|&c| grid.vertices_in(c)).collect();
    let (out, report) = device.launch(vertices.len().max(1), |ctx| {
        let mut found = Vec::new();
        for &v in &vertices {
            let dv = dist.get(&v).copied().unwrap_or(INFINITY);
            ctx.charge_alu_one(1 + graph.out_degree(v) as u64);
            ctx.charge_read(8 + 12 * graph.out_degree(v) as u64);
            if dv >= l {
                continue;
            }
            let on_boundary = graph.out_edges(v).any(|e| {
                let dest = graph.edge(e).dest;
                !in_set[grid.cell_of_vertex(dest).index()]
            });
            if on_boundary {
                found.push((v, dv));
            }
        }
        found
    });
    (out, report.time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use roadnet::gen;
    use roadnet::EdgeId;
    use std::sync::Arc;

    fn setup(seed: u64) -> (Arc<GraphGrid>, CellLists, Device, GGridConfig) {
        let graph = Arc::new(gen::toy(seed));
        let config = GGridConfig {
            eta: 4,
            bucket_capacity: 8,
            ..Default::default()
        };
        let grid = Arc::new(GraphGrid::build(
            graph,
            config.cell_capacity,
            config.vertex_capacity,
        ));
        let lists = CellLists::new(grid.num_cells(), config.bucket_capacity);
        (grid, lists, Device::new(DeviceSpec::test_tiny()), config)
    }

    fn place(grid: &GraphGrid, lists: &CellLists, objects: &[(u64, EdgePosition)], t: u64) {
        for &(o, p) in objects {
            let cell = grid.cell_of_edge(p.edge);
            lists
                .lock(cell.index())
                .append(CachedMessage::update(ObjectId(o), p, Timestamp(t)));
        }
    }

    #[test]
    fn frontier_expands_and_respects_set() {
        let (grid, ..) = setup(3);
        let start = grid.cell_of_edge(EdgeId(0));
        let mut in_set = vec![false; grid.num_cells()];
        in_set[start.index()] = true;
        let set = vec![start];
        let frontier = frontier_of(&grid, &in_set, &set);
        assert!(!frontier.is_empty());
        assert!(frontier.iter().all(|c| !in_set[c.index()]));
        // Sorted and deduplicated.
        let mut sorted = frontier.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(frontier, sorted);
    }

    #[test]
    fn kth_distance_semantics() {
        let p = EdgePosition::at_source(EdgeId(0));
        let c = |d: u64| (ObjectId(d), d, p);
        assert_eq!(kth_distance(&[c(5), c(2), c(9)], 2), 5);
        assert_eq!(kth_distance(&[c(5), c(2)], 3), INFINITY);
        assert_eq!(
            kth_distance(&[(ObjectId(1), INFINITY, p), c(2)], 2),
            INFINITY
        );
        assert_eq!(kth_distance(&[], 1), INFINITY);
    }

    #[test]
    fn sdist_matches_dijkstra_when_all_cells_included() {
        let (grid, _, mut device, _) = setup(9);
        let graph = grid.graph().clone();
        let set: Vec<crate::grid::CellId> = grid.cell_ids().collect();
        let in_set = vec![true; grid.num_cells()];
        let q = EdgePosition::at_source(EdgeId(4));
        let (dist, time) = gpu_sdist(&mut device, &grid, &in_set, &set, q, &graph);
        assert!(time > gpu_sim::SimNanos::ZERO);
        let mut engine = DijkstraEngine::new(&graph);
        engine.run_from_position(q, SearchBounds::UNBOUNDED);
        for v in graph.vertices() {
            assert_eq!(
                dist.get(&v).copied().unwrap_or(INFINITY),
                engine.distance(v),
                "{v:?} diverges"
            );
        }
    }

    #[test]
    fn sdist_induced_overestimates_full_graph() {
        // With only part of the grid included, induced distances can only
        // be larger or equal — never smaller.
        let (grid, _, mut device, _) = setup(9);
        let graph = grid.graph().clone();
        let q = EdgePosition::at_source(EdgeId(4));
        let c_q = grid.cell_of_edge(q.edge);
        let mut set = vec![c_q];
        set.extend_from_slice(grid.neighbors(c_q));
        set.sort_unstable();
        set.dedup();
        let mut in_set = vec![false; grid.num_cells()];
        for c in &set {
            in_set[c.index()] = true;
        }
        let (dist, _) = gpu_sdist(&mut device, &grid, &in_set, &set, q, &graph);
        let mut engine = DijkstraEngine::new(&graph);
        engine.run_from_position(q, SearchBounds::UNBOUNDED);
        for (&v, &d) in &dist {
            assert!(d >= engine.distance(v), "{v:?}: induced {d} < exact");
        }
    }

    #[test]
    fn first_k_orders_by_distance_then_id() {
        let (grid, _, mut device, _) = setup(5);
        let graph = grid.graph().clone();
        let q = EdgePosition::at_source(EdgeId(0));
        let set: Vec<crate::grid::CellId> = grid.cell_ids().collect();
        let in_set = vec![true; grid.num_cells()];
        let (dist, _) = gpu_sdist(&mut device, &grid, &in_set, &set, q, &graph);
        let objects: Vec<CachedMessage> = (0..10u64)
            .map(|o| {
                CachedMessage::update(
                    ObjectId(o),
                    EdgePosition::at_source(EdgeId((o * 17 % graph.num_edges() as u64) as u32)),
                    Timestamp(1),
                )
            })
            .collect();
        let (scored, _) = gpu_first_k(&mut device, q, &dist, &objects, &graph);
        assert_eq!(scored.len(), 10);
        for w in scored.windows(2) {
            assert!((w[0].1, w[0].0) <= (w[1].1, w[1].0));
        }
    }

    #[test]
    fn unresolved_only_boundary_vertices_below_l() {
        let (grid, _, mut device, _) = setup(7);
        let graph = grid.graph().clone();
        let q = EdgePosition::at_source(EdgeId(2));
        let c_q = grid.cell_of_edge(q.edge);
        let mut set = vec![c_q];
        set.extend_from_slice(grid.neighbors(c_q));
        set.sort_unstable();
        set.dedup();
        let mut in_set = vec![false; grid.num_cells()];
        for c in &set {
            in_set[c.index()] = true;
        }
        let (dist, _) = gpu_sdist(&mut device, &grid, &in_set, &set, q, &graph);
        let l = 50;
        let (unresolved, _) = gpu_unresolved(&mut device, &grid, &in_set, &set, &dist, l);
        for &(v, d) in &unresolved {
            assert!(d < l);
            let boundary = graph
                .out_edges(v)
                .any(|e| !in_set[grid.cell_of_vertex(graph.edge(e).dest).index()]);
            assert!(boundary, "{v:?} not on the boundary");
        }
    }

    #[test]
    fn run_knn_invalid_query_panics() {
        let (grid, lists, mut device, config) = setup(3);
        let bad = EdgePosition::new(EdgeId(0), 10_000);
        let mut resident = ResidentCellStore::new(config.device_budget_bytes);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_knn(
                &mut device,
                &grid,
                &lists,
                &mut resident,
                &config,
                bad,
                1,
                Timestamp(1),
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_knn_direct() {
        let (grid, lists, mut device, config) = setup(3);
        let objects: Vec<(u64, EdgePosition)> = (0..8u64)
            .map(|o| (o, EdgePosition::at_source(EdgeId((o * 19 % 160) as u32))))
            .collect();
        place(&grid, &lists, &objects, 100);
        let q = EdgePosition::at_source(EdgeId(1));
        let mut resident = ResidentCellStore::new(config.device_budget_bytes);
        let result = run_knn(
            &mut device,
            &grid,
            &lists,
            &mut resident,
            &config,
            q,
            3,
            Timestamp(200),
        );
        assert_eq!(result.items.len(), 3);
        let want = roadnet::dijkstra::reference_knn(grid.graph(), q, &objects, 3);
        let got_d: Vec<u64> = result.items.iter().map(|&(_, d)| d).collect();
        let want_d: Vec<u64> = want.iter().map(|&(_, d)| d).collect();
        assert_eq!(got_d, want_d);
        assert!(result.breakdown.cells_cleaned > 0);
    }

    #[test]
    fn answers_identical_across_worker_counts() {
        // The refinement merge is order-independent, so every worker count
        // must produce bit-identical answers.
        let reference: Vec<Vec<(ObjectId, Distance)>> = {
            let (grid, lists, mut device, config) = setup(11);
            let objects: Vec<(u64, EdgePosition)> = (0..20u64)
                .map(|o| (o, EdgePosition::at_source(EdgeId((o * 23 % 160) as u32))))
                .collect();
            place(&grid, &lists, &objects, 100);
            let mut resident = ResidentCellStore::new(config.device_budget_bytes);
            (0..5u32)
                .map(|i| {
                    let q = EdgePosition::at_source(EdgeId(i * 31 % 160));
                    run_knn(
                        &mut device,
                        &grid,
                        &lists,
                        &mut resident,
                        &config,
                        q,
                        6,
                        Timestamp(200),
                    )
                    .items
                })
                .collect()
        };
        for workers in [2usize, 4, 8] {
            let (grid, lists, mut device, mut config) = setup(11);
            config.refine_workers = workers;
            let objects: Vec<(u64, EdgePosition)> = (0..20u64)
                .map(|o| (o, EdgePosition::at_source(EdgeId((o * 23 % 160) as u32))))
                .collect();
            place(&grid, &lists, &objects, 100);
            let mut resident = ResidentCellStore::new(config.device_budget_bytes);
            for (i, want) in reference.iter().enumerate() {
                let q = EdgePosition::at_source(EdgeId(i as u32 * 31 % 160));
                let got = run_knn(
                    &mut device,
                    &grid,
                    &lists,
                    &mut resident,
                    &config,
                    q,
                    6,
                    Timestamp(200),
                )
                .items;
                assert_eq!(&got, want, "workers={workers} query {i} diverged");
            }
        }
    }

    #[test]
    fn refine_outcome_matches_sequential_reference() {
        // Cross-check the parallel refinement against an in-test sequential
        // re-implementation of the original single-threaded loop.
        let (grid, lists, mut device, config) = setup(7);
        let objects: Vec<(u64, EdgePosition)> = (0..10u64)
            .map(|o| (o, EdgePosition::at_source(EdgeId((o * 37 % 160) as u32))))
            .collect();
        place(&grid, &lists, &objects, 100);
        let q = EdgePosition::at_source(EdgeId(2));
        let mut resident = ResidentCellStore::new(config.device_budget_bytes);
        let pending = knn_device_phase(
            &mut device,
            &grid,
            &lists,
            &mut resident,
            &config,
            q,
            4,
            Timestamp(200),
        );
        if pending.unresolved.is_empty() {
            return; // nothing to refine on this topology
        }

        let graph = grid.graph().clone();
        let mut engine = DijkstraEngine::new(&graph);
        let mut want: HashMap<VertexId, Distance, FxBuildHasher> =
            HashMap::with_hasher(FxBuildHasher::default());
        for &(v, dv) in &pending.unresolved {
            engine.run_seeded(&[(v, 0)], SearchBounds::radius(pending.l - dv));
            for &u in engine.settled() {
                let du = dv + engine.distance(u);
                want.entry(u)
                    .and_modify(|d| *d = (*d).min(du))
                    .or_insert(du);
            }
        }

        for workers in [1usize, 3, 8] {
            let got = refine_unresolved(
                &grid,
                &pending.unresolved,
                pending.l,
                &pending.in_set,
                workers,
            );
            assert_eq!(got.best_outer, want, "workers={workers}");
            assert!(got.touched_cells.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
