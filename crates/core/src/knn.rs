//! kNN query processing (paper §V, Algorithms 4–6).
//!
//! The query runs as a CPU–GPU pipeline:
//!
//! 1. **Candidate cells** — starting from the query's cell, expand through
//!    cell adjacency, cleaning each frontier on the device, until at least
//!    ρ·k live objects are known (Algorithm 4 lines 1–4).
//! 2. **Candidate distances** — a parallelised Bellman–Ford over the
//!    subgraph induced by the candidate cells computes shortest distances
//!    to every vertex (Algorithm 5, `GPU_SDist`); object distances follow
//!    as `D[source(o.e)] + o.d`, and a parallel selection yields the k best
//!    (`GPU_First_k`).
//! 3. **Unresolved vertices** — boundary vertices of the candidate region
//!    closer than the k-th candidate (`GPU_Unresolved`, Definition 3).
//! 4. **Refinement** — the CPU runs a bounded Dijkstra from every
//!    unresolved vertex over the *full* graph (Algorithm 6), lazily
//!    cleaning any newly touched cells, and merges the improved distance
//!    estimates into the final answer.
//!
//! Step 4 makes the answer exact: any true shortest path that leaves the
//! candidate region must exit through an unresolved vertex `v` with
//! `D[v] < l`, and the refinement search from `v` has radius `l − D[v]`,
//! enough to reach every such answer object.
//!
//! ## Concurrency
//!
//! The pipeline is split into three phases so a batch scheduler can overlap
//! queries: [`knn_device_phase`] (steps 1–3, needs the device and the
//! message lists), [`refine_unresolved`] (step 4's Dijkstra expansions —
//! pure CPU, no shared state, safe to run on a worker thread while the
//! device serves the next query), and [`knn_finalize`] (lazy cleaning of
//! refinement-touched cells plus the final selection). `refine_unresolved`
//! itself fans the per-vertex expansions out over
//! `GGridConfig::refine_workers` scoped threads; per-worker distance maps
//! are merged with `min`, which is commutative and associative, so the
//! merged result — and therefore the answer — is bit-identical for every
//! worker count.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use gpu_sim::{Device, OpCounts, SimNanos};
use roadnet::dijkstra::{DijkstraEngine, SearchBounds};
use roadnet::graph::{Distance, VertexId, INFINITY};
use roadnet::EdgePosition;

use crate::batch::BatchCleanCache;
use crate::busytime::BusyClock;
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::message::{CachedMessage, ObjectId, Timestamp};
use crate::message_list::CellLists;
use crate::object_table::FxBuildHasher;
use crate::residency::TopologyStore;
use crate::scratch::{DenseScratch, ScratchPool};
use crate::shard::ShardSet;
use crate::stats::QueryBreakdown;

/// Result of a kNN query.
#[derive(Clone, Debug)]
pub struct KnnResult {
    /// Up to `k` `(object, network distance)` pairs, nearest first; ties
    /// break on object id.
    pub items: Vec<(ObjectId, Distance)>,
    pub breakdown: QueryBreakdown,
}

/// State of a query between the device phase and finalisation.
///
/// Everything here is owned, so a batch scheduler can hold several pending
/// queries while their refinements run on worker threads.
pub(crate) struct PendingKnn {
    pub k: usize,
    pub in_set: Vec<bool>,
    pub set: Vec<CellId>,
    pub objects: Vec<CachedMessage>,
    pub estimates: HashMap<ObjectId, Distance, FxBuildHasher>,
    pub positions: HashMap<ObjectId, EdgePosition, FxBuildHasher>,
    /// Distance of the k-th candidate (Definition 3).
    pub l: Distance,
    pub unresolved: Vec<(VertexId, Distance)>,
    /// The query's primary shard (owner of the query's own cell).
    pub primary: usize,
    /// Per-device modeled time of the remote legs of cooperative
    /// (cross-shard) SDist rounds: `(shard, duration)`, one entry per
    /// remote launch. The primary's share is inside `breakdown` like
    /// always; the batch scheduler charges these on the remote devices'
    /// streams so the timeline sees the concurrency.
    pub remote_ns: Vec<(usize, SimNanos)>,
    pub breakdown: QueryBreakdown,
}

/// Result of the CPU refinement phase (Algorithm 6's searches).
pub(crate) struct RefineOutcome {
    /// `best_outer[u]` = min over unresolved `v` of `D[v] + dist_v(u)` —
    /// a pooled dense scratch (`None` when nothing was refined); entries
    /// are exactly the vertices some search settled, all finite.
    pub best_outer: Option<DenseScratch>,
    /// Cells outside the candidate set the searches settled vertices in,
    /// sorted and deduplicated.
    pub touched_cells: Vec<CellId>,
    /// Measured wall time of the phase on this host.
    pub wall_ns: u64,
    /// Summed busy time across workers (the serial work volume).
    pub busy_ns: u64,
    /// Critical path: the busiest single worker. This is the phase's
    /// modeled duration on a host with ≥ `workers` free cores — the
    /// refinement analogue of the simulated device clock, and what the
    /// batch pipeline charges on its host stream.
    pub critical_ns: u64,
    /// Worker threads actually used.
    pub workers: usize,
    /// Vertices settled across all searches (multi-source settles a shared
    /// vertex once; the per-vertex ablation settles it once per source).
    pub settled: u64,
    /// Edges examined (relaxation attempts) across all searches.
    pub relaxed: u64,
}

impl RefineOutcome {
    fn empty() -> Self {
        Self {
            best_outer: None,
            touched_cells: Vec::new(),
            wall_ns: 0,
            busy_ns: 0,
            critical_ns: 0,
            workers: 0,
            settled: 0,
            relaxed: 0,
        }
    }
}

/// Execute a kNN query against the G-Grid state.
///
/// This is the single full-pipeline entry point: ad-hoc queries
/// (`GGridServer::knn`), the batch scheduler's per-query legs, and
/// subscription full re-evaluations all run through here, optionally
/// serving cleaning rounds from a shared [`BatchCleanCache`] (epoch-checked,
/// so answers are byte-identical with or without one).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_knn(
    shards: &mut ShardSet,
    grid: &GraphGrid,
    lists: &CellLists,
    pool: &ScratchPool,
    config: &GGridConfig,
    q: EdgePosition,
    k: usize,
    now: Timestamp,
    cache: Option<&BatchCleanCache>,
) -> KnnResult {
    let pending = knn_device_phase(shards, grid, lists, pool, config, q, k, now, cache);
    let refined = refine_unresolved(
        grid,
        &pending.unresolved,
        pending.l,
        &pending.in_set,
        config.refine_workers,
        config.refine_multi_source,
        pool,
    );
    knn_finalize(
        shards, grid, lists, config, now, pending, refined, pool, cache,
    )
}

/// One cleaning round of the expansion: clean the not-yet-included cells,
/// merge their live objects into the pool, and grow the candidate set.
///
/// When a [`BatchCleanCache`] is supplied, cells whose consolidated state
/// the batch's shared pass already produced — and whose list epoch proves
/// no message landed since — are served from the cache at zero device cost
/// (counted as skips); everything else falls through to
/// [`ShardSet::clean_cells`], which routes each cell to its owning device.
///
/// Freshly cleaned *remote* cells whose clean-skip read heat crossed
/// `GGridConfig::replicate_threshold` are promoted as read-replicas onto
/// the query's `primary` device here — the one place consolidated messages
/// and their list epoch are both in hand.
#[allow(clippy::too_many_arguments)]
fn clean_round(
    shards: &mut ShardSet,
    lists: &CellLists,
    config: &GGridConfig,
    now: Timestamp,
    primary: usize,
    cells: &[CellId],
    in_set: &mut [bool],
    set: &mut Vec<CellId>,
    objects: &mut Vec<CachedMessage>,
    breakdown: &mut QueryBreakdown,
    cpu_excluded: &mut Duration,
    cache: Option<&BatchCleanCache>,
    channels: &mut [bool],
) {
    let mut fresh: Vec<CellId> = Vec::with_capacity(cells.len());
    let mut promote: Vec<(CellId, u64, &[CachedMessage])> = Vec::new();
    for &c in cells {
        if in_set[c.index()] {
            continue;
        }
        if let Some(cache) = cache {
            if let Some(msgs) = cache.lookup(lists, c) {
                in_set[c.index()] = true;
                set.push(c);
                objects.extend_from_slice(msgs);
                breakdown.cells_skipped += 1;
                if shards.num_shards() > 1 {
                    shards.note_read(c);
                    // A hot remote cell served out of the host batch cache is
                    // exactly the read the scatter path keeps paying for:
                    // install a device replica so later frontier rounds fold
                    // its work onto this primary.
                    if config.replication_enabled()
                        && shards.owner_of(c) != primary
                        && shards.read_heat_of(c) >= config.replicate_threshold
                        && !msgs.is_empty()
                    {
                        if let Some(epoch) = lists.lock(c.index()).cleaned_epoch() {
                            if !shards.replica_valid(primary, c, Some(epoch)) {
                                promote.push((c, epoch, msgs));
                            }
                        }
                    }
                }
                continue;
            }
        }
        fresh.push(c);
    }
    if !promote.is_empty() {
        breakdown.h2d_bytes += shards.promote_replicas_coalesced(primary, &promote);
    }
    if fresh.is_empty() {
        return;
    }
    // The cells the routed clean will serve from the clean-skip cache
    // (the predicate the skip branch itself uses, evaluated pre-clean):
    // remote-owned ones are read out of their owner's device below.
    let gather: Vec<CellId> = if shards.num_shards() > 1 && config.clean_skip {
        fresh
            .iter()
            .copied()
            .filter(|&c| shards.owner_of(c) != primary && lists.lock(c.index()).is_clean())
            .collect()
    } else {
        Vec::new()
    };
    let t0 = Instant::now();
    let (cleaned, rep) = shards.clean_cells(lists, &fresh, config, now);
    *cpu_excluded += t0.elapsed();
    breakdown.record_cleaning(&rep);
    if !gather.is_empty() {
        let (hits, bytes) = shards.gather_remote_lists(primary, &gather, lists, &cleaned, channels);
        breakdown.replica_hits += hits;
        breakdown.d2h_bytes += bytes;
    }
    if config.replication_enabled() {
        let mut batch: Vec<(CellId, u64, &[CachedMessage])> = Vec::new();
        for &c in &fresh {
            if shards.owner_of(c) == primary || shards.read_heat_of(c) < config.replicate_threshold
            {
                continue;
            }
            let Some(msgs) = cleaned.get(&c) else {
                continue;
            };
            let Some(epoch) = lists.lock(c.index()).cleaned_epoch() else {
                continue;
            };
            if shards.replica_valid(primary, c, Some(epoch)) {
                continue; // already hosted and current
            }
            batch.push((c, epoch, msgs));
        }
        if !batch.is_empty() {
            breakdown.h2d_bytes += shards.promote_replicas_coalesced(primary, &batch);
        }
    }
    for c in fresh {
        in_set[c.index()] = true;
        set.push(c);
        if let Some(msgs) = cleaned.get(&c) {
            objects.extend_from_slice(msgs);
        }
    }
}

/// Steps 1–3: everything that needs the devices and the message lists.
///
/// Cleaning rounds route each cell to its owning shard; the query-wide
/// kernels (`GPU_SDist`, selection, unresolved) run on the query's
/// *primary* shard — the owner of the query's own cell.
#[allow(clippy::too_many_arguments)]
pub(crate) fn knn_device_phase(
    shards: &mut ShardSet,
    grid: &GraphGrid,
    lists: &CellLists,
    pool: &ScratchPool,
    config: &GGridConfig,
    q: EdgePosition,
    k: usize,
    now: Timestamp,
    cache: Option<&BatchCleanCache>,
) -> PendingKnn {
    assert!(k >= 1, "k must be at least 1");
    let graph = grid.graph().clone();
    assert!(q.is_valid(&graph), "query position invalid for this graph");
    let mut breakdown = QueryBreakdown::default();
    let launches0 = shards.total_launches();
    let cpu_start = Instant::now();
    let mut cpu_excluded = Duration::ZERO; // host time spent emulating kernels
    let mut channels = [false; crate::shard::MAX_DEVICES]; // per-query gather streams

    // ---- Step 1: candidate cells (Algorithm 4 lines 1-4) ----
    let mut in_set = vec![false; grid.num_cells()];
    let mut set: Vec<CellId> = Vec::new();
    let c_q = grid.cell_of_edge(q.edge);
    let primary = shards.owner_of(c_q);
    let mut first_round = vec![c_q];
    first_round.extend_from_slice(grid.neighbors(c_q));

    let mut objects: Vec<CachedMessage> = Vec::new();
    let target = ((config.rho * k as f64).ceil() as usize).max(k);

    clean_round(
        shards,
        lists,
        config,
        now,
        primary,
        &first_round,
        &mut in_set,
        &mut set,
        &mut objects,
        &mut breakdown,
        &mut cpu_excluded,
        cache,
        &mut channels,
    );

    loop {
        if objects.len() >= target {
            break;
        }
        let frontier = frontier_of(grid, &in_set, &set);
        if frontier.is_empty() {
            break;
        }
        clean_round(
            shards,
            lists,
            config,
            now,
            primary,
            &frontier,
            &mut in_set,
            &mut set,
            &mut objects,
            &mut breakdown,
            &mut cpu_excluded,
            cache,
            &mut channels,
        );
    }

    // ---- Step 2: candidate distances, with a robustness loop: if fewer
    // than k candidates are reachable inside the induced subgraph, keep
    // expanding (degenerate topologies only; normally runs once). ----
    let mut dist = pool.acquire();
    let mut remote_ns: Vec<(usize, SimNanos)> = Vec::new();
    let multi = shards.num_shards() > 1;
    let candidates = loop {
        let t0 = Instant::now();
        // Effective owner per ring cell: a remote cell with a *valid*
        // replica on the primary counts as primary-owned (a replica hit) —
        // its relax work stays local, shrinking the ring's device span.
        let mut owners: Vec<usize> = Vec::new();
        let mut span = 1usize;
        if multi {
            owners = vec![usize::MAX; grid.num_cells()];
            let mut seen = [false; crate::shard::MAX_DEVICES];
            for &c in &set {
                let own = shards.owner_of(c);
                let eff = if own != primary
                    && config.replication_enabled()
                    && shards.replica_valid(primary, c, lists.lock(c.index()).cleaned_epoch())
                {
                    breakdown.replica_hits += 1;
                    primary
                } else {
                    own
                };
                owners[c.index()] = eff;
                seen[eff] = true;
            }
            span = seen.iter().filter(|&&s| s).count();
            breakdown.ring_span = breakdown.ring_span.max(span);
        }
        let s = if multi && span > 1 && config.cross_shard_sdist && config.sdist_frontier {
            // Cooperative round: every owning device relaxes its slice of
            // the ring concurrently; the modeled critical path is the max
            // over owners instead of their sum.
            breakdown.cross_shard_rounds += 1;
            let (s, legs) = gpu_sdist_frontier_scattered(
                shards, primary, &owners, grid, config, &in_set, &set, q, &graph, &objects, k,
                &mut dist,
            );
            remote_ns.extend(legs);
            s
        } else {
            let (device, _, topo) = shards.parts(primary);
            gpu_sdist(
                device, grid, topo, config, &in_set, &set, q, &graph, &objects, k, &mut dist,
            )
        };
        let device = &mut shards.shard_mut(primary).device;
        let (candidates, firstk_time) = gpu_first_k(device, q, &dist, &objects, &graph);
        cpu_excluded += t0.elapsed();
        breakdown.candidate += s.time + firstk_time;
        breakdown.sdist_time += s.time;
        breakdown.sdist_rounds += s.rounds;
        breakdown.sdist_frontier_sum += s.frontier_sum;
        breakdown.sdist_frontier_max = breakdown.sdist_frontier_max.max(s.frontier_max);
        breakdown.sdist_settled += s.settled;
        breakdown.sdist_vertices += s.vertices;
        breakdown.sdist_pruned += s.pruned;
        breakdown.h2d_topo_bytes += s.h2d_topo_bytes;
        breakdown.h2d_bytes += s.h2d_topo_bytes;
        breakdown.topo_hits += s.topo_hits;
        breakdown.topo_misses += s.topo_misses;
        breakdown.h2d_coalesced_saved += s.h2d_coalesced_saved;

        let finite = candidates.iter().filter(|c| c.1 < INFINITY).count();
        if finite >= k.min(objects.len()) {
            break candidates;
        }
        let frontier = frontier_of(grid, &in_set, &set);
        if frontier.is_empty() {
            break candidates;
        }
        clean_round(
            shards,
            lists,
            config,
            now,
            primary,
            &frontier,
            &mut in_set,
            &mut set,
            &mut objects,
            &mut breakdown,
            &mut cpu_excluded,
            cache,
            &mut channels,
        );
    };
    breakdown.candidates = candidates.len();

    // Best estimate per object so far.
    let mut estimates: HashMap<ObjectId, Distance, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    let mut positions: HashMap<ObjectId, EdgePosition, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    for &(o, d, p) in &candidates {
        estimates.insert(o, d);
        positions.insert(o, p);
    }

    // l = distance of the k-th candidate (Definition 3).
    let l = kth_distance(&candidates, k);

    // ---- Step 3: unresolved vertices ----
    let all_covered = set.len() == grid.num_cells();
    let unresolved: Vec<(VertexId, Distance)> = if all_covered || l >= INFINITY {
        Vec::new()
    } else {
        let t0 = Instant::now();
        let device = &mut shards.shard_mut(primary).device;
        let (u, t) = gpu_unresolved(device, grid, &in_set, &set, &dist, l);
        cpu_excluded += t0.elapsed();
        breakdown.candidate += t;
        u
    };
    breakdown.unresolved = unresolved.len();
    pool.release(dist);

    // Copy the candidate set and unresolved set back to the host
    // (Algorithm 4 line 10 input).
    let out_bytes = candidates.len() as u64 * 16 + unresolved.len() as u64 * 12;
    if out_bytes > 0 {
        let device = &mut shards.shard_mut(primary).device;
        breakdown.transfer_out += device.d2h(out_bytes);
        breakdown.d2h_bytes += out_bytes;
    }

    let wall = cpu_start.elapsed();
    breakdown.cpu_ns += wall.saturating_sub(cpu_excluded).as_nanos() as u64;
    breakdown.emulation_ns += cpu_excluded.as_nanos() as u64;
    breakdown.kernel_launches += shards.total_launches() - launches0;

    PendingKnn {
        k,
        in_set,
        set,
        objects,
        estimates,
        positions,
        l,
        unresolved,
        primary,
        remote_ns,
        breakdown,
    }
}

/// Step 4's searches (Algorithm 6): bounded Dijkstra expansion from the
/// unresolved vertices over the full graph, fanned out over `workers`
/// scoped threads.
///
/// With `multi_source` each worker runs **one** shared search seeded at
/// `(v, D[v])` for its whole source group under `radius(l)`. The engine
/// settles each vertex `u` at `min_v(D[v] + dist_v(u))` — exactly the
/// pointwise minimum the per-vertex loop computes, because a per-vertex
/// search from `v` under `radius(l − D[v])` settles `u` iff
/// `D[v] + dist_v(u) ≤ l` (the same absolute bound), and the min over
/// sources is reached by a source satisfying it. Shared shortest-path
/// subtrees are settled once instead of once per source. The per-vertex
/// loop is kept as the ablation path; DESIGN.md §5.6 has the full argument.
///
/// Pure CPU and side-effect free: it never touches the device or the
/// message lists, which is what lets a batch scheduler run it concurrently
/// with another query's device phase. Determinism: each worker builds a
/// local `best_outer`, maps are merged with `min` (order-independent), and
/// `touched_cells` is recomputed from the merged map and sorted — so the
/// outcome is identical for every worker count, including 1, and for both
/// search strategies.
pub(crate) fn refine_unresolved(
    grid: &GraphGrid,
    unresolved: &[(VertexId, Distance)],
    l: Distance,
    in_set: &[bool],
    workers: usize,
    multi_source: bool,
    pool: &ScratchPool,
) -> RefineOutcome {
    if unresolved.is_empty() {
        return RefineOutcome::empty();
    }
    let graph = grid.graph().clone();
    let t0 = Instant::now();

    let expand = |chunk: Vec<(VertexId, Distance)>| {
        // Pool bookkeeping sits outside the timed region: `busy_ns` is the
        // time workers spend *searching*, the quantity multi-source
        // refinement shrinks. Attaching pooled scratch is O(1) after the
        // first query, so nothing material is hidden from the clock. The
        // clock is per-thread CPU time, not wall time: preemption under
        // background load must not be charged to the search.
        let mut engine = DijkstraEngine::with_scratch(&graph, pool.acquire_engine());
        let mut local = pool.acquire();
        let started = BusyClock::start();
        let mut settled = 0u64;
        let mut relaxed = 0u64;
        if multi_source {
            // Seed costs are the absolute `D[v]`, so settled values are
            // already absolute distances through some unresolved vertex.
            engine.run_seeded(&chunk, SearchBounds::radius(l));
            for &u in engine.settled() {
                local.min_in(u, engine.distance(u));
            }
            settled += engine.settled().len() as u64;
            relaxed += engine.relaxed();
        } else {
            for (v, dv) in chunk {
                let radius = l - dv; // l > dv by construction
                engine.run_seeded(&[(v, 0)], SearchBounds::radius(radius));
                for &u in engine.settled() {
                    let du = dv + engine.distance(u);
                    local.min_in(u, du);
                }
                settled += engine.settled().len() as u64;
                relaxed += engine.relaxed();
            }
        }
        let ns = started.elapsed_ns();
        pool.release_engine(engine.into_scratch());
        (local, settled, relaxed, ns)
    };

    let workers = workers.max(1).min(unresolved.len());
    let (best_outer, settled, relaxed, mut busy_ns, mut critical_ns) = if workers == 1 {
        let (local, settled, relaxed, ns) = expand(unresolved.to_vec());
        (local, settled, relaxed, ns, ns)
    } else {
        // Deal vertices round-robin: adjacent unresolved vertices sit on
        // the same stretch of the region boundary and have correlated
        // search radii, so contiguous chunks would load one worker with
        // all the heavy expansions. Striding spreads them evenly; the
        // min-merge makes the partition irrelevant to the result.
        let partials = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let chunk: Vec<(VertexId, Distance)> = unresolved
                        .iter()
                        .skip(w)
                        .step_by(workers)
                        .copied()
                        .collect();
                    let expand = &expand;
                    s.spawn(move |_| expand(chunk))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("refinement worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("refinement scope failed");

        let mut partials = partials.into_iter();
        let (mut merged, mut settled, mut relaxed, first_ns) =
            partials.next().expect("at least one worker");
        let mut busy = first_ns;
        let mut critical = first_ns;
        for (local, worker_settled, worker_relaxed, worker_ns) in partials {
            busy += worker_ns;
            critical = critical.max(worker_ns);
            settled += worker_settled;
            relaxed += worker_relaxed;
            // min-merge is commutative and associative: the merged scratch
            // is identical for every worker count and merge order.
            for (u, du) in local.iter_touched() {
                merged.min_in(u, du);
            }
            pool.release(local);
        }
        (merged, settled, relaxed, busy, critical)
    };

    let mut touched_cells: Vec<CellId> = best_outer
        .iter_touched()
        .map(|(u, _)| grid.cell_of_vertex(u))
        .filter(|c| !in_set[c.index()])
        .collect();
    touched_cells.sort_unstable();
    touched_cells.dedup();

    let wall_ns = t0.elapsed().as_nanos() as u64;
    busy_ns = busy_ns.max(1);
    critical_ns = critical_ns.max(1);
    RefineOutcome {
        best_outer: Some(best_outer),
        touched_cells,
        wall_ns: wall_ns.max(1),
        busy_ns,
        critical_ns,
        workers,
        settled,
        relaxed,
    }
}

/// Close out a query: lazily clean the refinement-touched cells, improve
/// the estimates through the unresolved vertices, and select the answer.
#[allow(clippy::too_many_arguments)]
pub(crate) fn knn_finalize(
    shards: &mut ShardSet,
    grid: &GraphGrid,
    lists: &CellLists,
    config: &GGridConfig,
    now: Timestamp,
    pending: PendingKnn,
    refined: RefineOutcome,
    pool: &ScratchPool,
    cache: Option<&BatchCleanCache>,
) -> KnnResult {
    let PendingKnn {
        k,
        mut in_set,
        mut set,
        mut objects,
        mut estimates,
        mut positions,
        l: _,
        unresolved,
        primary,
        remote_ns: _,
        mut breakdown,
    } = pending;
    let graph = grid.graph();
    let launches0 = shards.total_launches();
    let cpu_start = Instant::now();
    let mut cpu_excluded = Duration::ZERO;
    let mut channels = [false; crate::shard::MAX_DEVICES]; // per-query gather streams

    if !unresolved.is_empty() {
        breakdown.refine_ns = refined.wall_ns;
        breakdown.refine_busy_ns = refined.busy_ns;
        breakdown.refine_critical_ns = refined.critical_ns;
        breakdown.refine_workers = refined.workers;
        breakdown.refine_settled = refined.settled;
        breakdown.refine_relaxed = refined.relaxed;

        // Lazily clean the cells the refinement wandered into and add their
        // objects to the pool.
        clean_round(
            shards,
            lists,
            config,
            now,
            primary,
            &refined.touched_cells,
            &mut in_set,
            &mut set,
            &mut objects,
            &mut breakdown,
            &mut cpu_excluded,
            cache,
            &mut channels,
        );
        for m in &objects {
            if let Some(p) = m.position {
                positions.entry(m.object).or_insert(p);
            }
        }

        // Improve estimates through the unresolved vertices. Scratch
        // entries are finite by construction, so `< INFINITY` is exactly
        // the old map's key-present test.
        if let Some(outer_map) = refined.best_outer.as_ref() {
            for (&o, &p) in positions.iter() {
                let src = graph.edge(p.edge).source;
                let outer = outer_map.get(src);
                if outer < INFINITY {
                    let est = outer.saturating_add(p.from_source());
                    estimates
                        .entry(o)
                        .and_modify(|d| *d = (*d).min(est))
                        .or_insert(est);
                }
            }
        }
    }
    if let Some(s) = refined.best_outer {
        pool.release(s);
    }

    // ---- Final selection ----
    let mut final_items: Vec<(ObjectId, Distance)> = estimates
        .into_iter()
        .filter(|&(_, d)| d < INFINITY)
        .collect();
    final_items.sort_by_key(|&(o, d)| (d, o));
    final_items.truncate(k);

    let wall = cpu_start.elapsed();
    // Refinement wall time counts as CPU work (it did before the split).
    breakdown.cpu_ns += wall.saturating_sub(cpu_excluded).as_nanos() as u64 + breakdown.refine_ns;
    breakdown.emulation_ns += cpu_excluded.as_nanos() as u64;
    breakdown.kernel_launches += shards.total_launches() - launches0;

    KnnResult {
        items: final_items,
        breakdown,
    }
}

/// Cells adjacent to the current set but not in it (`neighbors(L) \ L`).
fn frontier_of(grid: &GraphGrid, in_set: &[bool], set: &[CellId]) -> Vec<CellId> {
    let mut out: Vec<CellId> = set
        .iter()
        .flat_map(|&c| grid.neighbors(c).iter().copied())
        .filter(|c| !in_set[c.index()])
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Distance of the k-th nearest candidate, or `INFINITY` when fewer than k
/// candidates are reachable.
fn kth_distance(candidates: &[(ObjectId, Distance, EdgePosition)], k: usize) -> Distance {
    let mut ds: Vec<Distance> = candidates
        .iter()
        .map(|&(_, d, _)| d)
        .filter(|&d| d < INFINITY)
        .collect();
    if ds.len() < k {
        return INFINITY;
    }
    ds.sort_unstable();
    ds[k - 1]
}

/// Instrumentation of one `GPU_SDist` invocation.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, Default)]
pub struct SdistStats {
    /// Simulated time: topology upload + kernel.
    pub time: gpu_sim::SimNanos,
    /// Relaxation rounds executed.
    pub rounds: u64,
    /// Summed per-round frontier sizes (dense path: every record, every
    /// round).
    pub frontier_sum: u64,
    /// Largest single-round frontier.
    pub frontier_max: u64,
    /// Vertices whose final distance the kernel settled.
    pub settled: u64,
    /// Candidate vertices in the induced subgraph.
    pub vertices: u64,
    /// Touched-but-unsettled vertices abandoned by k-bounded pruning.
    pub pruned: u64,
    /// Topology bytes uploaded for this call.
    pub h2d_topo_bytes: u64,
    /// Candidate cells whose CSR slice was already resident.
    pub topo_hits: usize,
    /// Candidate cells whose CSR slice had to be uploaded.
    pub topo_misses: usize,
    /// PCIe transactions avoided by coalescing the round's topology misses
    /// into one staged transfer.
    pub h2d_coalesced_saved: u64,
}

/// Algorithm 5 `GPU_SDist`: shortest distances over the subgraph induced by
/// the candidate cells, landing in `scratch` (reset here). Dispatches
/// between the near–far frontier kernel and the dense Bellman–Ford
/// reference per `GGridConfig::sdist_frontier`; the two produce answers
/// that are byte-identical through the rest of the query (DESIGN.md §5.3).
#[allow(clippy::too_many_arguments)]
fn gpu_sdist(
    device: &mut Device,
    grid: &GraphGrid,
    topo: &mut TopologyStore,
    config: &GGridConfig,
    in_set: &[bool],
    set: &[CellId],
    q: EdgePosition,
    graph: &roadnet::Graph,
    objects: &[CachedMessage],
    k: usize,
    scratch: &mut DenseScratch,
) -> SdistStats {
    if config.sdist_frontier {
        gpu_sdist_frontier(
            device, grid, topo, config, in_set, set, q, graph, objects, k, scratch,
        )
    } else {
        gpu_sdist_dense(device, grid, in_set, set, q, graph, scratch)
    }
}

/// The dense reference `GPU_SDist`: Bellman–Ford with one thread per vertex
/// record, every record relaxing its (≤ δᵛ) stored in-edges every round
/// until fixpoint. Kept behind `sdist_frontier: false` as the
/// ablation/reference path; it re-uploads the candidate topology every
/// query, which is exactly the cost the resident frontier path removes.
#[doc(hidden)]
pub fn gpu_sdist_dense(
    device: &mut Device,
    grid: &GraphGrid,
    in_set: &[bool],
    set: &[CellId],
    q: EdgePosition,
    graph: &roadnet::Graph,
    scratch: &mut DenseScratch,
) -> SdistStats {
    scratch.reset();
    let mut stats = SdistStats::default();

    // The dense path ships the candidate subgraph fresh for every query.
    for &c in set {
        let bytes = grid.topology(c).bytes();
        stats.h2d_topo_bytes += bytes;
        stats.topo_misses += 1;
        stats.time += device.h2d(bytes);
    }

    // Collect the records (threads) of the candidate cells.
    let mut records: Vec<&crate::grid::VertexRecord> = Vec::new();
    for &c in set {
        for r in &grid.cell(c).records {
            records.push(r);
        }
    }
    let threads = records.len().max(1);

    for &c in set {
        for v in grid.vertices_in(c) {
            scratch.set(v, INFINITY);
        }
    }
    stats.vertices = scratch.touched_len() as u64;
    // Seed: the only way off the query edge is its destination vertex —
    // when its cell made the candidate set.
    let q_dest = graph.edge(q.edge).dest;
    if in_set[grid.cell_of_vertex(q_dest).index()] {
        scratch.set(q_dest, q.to_dest(graph));
    }

    let (rounds, report) = device.launch(threads, |ctx| {
        let mut rounds = 0u64;
        let max_rounds = records.len().max(1);
        for _round in 0..max_rounds {
            rounds += 1;
            let mut changed = false;
            // One round: every record relaxes its stored in-edges.
            for r in &records {
                ctx.charge_alu_one(2 + 4 * r.edges.len() as u64);
                ctx.charge_read(12 * r.edges.len() as u64 + 8);
                let mut best = scratch.get(r.vertex);
                let mut improved = false;
                for e in &r.edges {
                    // An unseeded source reads INFINITY and can never win
                    // the comparison — the map-miss semantics of the old
                    // per-query HashMap.
                    let nd = scratch.get(e.source).saturating_add(e.weight as Distance);
                    if nd < best {
                        best = nd;
                        improved = true;
                    }
                }
                if improved {
                    // Only a record that actually improved pays the global
                    // write; `changed` alone tracks round convergence.
                    ctx.charge_write(8);
                    changed = true;
                    scratch.set(r.vertex, best);
                }
            }
            ctx.sync_threads();
            if !changed {
                break;
            }
        }
        rounds
    });
    stats.rounds = rounds;
    stats.frontier_sum = rounds * records.len() as u64;
    stats.frontier_max = if rounds > 0 { records.len() as u64 } else { 0 };
    stats.settled = scratch
        .iter_touched()
        .filter(|&(_, d)| d < INFINITY)
        .count() as u64;
    stats.time += report.time;
    stats
}

/// The frontier `GPU_SDist`: near–far (two-bucket delta-stepping) SSSP over
/// the candidate cells' resident CSR slices. Only active vertices relax
/// their out-edges; each bucket phase drains the near pile to a fixpoint —
/// sealing every vertex whose final distance is below the bucket threshold
/// — then feeds the sealed vertices' objects into a running k-th candidate
/// bound and stops as soon as every remaining tentative distance exceeds
/// it (k-bounded pruning; the exactness argument is in DESIGN.md §5.3).
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn gpu_sdist_frontier(
    device: &mut Device,
    grid: &GraphGrid,
    topo: &mut TopologyStore,
    config: &GGridConfig,
    in_set: &[bool],
    set: &[CellId],
    q: EdgePosition,
    graph: &roadnet::Graph,
    objects: &[CachedMessage],
    k: usize,
    scratch: &mut DenseScratch,
) -> SdistStats {
    scratch.reset();
    let mut stats = SdistStats::default();

    // Resident topology: a hot cell's slice is already on the card and
    // skips the upload entirely. With `coalesce_h2d` the round's misses
    // ride one staged transfer (a single PCIe latency charge); the
    // per-cell ablation path pays the fixed latency per missed cell.
    if config.coalesce_h2d {
        let staged = topo.stage(device, set.iter().map(|&c| (c, grid.topology(c).bytes())));
        stats.topo_hits += staged.hits as usize;
        stats.topo_misses += staged.misses as usize;
        stats.h2d_topo_bytes += staged.bytes;
        stats.h2d_coalesced_saved += staged.transactions_saved;
        stats.time += staged.time;
    } else {
        for &c in set {
            let bytes = grid.topology(c).bytes();
            if topo.ensure(device, c, bytes) {
                stats.topo_hits += 1;
            } else {
                stats.topo_misses += 1;
                stats.h2d_topo_bytes += bytes;
                stats.time += device.h2d(bytes);
            }
        }
    }

    let total_vertices: usize = set.iter().map(|&c| grid.topology(c).num_vertices()).sum();
    stats.vertices = total_vertices as u64;

    let delta = if config.sdist_delta > 0 {
        config.sdist_delta as u64
    } else {
        grid.mean_edge_weight()
    }
    .max(1);

    // Live objects per source vertex, for the running k-th candidate
    // bound. The bound deliberately ignores `object_distance`'s same-edge
    // shortcut, so it over-estimates the true l and never over-prunes.
    let mut objects_at: HashMap<VertexId, Vec<Distance>, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    for m in objects {
        if let Some(p) = m.position {
            objects_at
                .entry(graph.edge(p.edge).source)
                .or_default()
                .push(p.from_source());
        }
    }

    let q_dest = graph.edge(q.edge).dest;
    let seeded = in_set[grid.cell_of_vertex(q_dest).index()];
    if seeded {
        scratch.set(q_dest, q.to_dest(graph));
    }

    let ((rounds, frontier_sum, frontier_max, settled, pruned), report) =
        device.launch(total_vertices.max(1), |ctx| {
            frontier_relax_body(
                ctx,
                grid,
                in_set,
                q_dest,
                seeded,
                delta,
                &objects_at,
                k,
                scratch,
                &mut |_, _| {},
            )
        });
    stats.rounds = rounds;
    stats.frontier_sum = frontier_sum;
    stats.frontier_max = frontier_max;
    stats.settled = settled;
    stats.pruned = pruned;
    stats.time += report.time;
    stats
}

/// The near–far relaxation shared by [`gpu_sdist_frontier`] and its
/// cross-shard scattered variant. Every per-vertex charge site reports the
/// same op slice through `tally`, keyed by the vertex whose owning device
/// should pay for it; collectives, barriers, and far-pile compaction charge
/// only `ctx` — they are coordination work, left in the residual the scatter
/// path bills to the primary device.
#[allow(clippy::too_many_arguments)]
fn frontier_relax_body(
    ctx: &mut gpu_sim::KernelCtx,
    grid: &GraphGrid,
    in_set: &[bool],
    q_dest: VertexId,
    seeded: bool,
    delta: u64,
    objects_at: &HashMap<VertexId, Vec<Distance>, FxBuildHasher>,
    k: usize,
    scratch: &mut DenseScratch,
    tally: &mut dyn FnMut(VertexId, OpCounts),
) -> (u64, u64, u64, u64, u64) {
    let mut rounds = 0u64;
    let mut frontier_sum = 0u64;
    let mut frontier_max = 0u64;
    let mut settled = 0u64;
    let mut pruned = 0u64;
    // Running k-bound: max-heap of the k smallest evaluated
    // candidate distances; its top is the bound l_run ≥ l.
    let mut k_heap = std::collections::BinaryHeap::new();

    if seeded {
        let d0 = scratch.get(q_dest);
        let mut cur_threshold = (d0 / delta + 1) * delta;
        let mut near: Vec<VertexId> = vec![q_dest];
        let mut far: Vec<VertexId> = Vec::new();
        loop {
            // ---- drain the near pile at this threshold ----
            let mut sealed_phase: Vec<VertexId> = Vec::new();
            while !near.is_empty() {
                rounds += 1;
                frontier_sum += near.len() as u64;
                frontier_max = frontier_max.max(near.len() as u64);
                let mut next_near: Vec<VertexId> = Vec::new();
                for &v in &near {
                    sealed_phase.push(v);
                    let t = grid.topology(grid.cell_of_vertex(v));
                    let slot = grid.topo_slot_of(v);
                    let deg = t.out_degree_of(slot) as u64;
                    ctx.charge_alu_one(2 + 3 * deg);
                    ctx.charge_read(8 + 12 * deg);
                    tally(
                        v,
                        OpCounts {
                            alu: 2 + 3 * deg,
                            global_read_bytes: 8 + 12 * deg,
                            ..Default::default()
                        },
                    );
                    let dv = scratch.get(v);
                    for (dest, dest_cell, w) in t.out_edges_of(slot) {
                        if !in_set[dest_cell as usize] {
                            continue; // induced subgraph only
                        }
                        let nd = dv.saturating_add(w as Distance);
                        if nd < scratch.get(dest) {
                            scratch.set(dest, nd);
                            ctx.charge_write(8);
                            tally(
                                dest,
                                OpCounts {
                                    global_write_bytes: 8,
                                    ..Default::default()
                                },
                            );
                            if nd < cur_threshold {
                                next_near.push(dest);
                            } else {
                                far.push(dest);
                            }
                        }
                    }
                }
                ctx.sync_threads();
                next_near.sort_unstable_by_key(|v| v.0);
                next_near.dedup();
                near = next_near;
            }

            // ---- seal the phase; sealed distances are final, so
            // their objects' candidate distances are valid bound
            // food. Sealed sets of different phases are disjoint,
            // so no object is ever counted twice. ----
            sealed_phase.sort_unstable_by_key(|v| v.0);
            sealed_phase.dedup();
            settled += sealed_phase.len() as u64;
            for &v in &sealed_phase {
                if let Some(list) = objects_at.get(&v) {
                    ctx.charge_alu_one(2 * list.len() as u64);
                    ctx.charge_read(16 * list.len() as u64);
                    tally(
                        v,
                        OpCounts {
                            alu: 2 * list.len() as u64,
                            global_read_bytes: 16 * list.len() as u64,
                            ..Default::default()
                        },
                    );
                    let dv = scratch.get(v);
                    for &fs in list {
                        let cd = dv.saturating_add(fs);
                        if k_heap.len() < k {
                            k_heap.push(cd);
                        } else if let Some(mut worst) = k_heap.peek_mut() {
                            if cd < *worst {
                                *worst = cd;
                            }
                        }
                    }
                }
            }
            let l_run = if k > 0 && k_heap.len() >= k {
                k_heap.peek().copied().unwrap_or(INFINITY)
            } else {
                INFINITY
            };

            // ---- compact the far pile: leftovers now below the
            // threshold were sealed above and drop out; the rest
            // are exactly the touched-but-unsettled vertices. ----
            far.sort_unstable_by_key(|v| v.0);
            far.dedup();
            ctx.charge_alu_one(far.len() as u64);
            let (kept, _) =
                gpu_sim::collective::partition_by(ctx, &far, |&v| scratch.get(v) >= cur_threshold);
            far = kept;
            if far.is_empty() {
                break;
            }
            let min_far = gpu_sim::collective::reduce(
                ctx,
                far.iter().map(|&v| scratch.get(v)).collect(),
                |a, b: Distance| a.min(b),
            )
            .unwrap_or(INFINITY);

            // k-bounded pruning: `min_far` equals the smallest
            // *final* distance among unsettled vertices, so once it
            // exceeds the k-th candidate bound no remaining vertex
            // can host a top-k object.
            if min_far > l_run {
                pruned += far.len() as u64;
                break;
            }

            cur_threshold = (min_far / delta + 1) * delta;
            let (n2, f2) =
                gpu_sim::collective::partition_by(ctx, &far, |&v| scratch.get(v) < cur_threshold);
            near = n2;
            far = f2;
        }
    }
    (rounds, frontier_sum, frontier_max, settled, pruned)
}

/// Cooperative cross-shard `GPU_SDist`: the ring's cells are grouped by
/// *effective* owner (replica-hosted remote cells count as the primary's),
/// each owning device stages its own topology slice and is charged exactly
/// the relaxation work its vertices generate, and the modeled round time is
/// the **max** over the participating devices instead of their sum.
///
/// The relaxation itself runs once, on the shared host-side scratch, under a
/// detached metering context — so the distances (and therefore the answers)
/// are byte-identical to the single-device path; only the cost attribution
/// moves. The primary device pays the metered total minus the carved-out
/// remote slices: its own vertices' work plus every collective, barrier, and
/// far-pile compaction (the coordination that in a real deployment rides the
/// host-side min-merge of the per-shard frontiers).
#[allow(clippy::too_many_arguments)]
fn gpu_sdist_frontier_scattered(
    shards: &mut ShardSet,
    primary: usize,
    owners: &[usize],
    grid: &GraphGrid,
    config: &GGridConfig,
    in_set: &[bool],
    set: &[CellId],
    q: EdgePosition,
    graph: &roadnet::Graph,
    objects: &[CachedMessage],
    k: usize,
    scratch: &mut DenseScratch,
) -> (SdistStats, Vec<(usize, SimNanos)>) {
    scratch.reset();
    let mut stats = SdistStats::default();
    let num_shards = shards.num_shards();
    let mut device_ns = vec![SimNanos::ZERO; num_shards];

    // Group the ring by effective owner; each owner stages its own slice of
    // the candidate topology on its own device.
    let mut groups: Vec<Vec<CellId>> = vec![Vec::new(); num_shards];
    for &c in set {
        groups[owners[c.index()]].push(c);
    }
    for (d, cells) in groups.iter().enumerate() {
        if cells.is_empty() {
            continue;
        }
        let (device, _, topo) = shards.parts(d);
        if config.coalesce_h2d {
            let staged = topo.stage(device, cells.iter().map(|&c| (c, grid.topology(c).bytes())));
            stats.topo_hits += staged.hits as usize;
            stats.topo_misses += staged.misses as usize;
            stats.h2d_topo_bytes += staged.bytes;
            stats.h2d_coalesced_saved += staged.transactions_saved;
            device_ns[d] += staged.time;
        } else {
            for &c in cells {
                let bytes = grid.topology(c).bytes();
                if topo.ensure(device, c, bytes) {
                    stats.topo_hits += 1;
                } else {
                    stats.topo_misses += 1;
                    stats.h2d_topo_bytes += bytes;
                    device_ns[d] += device.h2d(bytes);
                }
            }
        }
    }

    let total_vertices: usize = set.iter().map(|&c| grid.topology(c).num_vertices()).sum();
    stats.vertices = total_vertices as u64;

    let delta = if config.sdist_delta > 0 {
        config.sdist_delta as u64
    } else {
        grid.mean_edge_weight()
    }
    .max(1);

    let mut objects_at: HashMap<VertexId, Vec<Distance>, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    for m in objects {
        if let Some(p) = m.position {
            objects_at
                .entry(graph.edge(p.edge).source)
                .or_default()
                .push(p.from_source());
        }
    }

    let q_dest = graph.edge(q.edge).dest;
    let seeded = in_set[grid.cell_of_vertex(q_dest).index()];
    if seeded {
        scratch.set(q_dest, q.to_dest(graph));
    }

    // Meter the relaxation once, tallying each per-vertex charge site
    // against the device that owns the vertex's cell.
    let warp = shards.shard(primary).device.spec().warp_size as usize;
    let mut ctx = gpu_sim::KernelCtx::detached(warp, total_vertices.max(1));
    let mut slices = vec![OpCounts::default(); num_shards];
    let (rounds, frontier_sum, frontier_max, settled, pruned) = frontier_relax_body(
        &mut ctx,
        grid,
        in_set,
        q_dest,
        seeded,
        delta,
        &objects_at,
        k,
        scratch,
        &mut |v, ops| slices[owners[grid.cell_of_vertex(v).index()]].add(&ops),
    );
    stats.rounds = rounds;
    stats.frontier_sum = frontier_sum;
    stats.frontier_max = frontier_max;
    stats.settled = settled;
    stats.pruned = pruned;

    // Replay the remote slices on their devices. The per-vertex tallies
    // cover relax and object-bound work; the metered residual (near/far
    // compaction, reductions, frontier bookkeeping) is data-parallel over
    // the whole frontier, so the cooperative launch splits it across the
    // participants in proportion to the vertices each hosts. Barriers are
    // the exception: every sub-kernel runs the same rounds, so each
    // participant pays the full sync count.
    let mut remote_total = OpCounts::default();
    let mut scatter_groups: Vec<(usize, usize, OpCounts)> = Vec::new();
    for (d, slice) in slices.iter().enumerate() {
        if d == primary || !slice.any() {
            continue;
        }
        remote_total.add(slice);
        let threads: usize = groups[d]
            .iter()
            .map(|&c| grid.topology(c).num_vertices())
            .sum();
        scatter_groups.push((d, threads.max(1), *slice));
    }
    let residual = ctx.ops().saturating_sub(&remote_total);
    let mut primary_ops = residual;
    for (_, threads, ops) in &mut scatter_groups {
        let mut share = residual.scaled(*threads as u64, total_vertices.max(1) as u64);
        primary_ops = primary_ops.saturating_sub(&share);
        share.syncs = residual.syncs;
        ops.add(&share);
    }
    primary_ops.syncs = residual.syncs;
    for (d, t) in shards.launch_scattered(&scatter_groups) {
        device_ns[d] += t;
    }
    let report = shards
        .shard_mut(primary)
        .device
        .launch_ops(total_vertices.max(1), primary_ops);
    device_ns[primary] += report.time;

    // Remote legs go back to the caller so a batch scheduler can place them
    // on the remote devices' streams; the round's modeled duration is the
    // slowest participant.
    let legs: Vec<(usize, SimNanos)> = device_ns
        .iter()
        .enumerate()
        .filter(|&(d, t)| d != primary && *t > SimNanos::ZERO)
        .map(|(d, &t)| (d, t))
        .collect();
    stats.time += device_ns.iter().copied().max().unwrap_or(SimNanos::ZERO);
    (stats, legs)
}

/// Distance from the query to an object position given the induced vertex
/// distances, including the along-the-edge shortcut when both share an edge.
fn object_distance(
    q: EdgePosition,
    p: EdgePosition,
    dist: &DenseScratch,
    graph: &roadnet::Graph,
) -> Distance {
    let src = graph.edge(p.edge).source;
    let via = dist.get(src).saturating_add(p.from_source());
    if p.edge == q.edge && p.offset >= q.offset {
        via.min((p.offset - q.offset) as Distance)
    } else {
        via
    }
}

/// `GPU_First_k`: per-object distance computation and parallel selection.
/// Returns every candidate `(object, distance, position)` sorted ascending
/// by `(distance, object)`.
fn gpu_first_k(
    device: &mut Device,
    q: EdgePosition,
    dist: &DenseScratch,
    objects: &[CachedMessage],
    graph: &roadnet::Graph,
) -> (Vec<(ObjectId, Distance, EdgePosition)>, gpu_sim::SimNanos) {
    let live: Vec<(ObjectId, EdgePosition)> = objects
        .iter()
        .filter_map(|m| m.position.map(|p| (m.object, p)))
        .collect();
    let n = live.len();
    type SortKey = (Distance, u64, u32, u32);
    const SENTINEL: SortKey = (u64::MAX, u64::MAX, u32::MAX, u32::MAX);
    let (scored, report) = device.launch(n.max(1), |ctx| {
        // One thread per object: distance = D[source(o.e)] + o.d.
        ctx.charge_alu_all(6);
        ctx.charge_read(32 * n as u64);
        let keys: Vec<SortKey> = live
            .iter()
            .map(|&(o, p)| (object_distance(q, p, dist, graph), o.0, p.edge.0, p.offset))
            .collect();
        // Parallel bitonic sort on the device (the paper's O(log ρk)
        // parallel selection); comparisons are charged by the network.
        let sorted = gpu_sim::collective::bitonic_sort(ctx, keys, SENTINEL);
        ctx.charge_write(16 * n as u64);
        sorted
            .into_iter()
            .map(|(d, o, e, off)| (ObjectId(o), d, EdgePosition::new(roadnet::EdgeId(e), off)))
            .collect::<Vec<_>>()
    });
    (scored, report.time)
}

/// `GPU_Unresolved`: boundary vertices of the candidate region closer to
/// the query than the k-th candidate (Definition 3). A vertex is on the
/// boundary when one of its out-edges leaves the region; each thread
/// performs the O(out-degree) boolean check against the cell's CSR slice,
/// whose out-records carry the destination cell — no host graph probe.
fn gpu_unresolved(
    device: &mut Device,
    grid: &GraphGrid,
    in_set: &[bool],
    set: &[CellId],
    dist: &DenseScratch,
    l: Distance,
) -> (Vec<(VertexId, Distance)>, gpu_sim::SimNanos) {
    let total_vertices: usize = set.iter().map(|&c| grid.topology(c).num_vertices()).sum();
    let (out, report) = device.launch(total_vertices.max(1), |ctx| {
        let mut found = Vec::new();
        for &c in set {
            let t = grid.topology(c);
            for slot in 0..t.num_vertices() {
                let v = t.verts[slot];
                let deg = t.out_degree_of(slot) as u64;
                ctx.charge_alu_one(1 + deg);
                ctx.charge_read(8 + 12 * deg);
                let dv = dist.get(v);
                if dv >= l {
                    continue;
                }
                let on_boundary = t
                    .out_edges_of(slot)
                    .any(|(_, dest_cell, _)| !in_set[dest_cell as usize]);
                if on_boundary {
                    found.push((v, dv));
                }
            }
        }
        found
    });
    (out, report.time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use roadnet::gen;
    use roadnet::EdgeId;
    use std::sync::Arc;

    fn setup(seed: u64) -> (Arc<GraphGrid>, CellLists, Device, GGridConfig) {
        let graph = Arc::new(gen::toy(seed));
        let config = GGridConfig {
            eta: 4,
            bucket_capacity: 8,
            ..Default::default()
        };
        let grid = Arc::new(GraphGrid::build(
            graph,
            config.cell_capacity,
            config.vertex_capacity,
        ));
        let lists = CellLists::new(grid.num_cells(), config.bucket_capacity);
        (grid, lists, Device::new(DeviceSpec::test_tiny()), config)
    }

    fn place(grid: &GraphGrid, lists: &CellLists, objects: &[(u64, EdgePosition)], t: u64) {
        for &(o, p) in objects {
            let cell = grid.cell_of_edge(p.edge);
            lists
                .lock(cell.index())
                .append(CachedMessage::update(ObjectId(o), p, Timestamp(t)));
        }
    }

    #[test]
    fn frontier_expands_and_respects_set() {
        let (grid, ..) = setup(3);
        let start = grid.cell_of_edge(EdgeId(0));
        let mut in_set = vec![false; grid.num_cells()];
        in_set[start.index()] = true;
        let set = vec![start];
        let frontier = frontier_of(&grid, &in_set, &set);
        assert!(!frontier.is_empty());
        assert!(frontier.iter().all(|c| !in_set[c.index()]));
        // Sorted and deduplicated.
        let mut sorted = frontier.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(frontier, sorted);
    }

    #[test]
    fn kth_distance_semantics() {
        let p = EdgePosition::at_source(EdgeId(0));
        let c = |d: u64| (ObjectId(d), d, p);
        assert_eq!(kth_distance(&[c(5), c(2), c(9)], 2), 5);
        assert_eq!(kth_distance(&[c(5), c(2)], 3), INFINITY);
        assert_eq!(
            kth_distance(&[(ObjectId(1), INFINITY, p), c(2)], 2),
            INFINITY
        );
        assert_eq!(kth_distance(&[], 1), INFINITY);
    }

    #[test]
    fn sdist_matches_dijkstra_when_all_cells_included() {
        let (grid, _, mut device, config) = setup(9);
        let graph = grid.graph().clone();
        let set: Vec<crate::grid::CellId> = grid.cell_ids().collect();
        let in_set = vec![true; grid.num_cells()];
        let q = EdgePosition::at_source(EdgeId(4));
        let mut dist = DenseScratch::new(graph.num_vertices());
        let stats = gpu_sdist_dense(&mut device, &grid, &in_set, &set, q, &graph, &mut dist);
        assert!(stats.time > gpu_sim::SimNanos::ZERO);
        assert!(stats.rounds > 0 && stats.h2d_topo_bytes > 0);
        let mut engine = DijkstraEngine::new(&graph);
        engine.run_from_position(q, SearchBounds::UNBOUNDED);
        for v in graph.vertices() {
            assert_eq!(dist.get(v), engine.distance(v), "{v:?} diverges");
        }
        // The frontier kernel with pruning disabled (k = 0) settles the
        // exact same distances, paying zero topology upload on a hot store.
        let mut topo = TopologyStore::new(config.device_budget_bytes);
        let mut fdist = DenseScratch::new(graph.num_vertices());
        gpu_sdist_frontier(
            &mut device,
            &grid,
            &mut topo,
            &config,
            &in_set,
            &set,
            q,
            &graph,
            &[],
            0,
            &mut fdist,
        );
        let warm = gpu_sdist_frontier(
            &mut device,
            &grid,
            &mut topo,
            &config,
            &in_set,
            &set,
            q,
            &graph,
            &[],
            0,
            &mut fdist,
        );
        assert_eq!(warm.h2d_topo_bytes, 0, "warm store must skip uploads");
        assert_eq!(warm.topo_hits, set.len());
        assert!(warm.settled > 0 && warm.frontier_max > 0);
        for v in graph.vertices() {
            assert_eq!(fdist.get(v), engine.distance(v), "frontier {v:?} diverges");
        }
    }

    #[test]
    fn sdist_induced_overestimates_full_graph() {
        // With only part of the grid included, induced distances can only
        // be larger or equal — never smaller.
        let (grid, _, mut device, _) = setup(9);
        let graph = grid.graph().clone();
        let q = EdgePosition::at_source(EdgeId(4));
        let c_q = grid.cell_of_edge(q.edge);
        let mut set = vec![c_q];
        set.extend_from_slice(grid.neighbors(c_q));
        set.sort_unstable();
        set.dedup();
        let mut in_set = vec![false; grid.num_cells()];
        for c in &set {
            in_set[c.index()] = true;
        }
        let mut dist = DenseScratch::new(graph.num_vertices());
        gpu_sdist_dense(&mut device, &grid, &in_set, &set, q, &graph, &mut dist);
        let mut engine = DijkstraEngine::new(&graph);
        engine.run_from_position(q, SearchBounds::UNBOUNDED);
        for (v, d) in dist.iter_touched() {
            assert!(d >= engine.distance(v), "{v:?}: induced {d} < exact");
        }
    }

    #[test]
    fn first_k_orders_by_distance_then_id() {
        let (grid, _, mut device, _) = setup(5);
        let graph = grid.graph().clone();
        let q = EdgePosition::at_source(EdgeId(0));
        let set: Vec<crate::grid::CellId> = grid.cell_ids().collect();
        let in_set = vec![true; grid.num_cells()];
        let mut dist = DenseScratch::new(graph.num_vertices());
        gpu_sdist_dense(&mut device, &grid, &in_set, &set, q, &graph, &mut dist);
        let objects: Vec<CachedMessage> = (0..10u64)
            .map(|o| {
                CachedMessage::update(
                    ObjectId(o),
                    EdgePosition::at_source(EdgeId((o * 17 % graph.num_edges() as u64) as u32)),
                    Timestamp(1),
                )
            })
            .collect();
        let (scored, _) = gpu_first_k(&mut device, q, &dist, &objects, &graph);
        assert_eq!(scored.len(), 10);
        for w in scored.windows(2) {
            assert!((w[0].1, w[0].0) <= (w[1].1, w[1].0));
        }
    }

    #[test]
    fn unresolved_only_boundary_vertices_below_l() {
        let (grid, _, mut device, _) = setup(7);
        let graph = grid.graph().clone();
        let q = EdgePosition::at_source(EdgeId(2));
        let c_q = grid.cell_of_edge(q.edge);
        let mut set = vec![c_q];
        set.extend_from_slice(grid.neighbors(c_q));
        set.sort_unstable();
        set.dedup();
        let mut in_set = vec![false; grid.num_cells()];
        for c in &set {
            in_set[c.index()] = true;
        }
        let mut dist = DenseScratch::new(graph.num_vertices());
        gpu_sdist_dense(&mut device, &grid, &in_set, &set, q, &graph, &mut dist);
        let l = 50;
        let (unresolved, _) = gpu_unresolved(&mut device, &grid, &in_set, &set, &dist, l);
        for &(v, d) in &unresolved {
            assert!(d < l);
            let boundary = graph
                .out_edges(v)
                .any(|e| !in_set[grid.cell_of_vertex(graph.edge(e).dest).index()]);
            assert!(boundary, "{v:?} not on the boundary");
        }
    }

    #[test]
    fn run_knn_invalid_query_panics() {
        let (grid, lists, device, config) = setup(3);
        let bad = EdgePosition::new(EdgeId(0), 10_000);
        let mut shards = ShardSet::single(device, &config, grid.num_cells());
        let pool = ScratchPool::new(grid.graph().num_vertices());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_knn(
                &mut shards,
                &grid,
                &lists,
                &pool,
                &config,
                bad,
                1,
                Timestamp(1),
                None,
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_knn_direct() {
        let (grid, lists, device, config) = setup(3);
        let objects: Vec<(u64, EdgePosition)> = (0..8u64)
            .map(|o| (o, EdgePosition::at_source(EdgeId((o * 19 % 160) as u32))))
            .collect();
        place(&grid, &lists, &objects, 100);
        let q = EdgePosition::at_source(EdgeId(1));
        let mut shards = ShardSet::single(device, &config, grid.num_cells());
        let pool = ScratchPool::new(grid.graph().num_vertices());
        let result = run_knn(
            &mut shards,
            &grid,
            &lists,
            &pool,
            &config,
            q,
            3,
            Timestamp(200),
            None,
        );
        assert_eq!(result.items.len(), 3);
        let want = roadnet::dijkstra::reference_knn(grid.graph(), q, &objects, 3);
        let got_d: Vec<u64> = result.items.iter().map(|&(_, d)| d).collect();
        let want_d: Vec<u64> = want.iter().map(|&(_, d)| d).collect();
        assert_eq!(got_d, want_d);
        assert!(result.breakdown.cells_cleaned > 0);
        assert!(result.breakdown.sdist_rounds > 0, "sdist must be counted");
        assert!(result.breakdown.sdist_vertices > 0);
        assert!(pool.pooled() > 0, "scratch must return to the pool");
    }

    #[test]
    fn answers_identical_across_worker_counts() {
        // The refinement merge is order-independent, so every worker count
        // must produce bit-identical answers.
        let reference: Vec<Vec<(ObjectId, Distance)>> = {
            let (grid, lists, device, config) = setup(11);
            let objects: Vec<(u64, EdgePosition)> = (0..20u64)
                .map(|o| (o, EdgePosition::at_source(EdgeId((o * 23 % 160) as u32))))
                .collect();
            place(&grid, &lists, &objects, 100);
            let mut shards = ShardSet::single(device, &config, grid.num_cells());
            let pool = ScratchPool::new(grid.graph().num_vertices());
            (0..5u32)
                .map(|i| {
                    let q = EdgePosition::at_source(EdgeId(i * 31 % 160));
                    run_knn(
                        &mut shards,
                        &grid,
                        &lists,
                        &pool,
                        &config,
                        q,
                        6,
                        Timestamp(200),
                        None,
                    )
                    .items
                })
                .collect()
        };
        for workers in [2usize, 4, 8] {
            let (grid, lists, device, mut config) = setup(11);
            config.refine_workers = workers;
            let objects: Vec<(u64, EdgePosition)> = (0..20u64)
                .map(|o| (o, EdgePosition::at_source(EdgeId((o * 23 % 160) as u32))))
                .collect();
            place(&grid, &lists, &objects, 100);
            let mut shards = ShardSet::single(device, &config, grid.num_cells());
            let pool = ScratchPool::new(grid.graph().num_vertices());
            for (i, want) in reference.iter().enumerate() {
                let q = EdgePosition::at_source(EdgeId(i as u32 * 31 % 160));
                let got = run_knn(
                    &mut shards,
                    &grid,
                    &lists,
                    &pool,
                    &config,
                    q,
                    6,
                    Timestamp(200),
                    None,
                )
                .items;
                assert_eq!(&got, want, "workers={workers} query {i} diverged");
            }
        }
    }

    #[test]
    fn refine_outcome_matches_sequential_reference() {
        // Cross-check the parallel refinement against an in-test sequential
        // re-implementation of the original single-threaded loop.
        let (grid, lists, device, config) = setup(7);
        let objects: Vec<(u64, EdgePosition)> = (0..10u64)
            .map(|o| (o, EdgePosition::at_source(EdgeId((o * 37 % 160) as u32))))
            .collect();
        place(&grid, &lists, &objects, 100);
        let q = EdgePosition::at_source(EdgeId(2));
        let mut shards = ShardSet::single(device, &config, grid.num_cells());
        let pool = ScratchPool::new(grid.graph().num_vertices());
        let pending = knn_device_phase(
            &mut shards,
            &grid,
            &lists,
            &pool,
            &config,
            q,
            4,
            Timestamp(200),
            None,
        );
        if pending.unresolved.is_empty() {
            return; // nothing to refine on this topology
        }

        let graph = grid.graph().clone();
        let mut engine = DijkstraEngine::new(&graph);
        let mut want: HashMap<VertexId, Distance, FxBuildHasher> =
            HashMap::with_hasher(FxBuildHasher::default());
        for &(v, dv) in &pending.unresolved {
            engine.run_seeded(&[(v, 0)], SearchBounds::radius(pending.l - dv));
            for &u in engine.settled() {
                let du = dv + engine.distance(u);
                want.entry(u)
                    .and_modify(|d| *d = (*d).min(du))
                    .or_insert(du);
            }
        }

        for multi_source in [false, true] {
            for workers in [1usize, 3, 8] {
                let got = refine_unresolved(
                    &grid,
                    &pending.unresolved,
                    pending.l,
                    &pending.in_set,
                    workers,
                    multi_source,
                    &pool,
                );
                let got_map: HashMap<VertexId, Distance, FxBuildHasher> = got
                    .best_outer
                    .as_ref()
                    .expect("unresolved non-empty => scratch present")
                    .iter_touched()
                    .collect();
                assert_eq!(got_map, want, "workers={workers} multi={multi_source}");
                assert!(got.touched_cells.windows(2).all(|w| w[0] < w[1]));
                assert!(got.settled > 0 && got.relaxed > 0);
            }
        }
    }

    #[test]
    fn multi_source_refine_does_less_work() {
        // The shared search settles overlapping subtrees once; with several
        // unresolved sources its settled count can only be <= the per-vertex
        // union's (which settles shared vertices once per source).
        let (grid, lists, device, config) = setup(7);
        let objects: Vec<(u64, EdgePosition)> = (0..10u64)
            .map(|o| (o, EdgePosition::at_source(EdgeId((o * 37 % 160) as u32))))
            .collect();
        place(&grid, &lists, &objects, 100);
        let q = EdgePosition::at_source(EdgeId(2));
        let mut shards = ShardSet::single(device, &config, grid.num_cells());
        let pool = ScratchPool::new(grid.graph().num_vertices());
        let pending = knn_device_phase(
            &mut shards,
            &grid,
            &lists,
            &pool,
            &config,
            q,
            4,
            Timestamp(200),
            None,
        );
        if pending.unresolved.len() < 2 {
            return; // no sharing to measure on this topology
        }
        let args = (&pending.unresolved, pending.l, &pending.in_set);
        let per_vertex = refine_unresolved(&grid, args.0, args.1, args.2, 1, false, &pool);
        let fused = refine_unresolved(&grid, args.0, args.1, args.2, 1, true, &pool);
        assert!(
            fused.settled <= per_vertex.settled,
            "fused {} vs per-vertex {}",
            fused.settled,
            per_vertex.settled
        );
        assert!(fused.relaxed <= per_vertex.relaxed);
        if let (Some(a), Some(b)) = (fused.best_outer, per_vertex.best_outer) {
            pool.release(a);
            pool.release(b);
        }
    }
}
