//! Theorem 1: the duplicate bound μ(η) of the X-shuffle.
//!
//! After the η butterfly shuffles of Algorithm 3 over a bundle of `2^η`
//! threads, the number of *distinct surviving messages of the same object*
//! is bounded by μ(η) — a small constant (2, 4, 8, 16 for bundles of 16, 32,
//! 64, 128 threads). The bound determines how many times each thread must
//! attempt the final write into the intermediate table 𝒯, so it directly
//! sets the kernel's cost.
//!
//! This module implements the paper's λ/μ formulas plus the underlying
//! *cover* relation (Definition 2 / Lemma 1), and — for small bundles — an
//! exact brute-force computation of the largest *exclusive set* (a set of
//! threads that pairwise do not cover each other), which is the true worst
//! case the formula upper-bounds.

/// Number of maximal runs of `1`s in the binary representation of `x` — the
/// paper's *x-distance* `𝒳(α, β)` applied to `x = α ⊕ β` (Definition 2).
pub fn order_of_sequence(mut x: u64) -> u32 {
    let mut runs = 0;
    while x != 0 {
        // Skip to the start of the next run and strip it.
        x >>= x.trailing_zeros();
        x >>= x.trailing_ones();
        runs += 1;
    }
    runs
}

/// The x-distance between two thread indexes.
pub fn x_distance(alpha: u64, beta: u64) -> u32 {
    order_of_sequence(alpha ^ beta)
}

/// Whether thread `alpha` covers thread `beta` in a `2^η` bundle (Lemma 1:
/// exactly when their xor is a single run of ones).
pub fn covers(alpha: u64, beta: u64) -> bool {
    alpha != beta && x_distance(alpha, beta) == 1
}

/// `λ(η, i) = i·C(η+1, 2) − Σ_{j=1}^{i} (14−j)(j−1)/2 + i` (Theorem 1).
pub fn lambda(eta: u32, i: u32) -> i64 {
    let pairs = (eta as i64 * (eta as i64 + 1)) / 2; // C(η+1, 2)
    let mut correction = 0i64;
    for j in 1..=i as i64 {
        correction += (14 - j) * (j - 1) / 2;
    }
    i as i64 * pairs - correction + i as i64
}

/// μ(η): the paper's bound on surviving duplicates for a `2^η` bundle.
///
/// Defined by Theorem 1 for η > 3; for small bundles (η ≤ 3) the theorem
/// does not apply and the trivially safe bound `2^η` is returned.
pub fn mu(eta: u32) -> u32 {
    assert!((1..=32).contains(&eta));
    if eta <= 3 {
        return 1 << eta;
    }
    let total = 1i64 << eta;
    // Theorem 1, read as intended: exclusive sets have at most 8 members
    // (Lemma 5), so if some i ≤ 8 already covers the whole bundle
    // (λ(η, i) ≥ 2^η) the bound is the smallest such i; otherwise a full
    // 8-member set leaves 2^η − λ(η, 8) threads uncovered, each of which
    // may contribute one more survivor. (The paper states the first case's
    // guard as λ(η, 8) ≥ 2^η, which only matches its own example values —
    // μ(4..7) = 2, 4, 8, 16 — under this reading, because λ is not
    // monotone in i for η < 6.)
    if let Some(i) = (1..=8).find(|&i| lambda(eta, i) >= total) {
        i
    } else {
        (total - lambda(eta, 8) + 8) as u32
    }
}

/// Exact size of the largest exclusive set in a `2^η` bundle, by exhaustive
/// search. Only feasible for η ≤ 4 (16 threads); used to validate that the
/// closed-form μ(η) really is an upper bound.
pub fn max_exclusive_set_brute(eta: u32) -> u32 {
    assert!(eta <= 4, "brute force only for small bundles");
    let n = 1usize << eta;
    // adjacency[i] bit j set ⇔ i and j cover each other (cannot coexist).
    let mut conflict = vec![0u32; n];
    for (a, row) in conflict.iter_mut().enumerate() {
        for b in 0..n {
            if a != b && covers(a as u64, b as u64) {
                *row |= 1 << b;
            }
        }
    }
    fn dfs(next: usize, chosen_conflicts: u32, count: u32, conflict: &[u32], best: &mut u32) {
        let n = conflict.len();
        if count + (n - next) as u32 <= *best {
            return; // cannot beat best
        }
        if next == n {
            *best = (*best).max(count);
            return;
        }
        // Take `next` if it conflicts with nothing chosen.
        if chosen_conflicts & (1 << next) == 0 {
            dfs(
                next + 1,
                chosen_conflicts | conflict[next],
                count + 1,
                conflict,
                best,
            );
        }
        dfs(next + 1, chosen_conflicts, count, conflict, best);
        *best = (*best).max(count);
    }
    let mut best = 0;
    dfs(0, 0, 0, &conflict, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_counts_runs() {
        assert_eq!(order_of_sequence(0), 0);
        assert_eq!(order_of_sequence(0b1), 1);
        assert_eq!(order_of_sequence(0b1110), 1);
        assert_eq!(order_of_sequence(0b1011), 2); // paper's order-2 example
        assert_eq!(order_of_sequence(0b101_0101), 4);
    }

    #[test]
    fn paper_x_distance_example() {
        // Definition 2: 𝒳(10, 1) = 2 because 01010 ⊕ 00001 = 01011.
        assert_eq!(x_distance(10, 1), 2);
    }

    #[test]
    fn covers_iff_single_run() {
        assert!(covers(0b0000, 0b0110)); // xor = 0110, one run
        assert!(!covers(0b0001, 0b0100)); // xor = 0101, two runs
        assert!(!covers(5, 5)); // never covers itself
    }

    #[test]
    fn paper_mu_values() {
        // §IV-D: bundles of 16, 32, 64, 128 threads → μ = 2, 4, 8, 16.
        assert_eq!(mu(4), 2);
        assert_eq!(mu(5), 4);
        assert_eq!(mu(6), 8);
        assert_eq!(mu(7), 16);
    }

    #[test]
    fn mu_small_bundles_safe() {
        assert_eq!(mu(1), 2);
        assert_eq!(mu(2), 4);
        assert_eq!(mu(3), 8);
    }

    #[test]
    fn lambda_monotone_in_i_for_wide_bundles() {
        // The per-member increment C(η+1,2) − 6k + C(k,2) is positive for
        // every k ≤ 7 once η ≥ 6, so λ grows monotonically there.
        for eta in 6..=10 {
            for i in 1..8 {
                assert!(lambda(eta, i + 1) > lambda(eta, i));
            }
        }
    }

    #[test]
    fn cover_set_size_matches_lemma2() {
        // Lemma 2: |C(α)| = C(η+1, 2) for every thread α.
        for eta in [3u32, 4] {
            let n = 1u64 << eta;
            let expected = (eta * (eta + 1) / 2) as usize;
            for alpha in 0..n {
                let size = (0..n).filter(|&b| covers(alpha, b)).count();
                assert_eq!(size, expected, "eta={eta} alpha={alpha}");
            }
        }
    }

    #[test]
    fn pairwise_intersection_matches_lemma3() {
        // Lemma 3: threads at x-distance 2 share exactly 6 covered threads;
        // x-distance > 2 share none. (η > 3.)
        let eta = 4u32;
        let n = 1u64 << eta;
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let shared = (0..n).filter(|&c| covers(a, c) && covers(b, c)).count();
                match x_distance(a, b) {
                    2 => assert_eq!(shared, 6, "a={a} b={b}"),
                    d if d > 2 => assert_eq!(shared, 0, "a={a} b={b}"),
                    _ => {} // x-distance 1: not constrained by the lemma
                }
            }
        }
    }

    #[test]
    fn brute_force_exclusive_set_within_mu() {
        // The exact worst case never exceeds the closed-form bound.
        assert!(max_exclusive_set_brute(4) <= mu(4));
        assert!(max_exclusive_set_brute(3) <= mu(3));
        assert!(max_exclusive_set_brute(2) <= mu(2));
    }
}
