//! Device-resident consolidated cell state.
//!
//! After a cell's first full cleaning pass its consolidated list (one
//! message per live object) is left *on the device*: a handle-tracked
//! buffer in [`gpu_sim::Device`] plus a host mirror of the contents here.
//! The next time the cell needs cleaning, only the **delta** — messages
//! appended since the clean — crosses the bus, and the fused
//! [`crate::xshuffle::xshuffle_merge`] kernel combines it with the resident
//! state in one launch.
//!
//! Validity is epoch-based: an entry records the list epoch at which it was
//! installed, and is usable exactly while the cell's
//! [`crate::message_list::MessageList::cleaned_epoch`] still equals it —
//! i.e. the list's consolidated prefix is byte-for-byte the mirrored data.
//! Anything else (a full re-clean through another path, an eviction, a
//! restart) just means the next clean takes the full-upload path;
//! **correctness never depends on residency**.
//!
//! Residency is bounded twice over: by `GGridConfig::device_budget_bytes`
//! (`0` disables the store) and by the card's physical capacity enforced in
//! [`gpu_sim::mem`]. When either bound is hit, least-recently-used cells
//! are evicted until the new entry fits; a cell whose consolidated list
//! alone exceeds the budget is simply never promoted.

use std::collections::HashMap;

use gpu_sim::{BufferId, BufferTag, Device};

use crate::grid::CellId;
use crate::message::CachedMessage;
use crate::object_table::FxBuildHasher;

/// One cell's device-resident consolidated state.
#[derive(Debug)]
struct ResidentEntry {
    buffer: BufferId,
    /// List epoch at install time; the mirror is valid while the cell's
    /// `cleaned_epoch()` equals this.
    epoch: u64,
    /// Host mirror of the device buffer (the simulator computes on host
    /// data; a real port would keep only the device pointer).
    mirror: Vec<CachedMessage>,
    last_used: u64,
    /// How the entry's device buffer is tagged: [`BufferTag::General`] for
    /// the owner's consolidated state, [`BufferTag::Replica`] for a
    /// read-replica of a cell another shard owns.
    tag: BufferTag,
}

impl ResidentEntry {
    fn bytes(&self) -> u64 {
        self.mirror.len() as u64 * CachedMessage::WIRE_BYTES
    }
}

/// LRU store of device-resident consolidated cell lists.
#[derive(Debug)]
pub struct ResidentCellStore {
    budget_bytes: u64,
    entries: HashMap<CellId, ResidentEntry, FxBuildHasher>,
    tick: u64,
    evictions: u64,
    /// Bytes other device-resident structures (the batch clean-cache)
    /// have charged against this budget; eviction decisions count them as
    /// pressure even though no resident entry backs them.
    external_bytes: u64,
}

impl ResidentCellStore {
    /// `budget_bytes = 0` disables residency entirely: every lookup misses
    /// and every install is a no-op.
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            entries: HashMap::with_hasher(FxBuildHasher::default()),
            tick: 0,
            evictions: 0,
            external_bytes: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Bytes currently mirrored on the device.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes()).sum()
    }

    pub fn resident_cells(&self) -> usize {
        self.entries.len()
    }

    /// Bytes currently charged by external structures
    /// (see [`Self::reserve_external`]).
    pub fn external_bytes(&self) -> u64 {
        self.external_bytes
    }

    /// Charge `bytes` of device memory held by an external structure (the
    /// batch clean-cache) against this budget, evicting LRU residents to
    /// make room. Best-effort: the charge is recorded even if the budget
    /// cannot be met (the external structure exists regardless; the ledger
    /// must reflect the true pressure). No-op while residency is disabled.
    pub fn reserve_external(&mut self, device: &mut Device, bytes: u64) {
        if !self.enabled() || bytes == 0 {
            return;
        }
        while self.resident_bytes() + self.external_bytes + bytes > self.budget_bytes {
            if self.evict_lru(device).is_none() {
                break;
            }
        }
        self.external_bytes += bytes;
    }

    /// Release an earlier [`Self::reserve_external`] charge.
    pub fn release_external(&mut self, bytes: u64) {
        self.external_bytes = self.external_bytes.saturating_sub(bytes);
    }

    pub fn contains(&self, cell: CellId) -> bool {
        self.entries.contains_key(&cell)
    }

    /// Lifetime LRU/stale evictions (monotone; callers diff across a round).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The resident mirror of `cell`, valid against the cell's current
    /// `cleaned_epoch`. A stale entry (the list was re-consolidated through
    /// a path that did not update the store) is dropped on the spot — its
    /// device buffer is freed — and the lookup misses.
    pub fn lookup(
        &mut self,
        device: &mut Device,
        cell: CellId,
        cleaned_epoch: Option<u64>,
    ) -> Option<&[CachedMessage]> {
        match self.entries.get(&cell) {
            None => None,
            Some(e) if cleaned_epoch != Some(e.epoch) => {
                let e = self.entries.remove(&cell).expect("entry just seen");
                device.free_buffer(e.buffer);
                self.evictions += 1;
                None
            }
            Some(_) => {
                self.tick += 1;
                let e = self.entries.get_mut(&cell).expect("entry just seen");
                e.last_used = self.tick;
                Some(&e.mirror)
            }
        }
    }

    /// Install (or refresh) the resident state of `cell` after a cleaning
    /// pass consolidated it to `messages` at list epoch `epoch`. Evicts
    /// least-recently-used cells as needed to respect both the configured
    /// budget and the card's capacity; returns whether the cell is resident
    /// afterwards. An empty consolidated list is never kept resident (the
    /// clean-skip cache already serves it for free).
    pub fn install(
        &mut self,
        device: &mut Device,
        cell: CellId,
        epoch: u64,
        messages: &[CachedMessage],
    ) -> bool {
        self.install_tagged(device, cell, epoch, messages, BufferTag::General)
    }

    /// [`Self::install`] for a *read-replica* of a cell another shard owns:
    /// the device buffer is tagged [`BufferTag::Replica`], so the hosting
    /// device's ledger charges the bytes to itself (never the owner) and
    /// releases them on invalidation. Shares the same budget and LRU as the
    /// owner-state entries.
    pub fn install_replica(
        &mut self,
        device: &mut Device,
        cell: CellId,
        epoch: u64,
        messages: &[CachedMessage],
    ) -> bool {
        self.install_tagged(device, cell, epoch, messages, BufferTag::Replica)
    }

    fn install_tagged(
        &mut self,
        device: &mut Device,
        cell: CellId,
        epoch: u64,
        messages: &[CachedMessage],
        tag: BufferTag,
    ) -> bool {
        if !self.enabled() || messages.is_empty() {
            self.invalidate(device, cell);
            return false;
        }
        let bytes = messages.len() as u64 * CachedMessage::WIRE_BYTES;
        if bytes > self.budget_bytes {
            self.invalidate(device, cell);
            return false;
        }

        // Free the cell's previous buffer first: the new allocation below
        // must not be blocked by state it is replacing.
        if let Some(e) = self.entries.remove(&cell) {
            device.free_buffer(e.buffer);
        }

        // Budget eviction (never counts the slot being refreshed; external
        // charges squeeze the same budget).
        while self.resident_bytes() + self.external_bytes + bytes > self.budget_bytes {
            if self.evict_lru(device).is_none() {
                return false; // bytes <= budget and store empty (or all external)
            }
        }

        // Capacity eviction: the card itself may be fuller than the budget
        // assumes (other structures share it).
        let buffer = loop {
            match device.alloc_buffer_tagged(bytes, tag) {
                Ok(b) => break b,
                Err(_) => {
                    if self.evict_lru(device).is_none() {
                        return false;
                    }
                }
            }
        };

        self.tick += 1;
        self.entries.insert(
            cell,
            ResidentEntry {
                buffer,
                epoch,
                mirror: messages.to_vec(),
                last_used: self.tick,
                tag,
            },
        );
        true
    }

    /// Whether `cell`'s resident entry is a read-replica (installed through
    /// [`Self::install_replica`]).
    pub fn is_replica(&self, cell: CellId) -> bool {
        self.entries
            .get(&cell)
            .is_some_and(|e| e.tag == BufferTag::Replica)
    }

    /// Read-replica entries currently resident.
    pub fn replica_cells(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.tag == BufferTag::Replica)
            .count()
    }

    /// Bytes currently held by read-replica entries.
    pub fn replica_bytes(&self) -> u64 {
        self.entries
            .values()
            .filter(|e| e.tag == BufferTag::Replica)
            .map(|e| e.bytes())
            .sum()
    }

    /// Drop `cell`'s resident state, if any. Returns the bytes freed.
    pub fn invalidate(&mut self, device: &mut Device, cell: CellId) -> u64 {
        match self.entries.remove(&cell) {
            Some(e) => device.free_buffer(e.buffer),
            None => 0,
        }
    }

    /// Evict the least-recently-used resident cell. Returns the victim.
    pub fn evict_lru(&mut self, device: &mut Device) -> Option<CellId> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(c, e)| (e.last_used, c.0))
            .map(|(&c, _)| c)?;
        self.invalidate(device, victim);
        self.evictions += 1;
        Some(victim)
    }

    /// Forcibly evict a specific cell (tests, ablations). Returns whether
    /// the cell was resident.
    pub fn force_evict(&mut self, device: &mut Device, cell: CellId) -> bool {
        let was = self.invalidate(device, cell) > 0;
        if was {
            self.evictions += 1;
        }
        was
    }

    /// Drop everything (e.g. before reconfiguring the device).
    pub fn clear(&mut self, device: &mut Device) {
        let cells: Vec<CellId> = self.entries.keys().copied().collect();
        for c in cells {
            self.invalidate(device, c);
        }
    }
}

/// Accounting for one [`TopologyStore::stage`] round.
#[derive(Clone, Copy, Debug, Default)]
pub struct StagedTopo {
    /// Simulated duration of the coalesced upload (zero when nothing missed).
    pub time: gpu_sim::SimNanos,
    /// Bytes shipped (sum of the missed slices).
    pub bytes: u64,
    /// Cells already resident — no upload owed.
    pub hits: u64,
    /// Cells whose slice rode the staged transfer.
    pub misses: u64,
    /// PCIe transactions avoided vs one transfer per missed cell.
    pub transactions_saved: u64,
}

/// One cell's device-resident CSR topology slice.
#[derive(Debug)]
struct TopoEntry {
    buffer: BufferId,
    bytes: u64,
    last_used: u64,
}

/// LRU store of device-resident per-cell CSR topology slices.
///
/// Unlike [`ResidentCellStore`] there is no epoch validity: the road network
/// is immutable, so a slice installed once is correct forever — the only
/// reason a lookup misses is that the cell was never uploaded or was evicted
/// under memory pressure. The host keeps no mirror either; the grid's
/// [`crate::grid::CellTopology`] *is* the data, and the store only accounts
/// for which cells have paid their H2D.
#[derive(Debug)]
pub struct TopologyStore {
    budget_bytes: u64,
    entries: HashMap<CellId, TopoEntry, FxBuildHasher>,
    tick: u64,
    evictions: u64,
    hits: u64,
    misses: u64,
}

impl TopologyStore {
    /// `budget_bytes = 0` disables the store: every [`Self::ensure`] misses
    /// (the caller pays the per-query upload) and nothing is kept resident.
    pub fn new(budget_bytes: u64) -> Self {
        Self {
            budget_bytes,
            entries: HashMap::with_hasher(FxBuildHasher::default()),
            tick: 0,
            evictions: 0,
            hits: 0,
            misses: 0,
        }
    }

    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    pub fn resident_cells(&self) -> usize {
        self.entries.len()
    }

    /// Bytes of topology currently resident on the device.
    pub fn resident_bytes(&self) -> u64 {
        self.entries.values().map(|e| e.bytes).sum()
    }

    pub fn contains(&self, cell: CellId) -> bool {
        self.entries.contains_key(&cell)
    }

    /// Lifetime evictions (monotone).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Lifetime lookup hits (cell already resident — no H2D owed).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime lookup misses (caller owes the upload).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Make `cell`'s slice (`bytes` wide) resident if possible. Returns
    /// `true` on a hit — the slice was already on the device and the caller
    /// owes no H2D — and `false` on a miss, in which case the caller charges
    /// the upload and the store installs the slice (evicting LRU victims to
    /// fit the budget and the card) so the *next* query hits. A slice wider
    /// than the whole budget is never installed.
    pub fn ensure(&mut self, device: &mut Device, cell: CellId, bytes: u64) -> bool {
        if let Some(e) = self.entries.get_mut(&cell) {
            self.tick += 1;
            e.last_used = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if !self.enabled() || bytes == 0 || bytes > self.budget_bytes {
            return false;
        }

        while self.resident_bytes() + bytes > self.budget_bytes {
            if self.evict_lru(device).is_none() {
                return false; // unreachable: bytes <= budget and store empty
            }
        }
        let buffer = loop {
            match device.alloc_buffer_tagged(bytes, BufferTag::Topology) {
                Ok(b) => break b,
                Err(_) => {
                    if self.evict_lru(device).is_none() {
                        return false;
                    }
                }
            }
        };

        self.tick += 1;
        self.entries.insert(
            cell,
            TopoEntry {
                buffer,
                bytes,
                last_used: self.tick,
            },
        );
        false
    }

    /// Ensure a whole set of slices in one *staged* transfer: every cell is
    /// looked up (and installed on miss) exactly as [`Self::ensure`] does,
    /// but the missed slices are shipped as a single coalesced H2D copy that
    /// pays the PCIe fixed latency once for the round instead of once per
    /// cell. Returns the accounting for the stage.
    pub fn stage(
        &mut self,
        device: &mut Device,
        cells: impl IntoIterator<Item = (CellId, u64)>,
    ) -> StagedTopo {
        let mut out = StagedTopo::default();
        for (cell, bytes) in cells {
            if self.ensure(device, cell, bytes) {
                out.hits += 1;
            } else {
                out.misses += 1;
                out.bytes += bytes;
            }
        }
        out.time = device.h2d_staged(out.misses as usize, out.bytes);
        out.transactions_saved = out.misses.saturating_sub(1);
        out
    }

    /// Evict the least-recently-used resident slice. Returns the victim.
    pub fn evict_lru(&mut self, device: &mut Device) -> Option<CellId> {
        let victim = self
            .entries
            .iter()
            .min_by_key(|(c, e)| (e.last_used, c.0))
            .map(|(&c, _)| c)?;
        let e = self.entries.remove(&victim).expect("victim just seen");
        device.free_buffer(e.buffer);
        self.evictions += 1;
        Some(victim)
    }

    /// Forcibly evict a specific cell (tests, ablations). Returns whether
    /// the cell was resident.
    pub fn force_evict(&mut self, device: &mut Device, cell: CellId) -> bool {
        match self.entries.remove(&cell) {
            Some(e) => {
                device.free_buffer(e.buffer);
                self.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Drop everything.
    pub fn clear(&mut self, device: &mut Device) {
        let cells: Vec<CellId> = self.entries.keys().copied().collect();
        for c in cells {
            self.force_evict(device, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ObjectId, Timestamp};
    use gpu_sim::DeviceSpec;
    use roadnet::{EdgeId, EdgePosition};

    fn msg(o: u64, t: u64) -> CachedMessage {
        CachedMessage::update(ObjectId(o), EdgePosition::new(EdgeId(0), 0), Timestamp(t))
    }

    fn msgs(n: u64) -> Vec<CachedMessage> {
        (0..n).map(|o| msg(o, 100 + o)).collect()
    }

    fn dev() -> Device {
        Device::new(DeviceSpec::test_tiny())
    }

    #[test]
    fn disabled_store_never_installs() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(0);
        assert!(!s.install(&mut d, CellId(0), 1, &msgs(3)));
        assert!(s.lookup(&mut d, CellId(0), Some(1)).is_none());
        assert_eq!(d.residency().live_buffers, 0);
    }

    #[test]
    fn install_lookup_roundtrip() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(1 << 20);
        let m = msgs(4);
        assert!(s.install(&mut d, CellId(2), 7, &m));
        assert_eq!(s.lookup(&mut d, CellId(2), Some(7)).unwrap(), &m[..]);
        assert_eq!(d.residency().live_buffers, 1);
        assert_eq!(s.resident_bytes(), 4 * CachedMessage::WIRE_BYTES);
    }

    #[test]
    fn stale_epoch_drops_entry() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(1 << 20);
        s.install(&mut d, CellId(2), 7, &msgs(4));
        assert!(s.lookup(&mut d, CellId(2), Some(8)).is_none());
        assert!(!s.contains(CellId(2)), "stale entry must be dropped");
        assert_eq!(d.residency().live_buffers, 0);
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn external_charge_squeezes_budget() {
        let mut d = dev();
        // Budget fits two 4-message cells but not three.
        let mut s = ResidentCellStore::new(9 * CachedMessage::WIRE_BYTES);
        s.install(&mut d, CellId(0), 1, &msgs(4));
        s.install(&mut d, CellId(1), 1, &msgs(4));
        // An external charge of 4 messages' worth must evict the LRU cell.
        s.reserve_external(&mut d, 4 * CachedMessage::WIRE_BYTES);
        assert_eq!(s.external_bytes(), 4 * CachedMessage::WIRE_BYTES);
        assert!(!s.contains(CellId(0)), "external pressure must evict LRU");
        assert!(s.contains(CellId(1)));
        // While the charge is live, installs see the squeezed budget.
        assert!(s.install(&mut d, CellId(2), 1, &msgs(4)));
        assert!(!s.contains(CellId(1)));
        // Releasing restores the full budget: both cells fit again.
        s.release_external(4 * CachedMessage::WIRE_BYTES);
        assert_eq!(s.external_bytes(), 0);
        assert!(s.install(&mut d, CellId(3), 1, &msgs(4)));
        assert!(s.contains(CellId(2)) && s.contains(CellId(3)));
    }

    #[test]
    fn external_charge_noop_when_disabled() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(0);
        s.reserve_external(&mut d, 1 << 20);
        assert_eq!(s.external_bytes(), 0);
    }

    #[test]
    fn budget_evicts_lru() {
        let mut d = dev();
        // Budget fits two 4-message cells but not three.
        let mut s = ResidentCellStore::new(9 * CachedMessage::WIRE_BYTES);
        s.install(&mut d, CellId(0), 1, &msgs(4));
        s.install(&mut d, CellId(1), 1, &msgs(4));
        // Touch cell 0 so cell 1 is the LRU victim.
        assert!(s.lookup(&mut d, CellId(0), Some(1)).is_some());
        s.install(&mut d, CellId(2), 1, &msgs(4));
        assert!(s.contains(CellId(0)));
        assert!(!s.contains(CellId(1)), "LRU cell must be evicted");
        assert!(s.contains(CellId(2)));
        assert_eq!(s.evictions(), 1);
        assert_eq!(d.residency().live_buffers, 2);
    }

    #[test]
    fn oversized_cell_never_promoted() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(2 * CachedMessage::WIRE_BYTES);
        assert!(!s.install(&mut d, CellId(0), 1, &msgs(3)));
        assert_eq!(s.resident_cells(), 0);
        assert_eq!(d.residency().live_buffers, 0);
    }

    #[test]
    fn reinstall_replaces_buffer() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(1 << 20);
        s.install(&mut d, CellId(0), 1, &msgs(4));
        s.install(&mut d, CellId(0), 3, &msgs(2));
        assert_eq!(s.resident_cells(), 1);
        assert_eq!(s.resident_bytes(), 2 * CachedMessage::WIRE_BYTES);
        assert_eq!(d.residency().live_buffers, 1);
        assert!(s.lookup(&mut d, CellId(0), Some(1)).is_none());
    }

    #[test]
    fn empty_consolidation_invalidates() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(1 << 20);
        s.install(&mut d, CellId(0), 1, &msgs(4));
        assert!(!s.install(&mut d, CellId(0), 2, &[]));
        assert!(!s.contains(CellId(0)));
        assert_eq!(d.residency().live_buffers, 0);
    }

    #[test]
    fn device_capacity_forces_eviction() {
        // test_tiny card: 1 MiB. Budget is larger than the card, so the
        // capacity loop (not the budget loop) must evict.
        let mut d = dev();
        d.alloc(1024 * 1024 - 64 * CachedMessage::WIRE_BYTES)
            .unwrap();
        let mut s = ResidentCellStore::new(1 << 30);
        assert!(s.install(&mut d, CellId(0), 1, &msgs(40)));
        assert!(s.install(&mut d, CellId(1), 1, &msgs(40)));
        assert!(!s.contains(CellId(0)), "card pressure must evict LRU");
        assert!(s.contains(CellId(1)));
    }

    #[test]
    fn force_evict_and_clear() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(1 << 20);
        s.install(&mut d, CellId(0), 1, &msgs(2));
        s.install(&mut d, CellId(1), 1, &msgs(2));
        assert!(s.force_evict(&mut d, CellId(0)));
        assert!(!s.force_evict(&mut d, CellId(0)));
        assert_eq!(s.evictions(), 1);
        s.clear(&mut d);
        assert_eq!(s.resident_cells(), 0);
        assert_eq!(d.residency().live_buffers, 0);
    }

    #[test]
    fn replica_install_tags_bytes_on_hosting_device() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(1 << 20);
        let m = msgs(4);
        assert!(s.install_replica(&mut d, CellId(5), 3, &m));
        assert!(s.is_replica(CellId(5)));
        assert_eq!(s.replica_cells(), 1);
        assert_eq!(s.replica_bytes(), 4 * CachedMessage::WIRE_BYTES);
        assert_eq!(
            d.resident_bytes_tagged(gpu_sim::BufferTag::Replica),
            4 * CachedMessage::WIRE_BYTES,
            "replica bytes must be charged to the hosting device under the Replica tag"
        );
        // Owner-state installs stay untagged and are not replicas.
        assert!(s.install(&mut d, CellId(1), 1, &msgs(2)));
        assert!(!s.is_replica(CellId(1)));
        assert_eq!(s.replica_cells(), 1);
        // Lookup serves the replica mirror while its epoch holds...
        assert_eq!(s.lookup(&mut d, CellId(5), Some(3)).unwrap(), &m[..]);
        // ...and invalidation releases exactly its bytes from the device.
        let freed = s.invalidate(&mut d, CellId(5));
        assert_eq!(freed, 4 * CachedMessage::WIRE_BYTES);
        assert_eq!(d.resident_bytes_tagged(gpu_sim::BufferTag::Replica), 0);
        assert!(!s.is_replica(CellId(5)));
        assert_eq!(s.replica_bytes(), 0);
    }

    #[test]
    fn replica_shares_budget_with_owner_state() {
        let mut d = dev();
        // Budget fits two 4-message entries but not three.
        let mut s = ResidentCellStore::new(9 * CachedMessage::WIRE_BYTES);
        assert!(s.install(&mut d, CellId(0), 1, &msgs(4)));
        assert!(s.install_replica(&mut d, CellId(9), 1, &msgs(4)));
        // A third entry evicts the LRU regardless of kind.
        assert!(s.install(&mut d, CellId(1), 1, &msgs(4)));
        assert!(!s.contains(CellId(0)), "LRU owner entry evicted first");
        assert!(s.is_replica(CellId(9)));
    }

    #[test]
    fn stale_replica_dropped_on_lookup() {
        let mut d = dev();
        let mut s = ResidentCellStore::new(1 << 20);
        s.install_replica(&mut d, CellId(2), 7, &msgs(3));
        // The owner re-consolidated to epoch 9: the replica must never be
        // served, and the lookup itself tears it down.
        assert!(s.lookup(&mut d, CellId(2), Some(9)).is_none());
        assert!(!s.contains(CellId(2)));
        assert_eq!(d.resident_bytes_tagged(gpu_sim::BufferTag::Replica), 0);
    }

    #[test]
    fn topology_miss_installs_then_hits() {
        let mut d = dev();
        let mut s = TopologyStore::new(1 << 20);
        assert!(!s.ensure(&mut d, CellId(3), 400), "first touch is a miss");
        assert!(s.contains(CellId(3)));
        assert!(s.ensure(&mut d, CellId(3), 400), "second touch hits");
        assert_eq!((s.hits(), s.misses()), (1, 1));
        assert_eq!(s.resident_bytes(), 400);
        assert_eq!(
            d.resident_bytes_tagged(gpu_sim::BufferTag::Topology),
            400,
            "topology bytes must be tagged on the device"
        );
    }

    #[test]
    fn topology_disabled_never_installs() {
        let mut d = dev();
        let mut s = TopologyStore::new(0);
        assert!(!s.ensure(&mut d, CellId(0), 100));
        assert!(!s.ensure(&mut d, CellId(0), 100), "stays a miss");
        assert_eq!(s.resident_cells(), 0);
        assert_eq!(d.residency().live_buffers, 0);
        assert_eq!(s.misses(), 2);
    }

    #[test]
    fn topology_budget_evicts_lru() {
        let mut d = dev();
        let mut s = TopologyStore::new(1000);
        s.ensure(&mut d, CellId(0), 400);
        s.ensure(&mut d, CellId(1), 400);
        assert!(s.ensure(&mut d, CellId(0), 400), "touch 0 → 1 is LRU");
        s.ensure(&mut d, CellId(2), 400);
        assert!(s.contains(CellId(0)));
        assert!(!s.contains(CellId(1)), "LRU slice must be evicted");
        assert!(s.contains(CellId(2)));
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn topology_oversized_slice_never_installed() {
        let mut d = dev();
        let mut s = TopologyStore::new(100);
        assert!(!s.ensure(&mut d, CellId(0), 101));
        assert!(!s.contains(CellId(0)));
        assert_eq!(d.residency().live_buffers, 0);
    }

    #[test]
    fn topology_card_capacity_forces_eviction() {
        // test_tiny card: 1 MiB; budget larger than the card, so the
        // capacity loop (not the budget loop) must evict.
        let mut d = dev();
        d.alloc(1024 * 1024 - 600).unwrap();
        let mut s = TopologyStore::new(1 << 30);
        assert!(!s.ensure(&mut d, CellId(0), 500));
        assert!(!s.ensure(&mut d, CellId(1), 500));
        assert!(!s.contains(CellId(0)), "card pressure must evict LRU");
        assert!(s.contains(CellId(1)));
    }

    #[test]
    fn staged_round_pays_one_latency_for_all_misses() {
        let mut d = dev();
        let latency = d.spec().pcie_latency_ns;
        let mut s = TopologyStore::new(1 << 20);
        s.ensure(&mut d, CellId(0), 100); // pre-resident → stage hit
        let before = d.ledger().h2d_time;
        let staged = s.stage(
            &mut d,
            [(CellId(0), 100), (CellId(1), 200), (CellId(2), 300)],
        );
        assert_eq!((staged.hits, staged.misses), (1, 2));
        assert_eq!(staged.bytes, 500);
        assert_eq!(staged.transactions_saved, 1);
        assert_eq!(d.ledger().h2d_transfers, 1);
        assert_eq!(d.ledger().h2d_coalesced_saved, 1);
        // One latency charge for the whole stage.
        let wire = gpu_sim::SimNanos::from_secs_f64(500.0 / d.spec().pcie_bandwidth_bytes_per_sec);
        assert_eq!(
            d.ledger().h2d_time - before,
            gpu_sim::SimNanos(latency) + wire
        );
        // Both missed cells are now resident.
        assert!(s.contains(CellId(1)) && s.contains(CellId(2)));
        let again = s.stage(&mut d, [(CellId(1), 200), (CellId(2), 300)]);
        assert_eq!((again.hits, again.misses), (2, 0));
        assert_eq!(again.time, gpu_sim::SimNanos::ZERO);
        assert_eq!(d.ledger().h2d_transfers, 1, "all-hit stage ships nothing");
    }

    #[test]
    fn staged_round_with_store_disabled_still_ships_once() {
        // budget 0: nothing installs, but the round's uploads still coalesce.
        let mut d = dev();
        let mut s = TopologyStore::new(0);
        let staged = s.stage(&mut d, [(CellId(0), 100), (CellId(1), 100)]);
        assert_eq!((staged.hits, staged.misses), (0, 2));
        assert_eq!(d.ledger().h2d_transfers, 1);
        assert_eq!(s.resident_cells(), 0);
    }

    #[test]
    fn topology_force_evict_and_clear() {
        let mut d = dev();
        let mut s = TopologyStore::new(1 << 20);
        s.ensure(&mut d, CellId(0), 100);
        s.ensure(&mut d, CellId(1), 100);
        assert!(s.force_evict(&mut d, CellId(0)));
        assert!(!s.force_evict(&mut d, CellId(0)));
        assert!(!s.ensure(&mut d, CellId(0), 100), "evicted → miss again");
        s.clear(&mut d);
        assert_eq!(s.resident_cells(), 0);
        assert_eq!(d.residency().live_buffers, 0);
    }
}
