//! Object identifiers, timestamps, and location-update messages.

use roadnet::EdgePosition;
use std::fmt;

/// Identifier of a moving data object.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A point in time, in milliseconds. All workload generators and servers in
/// the workspace share this clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Timestamp(pub u64);

impl Timestamp {
    pub fn saturating_sub_ms(self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(ms))
    }
}

/// A cached location-update message (paper §II: `m = ⟨o, e, d, t⟩`).
///
/// `position: None` is the *departure tombstone* Algorithm 1 appends to an
/// object's previous cell when it moves between cells
/// (`⟨m.o, null, null, m.t⟩`): during cleaning, an object whose newest
/// message in a cell is a tombstone is no longer in that cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedMessage {
    pub object: ObjectId,
    pub position: Option<EdgePosition>,
    pub time: Timestamp,
}

impl CachedMessage {
    pub fn update(object: ObjectId, position: EdgePosition, time: Timestamp) -> Self {
        Self {
            object,
            position: Some(position),
            time,
        }
    }

    pub fn tombstone(object: ObjectId, time: Timestamp) -> Self {
        Self {
            object,
            position: None,
            time,
        }
    }

    pub fn is_tombstone(&self) -> bool {
        self.position.is_none()
    }

    /// Wire size of a message when shipped to the GPU: the 5-tuple
    /// `⟨o, c, e, d, t⟩` of §IV-B1 — 8 + 4 + 4 + 4 + 8 bytes, padded to 32.
    pub const WIRE_BYTES: u64 = 32;
}

/// `true` when `a` should replace `b` as "the latest message of this object":
/// newer timestamp wins; ties keep the incumbent (deterministic).
#[inline]
pub fn newer(a: &CachedMessage, b: &CachedMessage) -> bool {
    a.time > b.time
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::EdgeId;

    #[test]
    fn tombstones() {
        let t = CachedMessage::tombstone(ObjectId(4), Timestamp(9));
        assert!(t.is_tombstone());
        let u = CachedMessage::update(ObjectId(4), EdgePosition::new(EdgeId(0), 1), Timestamp(9));
        assert!(!u.is_tombstone());
    }

    #[test]
    fn newer_prefers_later_time() {
        let a = CachedMessage::tombstone(ObjectId(1), Timestamp(10));
        let b = CachedMessage::tombstone(ObjectId(1), Timestamp(9));
        assert!(newer(&a, &b));
        assert!(!newer(&b, &a));
    }

    #[test]
    fn newer_tie_keeps_incumbent() {
        let a = CachedMessage::tombstone(ObjectId(1), Timestamp(10));
        let b = CachedMessage::tombstone(ObjectId(2), Timestamp(10));
        assert!(!newer(&a, &b));
    }

    #[test]
    fn timestamp_saturating_sub() {
        assert_eq!(Timestamp(100).saturating_sub_ms(30), Timestamp(70));
        assert_eq!(Timestamp(5).saturating_sub_ms(30), Timestamp(0));
    }
}
