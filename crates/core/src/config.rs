//! Tunable parameters of the G-Grid (paper Table I and §VII-C1).

/// Configuration of a [`crate::server::GGridServer`].
///
/// Defaults are the values the paper tunes to in §VII-C1: δᶜ = 3, δᵛ = 2,
/// δᵇ = 128, bundles of 2^η = 32 threads (the warp size), ρ = 1.8.
#[derive(Clone, Debug)]
pub struct GGridConfig {
    /// δᶜ — maximum vertices per grid cell (sized so a cell fits an L1 line
    /// in the paper's layout).
    pub cell_capacity: usize,
    /// δᵛ — edge slots per (possibly virtual) vertex record.
    pub vertex_capacity: usize,
    /// δᵇ — messages per message-list bucket.
    pub bucket_capacity: usize,
    /// η — bundles contain 2^η threads for the X-shuffle.
    pub eta: u32,
    /// ρ — candidate over-provisioning factor balancing GPU vs CPU work
    /// (the query gathers at least ρ·k candidate objects before refining).
    pub rho: f64,
    /// t_Δ — maximum allowed interval between two location updates of the
    /// same object, in milliseconds. Messages older than `now - t_delta_ms`
    /// are obsolete by contract (§II) and are discarded during cleaning.
    pub t_delta_ms: u64,
    /// Number of message-list groups per cleaning round used to pipeline
    /// host→device copies against kernel execution (§V-A).
    pub transfer_chunks: usize,
    /// CPU worker threads for the refinement phase (Algorithm 6): the
    /// bounded Dijkstra expansions from unresolved vertices fan out over a
    /// scoped pool of this many threads. `1` runs refinement inline.
    pub refine_workers: usize,
    /// CPU worker threads for batched ingestion
    /// ([`crate::server::GGridServer::ingest_batch`]): workers own disjoint
    /// object-id shards (table phase) and disjoint cell stripes (append
    /// phase), so per-object order is preserved and answers are identical
    /// for every worker count. `1` runs ingestion inline.
    pub ingest_workers: usize,
    /// Serve already-consolidated cells straight from the message-list
    /// cache instead of re-launching the cleaning kernel (epoch-based
    /// clean-skip). Answers are identical either way; disabling this exists
    /// for ablations.
    pub clean_skip: bool,
    /// Device-memory budget (bytes) for keeping consolidated cell lists
    /// resident on the card. While a cell is resident, re-cleaning it ships
    /// only the delta appended since its last clean and runs the fused
    /// merge kernel; least-recently-used cells are evicted when the budget
    /// (or the card) fills up, falling back to the full-upload path.
    /// `0` disables residency entirely (ablation / tiny-device setups).
    /// Answers are identical either way.
    pub device_budget_bytes: u64,
    /// Run `GPU_SDist` as the near–far frontier kernel (only active
    /// vertices relax their edges, with k-bounded pruning) instead of the
    /// dense all-records Bellman–Ford. Answers are identical either way;
    /// the dense path exists as the reference for ablations and tests.
    pub sdist_frontier: bool,
    /// Bucket width δ of the frontier kernel's near/far split, in weight
    /// units. `0` (the default) picks the grid's mean edge weight.
    pub sdist_delta: u32,
    /// Keep per-cell CSR topology slices resident on the device (within
    /// `device_budget_bytes`), so repeated queries over hot cells skip the
    /// per-query topology upload. Answers are identical either way.
    pub topology_resident: bool,
    /// Batch-fused execution in [`crate::batch::run_knn_batch`]: clean the
    /// union of the batch's first-ring cells in one X-shuffle round, stage
    /// the union's topology misses in one coalesced upload, and serve the
    /// per-query cleaning rounds from the batch's clean-cache. Answers are
    /// byte-identical to running the queries one at a time; disabling this
    /// exists for ablations and as the PR-4 baseline.
    pub batch_fusion: bool,
    /// Coalesce the topology-cell misses of each `GPU_SDist` round into a
    /// single staged H2D transfer (one PCIe latency charge for the round)
    /// instead of one transfer per missed cell. Answers are identical either
    /// way.
    pub coalesce_h2d: bool,
    /// Refine unresolved vertices with one shared multi-source bounded
    /// Dijkstra per worker (seeded at `D[v]` per vertex) instead of one
    /// bounded Dijkstra per vertex. The pointwise minimum over sources is
    /// exactly the per-vertex union, so answers are identical either way;
    /// the per-vertex path exists for ablations.
    pub refine_multi_source: bool,
    /// Maximum number of concurrently active kNN subscriptions
    /// ([`crate::server::GGridServer::subscribe_knn`]); registration
    /// beyond this panics (the server's admission control is the caller's
    /// job, this is the safety stop).
    pub max_subscriptions: usize,
    /// Slack factor applied to a subscription's guard radius: the guard is
    /// set to `(1 + guard_slack) ×` the distance of the (k+1)-th candidate.
    /// A wider guard means fewer full re-evaluations when the k-th and
    /// (k+1)-th neighbours trade places, at the cost of a larger guard
    /// region (more cells whose updates invalidate the subscription).
    /// `0.0` is correct but repairs more often.
    pub guard_slack: f64,
    /// Number of simulated devices the server shards cells over
    /// ([`crate::shard::ShardSet`]). Cells are partitioned into contiguous
    /// z-order ranges weighted by record count; each device owns its own
    /// residency/topology budget (`device_budget_bytes` is per device).
    /// `1` is the paper's single-GPU deployment; answers are byte-identical
    /// for every value.
    pub num_devices: usize,
    /// Busy-time skew factor that triggers the epoch rebalancer
    /// ([`crate::server::GGridServer::rebalance_shards`]): boundary cells
    /// migrate off the hottest shard when its epoch busy time exceeds
    /// `rebalance_threshold ×` the mean across shards. Only meaningful
    /// when `num_devices > 1`.
    pub rebalance_threshold: f64,
    /// Per-cell entry cap of the thread-local ingest buffers
    /// ([`crate::server::GGridServer::ingest_buffered`]): a cell whose
    /// buffered placements reach this count is flushed to its shared
    /// message list at the end of the ingest call. Larger caps amortize
    /// more cell locks per flush at the cost of more deferred (invisible
    /// until flush/query) messages.
    pub ingest_buffer_cap: usize,
    /// Global byte budget of the thread-local ingest buffers: when the
    /// buffered footprint exceeds this, the end-of-call flush drains
    /// *every* buffered cell. `0` disables the budget (cap-only flushing).
    pub ingest_buffer_bytes: u64,
    /// Scatter a query's frontier-SDist round across every shard whose
    /// cells the expansion ring touches ([`crate::shard::ShardSet`]): each
    /// owning device is charged its slice of the relax work concurrently on
    /// the modeled timeline and the host min-merges the per-shard frontiers,
    /// so the round's modeled critical path is the max over owners instead
    /// of their sum. Answers are byte-identical either way; only meaningful
    /// when `num_devices > 1` and `sdist_frontier` is on.
    pub cross_shard_sdist: bool,
    /// Clean-skip read-heat threshold above which a remote cell's
    /// consolidated list + topology slice are replicated onto the reading
    /// (primary) device, under that device's `device_budget_bytes` LRU.
    /// Writes to the cell invalidate every replica through the dirtied-cell
    /// stream before the next read, and `rebalance_shards` prefers keeping
    /// (replicating) read-hot write-cold cells over migrating them. `0`
    /// disables replication. Answers are byte-identical either way.
    pub replicate_threshold: u64,
    /// Byte budget of the shared [`crate::scratch::ScratchPool`]: pooled
    /// dense/Dijkstra scratch beyond this is evicted oldest-first on
    /// release, so a burst of query workers cannot pin O(workers × |V|)
    /// memory forever. `0` disables the bound (the pre-capacity-push
    /// behaviour).
    pub scratch_budget_bytes: u64,
}

impl Default for GGridConfig {
    fn default() -> Self {
        Self {
            cell_capacity: 3,
            vertex_capacity: 2,
            bucket_capacity: 128,
            eta: 5,
            rho: 1.8,
            t_delta_ms: 10_000,
            transfer_chunks: 4,
            refine_workers: 1,
            ingest_workers: 1,
            clean_skip: true,
            device_budget_bytes: 64 << 20,
            sdist_frontier: true,
            sdist_delta: 0,
            topology_resident: true,
            batch_fusion: true,
            coalesce_h2d: true,
            refine_multi_source: true,
            max_subscriptions: 65_536,
            guard_slack: 0.25,
            num_devices: 1,
            rebalance_threshold: 1.25,
            ingest_buffer_cap: 1024,
            ingest_buffer_bytes: 4 << 20,
            cross_shard_sdist: true,
            replicate_threshold: 4,
            scratch_budget_bytes: 32 << 20,
        }
    }
}

impl GGridConfig {
    /// Bundle width 2^η.
    pub fn bundle_width(&self) -> usize {
        1usize << self.eta
    }

    /// Whether read-hot cell replication is in effect: it needs a nonzero
    /// heat threshold and more than one device (with a single device every
    /// cell is already local, so a replica would duplicate its own owner).
    pub fn replication_enabled(&self) -> bool {
        self.num_devices > 1 && self.replicate_threshold > 0
    }

    /// Validate invariants; called by the server constructor.
    pub fn validate(&self) {
        assert!(self.cell_capacity >= 1, "cell capacity must be >= 1");
        assert!(self.vertex_capacity >= 1, "vertex capacity must be >= 1");
        assert!(self.bucket_capacity >= 1, "bucket capacity must be >= 1");
        assert!(
            (1..=10).contains(&self.eta),
            "eta must be in 1..=10 (bundles of 2..1024 threads)"
        );
        assert!(self.rho >= 1.0, "rho must be >= 1");
        assert!(self.t_delta_ms > 0, "t_delta must be positive");
        assert!(
            self.transfer_chunks >= 1,
            "need at least one transfer chunk"
        );
        assert!(
            (1..=256).contains(&self.refine_workers),
            "refine_workers must be in 1..=256"
        );
        assert!(
            (1..=256).contains(&self.ingest_workers),
            "ingest_workers must be in 1..=256"
        );
        assert!(
            self.max_subscriptions >= 1,
            "max_subscriptions must be >= 1"
        );
        assert!(
            (0.0..=4.0).contains(&self.guard_slack),
            "guard_slack must be in 0.0..=4.0"
        );
        assert!(
            (1..=crate::shard::MAX_DEVICES).contains(&self.num_devices),
            "num_devices must be in 1..=16"
        );
        assert!(
            self.rebalance_threshold >= 1.0,
            "rebalance_threshold must be >= 1"
        );
        assert!(
            self.ingest_buffer_cap >= 1,
            "ingest_buffer_cap must be >= 1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_tuning() {
        let c = GGridConfig::default();
        assert_eq!(c.cell_capacity, 3);
        assert_eq!(c.vertex_capacity, 2);
        assert_eq!(c.bucket_capacity, 128);
        assert_eq!(c.bundle_width(), 32);
        assert!((c.rho - 1.8).abs() < 1e-9);
        assert_eq!(c.refine_workers, 1);
        assert_eq!(c.ingest_workers, 1);
        assert!(c.clean_skip);
        assert_eq!(c.device_budget_bytes, 64 << 20);
        assert!(c.sdist_frontier);
        assert_eq!(c.sdist_delta, 0, "0 = auto (grid mean edge weight)");
        assert!(c.topology_resident);
        assert!(c.batch_fusion);
        assert!(c.coalesce_h2d);
        assert!(c.refine_multi_source);
        assert_eq!(c.max_subscriptions, 65_536);
        assert!((c.guard_slack - 0.25).abs() < 1e-9);
        assert_eq!(c.num_devices, 1, "paper's deployment is single-GPU");
        assert!((c.rebalance_threshold - 1.25).abs() < 1e-9);
        assert_eq!(c.ingest_buffer_cap, 1024);
        assert_eq!(c.ingest_buffer_bytes, 4 << 20);
        assert!(c.cross_shard_sdist);
        assert_eq!(c.replicate_threshold, 4, "0 would disable replication");
        assert_eq!(c.scratch_budget_bytes, 32 << 20);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "num_devices")]
    fn zero_devices_rejected() {
        GGridConfig {
            num_devices: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "num_devices")]
    fn too_many_devices_rejected() {
        GGridConfig {
            num_devices: 17,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rebalance_threshold")]
    fn sub_unity_rebalance_threshold_rejected() {
        GGridConfig {
            rebalance_threshold: 0.9,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "guard_slack")]
    fn bad_guard_slack_rejected() {
        GGridConfig {
            guard_slack: -0.1,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "refine_workers")]
    fn zero_workers_rejected() {
        GGridConfig {
            refine_workers: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "ingest_workers")]
    fn zero_ingest_workers_rejected() {
        GGridConfig {
            ingest_workers: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "ingest_buffer_cap")]
    fn zero_ingest_buffer_cap_rejected() {
        GGridConfig {
            ingest_buffer_cap: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rho must be >= 1")]
    fn bad_rho_rejected() {
        GGridConfig {
            rho: 0.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "eta must be")]
    fn bad_eta_rejected() {
        GGridConfig {
            eta: 0,
            ..Default::default()
        }
        .validate();
    }
}
