//! The lock-free X-shuffle message-cleaning kernel (paper Algorithm 3).
//!
//! Threads are grouped into bundles of `2^η` lanes. Each thread owns one
//! message bucket and the bundle repeatedly performs butterfly
//! `shuffle_xor` exchanges with lane masks `2^{η-1}, 2^{η-2}, …, 1`,
//! merging the travelling message with a small per-lane cache Γ, so that
//! duplicates of the same object collapse without any locking. Theorem 1
//! ([`crate::mu`]) bounds the surviving duplicates per object per bundle by
//! μ(η), which caps the number of write attempts each lane needs against
//! the intermediate table 𝒯.
//!
//! The kernel here executes the exact lane program on the simulated device
//! and returns the cleaned result: the newest message per object, grouped
//! by the cell that message belongs to.

use std::collections::HashMap;

use gpu_sim::device::KernelCtx;
use gpu_sim::Lanes;

use crate::grid::CellId;
use crate::message::{CachedMessage, ObjectId, Timestamp};
use crate::mu::mu;
use crate::object_table::FxBuildHasher;

/// A message annotated with the cell it belongs to — the 5-tuple
/// `⟨o, c, e, d, t⟩` shipped to the GPU (§IV-B1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireMessage {
    pub msg: CachedMessage,
    pub cell: CellId,
}

/// `true` when `a` should replace `b` as the latest message of an object.
///
/// Later timestamps win; on a timestamp tie a real update beats the
/// departure tombstone Algorithm 1 wrote with the same time; remaining ties
/// break on the payload so the winner is a *total* order — the lock-free
/// kernel processes messages in a data-dependent order and must converge to
/// the same answer as any sequential scan.
#[inline]
pub fn replaces(a: &WireMessage, b: &WireMessage) -> bool {
    order_key(a) > order_key(b)
}

#[inline]
fn order_key(w: &WireMessage) -> (Timestamp, bool, u32, u32, u32) {
    let (e, d) = match w.msg.position {
        Some(p) => (p.edge.0, p.offset),
        None => (0, 0),
    };
    (w.msg.time, !w.msg.is_tombstone(), w.cell.0, e, d)
}

/// Output of a cleaning kernel run.
#[derive(Debug, Default)]
pub struct CleanOutput {
    /// Newest *live* (non-tombstone, non-expired) message per object,
    /// grouped by the cell of that message — the final table ℛ.
    pub per_cell: HashMap<CellId, Vec<CachedMessage>, FxBuildHasher>,
    /// Diagnostic: the largest number of distinct surviving messages of one
    /// object observed in any bundle after the shuffles. Theorem 1 bounds
    /// this by μ(η); tests assert it.
    pub max_duplicates_seen: u32,
    /// Objects that were processed (live or tombstoned).
    pub objects_seen: usize,
}

/// Intermediate table 𝒯: per object, one candidate slot per bundle (plus,
/// for the fused merge kernel, one slot for the device-resident state).
type SlotTable = HashMap<ObjectId, Vec<Option<WireMessage>>, FxBuildHasher>;

/// Run the X-shuffle cleaning kernel over `buckets` (one bucket per thread).
///
/// Messages with `time < horizon` are expired by the update contract and are
/// skipped at load time. `eta` selects the bundle width `2^η`.
pub fn xshuffle_clean(
    ctx: &mut KernelCtx,
    buckets: &[Vec<WireMessage>],
    eta: u32,
    horizon: Timestamp,
) -> CleanOutput {
    let width = 1usize << eta;
    let n_bundles = buckets.len().div_ceil(width).max(1);

    let mut table: SlotTable = HashMap::with_hasher(FxBuildHasher::default());
    let max_dup = shuffle_into_table(ctx, buckets, eta, horizon, &mut table, n_bundles);
    let objects_seen = table.len();
    let per_cell = collect_table(ctx, table, n_bundles);

    CleanOutput {
        per_cell,
        max_duplicates_seen: max_dup,
        objects_seen,
    }
}

/// The fused incremental-merge kernel: X-shuffle the *delta* buckets (the
/// only data that crossed the bus this round) and merge the result with the
/// `resident` consolidated state already sitting in device memory, in one
/// launch. Resident entries are already deduplicated — one message per
/// object from the previous clean — so they bypass the butterfly and enter
/// the result computation directly through a dedicated slot of 𝒯, costing
/// one global read each instead of a PCIe crossing. Entries older than
/// `horizon` expire during the merge exactly as a full re-clean would
/// expire them.
pub fn xshuffle_merge(
    ctx: &mut KernelCtx,
    resident: &[WireMessage],
    delta_buckets: &[Vec<WireMessage>],
    eta: u32,
    horizon: Timestamp,
) -> CleanOutput {
    let width = 1usize << eta;
    let n_bundles = delta_buckets.len().div_ceil(width).max(1);
    // One extra slot column for the resident state.
    let n_slots = n_bundles + 1;

    let mut table: SlotTable = HashMap::with_hasher(FxBuildHasher::default());
    let max_dup = shuffle_into_table(ctx, delta_buckets, eta, horizon, &mut table, n_slots);

    // Merge step: one thread per resident entry loads it from device
    // global memory (no transfer — it never left the card) and claims the
    // resident slot. Entries are unique per object by construction, so the
    // write is contention-free (no μ(η) retry budget needed).
    for &w in resident {
        ctx.charge_read(CachedMessage::WIRE_BYTES);
        ctx.charge_alu_one(2);
        if w.msg.time < horizon {
            continue;
        }
        ctx.charge_write(CachedMessage::WIRE_BYTES);
        let slots = table
            .entry(w.msg.object)
            .or_insert_with(|| vec![None; n_slots]);
        // Two cells' resident lists can both hold the object (the older one a
        // stale copy not yet superseded by a tombstone it never saw); resolve
        // the shared slot with the same total order the butterfly uses.
        let slot = &mut slots[n_bundles];
        if slot.is_none_or(|cur| replaces(&w, &cur)) {
            *slot = Some(w);
        }
    }

    let objects_seen = table.len();
    let per_cell = collect_table(ctx, table, n_slots);

    CleanOutput {
        per_cell,
        max_duplicates_seen: max_dup,
        objects_seen,
    }
}

/// Algorithm 3's bundle loop: butterfly-shuffle every bucket group and
/// write the survivors into `table` (one slot column per bundle). Returns
/// the largest duplicate count observed (Theorem 1 diagnostic).
fn shuffle_into_table(
    ctx: &mut KernelCtx,
    buckets: &[Vec<WireMessage>],
    eta: u32,
    horizon: Timestamp,
    table: &mut SlotTable,
    n_slots: usize,
) -> u32 {
    let width = 1usize << eta;
    let n_bundles = buckets.len().div_ceil(width).max(1);
    debug_assert!(n_slots >= n_bundles);
    let mu_eta = mu(eta) as u64;
    let mut max_dup = 0u32;

    for bundle_id in 0..n_bundles {
        let lane_buckets: Vec<&[WireMessage]> = (0..width)
            .map(|lane| {
                buckets
                    .get(bundle_id * width + lane)
                    .map(|b| b.as_slice())
                    .unwrap_or(&[])
            })
            .collect();
        let depth = lane_buckets.iter().map(|b| b.len()).max().unwrap_or(0);

        let mut warp = ctx.bundle(width);
        // Per-lane message cache Γ (size η, Algorithm 3 line 1). Entries
        // are stamped with the read round they were last touched in: the
        // μ(η) bound relies on a lane remembering every message that
        // reached it *within the current round* (a round inserts at most η
        // entries, exactly Γ's capacity), so eviction must only take
        // entries from earlier rounds.
        let mut caches: Vec<Vec<(WireMessage, usize)>> =
            vec![Vec::with_capacity(eta as usize); width];

        // Threads walk their buckets from the last message to the first
        // (Algorithm 3 line 3), one synchronous read per step.
        for i in (0..depth).rev() {
            warp.charge_global_read(CachedMessage::WIRE_BYTES);
            let mut regs: Lanes<Option<WireMessage>> = Lanes::from_fn(width, |lane| {
                lane_buckets[lane]
                    .get(i)
                    .copied()
                    .filter(|w| w.msg.time >= horizon)
            });

            for j in 1..=eta {
                // Merge the travelling message with the lane cache.
                regs = warp.map(&regs, |lane, reg| {
                    merge_with_cache(&mut caches[lane], eta as usize, i, *reg)
                });
                warp.charge_alu(eta as u64); // cache scan is O(η)
                let mask = 1usize << (eta - j);
                regs = warp.shuffle_xor(&regs, mask);
            }
            // One more cache comparison after the final shuffle: Theorem 2
            // counts coverings at every shuffle k ∈ [1, η], including the
            // last, so a message arriving on the η-th exchange must still be
            // checked against the lane cache before the 𝒯 write — otherwise
            // pairs that first meet on the last exchange survive as
            // duplicates and the μ(η) bound breaks. Unlike the in-flight
            // merges this one *discards* a superseded message instead of
            // substituting the cached newer one: there are no further
            // exchanges to propagate through, and re-injecting a cached copy
            // can resurrect a message that was already replaced elsewhere.
            regs = warp.map(&regs, |lane, reg| {
                let m = (*reg)?;
                match caches[lane]
                    .iter()
                    .find(|(c, _)| c.msg.object == m.msg.object)
                {
                    Some((c, _)) if replaces(c, &m) => None,
                    _ => Some(m),
                }
            });
            warp.charge_alu(eta as u64);

            // Diagnostics: distinct surviving messages per object in this
            // read round (the set the paper calls 𝒮).
            let mut per_object: HashMap<ObjectId, Vec<Timestamp>, FxBuildHasher> =
                HashMap::with_hasher(FxBuildHasher::default());
            for reg in regs.as_slice().iter().flatten() {
                let times = per_object.entry(reg.msg.object).or_default();
                if !times.contains(&reg.msg.time) {
                    times.push(reg.msg.time);
                }
            }
            for times in per_object.values() {
                max_dup = max_dup.max(times.len() as u32);
            }

            // Step 2: every lane attempts the 𝒯 write up to μ(η) times
            // (Algorithm 3 lines 11–13). The simulation is sequential so a
            // single pass suffices for the value; the cost is charged as the
            // μ(η) attempts the lock-free kernel needs.
            warp.charge_atomics(mu_eta * width as u64);
            warp.charge_global_write(CachedMessage::WIRE_BYTES * mu_eta);
            for reg in regs.as_slice().iter().flatten() {
                let slots = table
                    .entry(reg.msg.object)
                    .or_insert_with(|| vec![None; n_slots]);
                let slot = &mut slots[bundle_id];
                if slot.is_none_or(|cur| replaces(reg, &cur)) {
                    *slot = Some(*reg);
                }
            }
        }
    }

    max_dup
}

/// Result computation (Algorithm 2 step 4 / GPU_Collect): one thread per
/// object folds its slot column into the newest message and inserts it into
/// ℛ keyed by that message's cell.
fn collect_table(
    ctx: &mut KernelCtx,
    table: SlotTable,
    n_slots: usize,
) -> HashMap<CellId, Vec<CachedMessage>, FxBuildHasher> {
    let objects_seen = table.len();
    // Charged to the same launch context: |T| threads scanning n_slots
    // slots each.
    ctx.charge_alu_one((objects_seen * n_slots) as u64);
    ctx.charge_read(CachedMessage::WIRE_BYTES * (objects_seen * n_slots) as u64);
    ctx.charge_write(CachedMessage::WIRE_BYTES * objects_seen as u64);
    let mut per_cell: HashMap<CellId, Vec<CachedMessage>, FxBuildHasher> =
        HashMap::with_hasher(FxBuildHasher::default());
    for (_, slots) in table {
        let mut newest: Option<WireMessage> = None;
        for cand in slots.into_iter().flatten() {
            if newest.is_none_or(|cur| replaces(&cand, &cur)) {
                newest = Some(cand);
            }
        }
        if let Some(w) = newest {
            if !w.msg.is_tombstone() {
                per_cell.entry(w.cell).or_default().push(w.msg);
            }
        }
    }
    per_cell
}

/// Cache-merge step of Algorithm 3 (lines 5–9) for one lane.
///
/// Looks up the travelling message's object in the lane cache: inserts when
/// absent (evicting the oldest entry if Γ is full), replaces when the cached
/// entry is older, and otherwise forwards the cached (newer) message.
fn merge_with_cache(
    cache: &mut Vec<(WireMessage, usize)>,
    max_entries: usize,
    round: usize,
    reg: Option<WireMessage>,
) -> Option<WireMessage> {
    let m = reg?;
    match cache.iter_mut().find(|(c, _)| c.msg.object == m.msg.object) {
        None => {
            if cache.len() >= max_entries {
                // Evict an entry from an *earlier* round (there is always
                // one: a round inserts at most η = capacity entries);
                // current-round entries are load-bearing for Theorem 1.
                if let Some(idx) = (0..cache.len())
                    .filter(|&i| cache[i].1 != round)
                    .min_by_key(|&i| (cache[i].1, cache[i].0.msg.time, cache[i].0.msg.object.0))
                {
                    cache.swap_remove(idx);
                } else {
                    // Defensive: should be unreachable, keep the cache sane.
                    cache.swap_remove(0);
                }
            }
            cache.push((m, round));
            Some(m)
        }
        Some((c, r)) if replaces(&m, c) => {
            *c = m;
            *r = round;
            Some(m)
        }
        Some((_, r)) => {
            // The cache holds a newer message of the same object: the
            // travelling message is superseded and *dies*. The paper's
            // Algorithm 3 line 9 instead substitutes the cached newer
            // message (`m ← m_Γ`), but that forks an extra copy of the
            // newer message onto the dead message's butterfly trajectory
            // and breaks the μ(η) bound of Theorem 1 (e.g. four messages of
            // one object at lanes {2, 5, 8, 11} of a 16-lane bundle leave
            // three distinct survivors under substitution). With discard,
            // survivors are pairwise non-covering — an exclusive set — so
            // Theorem 1 holds; the proptest below checks it. See DESIGN.md.
            *r = round;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec};
    use roadnet::{EdgeId, EdgePosition};

    fn wire(o: u64, t: u64, cell: u32) -> WireMessage {
        WireMessage {
            msg: CachedMessage::update(
                ObjectId(o),
                EdgePosition::new(EdgeId(o as u32 % 7), (t % 5) as u32),
                Timestamp(t),
            ),
            cell: CellId(cell),
        }
    }

    fn tomb(o: u64, t: u64, cell: u32) -> WireMessage {
        WireMessage {
            msg: CachedMessage::tombstone(ObjectId(o), Timestamp(t)),
            cell: CellId(cell),
        }
    }

    fn run(buckets: &[Vec<WireMessage>], eta: u32, horizon: u64) -> CleanOutput {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (out, _) = dev.launch(buckets.len().max(1), |ctx| {
            xshuffle_clean(ctx, buckets, eta, Timestamp(horizon))
        });
        out
    }

    /// Reference cleaning: newest message per object, tombstones and expiry
    /// applied, grouped by cell.
    fn reference(buckets: &[Vec<WireMessage>], horizon: u64) -> HashMap<(u64, u32), u64> {
        let mut newest: HashMap<u64, WireMessage> = HashMap::new();
        for b in buckets {
            for w in b {
                if w.msg.time < Timestamp(horizon) {
                    continue;
                }
                let e = newest.entry(w.msg.object.0);
                match e {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(*w);
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        if replaces(w, o.get()) {
                            o.insert(*w);
                        }
                    }
                }
            }
        }
        newest
            .into_values()
            .filter(|w| !w.msg.is_tombstone())
            .map(|w| ((w.msg.object.0, w.cell.0), w.msg.time.0))
            .collect()
    }

    fn flatten(out: &CleanOutput) -> HashMap<(u64, u32), u64> {
        let mut m = HashMap::new();
        for (&cell, msgs) in &out.per_cell {
            for msg in msgs {
                m.insert((msg.object.0, cell.0), msg.time.0);
            }
        }
        m
    }

    #[test]
    fn single_message_survives() {
        let out = run(&[vec![wire(1, 100, 3)]], 4, 0);
        assert_eq!(out.per_cell[&CellId(3)].len(), 1);
        assert_eq!(out.per_cell[&CellId(3)][0].time, Timestamp(100));
    }

    #[test]
    fn newest_wins_within_one_bucket() {
        let out = run(
            &[vec![wire(1, 100, 3), wire(1, 300, 3), wire(1, 200, 3)]],
            4,
            0,
        );
        assert_eq!(flatten(&out), [((1, 3), 300)].into_iter().collect());
    }

    #[test]
    fn newest_wins_across_buckets_in_bundle() {
        let buckets: Vec<Vec<WireMessage>> = (0..16).map(|i| vec![wire(7, 100 + i, 2)]).collect();
        let out = run(&buckets, 4, 0);
        assert_eq!(flatten(&out), [((7, 2), 115)].into_iter().collect());
    }

    #[test]
    fn newest_wins_across_bundles() {
        // 32 buckets with η=4 → two bundles; the newest is in bundle 1.
        let buckets: Vec<Vec<WireMessage>> = (0..32).map(|i| vec![wire(9, 100 + i, 1)]).collect();
        let out = run(&buckets, 4, 0);
        assert_eq!(flatten(&out), [((9, 1), 131)].into_iter().collect());
    }

    #[test]
    fn tombstone_excludes_object() {
        let out = run(&[vec![wire(1, 100, 3), tomb(1, 200, 3)]], 4, 0);
        assert!(out.per_cell.is_empty());
        assert_eq!(out.objects_seen, 1);
    }

    #[test]
    fn tie_prefers_real_update_over_tombstone() {
        // Algorithm 1 writes the tombstone and the move-in message with the
        // same timestamp; the real update must win.
        let out = run(&[vec![tomb(1, 200, 3)], vec![wire(1, 200, 5)]], 4, 0);
        assert_eq!(flatten(&out), [((1, 5), 200)].into_iter().collect());
    }

    #[test]
    fn expired_messages_skipped() {
        let out = run(&[vec![wire(1, 50, 3), wire(2, 500, 3)]], 4, 100);
        assert_eq!(flatten(&out), [((2, 3), 500)].into_iter().collect());
    }

    #[test]
    fn empty_input() {
        let out = run(&[], 5, 0);
        assert!(out.per_cell.is_empty());
        assert_eq!(out.objects_seen, 0);
    }

    #[test]
    fn duplicates_bounded_by_mu_eta4() {
        // Adversarial: every one of the 16 lanes reads a message of the same
        // object with distinct timestamps. Theorem 1: at most μ(4) = 2
        // distinct messages survive the shuffles.
        let buckets: Vec<Vec<WireMessage>> = (0..16).map(|i| vec![wire(1, 1000 - i, 0)]).collect();
        let out = run(&buckets, 4, 0);
        assert!(
            out.max_duplicates_seen <= crate::mu::mu(4),
            "saw {} duplicates, μ(4) = {}",
            out.max_duplicates_seen,
            crate::mu::mu(4)
        );
        assert_eq!(flatten(&out), [((1, 0), 1000)].into_iter().collect());
    }

    #[test]
    fn matches_reference_on_mixed_batch() {
        let mut buckets = Vec::new();
        for t in 0..24u64 {
            let mut b = Vec::new();
            for o in 0..6u64 {
                if (t + o) % 3 != 0 {
                    b.push(wire(o, 1000 + t * 7 + o, (o % 4) as u32));
                }
                if (t + o) % 5 == 0 {
                    b.push(tomb(o, 1000 + t * 7 + o + 1, (o % 4) as u32));
                }
            }
            buckets.push(b);
        }
        let out = run(&buckets, 4, 1010);
        assert_eq!(flatten(&out), reference(&buckets, 1010));
    }

    #[test]
    fn bundle_width_does_not_change_result() {
        let buckets: Vec<Vec<WireMessage>> = (0..40)
            .map(|i| {
                (0..3)
                    .map(|j| wire((i * 3 + j) % 5, 100 + (i * 7 + j * 13) % 90, (i % 3) as u32))
                    .collect()
            })
            .collect();
        let small = flatten(&run(&buckets, 2, 0));
        let mid = flatten(&run(&buckets, 4, 0));
        let large = flatten(&run(&buckets, 6, 0));
        assert_eq!(small, mid);
        assert_eq!(mid, large);
    }

    fn run_merge(
        resident: &[WireMessage],
        buckets: &[Vec<WireMessage>],
        eta: u32,
        horizon: u64,
    ) -> CleanOutput {
        let mut dev = Device::new(DeviceSpec::test_tiny());
        let (out, _) = dev.launch(buckets.len().max(resident.len()).max(1), |ctx| {
            xshuffle_merge(ctx, resident, buckets, eta, Timestamp(horizon))
        });
        out
    }

    #[test]
    fn merge_equals_full_clean_of_combined_input() {
        // Resident state = result of a previous clean; delta = new appends.
        // The fused merge must agree with a full clean over everything.
        let resident = vec![wire(1, 100, 3), wire(2, 150, 4), wire(3, 90, 3)];
        let delta = vec![
            vec![wire(1, 300, 5), tomb(2, 400, 4)],
            vec![wire(4, 250, 3)],
        ];
        let merged = run_merge(&resident, &delta, 4, 0);
        let mut combined = delta.clone();
        combined.push(resident.clone());
        let full = run(&combined, 4, 0);
        assert_eq!(flatten(&merged), flatten(&full));
    }

    #[test]
    fn merge_expires_stale_resident_entries() {
        let resident = vec![wire(1, 50, 3), wire(2, 500, 3)];
        let merged = run_merge(&resident, &[], 4, 100);
        assert_eq!(flatten(&merged), [((2, 3), 500)].into_iter().collect());
    }

    #[test]
    fn merge_with_empty_delta_keeps_resident() {
        let resident = vec![wire(1, 100, 3), wire(2, 150, 4)];
        let merged = run_merge(&resident, &[], 4, 0);
        assert_eq!(
            flatten(&merged),
            [((1, 3), 100), ((2, 4), 150)].into_iter().collect()
        );
    }

    #[test]
    fn merge_delta_tombstone_kills_resident_object() {
        let resident = vec![wire(7, 100, 2)];
        let merged = run_merge(&resident, &[vec![tomb(7, 200, 2)]], 4, 0);
        assert!(merged.per_cell.is_empty());
        assert_eq!(merged.objects_seen, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gpu_sim::{Device, DeviceSpec};
    use proptest::prelude::*;
    use roadnet::{EdgeId, EdgePosition};

    fn arb_message() -> impl Strategy<Value = WireMessage> {
        (0u64..12, 0u64..1000, 0u32..6, prop::bool::weighted(0.15)).prop_map(
            |(o, t, c, tombstone)| WireMessage {
                msg: if tombstone {
                    CachedMessage::tombstone(ObjectId(o), Timestamp(t))
                } else {
                    CachedMessage::update(
                        ObjectId(o),
                        EdgePosition::new(EdgeId(o as u32), (t % 3) as u32),
                        Timestamp(t),
                    )
                },
                cell: CellId(c),
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The kernel computes exactly the newest live message per object
        /// (tombstone tie-break included) for arbitrary batches and bundle
        /// widths, and duplicates stay within μ(η).
        #[test]
        fn kernel_matches_reference(
            buckets in prop::collection::vec(
                prop::collection::vec(arb_message(), 0..6), 0..40),
            eta in 2u32..6,
            horizon in 0u64..500,
        ) {
            let mut dev = Device::new(DeviceSpec::test_tiny());
            let (out, _) = dev.launch(buckets.len().max(1), |ctx| {
                xshuffle_clean(ctx, &buckets, eta, Timestamp(horizon))
            });
            // Reference result.
            let mut newest: std::collections::HashMap<u64, WireMessage> = Default::default();
            for b in &buckets {
                for w in b {
                    if w.msg.time.0 < horizon { continue; }
                    newest
                        .entry(w.msg.object.0)
                        .and_modify(|cur| if replaces(w, cur) { *cur = *w; })
                        .or_insert(*w);
                }
            }
            let expect: std::collections::HashMap<(u64, u32), u64> = newest
                .values()
                .filter(|w| !w.msg.is_tombstone())
                .map(|w| ((w.msg.object.0, w.cell.0), w.msg.time.0))
                .collect();
            let mut got = std::collections::HashMap::new();
            for (&cell, msgs) in &out.per_cell {
                for m in msgs {
                    got.insert((m.object.0, cell.0), m.time.0);
                }
            }
            prop_assert_eq!(got, expect);
            prop_assert!(out.max_duplicates_seen <= crate::mu::mu(eta));
        }

        /// The fused merge kernel agrees with a full clean over resident ∪
        /// delta, for any consolidated resident set (unique per object) and
        /// any delta batch.
        #[test]
        fn merge_matches_full_clean(
            resident_raw in prop::collection::vec(arb_message(), 0..12),
            buckets in prop::collection::vec(
                prop::collection::vec(arb_message(), 0..5), 0..24),
            eta in 2u32..6,
            horizon in 0u64..500,
        ) {
            // Consolidate the raw resident set the way a prior clean would:
            // newest live message per object.
            let mut newest: std::collections::HashMap<u64, WireMessage> = Default::default();
            for w in &resident_raw {
                newest
                    .entry(w.msg.object.0)
                    .and_modify(|cur| if replaces(w, cur) { *cur = *w; })
                    .or_insert(*w);
            }
            let resident: Vec<WireMessage> =
                newest.into_values().filter(|w| !w.msg.is_tombstone()).collect();

            let mut dev = Device::new(DeviceSpec::test_tiny());
            let (merged, _) = dev.launch(buckets.len().max(1), |ctx| {
                xshuffle_merge(ctx, &resident, &buckets, eta, Timestamp(horizon))
            });
            let mut combined = buckets.clone();
            combined.push(resident.clone());
            let (full, _) = dev.launch(combined.len(), |ctx| {
                xshuffle_clean(ctx, &combined, eta, Timestamp(horizon))
            });
            let as_map = |out: &CleanOutput| {
                let mut m = std::collections::HashMap::new();
                for (&cell, msgs) in &out.per_cell {
                    for msg in msgs {
                        m.insert((msg.object.0, cell.0), msg.time.0);
                    }
                }
                m
            };
            prop_assert_eq!(as_map(&merged), as_map(&full));
        }
    }
}
