//! Multi-query batch processing.
//!
//! The paper's "G-Grid" series in Fig 5 reports the *overall* response time
//! of a query stream, which beats the per-query sum ("G-Grid (L)") because
//! the server processes multiple queries in parallel: their message
//! cleaning shares one device pass, and host refinement of one query
//! overlaps device work of another.
//!
//! [`run_knn_batch`] makes the **batch** the unit of device work:
//!
//! * **Batch-fused cleaning** — the union of all queries' first candidate
//!   rings is cleaned in one X-shuffle round (one kernel launch, one
//!   chunked H2D schedule). The consolidated output is kept in a
//!   [`BatchCleanCache`] keyed by list epoch, so every per-query pipeline
//!   serves those cells from host memory at zero device cost — no
//!   re-launch, no re-upload, not even a list freeze.
//! * **Coalesced topology staging** — the union's CSR slices are staged
//!   onto the device in one transfer (one PCIe latency for all misses)
//!   before the first query runs, so the per-query `GPU_SDist` rounds hit
//!   the resident topology store.
//! * **Overlapped refinement** — queries are staged through the
//!   device-phase → refine → finalise pipeline of [`crate::knn`]: while
//!   query *i*'s CPU refinement runs on a worker thread, the device
//!   already executes query *i+1*'s phase. The overlap is accounted on a
//!   [`StreamTimeline`] with one device stream and one transfer stream
//!   *per shard* plus one host stream (`2D + 1` streams; `D = 1`
//!   degenerates to the classic device/host/transfer trio), yielding the
//!   batch's pipelined makespan next to the serial sum of the same
//!   operations. Under sharding (`num_devices > 1`) the shared cleaning
//!   pass is routed per owning shard and those legs run concurrently on
//!   their own streams; each query's kernels occupy only its primary
//!   shard's streams, so disjoint queries overlap across devices.
//!
//! **Attribution.** The shared pass is real per-query work done once, so
//! its cost is split across the queries proportionally to how much of the
//! union each asked for: query *i*'s weight is `Σ_{c ∈ ring_i} 1/mult(c)`,
//! where `mult(c)` counts the queries whose first ring contains `c` — a
//! cell wanted by four queries bills each a quarter. The integer split
//! ([`crate::stats::split_u64`]) telescopes exactly, so the per-query
//! breakdowns sum to precisely the work the batch did and
//! [`BatchResult::gpu_total`] needs no separate shared term. The unsplit
//! record stays available in [`BatchResult::shared`] for diagnostics.
//!
//! Answers are byte-identical to running [`crate::knn::run_knn`] per query
//! in input order: cleaning is semantically idempotent (a query's view of
//! a cell's live objects does not depend on when the cell was last
//! consolidated), the cache returns exactly what a fresh clean or a
//! clean-skip snapshot of the same epoch would, and the refinement merge
//! is order-independent. DESIGN.md §5.6 carries the full argument.

use std::collections::HashMap;

use gpu_sim::{SimNanos, StreamTimeline};
use roadnet::graph::Distance;
use roadnet::EdgePosition;

use crate::cleaning::CleanedObjects;
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::knn::{knn_device_phase, knn_finalize, refine_unresolved};
use crate::message::{CachedMessage, ObjectId, Timestamp};
use crate::message_list::CellLists;
use crate::object_table::FxBuildHasher;
use crate::scratch::ScratchPool;
use crate::shard::ShardSet;
use crate::stats::QueryBreakdown;

/// Stream layout of the batch timeline for `d` shards: device stream of
/// shard `i` at index `i`, its transfer stream at `d + i` (D2H copy-backs
/// overlap the next kernel there, still ordered after their own compute),
/// and the single host (refinement) stream last. `d = 1` reproduces the
/// original device/transfer/host trio.
fn device_stream(_d: usize, shard: usize) -> usize {
    shard
}
fn transfer_stream(d: usize, shard: usize) -> usize {
    d + shard
}
fn host_stream(d: usize) -> usize {
    2 * d
}

/// Weight scale for the proportional attribution of the shared pass:
/// `lcm(1..=13)`, so `ATTR_SCALE / mult` is exact for any realistic cell
/// multiplicity (larger multiplicities round down harmlessly — only the
/// ratios matter, and the integer split preserves totals regardless).
const ATTR_SCALE: u64 = 720_720;

/// Host-side cache of the batch's shared cleaning pass: for each union
/// cell, the consolidated live objects and the list epoch they correspond
/// to. A per-query cleaning round hits the cache only while the list's
/// epoch still equals the recorded one — i.e. no message has landed in the
/// cell since the shared pass — which is exactly the condition under which
/// the shared output *is* what cleaning the cell now would produce.
pub(crate) struct BatchCleanCache {
    entries: HashMap<CellId, (u64, Vec<CachedMessage>), FxBuildHasher>,
}

impl BatchCleanCache {
    /// Record the shared pass's output. Cells whose list was appended to
    /// between the pass and this call (epoch moved past the cleaned stamp)
    /// are left out — serving them from the cache would drop the new
    /// messages, so they fall through to a real clean instead.
    pub(crate) fn build(lists: &CellLists, union: &[CellId], cleaned: &CleanedObjects) -> Self {
        let mut entries: HashMap<CellId, (u64, Vec<CachedMessage>), FxBuildHasher> =
            HashMap::default();
        for &c in union {
            let list = lists.lock(c.index());
            if list.is_clean() {
                let epoch = list.epoch();
                drop(list);
                let msgs = cleaned.get(&c).cloned().unwrap_or_default();
                entries.insert(c, (epoch, msgs));
            }
        }
        Self { entries }
    }

    /// The cached consolidation of `cell`, if it is still current (the
    /// list's epoch has not moved since the shared pass).
    pub(crate) fn lookup(&self, lists: &CellLists, cell: CellId) -> Option<&[CachedMessage]> {
        let (epoch, msgs) = self.entries.get(&cell)?;
        let list = lists.lock(cell.index());
        if list.epoch() == *epoch {
            Some(msgs)
        } else {
            None
        }
    }
}

/// Result of a query batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-query answers, in input order.
    pub answers: Vec<Vec<(ObjectId, Distance)>>,
    /// The shared pass (fused cleaning + staged topology), unsplit. Its
    /// cost is *also* attributed into `per_query` proportionally, so sum
    /// `per_query` — not `shared` — for totals.
    pub shared: QueryBreakdown,
    /// Per-query breakdowns: each query's residual work plus its
    /// proportional share of the shared pass.
    pub per_query: Vec<QueryBreakdown>,
    /// Cells the shared pass cleaned once on behalf of the whole batch
    /// (the size of the first-ring union).
    pub shared_cells: usize,
    /// Makespan of the batch with host refinement overlapping device work
    /// (device time is simulated, refinement time is measured host time).
    pub pipelined_time: SimNanos,
    /// The same operations executed back to back, for comparison; always
    /// `>= pipelined_time`.
    pub serial_time: SimNanos,
}

impl BatchResult {
    /// Total simulated device time of the batch. The shared pass is
    /// already attributed into `per_query`, so this is a plain sum.
    pub fn gpu_total(&self) -> gpu_sim::SimNanos {
        self.per_query
            .iter()
            .fold(gpu_sim::SimNanos::ZERO, |acc, b| acc + b.gpu_total())
    }
}

/// Execute a batch of kNN queries sharing one fused cleaning + staging
/// pass and overlapping host refinement with device work.
#[allow(clippy::too_many_arguments)]
pub fn run_knn_batch(
    shards: &mut ShardSet,
    grid: &GraphGrid,
    lists: &CellLists,
    pool: &ScratchPool,
    config: &GGridConfig,
    queries: &[(EdgePosition, usize)],
    now: Timestamp,
) -> BatchResult {
    let d = shards.num_shards();

    // Per-query first candidate rings (own cell + neighbours) and their
    // union; ring multiplicities drive the attribution weights. A query's
    // *primary* shard — where its kernels run — owns its own cell.
    let mut rings: Vec<Vec<CellId>> = Vec::with_capacity(queries.len());
    let mut primaries: Vec<usize> = Vec::with_capacity(queries.len());
    let mut union: Vec<CellId> = Vec::new();
    for &(q, _) in queries {
        let c = grid.cell_of_edge(q.edge);
        primaries.push(shards.owner_of(c));
        let mut ring = vec![c];
        ring.extend_from_slice(grid.neighbors(c));
        ring.sort_unstable();
        ring.dedup();
        union.extend_from_slice(&ring);
        rings.push(ring);
    }
    union.sort_unstable();
    union.dedup();

    let mut multiplicity: HashMap<CellId, u64, FxBuildHasher> = HashMap::default();
    for ring in &rings {
        for &c in ring {
            *multiplicity.entry(c).or_insert(0) += 1;
        }
    }
    let weights: Vec<u64> = rings
        .iter()
        .map(|ring| ring.iter().map(|c| ATTR_SCALE / multiplicity[c]).sum())
        .collect();

    let mut timeline = StreamTimeline::new(2 * d + 1);
    let mut serial_time = SimNanos::ZERO;

    let mut shared = QueryBreakdown::default();
    let mut cache: Option<BatchCleanCache> = None;
    if !union.is_empty() && !queries.is_empty() {
        let launches0 = shards.total_launches();
        let t0 = std::time::Instant::now();
        // The fused pass routes each union cell to its owning shard; the
        // per-shard legs are independent and run concurrently on their own
        // device streams.
        let (cleaned, reports) = shards.clean_cells_routed(lists, &union, config, now);
        if config.batch_fusion {
            cache = Some(BatchCleanCache::build(lists, &union, &cleaned));
        }
        shared.emulation_ns = t0.elapsed().as_nanos() as u64;
        for (owner, rep) in &reports {
            shared.record_cleaning(rep);
            // Copy-back is strictly after this leg's compute but runs on
            // the owner's transfer stream, so the first query's device
            // phase starts as soon as the kernel is done — not when the
            // result lands on host.
            let compute = SimNanos(rep.time.0 - rep.copy_back_time.0);
            let compute_end = timeline.push(device_stream(d, *owner), SimNanos::ZERO, compute);
            timeline.push(transfer_stream(d, *owner), compute_end, rep.copy_back_time);
            serial_time += rep.time;
        }
        shared.kernel_launches = shards.total_launches() - launches0;

        // Stage each primary group's topology in one coalesced transfer per
        // shard, so the per-query sdist rounds find every first-ring CSR
        // slice resident on the device they will run on. With one shard the
        // single group is exactly the union.
        if config.batch_fusion && config.coalesce_h2d {
            let mut per_primary: Vec<Vec<CellId>> = vec![Vec::new(); d];
            for (ring, &p) in rings.iter().zip(&primaries) {
                per_primary[p].extend_from_slice(ring);
            }
            for (p, mut cells) in per_primary.into_iter().enumerate() {
                if cells.is_empty() {
                    continue;
                }
                cells.sort_unstable();
                cells.dedup();
                let sh = shards.shard_mut(p);
                let staged = sh.topo.stage(
                    &mut sh.device,
                    cells.iter().map(|&c| (c, grid.topology(c).bytes())),
                );
                shared.candidate += staged.time;
                shared.h2d_topo_bytes += staged.bytes;
                shared.h2d_bytes += staged.bytes;
                shared.topo_hits += staged.hits as usize;
                shared.topo_misses += staged.misses as usize;
                shared.h2d_coalesced_saved += staged.transactions_saved;
                timeline.push(device_stream(d, p), SimNanos::ZERO, staged.time);
                serial_time += staged.time;
            }
        }
    }

    // Charge the clean-cache's host-pinned mirror bytes against the owning
    // devices' residency budgets for the lifetime of the batch, so eviction
    // decisions see the true memory pressure (released before returning).
    let mut cache_charges: Vec<u64> = vec![0; d];
    if let Some(cache) = &cache {
        for (&c, (_, msgs)) in &cache.entries {
            cache_charges[shards.owner_of(c)] += msgs.len() as u64 * CachedMessage::WIRE_BYTES;
        }
        for (i, &bytes) in cache_charges.iter().enumerate() {
            if bytes > 0 {
                let sh = shards.shard_mut(i);
                sh.resident.reserve_external(&mut sh.device, bytes);
            }
        }
    }

    // Stage the queries through the pipeline. The main thread owns the
    // device and the lists; refinement — pure CPU — runs on a worker
    // thread one query behind, so finalising query i happens after the
    // device phase of query i+1 (exactly what the timeline records).
    let n = queries.len();
    let mut answers = Vec::with_capacity(n);
    let mut per_query = Vec::with_capacity(n);

    crossbeam::thread::scope(|s| {
        let cache = cache.as_ref();
        // (pending state, refine handle, device-phase end time, primary)
        let mut in_flight = None;
        for (&(q, k), &primary) in queries.iter().zip(&primaries) {
            let pending = knn_device_phase(shards, grid, lists, pool, config, q, k, now, cache);
            // Compute on the primary shard's device stream, copy-back on
            // its transfer stream (ordered after the compute). Refinement
            // reads the copied-back results, so it waits for the transfer
            // end; the next query's kernels only wait for the compute end
            // — and only if they share the primary.
            let gpu = pending.breakdown.gpu_total();
            let copy_back = pending.breakdown.copy_back;
            let compute_end = timeline.push(
                device_stream(d, primary),
                SimNanos::ZERO,
                SimNanos(gpu.0 - copy_back.0),
            );
            let device_end = timeline.push(transfer_stream(d, primary), compute_end, copy_back);
            serial_time += gpu;
            // Cooperative SDist rounds also occupied other shards'
            // devices; charge those legs on their own device streams so
            // cross-query contention there is modeled. They ran
            // concurrently with the primary's round (the breakdown
            // already carries the max), not after it.
            for &(shard, t) in &pending.remote_ns {
                timeline.push(device_stream(d, shard), SimNanos::ZERO, t);
                serial_time += t;
            }

            if let Some((prev, handle, prev_device_end, prev_primary)) = in_flight.take() {
                finalize_one(
                    shards,
                    grid,
                    lists,
                    pool,
                    config,
                    now,
                    prev,
                    handle,
                    prev_device_end,
                    prev_primary,
                    cache,
                    &mut timeline,
                    &mut serial_time,
                    &mut answers,
                    &mut per_query,
                );
            }

            // Hand the refinement inputs to a worker; the next loop
            // iteration drives the device while it runs.
            let unresolved = pending.unresolved.clone();
            let in_set = pending.in_set.clone();
            let l = pending.l;
            let workers = config.refine_workers;
            let multi_source = config.refine_multi_source;
            let handle = s.spawn(move |_| {
                refine_unresolved(grid, &unresolved, l, &in_set, workers, multi_source, pool)
            });
            in_flight = Some((pending, handle, device_end, primary));
        }
        if let Some((prev, handle, prev_device_end, prev_primary)) = in_flight.take() {
            finalize_one(
                shards,
                grid,
                lists,
                pool,
                config,
                now,
                prev,
                handle,
                prev_device_end,
                prev_primary,
                cache,
                &mut timeline,
                &mut serial_time,
                &mut answers,
                &mut per_query,
            );
        }
    })
    .expect("batch scope failed");

    // Release the clean-cache's budget charges: the cache dies with the
    // batch.
    for (i, &bytes) in cache_charges.iter().enumerate() {
        if bytes > 0 {
            shards.shard_mut(i).resident.release_external(bytes);
        }
    }

    // Attribute the shared pass: each query absorbs its proportional
    // share, and the shares telescope exactly to the shared totals.
    if !per_query.is_empty() {
        for (b, share) in per_query.iter_mut().zip(shared.split_shares(&weights)) {
            b.absorb(&share);
        }
    }

    BatchResult {
        answers,
        shared,
        per_query,
        shared_cells: union.len(),
        pipelined_time: timeline.makespan(),
        serial_time,
    }
}

/// Join a query's refinement, finalise it, and record its host/device
/// operations on the timeline.
#[allow(clippy::too_many_arguments)]
fn finalize_one<'scope>(
    shards: &mut ShardSet,
    grid: &GraphGrid,
    lists: &CellLists,
    pool: &ScratchPool,
    config: &GGridConfig,
    now: Timestamp,
    pending: crate::knn::PendingKnn,
    handle: crossbeam::thread::ScopedJoinHandle<'scope, crate::knn::RefineOutcome>,
    device_end: SimNanos,
    primary: usize,
    cache: Option<&BatchCleanCache>,
    timeline: &mut StreamTimeline,
    serial_time: &mut SimNanos,
    answers: &mut Vec<Vec<(ObjectId, Distance)>>,
    per_query: &mut Vec<QueryBreakdown>,
) {
    let d = shards.num_shards();
    let refined = handle.join().expect("refinement worker panicked");

    // Host stream: the refinement, eligible once its device phase ended.
    // Charged at its critical path (busiest worker) — the modeled duration
    // on a host with enough free cores, consistent with the simulated
    // device clock on the other stream.
    let refine_end = timeline.push(host_stream(d), device_end, SimNanos(refined.critical_ns));
    *serial_time += SimNanos(refined.critical_ns);

    let gpu_before = pending.breakdown.gpu_total();
    let copy_back_before = pending.breakdown.copy_back;
    let result = knn_finalize(
        shards, grid, lists, config, now, pending, refined, pool, cache,
    );

    // Primary device stream: the finalisation's lazy cleaning, after the
    // refine; its copy-back again overlaps on the transfer stream.
    let finalize_gpu = SimNanos(result.breakdown.gpu_total().0 - gpu_before.0);
    let finalize_copy = SimNanos(result.breakdown.copy_back.0 - copy_back_before.0);
    let compute_end = timeline.push(
        device_stream(d, primary),
        refine_end,
        SimNanos(finalize_gpu.0 - finalize_copy.0),
    );
    timeline.push(transfer_stream(d, primary), compute_end, finalize_copy);
    *serial_time += finalize_gpu;

    answers.push(result.items);
    per_query.push(result.breakdown);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GGridServer;
    use roadnet::{gen, EdgeId};

    fn loaded_server_with(config: GGridConfig) -> GGridServer {
        let g = gen::toy(77);
        let s = GGridServer::new(g.clone(), config);
        for o in 0..40u64 {
            for t in 0..5u64 {
                let e = EdgeId(((o * 11 + t) % g.num_edges() as u64) as u32);
                s.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100 + t));
            }
        }
        s
    }

    fn loaded_server() -> GGridServer {
        loaded_server_with(GGridConfig {
            eta: 4,
            ..Default::default()
        })
    }

    fn queries() -> Vec<(EdgePosition, usize)> {
        (0..6u32)
            .map(|i| (EdgePosition::at_source(EdgeId(i * 13 % 160)), 4usize))
            .collect()
    }

    #[test]
    fn batch_matches_individual_queries() {
        let mut a = loaded_server();
        let mut b = loaded_server();
        let queries = queries();
        let batch = a.knn_batch(&queries, Timestamp(500));
        let individual: Vec<_> = queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(500)))
            .collect();
        assert_eq!(batch.answers, individual);
    }

    #[test]
    fn batch_matches_individual_with_worker_pool() {
        // Same identity under a multi-threaded refinement pool.
        let config = GGridConfig {
            eta: 4,
            refine_workers: 4,
            ..Default::default()
        };
        let mut a = loaded_server_with(config.clone());
        let mut b = loaded_server();
        let queries = queries();
        let batch = a.knn_batch(&queries, Timestamp(500));
        let individual: Vec<_> = queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(500)))
            .collect();
        assert_eq!(batch.answers, individual);
    }

    #[test]
    fn batch_matches_individual_without_fusion() {
        // The ablation path (no cache, no upfront staging) must also match.
        let config = GGridConfig {
            eta: 4,
            batch_fusion: false,
            ..Default::default()
        };
        let mut a = loaded_server_with(config.clone());
        let mut b = loaded_server();
        let queries = queries();
        let batch = a.knn_batch(&queries, Timestamp(500));
        let individual: Vec<_> = queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(500)))
            .collect();
        assert_eq!(batch.answers, individual);
    }

    #[test]
    fn batch_shares_cleaning() {
        let mut a = loaded_server();
        let mut b = loaded_server();
        let queries = queries();
        let batch = a.knn_batch(&queries, Timestamp(500));
        // The batch's win is device time: one big pipelined pass replaces
        // many small launches and transfers with per-call overheads, and
        // the batch clean-cache spares the per-query re-cleans afterwards.
        let mut individual_gpu = gpu_sim::SimNanos::ZERO;
        for &(q, k) in &queries {
            b.knn(q, k, Timestamp(500));
            individual_gpu += b.last_breakdown().gpu_total();
        }
        let batch_gpu = batch.gpu_total();
        assert!(
            batch_gpu <= individual_gpu,
            "batched device time must not exceed individual ({batch_gpu} vs {individual_gpu})"
        );
        assert!(batch.shared.messages_cleaned > 0);
        assert!(batch.shared_cells > 0);
        // The shared pass consolidated the union; the per-query pipelines
        // must have hit the batch cache.
        let skips: usize = batch.per_query.iter().map(|b| b.cells_skipped).sum();
        assert!(skips > 0, "per-query passes should skip shared cells");
    }

    #[test]
    fn shared_pass_attributed_exactly() {
        let mut s = loaded_server();
        let batch = s.knn_batch(&queries(), Timestamp(500));
        // The per-query breakdowns absorb the shared pass exactly: their
        // message totals cover the shared pass's messages, and the batch
        // total equals serial per-query accounting (shared included once).
        let msgs: usize = batch.per_query.iter().map(|b| b.messages_cleaned).sum();
        assert!(msgs >= batch.shared.messages_cleaned);
        let per_query_gpu = batch.gpu_total();
        assert!(per_query_gpu >= batch.shared.gpu_total());
        let launches: u64 = batch.per_query.iter().map(|b| b.kernel_launches).sum();
        assert!(launches >= batch.shared.kernel_launches);
    }

    #[test]
    fn upfront_staging_pays_one_latency() {
        // Fresh server, cold topology store: the fused path stages the
        // whole union in one transaction and records the saved ones.
        let mut s = loaded_server();
        let batch = s.knn_batch(&queries(), Timestamp(500));
        assert!(batch.shared.topo_misses > 0, "cold store must miss");
        assert_eq!(
            batch.shared.h2d_coalesced_saved,
            batch.shared.topo_misses as u64 - 1
        );
    }

    #[test]
    fn pipelined_makespan_bounded_by_serial() {
        let mut s = loaded_server();
        let batch = s.knn_batch(&queries(), Timestamp(500));
        assert!(batch.pipelined_time <= batch.serial_time);
        assert!(batch.serial_time > SimNanos::ZERO);
    }

    #[test]
    fn empty_batch() {
        let mut s = loaded_server();
        let batch = s.knn_batch(&[], Timestamp(500));
        assert!(batch.answers.is_empty());
        assert_eq!(batch.shared.messages_cleaned, 0);
        assert_eq!(batch.shared_cells, 0);
        assert_eq!(batch.pipelined_time, SimNanos::ZERO);
    }

    #[test]
    fn cache_rejects_stale_epochs() {
        // Build a cache over a consolidated cell, dirty it, and check the
        // lookup refuses the stale entry.
        let mut sv = loaded_server();
        sv.clean_all(Timestamp(500));
        let cell = sv.grid().cell_of_edge(EdgeId(0));
        let union = [cell];
        let cleaned = CleanedObjects::default();
        let cache = BatchCleanCache::build(sv.cell_lists(), &union, &cleaned);
        assert!(cache.lookup(sv.cell_lists(), cell).is_some());
        // A new message moves the epoch; the entry must go stale.
        sv.handle_update(
            ObjectId(999),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(600),
        );
        assert!(cache.lookup(sv.cell_lists(), cell).is_none());
    }
}
