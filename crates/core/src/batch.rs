//! Multi-query batch processing.
//!
//! The paper's "G-Grid" series in Fig 5 reports the *overall* response time
//! of a query stream, which beats the per-query sum ("G-Grid (L)") because
//! the server processes multiple queries in parallel: their message
//! cleaning shares one device pass, and host refinement of one query
//! overlaps device work of another.
//!
//! [`run_knn_batch`] implements the sharing that is deterministic in a
//! single-threaded simulation: the union of all queries' initial candidate
//! cells is cleaned in one batched kernel launch (one pipelined upload, one
//! dedup pass over all their messages), after which each query runs its
//! remaining pipeline against the consolidated lists.

use gpu_sim::Device;
use roadnet::graph::Distance;
use roadnet::EdgePosition;

use crate::cleaning::clean_cells;
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::knn::{run_knn, KnnResult};
use crate::message::{ObjectId, Timestamp};
use crate::message_list::MessageList;
use crate::stats::QueryBreakdown;

/// Result of a query batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-query answers, in input order.
    pub answers: Vec<Vec<(ObjectId, Distance)>>,
    /// Cost of the shared cleaning pass.
    pub shared: QueryBreakdown,
    /// Per-query breakdowns for the residual work.
    pub per_query: Vec<QueryBreakdown>,
}

impl BatchResult {
    /// Total simulated device time: shared pass + residual per-query work.
    pub fn gpu_total(&self) -> gpu_sim::SimNanos {
        self.per_query
            .iter()
            .fold(self.shared.gpu_total(), |acc, b| acc + b.gpu_total())
    }
}

/// Execute a batch of kNN queries sharing one initial cleaning pass.
pub fn run_knn_batch(
    device: &mut Device,
    grid: &GraphGrid,
    lists: &mut [MessageList],
    config: &GGridConfig,
    queries: &[(EdgePosition, usize)],
    now: Timestamp,
) -> BatchResult {
    // Union of every query's first candidate ring (own cell + neighbours).
    let mut union: Vec<CellId> = Vec::new();
    for &(q, _) in queries {
        let c = grid.cell_of_edge(q.edge);
        union.push(c);
        union.extend_from_slice(grid.neighbors(c));
    }
    union.sort_unstable();
    union.dedup();

    let mut shared = QueryBreakdown::default();
    if !union.is_empty() && !queries.is_empty() {
        let t0 = std::time::Instant::now();
        let (_, rep) = clean_cells(
            device,
            lists,
            &union,
            config.eta,
            config.transfer_chunks,
            now,
            config.t_delta_ms,
        );
        shared.emulation_ns = t0.elapsed().as_nanos() as u64;
        shared.cleaning = rep.time;
        shared.h2d_bytes = rep.h2d_bytes;
        shared.d2h_bytes = rep.d2h_bytes;
        shared.messages_cleaned = rep.messages;
        shared.cells_cleaned = union.len();
    }

    // Residual per-query work: the shared cells are already consolidated,
    // so each query re-ships at most one message per live object there.
    let mut answers = Vec::with_capacity(queries.len());
    let mut per_query = Vec::with_capacity(queries.len());
    for &(q, k) in queries {
        let result: KnnResult = run_knn(device, grid, lists, config, q, k, now);
        answers.push(result.items);
        per_query.push(result.breakdown);
    }

    BatchResult {
        answers,
        shared,
        per_query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GGridServer;
    use roadnet::{gen, EdgeId};

    fn loaded_server() -> GGridServer {
        let g = gen::toy(77);
        let mut s = GGridServer::new(
            g.clone(),
            GGridConfig {
                eta: 4,
                ..Default::default()
            },
        );
        for o in 0..40u64 {
            for t in 0..5u64 {
                let e = EdgeId(((o * 11 + t) % g.num_edges() as u64) as u32);
                s.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100 + t));
            }
        }
        s
    }

    #[test]
    fn batch_matches_individual_queries() {
        let mut a = loaded_server();
        let mut b = loaded_server();
        let queries: Vec<(EdgePosition, usize)> = (0..6u32)
            .map(|i| (EdgePosition::at_source(EdgeId(i * 13 % 160)), 4usize))
            .collect();
        let batch = a.knn_batch(&queries, Timestamp(500));
        let individual: Vec<_> = queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(500)))
            .collect();
        assert_eq!(batch.answers, individual);
    }

    #[test]
    fn batch_shares_cleaning() {
        let mut a = loaded_server();
        let mut b = loaded_server();
        let queries: Vec<(EdgePosition, usize)> = (0..6u32)
            .map(|i| (EdgePosition::at_source(EdgeId(i * 13 % 160)), 4usize))
            .collect();
        let batch = a.knn_batch(&queries, Timestamp(500));
        // The batch's win is device time: one big pipelined pass replaces
        // many small launches and transfers with per-call overheads.
        let mut individual_gpu = gpu_sim::SimNanos::ZERO;
        for &(q, k) in &queries {
            b.knn(q, k, Timestamp(500));
            individual_gpu += b.last_breakdown().gpu_total();
        }
        let batch_gpu = batch.gpu_total();
        assert!(
            batch_gpu <= individual_gpu,
            "batched device time must not exceed individual ({batch_gpu} vs {individual_gpu})"
        );
        assert!(batch.shared.messages_cleaned > 0);
    }

    #[test]
    fn empty_batch() {
        let mut s = loaded_server();
        let batch = s.knn_batch(&[], Timestamp(500));
        assert!(batch.answers.is_empty());
        assert_eq!(batch.shared.messages_cleaned, 0);
    }
}
