//! Multi-query batch processing.
//!
//! The paper's "G-Grid" series in Fig 5 reports the *overall* response time
//! of a query stream, which beats the per-query sum ("G-Grid (L)") because
//! the server processes multiple queries in parallel: their message
//! cleaning shares one device pass, and host refinement of one query
//! overlaps device work of another.
//!
//! [`run_knn_batch`] implements both effects:
//!
//! * **Shared cleaning** — the union of all queries' initial candidate
//!   cells is cleaned in one batched kernel launch (one pipelined upload,
//!   one dedup pass over all their messages). The epoch-based clean-skip
//!   cache then lets every per-query pipeline serve those cells from the
//!   host cache instead of re-launching the kernel.
//! * **Overlapped refinement** — queries are staged through the
//!   device-phase → refine → finalise pipeline of [`crate::knn`]: while
//!   query *i*'s CPU refinement runs on a worker thread, the device
//!   already executes query *i+1*'s phase. The overlap is accounted on a
//!   two-stream [`StreamTimeline`] (device stream, host stream), yielding
//!   the batch's pipelined makespan next to the serial sum of the same
//!   operations.
//!
//! Answers are byte-identical to running [`crate::knn::run_knn`] per query
//! in input order: cleaning is semantically idempotent (a query's view of
//! a cell's live objects does not depend on when the cell was last
//! consolidated), and the refinement merge is order-independent.

use gpu_sim::{Device, SimNanos, StreamTimeline};
use roadnet::graph::Distance;
use roadnet::EdgePosition;

use crate::cleaning::clean_cells;
use crate::config::GGridConfig;
use crate::grid::{CellId, GraphGrid};
use crate::knn::{knn_device_phase, knn_finalize, refine_unresolved};
use crate::message::{ObjectId, Timestamp};
use crate::message_list::CellLists;
use crate::residency::{ResidentCellStore, TopologyStore};
use crate::scratch::ScratchPool;
use crate::stats::QueryBreakdown;

/// Stream indices of the batch timeline.
const DEVICE_STREAM: usize = 0;
const HOST_STREAM: usize = 1;
/// D2H copy-backs run here: the cleaning result streams to the host while
/// the device stream already executes the next kernel. Copy-back is still
/// ordered strictly after its own compute, and anything that *reads* the
/// result on the host (refinement) waits for it.
const TRANSFER_STREAM: usize = 2;

/// Result of a query batch.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-query answers, in input order.
    pub answers: Vec<Vec<(ObjectId, Distance)>>,
    /// Cost of the shared cleaning pass.
    pub shared: QueryBreakdown,
    /// Per-query breakdowns for the residual work.
    pub per_query: Vec<QueryBreakdown>,
    /// Makespan of the batch with host refinement overlapping device work
    /// (device time is simulated, refinement time is measured host time).
    pub pipelined_time: SimNanos,
    /// The same operations executed back to back, for comparison; always
    /// `>= pipelined_time`.
    pub serial_time: SimNanos,
}

impl BatchResult {
    /// Total simulated device time: shared pass + residual per-query work.
    pub fn gpu_total(&self) -> gpu_sim::SimNanos {
        self.per_query
            .iter()
            .fold(self.shared.gpu_total(), |acc, b| acc + b.gpu_total())
    }
}

/// Execute a batch of kNN queries sharing one initial cleaning pass and
/// overlapping host refinement with device work.
#[allow(clippy::too_many_arguments)]
pub fn run_knn_batch(
    device: &mut Device,
    grid: &GraphGrid,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    topo: &mut TopologyStore,
    pool: &ScratchPool,
    config: &GGridConfig,
    queries: &[(EdgePosition, usize)],
    now: Timestamp,
) -> BatchResult {
    // Union of every query's first candidate ring (own cell + neighbours).
    let mut union: Vec<CellId> = Vec::new();
    for &(q, _) in queries {
        let c = grid.cell_of_edge(q.edge);
        union.push(c);
        union.extend_from_slice(grid.neighbors(c));
    }
    union.sort_unstable();
    union.dedup();

    let mut timeline = StreamTimeline::new(3);
    let mut serial_time = SimNanos::ZERO;

    let mut shared = QueryBreakdown::default();
    if !union.is_empty() && !queries.is_empty() {
        let t0 = std::time::Instant::now();
        let (_, rep) = clean_cells(device, lists, resident, &union, config, now);
        shared.emulation_ns = t0.elapsed().as_nanos() as u64;
        shared.record_cleaning(&rep);
        // Copy-back is strictly after the shared pass's compute but runs on
        // the transfer stream, so the first query's device phase starts as
        // soon as the kernel is done — not when the result lands on host.
        let compute = SimNanos(shared.gpu_total().0 - shared.copy_back.0);
        let compute_end = timeline.push(DEVICE_STREAM, SimNanos::ZERO, compute);
        timeline.push(TRANSFER_STREAM, compute_end, shared.copy_back);
        serial_time += shared.gpu_total();
    }

    // Stage the queries through the pipeline. The main thread owns the
    // device and the lists; refinement — pure CPU — runs on a worker
    // thread one query behind, so finalising query i happens after the
    // device phase of query i+1 (exactly what the timeline records).
    let n = queries.len();
    let mut answers = Vec::with_capacity(n);
    let mut per_query = Vec::with_capacity(n);

    crossbeam::thread::scope(|s| {
        // (pending state, refine handle, device-phase end time)
        let mut in_flight = None;
        for &(q, k) in queries {
            let pending =
                knn_device_phase(device, grid, lists, resident, topo, pool, config, q, k, now);
            // Compute on the device stream, copy-back on the transfer
            // stream (ordered after the compute). Refinement reads the
            // copied-back results, so it waits for the transfer end; the
            // next query's kernels only wait for the compute end.
            let gpu = pending.breakdown.gpu_total();
            let copy_back = pending.breakdown.copy_back;
            let compute_end =
                timeline.push(DEVICE_STREAM, SimNanos::ZERO, SimNanos(gpu.0 - copy_back.0));
            let device_end = timeline.push(TRANSFER_STREAM, compute_end, copy_back);
            serial_time += gpu;

            if let Some((prev, handle, prev_device_end)) = in_flight.take() {
                finalize_one(
                    device,
                    grid,
                    lists,
                    resident,
                    pool,
                    config,
                    now,
                    prev,
                    handle,
                    prev_device_end,
                    &mut timeline,
                    &mut serial_time,
                    &mut answers,
                    &mut per_query,
                );
            }

            // Hand the refinement inputs to a worker; the next loop
            // iteration drives the device while it runs.
            let unresolved = pending.unresolved.clone();
            let in_set = pending.in_set.clone();
            let l = pending.l;
            let workers = config.refine_workers;
            let handle =
                s.spawn(move |_| refine_unresolved(grid, &unresolved, l, &in_set, workers, pool));
            in_flight = Some((pending, handle, device_end));
        }
        if let Some((prev, handle, prev_device_end)) = in_flight.take() {
            finalize_one(
                device,
                grid,
                lists,
                resident,
                pool,
                config,
                now,
                prev,
                handle,
                prev_device_end,
                &mut timeline,
                &mut serial_time,
                &mut answers,
                &mut per_query,
            );
        }
    })
    .expect("batch scope failed");

    BatchResult {
        answers,
        shared,
        per_query,
        pipelined_time: timeline.makespan(),
        serial_time,
    }
}

/// Join a query's refinement, finalise it, and record its host/device
/// operations on the timeline.
#[allow(clippy::too_many_arguments)]
fn finalize_one<'scope>(
    device: &mut Device,
    grid: &GraphGrid,
    lists: &CellLists,
    resident: &mut ResidentCellStore,
    pool: &ScratchPool,
    config: &GGridConfig,
    now: Timestamp,
    pending: crate::knn::PendingKnn,
    handle: crossbeam::thread::ScopedJoinHandle<'scope, crate::knn::RefineOutcome>,
    device_end: SimNanos,
    timeline: &mut StreamTimeline,
    serial_time: &mut SimNanos,
    answers: &mut Vec<Vec<(ObjectId, Distance)>>,
    per_query: &mut Vec<QueryBreakdown>,
) {
    let refined = handle.join().expect("refinement worker panicked");

    // Host stream: the refinement, eligible once its device phase ended.
    // Charged at its critical path (busiest worker) — the modeled duration
    // on a host with enough free cores, consistent with the simulated
    // device clock on the other stream.
    let refine_end = timeline.push(HOST_STREAM, device_end, SimNanos(refined.critical_ns));
    *serial_time += SimNanos(refined.critical_ns);

    let gpu_before = pending.breakdown.gpu_total();
    let copy_back_before = pending.breakdown.copy_back;
    let result = knn_finalize(
        device, grid, lists, resident, config, now, pending, refined, pool,
    );

    // Device stream: the finalisation's lazy cleaning, after the refine;
    // its copy-back again overlaps on the transfer stream.
    let finalize_gpu = SimNanos(result.breakdown.gpu_total().0 - gpu_before.0);
    let finalize_copy = SimNanos(result.breakdown.copy_back.0 - copy_back_before.0);
    let compute_end = timeline.push(
        DEVICE_STREAM,
        refine_end,
        SimNanos(finalize_gpu.0 - finalize_copy.0),
    );
    timeline.push(TRANSFER_STREAM, compute_end, finalize_copy);
    *serial_time += finalize_gpu;

    answers.push(result.items);
    per_query.push(result.breakdown);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::GGridServer;
    use roadnet::{gen, EdgeId};

    fn loaded_server_with(config: GGridConfig) -> GGridServer {
        let g = gen::toy(77);
        let s = GGridServer::new(g.clone(), config);
        for o in 0..40u64 {
            for t in 0..5u64 {
                let e = EdgeId(((o * 11 + t) % g.num_edges() as u64) as u32);
                s.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100 + t));
            }
        }
        s
    }

    fn loaded_server() -> GGridServer {
        loaded_server_with(GGridConfig {
            eta: 4,
            ..Default::default()
        })
    }

    fn queries() -> Vec<(EdgePosition, usize)> {
        (0..6u32)
            .map(|i| (EdgePosition::at_source(EdgeId(i * 13 % 160)), 4usize))
            .collect()
    }

    #[test]
    fn batch_matches_individual_queries() {
        let mut a = loaded_server();
        let mut b = loaded_server();
        let queries = queries();
        let batch = a.knn_batch(&queries, Timestamp(500));
        let individual: Vec<_> = queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(500)))
            .collect();
        assert_eq!(batch.answers, individual);
    }

    #[test]
    fn batch_matches_individual_with_worker_pool() {
        // Same identity under a multi-threaded refinement pool.
        let config = GGridConfig {
            eta: 4,
            refine_workers: 4,
            ..Default::default()
        };
        let mut a = loaded_server_with(config.clone());
        let mut b = loaded_server();
        let queries = queries();
        let batch = a.knn_batch(&queries, Timestamp(500));
        let individual: Vec<_> = queries
            .iter()
            .map(|&(q, k)| b.knn(q, k, Timestamp(500)))
            .collect();
        assert_eq!(batch.answers, individual);
    }

    #[test]
    fn batch_shares_cleaning() {
        let mut a = loaded_server();
        let mut b = loaded_server();
        let queries = queries();
        let batch = a.knn_batch(&queries, Timestamp(500));
        // The batch's win is device time: one big pipelined pass replaces
        // many small launches and transfers with per-call overheads, and
        // the clean-skip cache spares the per-query re-cleans afterwards.
        let mut individual_gpu = gpu_sim::SimNanos::ZERO;
        for &(q, k) in &queries {
            b.knn(q, k, Timestamp(500));
            individual_gpu += b.last_breakdown().gpu_total();
        }
        let batch_gpu = batch.gpu_total();
        assert!(
            batch_gpu <= individual_gpu,
            "batched device time must not exceed individual ({batch_gpu} vs {individual_gpu})"
        );
        assert!(batch.shared.messages_cleaned > 0);
        // The shared pass consolidated the union; the per-query pipelines
        // must have hit the skip cache.
        let skips: usize = batch.per_query.iter().map(|b| b.cells_skipped).sum();
        assert!(skips > 0, "per-query passes should skip shared cells");
    }

    #[test]
    fn pipelined_makespan_bounded_by_serial() {
        let mut s = loaded_server();
        let batch = s.knn_batch(&queries(), Timestamp(500));
        assert!(batch.pipelined_time <= batch.serial_time);
        assert!(batch.serial_time > SimNanos::ZERO);
    }

    #[test]
    fn empty_batch() {
        let mut s = loaded_server();
        let batch = s.knn_batch(&[], Timestamp(500));
        assert!(batch.answers.is_empty());
        assert_eq!(batch.shared.messages_cleaned, 0);
        assert_eq!(batch.pipelined_time, SimNanos::ZERO);
    }
}
