//! The interface shared by every moving-object kNN index in the workspace
//! (G-Grid and the three baselines), so experiments and tests can drive
//! them interchangeably.

use gpu_sim::SimNanos;
use roadnet::graph::Distance;
use roadnet::EdgePosition;

use crate::message::{ObjectId, Timestamp};

/// Cumulative simulated-device costs of an index (zero for CPU-only
/// baselines). CPU costs are measured by the caller with a wall clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimCosts {
    /// Simulated kernel time.
    pub gpu_time: SimNanos,
    /// Simulated host↔device transfer time.
    pub transfer_time: SimNanos,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
}

impl SimCosts {
    pub fn total_time(&self) -> SimNanos {
        self.gpu_time + self.transfer_time
    }

    /// Costs accrued between `earlier` and `self`.
    pub fn since(&self, earlier: &SimCosts) -> SimCosts {
        SimCosts {
            gpu_time: self.gpu_time.saturating_sub(earlier.gpu_time),
            transfer_time: self.transfer_time.saturating_sub(earlier.transfer_time),
            h2d_bytes: self.h2d_bytes - earlier.h2d_bytes,
            d2h_bytes: self.d2h_bytes - earlier.d2h_bytes,
        }
    }
}

/// Resident footprint of an index (paper Fig 6 reports CPU, GPU, and total).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexSize {
    pub cpu_bytes: u64,
    pub gpu_bytes: u64,
}

impl IndexSize {
    pub fn total(&self) -> u64 {
        self.cpu_bytes + self.gpu_bytes
    }
}

/// A snapshot-kNN index over moving objects in a road network.
pub trait MovingObjectIndex {
    /// Short display name, e.g. `"G-Grid"` or `"V-Tree"`.
    fn name(&self) -> &'static str;

    /// Process one location-update message `⟨o, e, d, t⟩`.
    fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp);

    /// Process a run of location updates as one group commit. Semantically
    /// identical to calling [`Self::handle_update`] once per element in
    /// order; indexes with a batched ingest path (G-Grid) override this to
    /// amortize per-message locking.
    fn ingest_batch(&mut self, updates: &[(ObjectId, EdgePosition, Timestamp)]) {
        for &(o, p, t) in updates {
            self.handle_update(o, p, t);
        }
    }

    /// Process a run of location updates through a *deferred-visibility*
    /// ingest path: the index may stage the messages in thread-local
    /// buffers and only publish them at the next [`Self::flush_ingest`]
    /// barrier (queries flush implicitly, so answers never change — only
    /// when the shared-structure locks are paid). Indexes without such a
    /// path fall back to the group commit.
    fn ingest_buffered(&mut self, updates: &[(ObjectId, EdgePosition, Timestamp)]) {
        self.ingest_batch(updates);
    }

    /// Publish everything [`Self::ingest_buffered`] still holds in private
    /// buffers. A no-op for indexes whose ingest is immediately visible.
    fn flush_ingest(&mut self) {}

    /// Answer a kNN query issued at time `now`. Returns up to `k`
    /// `(object, network distance)` pairs, nearest first, ties on object id.
    fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)>;

    /// Cumulative simulated device costs (kernels + transfers).
    fn sim_costs(&self) -> SimCosts;

    /// Cumulative host wall-clock nanoseconds this index spent *emulating*
    /// device-side work (kernel bodies run on the host in this
    /// reproduction). Harnesses that measure wall time around calls must
    /// subtract this and add [`Self::sim_costs`] instead. Zero for
    /// CPU-only indexes.
    fn emulated_host_ns(&self) -> u64 {
        0
    }

    /// Current resident size.
    fn index_size(&self) -> IndexSize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_costs_delta() {
        let a = SimCosts {
            gpu_time: SimNanos(100),
            transfer_time: SimNanos(50),
            h2d_bytes: 10,
            d2h_bytes: 4,
        };
        let b = SimCosts {
            gpu_time: SimNanos(150),
            transfer_time: SimNanos(70),
            h2d_bytes: 25,
            d2h_bytes: 9,
        };
        let d = b.since(&a);
        assert_eq!(d.gpu_time, SimNanos(50));
        assert_eq!(d.transfer_time, SimNanos(20));
        assert_eq!(d.h2d_bytes, 15);
        assert_eq!(d.total_time(), SimNanos(70));
    }

    #[test]
    fn index_size_total() {
        let s = IndexSize {
            cpu_bytes: 7,
            gpu_bytes: 5,
        };
        assert_eq!(s.total(), 12);
    }
}
