//! Instrumentation: per-query breakdowns and cumulative counters.
//!
//! The paper reports amortised times `(T_u + T_q)/n_q`, DRAM↔GPU transfer
//! volumes and durations (Fig 10 c/d), and kernel-level effects (Fig 4).
//! Everything needed to regenerate those plots is collected here.

use gpu_sim::SimNanos;

/// Simulated-device cost of one kNN query, by phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryBreakdown {
    /// Message cleaning: pipelined transfer + X-shuffle kernel (§IV).
    pub cleaning: SimNanos,
    /// Shortest-distance kernel (Algorithm 5) + candidate selection.
    pub candidate: SimNanos,
    /// Result copy back and bookkeeping transfers.
    pub transfer_out: SimNanos,
    /// Host→device bytes moved for this query.
    pub h2d_bytes: u64,
    /// Device→host bytes moved for this query.
    pub d2h_bytes: u64,
    /// Cells cleaned for this query (expansion rounds included).
    pub cells_cleaned: usize,
    /// Messages shipped to the device.
    pub messages_cleaned: usize,
    /// Candidate objects considered before refinement.
    pub candidates: usize,
    /// Unresolved boundary vertices refined on the CPU.
    pub unresolved: usize,
    /// Measured wall-clock nanoseconds of the CPU-side phases (expansion
    /// control flow, candidate selection, Dijkstra refinement). Kernel
    /// bodies execute on the host in this reproduction but their cost is
    /// *simulated*, so they are deliberately excluded from this figure.
    pub cpu_ns: u64,
    /// Wall-clock nanoseconds spent emulating device-side work on the host
    /// (the part excluded from `cpu_ns`).
    pub emulation_ns: u64,
}

impl QueryBreakdown {
    /// Total simulated device time attributable to the query.
    pub fn gpu_total(&self) -> SimNanos {
        self.cleaning + self.candidate + self.transfer_out
    }

    /// The hybrid query clock: measured CPU time + simulated device time.
    pub fn total_ns(&self) -> u64 {
        self.cpu_ns + self.gpu_total().0
    }
}

/// Cumulative counters for a server's lifetime (drained by benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerCounters {
    pub updates_ingested: u64,
    pub tombstones_written: u64,
    pub queries: u64,
    pub gpu_time: SimNanos,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub transfer_time: SimNanos,
    pub messages_cleaned: u64,
    pub kernel_launches: u64,
    /// Cumulative host nanoseconds spent emulating device work.
    pub emulation_ns: u64,
}

impl ServerCounters {
    pub fn record_query(&mut self, b: &QueryBreakdown) {
        self.queries += 1;
        self.gpu_time += b.gpu_total();
        self.h2d_bytes += b.h2d_bytes;
        self.d2h_bytes += b.d2h_bytes;
        self.messages_cleaned += b.messages_cleaned as u64;
        self.emulation_ns += b.emulation_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = QueryBreakdown {
            cleaning: SimNanos(100),
            candidate: SimNanos(50),
            transfer_out: SimNanos(25),
            ..Default::default()
        };
        assert_eq!(b.gpu_total(), SimNanos(175));
    }

    #[test]
    fn counters_accumulate_queries() {
        let mut c = ServerCounters::default();
        let b = QueryBreakdown {
            cleaning: SimNanos(10),
            h2d_bytes: 5,
            messages_cleaned: 3,
            ..Default::default()
        };
        c.record_query(&b);
        c.record_query(&b);
        assert_eq!(c.queries, 2);
        assert_eq!(c.gpu_time, SimNanos(20));
        assert_eq!(c.h2d_bytes, 10);
        assert_eq!(c.messages_cleaned, 6);
    }
}
