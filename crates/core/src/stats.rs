//! Instrumentation: per-query breakdowns and cumulative counters.
//!
//! The paper reports amortised times `(T_u + T_q)/n_q`, DRAM↔GPU transfer
//! volumes and durations (Fig 10 c/d), and kernel-level effects (Fig 4).
//! Everything needed to regenerate those plots is collected here.

use std::sync::atomic::{AtomicU64, Ordering};

use gpu_sim::SimNanos;

use crate::cleaning::CleaningReport;

/// Simulated-device cost of one kNN query, by phase.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueryBreakdown {
    /// Message cleaning: pipelined transfer + X-shuffle kernel (§IV).
    pub cleaning: SimNanos,
    /// Shortest-distance kernel (Algorithm 5) + candidate selection.
    pub candidate: SimNanos,
    /// Result copy back and bookkeeping transfers.
    pub transfer_out: SimNanos,
    /// D2H copy-back portion of `cleaning` (consolidated lists streaming
    /// back to the host). Modeled as strictly after all cleaning compute;
    /// the batch pipeline schedules it on a dedicated transfer stream.
    pub copy_back: SimNanos,
    /// Host→device bytes moved for this query.
    pub h2d_bytes: u64,
    /// Portion of `h2d_bytes` shipped as deltas to device-resident cells.
    pub h2d_delta_bytes: u64,
    /// Portion of `h2d_bytes` shipped as full (cold-path) uploads.
    pub h2d_full_bytes: u64,
    /// Device→host bytes moved for this query.
    pub d2h_bytes: u64,
    /// Cells whose lists the cleaning kernel actually processed.
    pub cells_cleaned: usize,
    /// Cells served straight from the epoch-based clean-skip cache (no
    /// kernel launch, no transfer).
    pub cells_skipped: usize,
    /// Cells cleaned through the device-resident delta-merge path (subset
    /// of `cells_cleaned`).
    pub resident_hits: usize,
    /// Resident cells evicted while serving this query (LRU pressure or
    /// staleness).
    pub evictions: u64,
    /// Messages shipped to the device.
    pub messages_cleaned: usize,
    /// Candidate objects considered before refinement.
    pub candidates: usize,
    /// Unresolved boundary vertices refined on the CPU.
    pub unresolved: usize,
    /// Measured wall-clock nanoseconds of the CPU-side phases (expansion
    /// control flow, candidate selection, Dijkstra refinement). Kernel
    /// bodies execute on the host in this reproduction but their cost is
    /// *simulated*, so they are deliberately excluded from this figure.
    pub cpu_ns: u64,
    /// Wall-clock nanoseconds spent emulating device-side work on the host
    /// (the part excluded from `cpu_ns`).
    pub emulation_ns: u64,
    /// Wall-clock nanoseconds of the refinement phase (also included in
    /// `cpu_ns`; broken out so the worker pool's effect is visible).
    pub refine_ns: u64,
    /// Summed busy nanoseconds across all refinement workers. With `w`
    /// workers, `refine_busy_ns / (w * refine_ns)` is pool utilisation.
    pub refine_busy_ns: u64,
    /// Critical path of the refinement pool: the busiest single worker.
    /// This is the phase's modeled duration on a host with at least
    /// `refine_workers` free cores — the refinement analogue of the
    /// simulated device clock, so worker scaling stays observable even on
    /// core-starved CI machines where `refine_ns` cannot shrink.
    pub refine_critical_ns: u64,
    /// Worker threads the refinement phase ran on (0 = no refinement).
    pub refine_workers: usize,
    /// Simulated device time of the shortest-distance kernel alone,
    /// including its topology upload (subset of `candidate`).
    pub sdist_time: SimNanos,
    /// Relaxation rounds the shortest-distance kernel ran (frontier drains
    /// or dense Bellman–Ford rounds, summed over robustness retries).
    pub sdist_rounds: u64,
    /// Summed frontier sizes across those rounds (dense path: every record,
    /// every round — the work the frontier kernel avoids).
    pub sdist_frontier_sum: u64,
    /// Largest single-round frontier.
    pub sdist_frontier_max: u64,
    /// Candidate vertices whose final distance the kernel settled.
    pub sdist_settled: u64,
    /// Total candidate vertices in the induced subgraph.
    pub sdist_vertices: u64,
    /// Candidate vertices abandoned by k-bounded pruning (their distance
    /// already exceeded the running k-th candidate bound).
    pub sdist_pruned: u64,
    /// H2D bytes spent uploading candidate-cell topology this query.
    pub h2d_topo_bytes: u64,
    /// Candidate cells whose CSR slice was already device-resident.
    pub topo_hits: usize,
    /// Candidate cells whose CSR slice had to be uploaded.
    pub topo_misses: usize,
    /// PCIe transactions avoided by coalescing H2D transfers: for a staged
    /// upload of `n` segments, `n - 1` per-transfer latency charges are
    /// saved relative to shipping each segment on its own.
    pub h2d_coalesced_saved: u64,
    /// Vertices settled by the CPU refinement searches (multi-source mode
    /// settles each vertex at most once per worker; the per-vertex ablation
    /// settles shared subtrees once per unresolved source).
    pub refine_settled: u64,
    /// Out-edges examined (relaxation attempts) by the refinement searches.
    pub refine_relaxed: u64,
    /// Simulated kernel launches this query triggered.
    pub kernel_launches: u64,
    /// SDist rounds whose frontier work was scattered across several shard
    /// devices (the cross-shard cooperative path; subset of `sdist_rounds`).
    pub cross_shard_rounds: u64,
    /// Remote cells this query served from a local read-replica instead of
    /// crossing to the owner device.
    pub replica_hits: u64,
    /// Largest number of distinct owner devices any one expansion set of
    /// this query spanned (1 = the whole query stayed on its primary).
    pub ring_span: usize,
}

/// Split `total` into `weights.len()` integer shares proportional to
/// `weights`, preserving the total exactly.
///
/// Cumulative rounding: share *i* is the difference of consecutive rounded
/// prefix targets `⌊total · W_i / W⌋`, so the shares telescope to `total`
/// with no drift regardless of weight skew. All-zero weights fall back to
/// an equal split. Deterministic (pure integer arithmetic).
pub fn split_u64(total: u64, weights: &[u64]) -> Vec<u64> {
    if weights.is_empty() {
        return Vec::new();
    }
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    let ones = vec![1u64; weights.len()];
    let weights = if sum == 0 { &ones[..] } else { weights };
    let sum: u128 = weights.iter().map(|&w| w as u128).sum();
    let mut out = Vec::with_capacity(weights.len());
    let mut acc_w: u128 = 0;
    let mut assigned: u64 = 0;
    for &w in weights {
        acc_w += w as u128;
        let target = (total as u128 * acc_w / sum) as u64;
        out.push(target - assigned);
        assigned = target;
    }
    debug_assert_eq!(assigned, total);
    out
}

impl QueryBreakdown {
    /// Total simulated device time attributable to the query.
    pub fn gpu_total(&self) -> SimNanos {
        self.cleaning + self.candidate + self.transfer_out
    }

    /// Fold one cleaning round's report into the breakdown — the single
    /// place that knows which [`CleaningReport`] fields a query absorbs, so
    /// the expansion loop, the batch pipeline's shared pass, and the
    /// server's eager-clean entry points cannot drift apart.
    pub fn record_cleaning(&mut self, rep: &CleaningReport) {
        self.cleaning += rep.time;
        self.copy_back += rep.copy_back_time;
        self.h2d_bytes += rep.h2d_bytes;
        self.h2d_delta_bytes += rep.h2d_delta_bytes;
        self.h2d_full_bytes += rep.h2d_full_bytes;
        self.d2h_bytes += rep.d2h_bytes;
        self.messages_cleaned += rep.messages;
        self.cells_cleaned += rep.cells_cleaned;
        self.cells_skipped += rep.cells_skipped;
        self.resident_hits += rep.resident_hits;
        self.evictions += rep.evictions;
    }

    /// The hybrid query clock: measured CPU time + simulated device time.
    pub fn total_ns(&self) -> u64 {
        self.cpu_ns + self.gpu_total().0
    }

    /// Split this breakdown into per-query shares proportional to
    /// `weights`, for attributing a batch's shared pass. Every additive
    /// counter is divided with [`split_u64`], so folding all shares back
    /// with [`Self::absorb`] reconstructs this breakdown exactly (the
    /// max-style fields `sdist_frontier_max` / `refine_workers` are copied,
    /// not divided).
    pub fn split_shares(&self, weights: &[u64]) -> Vec<QueryBreakdown> {
        let mut out = vec![QueryBreakdown::default(); weights.len()];
        macro_rules! split {
            (nanos $($f:ident),+) => {$(
                for (o, s) in out.iter_mut().zip(split_u64(self.$f.0, weights)) {
                    o.$f = SimNanos(s);
                }
            )+};
            (u64 $($f:ident),+) => {$(
                for (o, s) in out.iter_mut().zip(split_u64(self.$f, weights)) {
                    o.$f = s;
                }
            )+};
            (usize $($f:ident),+) => {$(
                for (o, s) in out.iter_mut().zip(split_u64(self.$f as u64, weights)) {
                    o.$f = s as usize;
                }
            )+};
        }
        split!(nanos cleaning, candidate, transfer_out, copy_back, sdist_time);
        split!(u64 h2d_bytes, h2d_delta_bytes, h2d_full_bytes, d2h_bytes, evictions,
               cpu_ns, emulation_ns, refine_ns, refine_busy_ns, refine_critical_ns,
               sdist_rounds, sdist_frontier_sum, sdist_settled, sdist_vertices,
               sdist_pruned, h2d_topo_bytes, h2d_coalesced_saved, refine_settled,
               refine_relaxed, kernel_launches, cross_shard_rounds, replica_hits);
        split!(usize cells_cleaned, cells_skipped, resident_hits, messages_cleaned,
               candidates, unresolved, topo_hits, topo_misses);
        for o in &mut out {
            o.sdist_frontier_max = self.sdist_frontier_max;
            o.refine_workers = self.refine_workers;
            o.ring_span = self.ring_span;
        }
        out
    }

    /// Add another breakdown's counters into this one (used to fold a
    /// batch's attributed share into a query's own breakdown). Additive
    /// fields sum; the max-style fields take the max.
    pub fn absorb(&mut self, other: &QueryBreakdown) {
        macro_rules! add {
            ($($f:ident),+) => { $( self.$f += other.$f; )+ };
        }
        add!(cleaning, candidate, transfer_out, copy_back, sdist_time);
        add!(
            h2d_bytes,
            h2d_delta_bytes,
            h2d_full_bytes,
            d2h_bytes,
            evictions,
            cpu_ns,
            emulation_ns,
            refine_ns,
            refine_busy_ns,
            refine_critical_ns,
            sdist_rounds,
            sdist_frontier_sum,
            sdist_settled,
            sdist_vertices,
            sdist_pruned,
            h2d_topo_bytes,
            h2d_coalesced_saved,
            refine_settled,
            refine_relaxed,
            kernel_launches,
            cross_shard_rounds,
            replica_hits
        );
        add!(
            cells_cleaned,
            cells_skipped,
            resident_hits,
            messages_cleaned,
            candidates,
            unresolved,
            topo_hits,
            topo_misses
        );
        self.sdist_frontier_max = self.sdist_frontier_max.max(other.sdist_frontier_max);
        self.refine_workers = self.refine_workers.max(other.refine_workers);
        self.ring_span = self.ring_span.max(other.ring_span);
    }

    /// Average refinement concurrency: summed worker-busy time over the
    /// phase's wall time (1.0 ≈ serial, approaching `refine_workers` when
    /// the pool is saturated). `None` when the query had no refinement.
    pub fn refine_concurrency(&self) -> Option<f64> {
        if self.refine_ns == 0 {
            return None;
        }
        Some(self.refine_busy_ns as f64 / self.refine_ns as f64)
    }

    /// Modeled parallel speedup of the refinement pool: serial work volume
    /// over the critical path. Host-core independent — on a single-core
    /// machine the workers time-slice, but the per-worker busy times still
    /// reflect how evenly the work was split. `None` when the query had no
    /// refinement.
    pub fn refine_parallel_speedup(&self) -> Option<f64> {
        if self.refine_critical_ns == 0 {
            return None;
        }
        Some(self.refine_busy_ns as f64 / self.refine_critical_ns as f64)
    }
}

/// Number of buckets in the log-bucketed [`Hist`]: values 0–3 get exact
/// buckets, every octave above splits into 4 sub-buckets (HDR-histogram
/// style, 2 significant bits), up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 252;

/// Bucket index of `v` in the log-bucketed histogram. Values 0–3 map to
/// buckets 0–3; larger values map to `(h-1)*4 + sub` where `h` is the
/// highest set bit and `sub` the next two bits — so each bucket spans at
/// most 25% of its lower bound and percentile reads stay within that
/// relative error.
#[inline]
pub fn hist_bucket(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let h = 63 - v.leading_zeros() as usize;
    let sub = ((v >> (h - 2)) & 3) as usize;
    (h - 1) * 4 + sub
}

/// Inclusive `(lo, hi)` value range of bucket `idx` (inverse of
/// [`hist_bucket`]).
pub fn hist_bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < 4 {
        return (idx as u64, idx as u64);
    }
    let h = idx / 4 + 1;
    let sub = (idx % 4) as u64;
    let width = 1u64 << (h - 2);
    let lo = (1u64 << h) + sub * width;
    (lo, lo + (width - 1))
}

/// A reusable log-bucketed histogram for latencies, batch sizes, and other
/// non-negative counts. Fixed 252-bucket footprint, `Copy`, mergeable —
/// replaces the ad-hoc fixed-bound `batch_size_hist`-style arrays. Records
/// are O(1); percentiles are read back with ≤25% relative error (exact
/// below 4) and clamped to the true observed max.
#[derive(Clone, Copy, Debug)]
pub struct Hist {
    pub counts: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Self {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    pub fn record(&mut self, v: u64) {
        self.counts[hist_bucket(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn merge(&mut self, other: &Hist) {
        for (d, s) in self.counts.iter_mut().zip(&other.counts) {
            *d += s;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Nearest-rank percentile (`p` in 0–100): the upper bound of the
    /// bucket holding the `⌈p/100·count⌉`-th smallest value, clamped to
    /// the observed max. Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return hist_bucket_bounds(idx).1.min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(lo, count)` pairs, for compact JSON
    /// emission.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (hist_bucket_bounds(i).0, c))
            .collect()
    }
}

/// Lock-free sibling of [`Hist`] for counter paths that take `&self` from
/// many threads (the ingest side, the serve queue). All stores are relaxed;
/// [`Self::snapshot`] folds it into a plain [`Hist`].
pub struct AtomicHist {
    counts: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for AtomicHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHist")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for AtomicHist {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl AtomicHist {
    pub fn record(&self, v: u64) {
        self.counts[hist_bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> Hist {
        let mut h = Hist::default();
        for (d, s) in h.counts.iter_mut().zip(&self.counts) {
            *d = s.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h.max = self.max.load(Ordering::Relaxed);
        h
    }
}

/// Number of buckets in the subscription guard-radius histogram.
pub const GUARD_HIST_BUCKETS: usize = 8;

/// Upper bounds (inclusive, in weight units) of the guard-radius histogram
/// buckets; the last bucket is open-ended and also absorbs the unbounded
/// (`covers_all`) guards of subscriptions with fewer than k+1 candidates.
pub const GUARD_HIST_BOUNDS: [u64; GUARD_HIST_BUCKETS - 1] =
    [64, 256, 1_024, 4_096, 16_384, 65_536, 262_144];

/// Histogram bucket index for a guard radius `r`.
pub fn guard_hist_bucket(r: u64) -> usize {
    GUARD_HIST_BOUNDS
        .iter()
        .position(|&b| r <= b)
        .unwrap_or(GUARD_HIST_BUCKETS - 1)
}

/// The modeled cost of ingestion's structural operations, in nanoseconds.
///
/// The container the reproduction runs on is single-core, so wall-clock
/// ingest time cannot show the batching win; like the simulated device
/// clock and `refine_critical_ns`, these constants model the cost of each
/// *counted* operation so the improvement is deterministic and
/// host-independent. Values are calibrated to uncontended `parking_lot`
/// lock round-trips and small-`Vec` heap traffic on a ~3 GHz core; only
/// the *ratios* matter for the batched-vs-per-call comparison.
pub mod ingest_model {
    /// One cell-mutex acquire/release pair.
    pub const CELL_LOCK_NS: u64 = 48;
    /// One object-table shard RwLock write acquire/release pair.
    pub const SHARD_LOCK_NS: u64 = 20;
    /// Appending one message to a bucket (slot write + epoch arithmetic).
    pub const APPEND_NS: u64 = 8;
    /// Heap-allocating a fresh bucket slab (avoided by the free-list pool).
    pub const BUCKET_ALLOC_NS: u64 = 150;
}

/// Cumulative counters for a server's lifetime (drained by benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerCounters {
    pub updates_ingested: u64,
    pub tombstones_written: u64,
    pub queries: u64,
    pub gpu_time: SimNanos,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
    pub transfer_time: SimNanos,
    pub messages_cleaned: u64,
    pub kernel_launches: u64,
    /// Cumulative host nanoseconds spent emulating device work.
    pub emulation_ns: u64,
    /// Cells served from the clean-skip cache (kernel launch avoided).
    pub clean_skip_hits: u64,
    /// Cells that needed a real kernel clean.
    pub clean_skip_misses: u64,
    /// H2D bytes shipped as deltas to device-resident cells.
    pub h2d_delta_bytes: u64,
    /// H2D bytes shipped as full (cold-path) uploads.
    pub h2d_full_bytes: u64,
    /// Cells cleaned through the resident delta-merge path.
    pub resident_hits: u64,
    /// Resident cells evicted (LRU pressure or staleness).
    pub evictions: u64,
    /// Cumulative refinement wall time.
    pub refine_ns: u64,
    /// Cumulative summed refinement worker-busy time.
    pub refine_busy_ns: u64,
    /// Cumulative refinement critical-path time (busiest worker per query).
    pub refine_critical_ns: u64,
    /// Cumulative simulated time of the shortest-distance kernel.
    pub sdist_time: SimNanos,
    /// Cumulative shortest-distance relaxation rounds.
    pub sdist_rounds: u64,
    /// Cumulative summed frontier sizes.
    pub sdist_frontier_sum: u64,
    /// Cumulative settled candidate vertices.
    pub sdist_settled: u64,
    /// Cumulative candidate vertices across queries.
    pub sdist_vertices: u64,
    /// Cumulative vertices abandoned by k-bounded pruning.
    pub sdist_pruned: u64,
    /// Cumulative H2D bytes spent on candidate-cell topology.
    pub h2d_topo_bytes: u64,
    /// Candidate cells served from the resident topology store.
    pub topo_hits: u64,
    /// Candidate cells whose topology had to be uploaded.
    pub topo_misses: u64,
    /// Cumulative PCIe transactions avoided by coalesced (staged) H2D
    /// transfers.
    pub h2d_coalesced_saved: u64,
    /// Cumulative vertices settled by CPU refinement searches.
    pub refine_settled: u64,
    /// Cumulative out-edges examined by CPU refinement searches.
    pub refine_relaxed: u64,
    /// Cells cleaned once by a batch's shared pass on behalf of several
    /// queries (the size of each batch's first-ring union, accumulated).
    pub batch_shared_cells: u64,
    /// Cumulative measured CPU nanoseconds of the query path (the `cpu_ns`
    /// of every recorded breakdown), for throughput figures.
    pub query_cpu_ns: u64,
    /// `ingest_batch` invocations.
    pub ingest_batches: u64,
    /// Updates that arrived through `ingest_batch` (subset of
    /// `updates_ingested`).
    pub batched_updates: u64,
    /// Tombstones emitted by the group-commit path, grouped by previous
    /// cell (subset of `tombstones_written`).
    pub tombstones_batched: u64,
    /// Cell-mutex acquisitions performed by the ingest path (the batched
    /// path takes each touched cell's lock once per batch; the per-call
    /// path once per message, twice on a cell move).
    pub ingest_cell_locks: u64,
    /// Measured wall nanoseconds ingest spent waiting to acquire cell
    /// mutexes.
    pub ingest_cell_lock_wait_ns: u64,
    /// Object-table shard-lock acquisitions performed by the ingest path.
    pub ingest_shard_locks: u64,
    /// Measured wall nanoseconds inside ingest calls, summed across all
    /// ingest workers (the serial work volume).
    pub ingest_busy_ns: u64,
    /// Critical path of the ingest worker pool: the busiest single worker,
    /// per batch, accumulated — the modeled batch duration on a host with
    /// `ingest_workers` free cores (see `refine_critical_ns`).
    pub ingest_critical_ns: u64,
    /// Ingest batch-size histogram (log-bucketed, see [`Hist`]).
    pub batch_size_hist: Hist,
    /// Message-list bucket slabs heap-allocated.
    pub bucket_allocs: u64,
    /// Message-list bucket slabs recycled from the cleaning free list
    /// (steady-state ingest allocates nothing).
    pub bucket_reuses: u64,
    /// Buffered-ingest flush events that committed at least one cell to
    /// its shared message list (`ingest_buffered` / `flush_ingest`).
    pub ingest_flushes: u64,
    /// Messages that passed through the thread-local ingest buffers
    /// (lifetime; subset of `updates_ingested + tombstones_written`).
    pub buffered_messages: u64,
    /// High-water mark of the thread-local ingest buffers' footprint, in
    /// bytes (gauge).
    pub buffer_bytes_high_water: u64,
    /// Object-table snapshots served from the epoch-validated cache
    /// without an O(|𝒪|) rebuild (gauge).
    pub snapshot_reuses: u64,
    /// Distinct cells whose dirty epoch an ingest call bumped (run heads of
    /// the group commit, plus per-message appends), accumulated.
    pub cells_dirtied: u64,
    /// Currently active kNN subscriptions (gauge, refreshed each tick).
    pub subs_active: u64,
    /// `tick_subscriptions` invocations that found at least one active
    /// subscription.
    pub subs_ticks: u64,
    /// Subscriptions whose guard region intersected a dirtied cell (or
    /// whose result could expire) and were re-validated, accumulated over
    /// ticks.
    pub subs_invalidated: u64,
    /// Invalidated subscriptions repaired by the bounded delta search.
    pub subs_repaired_delta: u64,
    /// Invalidated subscriptions that fell back to a full re-query (guard
    /// exceeded, fewer than k candidates inside the guard, or an unbounded
    /// guard).
    pub subs_repaired_full: u64,
    /// Subscriptions left untouched by a tick because no dirtied cell
    /// intersected their guard region — the re-evaluations avoided.
    pub subs_skipped: u64,
    /// Guard-radius histogram over every (re)computed guard; bucket bounds
    /// in [`GUARD_HIST_BOUNDS`].
    pub guard_radius_hist: [u64; GUARD_HIST_BUCKETS],
    /// Modeled nanoseconds per `tick_subscriptions` invocation (hybrid
    /// clock: measured host + simulated device), log-bucketed.
    pub subs_tick_ns_hist: Hist,
    /// Measured CPU nanoseconds of the subscription path (initial
    /// evaluations, tick bookkeeping, repairs) — the subscription analogue
    /// of `query_cpu_ns`.
    pub subs_cpu_ns: u64,
    /// Simulated device time consumed by the subscription path (subset of
    /// `gpu_time`).
    pub subs_gpu_time: SimNanos,
    /// Lifetime busy time (simulated kernel + transfer ns) per shard
    /// device; slots `>= num_devices` stay zero (gauge, refreshed on
    /// [`crate::server::GGridServer::counters`]).
    pub shard_busy_ns: [u64; crate::shard::MAX_DEVICES],
    /// Dirtied-cell events attributed to each shard's owned z-range,
    /// accumulated over ingest (only tallied when `num_devices > 1`).
    pub shard_dirtied: [u64; crate::shard::MAX_DEVICES],
    /// Epoch rebalances that actually migrated cells.
    pub rebalances: u64,
    /// Boundary cells re-homed across all rebalances.
    pub cells_migrated: u64,
    /// Read-replicas currently live across all hosting devices (gauge,
    /// refreshed on [`crate::server::GGridServer::counters`]).
    pub replicas_active: u64,
    /// Remote cells served from a local read-replica instead of crossing to
    /// the owner device.
    pub replica_hits: u64,
    /// Replica copies torn down because their cell was written (or its cell
    /// migrated) — the dirtied-cell stream's coherence work.
    pub replica_invalidations: u64,
    /// SDist rounds scattered across several shard devices (the cross-shard
    /// cooperative path).
    pub cross_shard_rounds: u64,
    /// Histogram of each query's widest owner-device span (1 = stayed on
    /// its primary shard; log-bucketed, see [`Hist`]).
    pub ring_span_hist: Hist,
    /// Boundary cells the rebalancer declined to migrate because they were
    /// read-hot but write-cold (replication serves them better).
    pub migrations_skipped_read_hot: u64,
}

impl ServerCounters {
    pub fn record_query(&mut self, b: &QueryBreakdown) {
        self.record_breakdown(b);
        self.queries += 1;
        self.query_cpu_ns += b.cpu_ns;
        if b.ring_span > 0 {
            self.ring_span_hist.record(b.ring_span as u64);
        }
    }

    /// Fold a subscription-path breakdown (initial evaluation, tick
    /// bookkeeping, delta or full repair) into the lifetime counters. Device
    /// and cleaning work lands in the same global fields as ad-hoc queries
    /// — it is real server work — but the host time is attributed to
    /// `subs_cpu_ns` instead of `query_cpu_ns` and no ad-hoc query is
    /// counted, so `queries_per_sec_modeled` stays an ad-hoc figure and
    /// [`Self::subs_modeled_ns`] a subscription one.
    pub fn record_subscription(&mut self, b: &QueryBreakdown) {
        self.record_breakdown(b);
        self.subs_cpu_ns += b.cpu_ns;
        self.subs_gpu_time += b.gpu_total();
    }

    fn record_breakdown(&mut self, b: &QueryBreakdown) {
        self.gpu_time += b.gpu_total();
        self.h2d_bytes += b.h2d_bytes;
        self.d2h_bytes += b.d2h_bytes;
        self.messages_cleaned += b.messages_cleaned as u64;
        self.emulation_ns += b.emulation_ns;
        self.clean_skip_hits += b.cells_skipped as u64;
        self.clean_skip_misses += b.cells_cleaned as u64;
        self.h2d_delta_bytes += b.h2d_delta_bytes;
        self.h2d_full_bytes += b.h2d_full_bytes;
        self.resident_hits += b.resident_hits as u64;
        self.evictions += b.evictions;
        self.refine_ns += b.refine_ns;
        self.refine_busy_ns += b.refine_busy_ns;
        self.refine_critical_ns += b.refine_critical_ns;
        self.sdist_time += b.sdist_time;
        self.sdist_rounds += b.sdist_rounds;
        self.sdist_frontier_sum += b.sdist_frontier_sum;
        self.sdist_settled += b.sdist_settled;
        self.sdist_vertices += b.sdist_vertices;
        self.sdist_pruned += b.sdist_pruned;
        self.h2d_topo_bytes += b.h2d_topo_bytes;
        self.topo_hits += b.topo_hits as u64;
        self.topo_misses += b.topo_misses as u64;
        self.h2d_coalesced_saved += b.h2d_coalesced_saved;
        self.refine_settled += b.refine_settled;
        self.refine_relaxed += b.refine_relaxed;
        self.cross_shard_rounds += b.cross_shard_rounds;
        self.replica_hits += b.replica_hits;
    }

    /// Fold one cleaning round's report into the lifetime counters — used
    /// by the server's eager-clean entry points (`clean_cell_of_edge`,
    /// `clean_all`) so neither can silently drop a field the other records.
    pub fn record_cleaning(&mut self, rep: &CleaningReport) {
        self.gpu_time += rep.time;
        self.h2d_bytes += rep.h2d_bytes;
        self.h2d_delta_bytes += rep.h2d_delta_bytes;
        self.h2d_full_bytes += rep.h2d_full_bytes;
        self.d2h_bytes += rep.d2h_bytes;
        self.messages_cleaned += rep.messages as u64;
        self.clean_skip_hits += rep.cells_skipped as u64;
        self.clean_skip_misses += rep.cells_cleaned as u64;
        self.resident_hits += rep.resident_hits as u64;
        self.evictions += rep.evictions;
    }

    /// Modeled nanoseconds the ingest path spent on structural operations
    /// (locks, appends, slab allocations), per the [`ingest_model`]
    /// constants. Deterministic for a given workload: it counts operations,
    /// not wall time, so the group-commit saving is visible even on a
    /// single-core host where the measured clock cannot shrink.
    pub fn modeled_ingest_ns(&self) -> u64 {
        self.ingest_cell_locks * ingest_model::CELL_LOCK_NS
            + self.ingest_shard_locks * ingest_model::SHARD_LOCK_NS
            + (self.updates_ingested + self.tombstones_written) * ingest_model::APPEND_NS
            + self.bucket_allocs * ingest_model::BUCKET_ALLOC_NS
    }

    /// Measured ingest throughput in updates per second (wall clock,
    /// summed worker-busy time — the serial figure).
    pub fn updates_per_sec_measured(&self) -> f64 {
        if self.ingest_busy_ns == 0 {
            return 0.0;
        }
        self.updates_ingested as f64 * 1e9 / self.ingest_busy_ns as f64
    }

    /// Modeled ingest throughput in updates per second, from
    /// [`Self::modeled_ingest_ns`].
    pub fn updates_per_sec_modeled(&self) -> f64 {
        let ns = self.modeled_ingest_ns();
        if ns == 0 {
            return 0.0;
        }
        self.updates_ingested as f64 * 1e9 / ns as f64
    }

    /// Modeled parallel speedup of the ingest worker pool: summed busy
    /// time over the critical path (see `refine_parallel_speedup`).
    pub fn ingest_parallel_speedup(&self) -> f64 {
        if self.ingest_critical_ns == 0 {
            return 0.0;
        }
        self.ingest_busy_ns as f64 / self.ingest_critical_ns as f64
    }

    /// Measured query throughput in queries per second: queries over the
    /// wall-clock host time they consumed (CPU phases + device emulation).
    /// Host-dependent; the modeled figure below is the deterministic one.
    pub fn queries_per_sec_measured(&self) -> f64 {
        let ns = self.query_cpu_ns + self.emulation_ns;
        if ns == 0 {
            return 0.0;
        }
        self.queries as f64 * 1e9 / ns as f64
    }

    /// Modeled query throughput in queries per second: queries over the
    /// hybrid clock (measured CPU phases + *simulated* device time), the
    /// per-query [`QueryBreakdown::total_ns`] convention accumulated.
    pub fn queries_per_sec_modeled(&self) -> f64 {
        let ns = self.query_cpu_ns + self.gpu_time.0;
        if ns == 0 {
            return 0.0;
        }
        self.queries as f64 * 1e9 / ns as f64
    }

    /// Total modeled nanoseconds of the subscription path: measured host
    /// time plus simulated device time (the hybrid clock, like
    /// [`QueryBreakdown::total_ns`]).
    pub fn subs_modeled_ns(&self) -> u64 {
        self.subs_cpu_ns + self.subs_gpu_time.0
    }

    /// Modeled nanoseconds per subscription tick.
    pub fn subs_modeled_ns_per_tick(&self) -> u64 {
        self.subs_modeled_ns() / self.subs_ticks.max(1)
    }

    /// Per-tick standing-query evaluations the guard region avoided or
    /// downgraded: skipped entirely or repaired by the bounded delta search,
    /// over all evaluations a re-query-everything server would have run.
    pub fn subs_avoided_rate(&self) -> f64 {
        let total = self.subs_skipped + self.subs_repaired_delta + self.subs_repaired_full;
        if total == 0 {
            return 0.0;
        }
        (self.subs_skipped + self.subs_repaired_delta) as f64 / total as f64
    }

    /// Modeled standing-query throughput: results delivered per second of
    /// subscription-path hybrid-clock time. Every active subscription
    /// delivers one (maintained) result per tick, so skipped subscriptions
    /// count as served — that is the point of the guard region.
    pub fn subs_per_sec_modeled(&self) -> f64 {
        let served = self.subs_skipped + self.subs_repaired_delta + self.subs_repaired_full;
        let ns = self.subs_modeled_ns();
        if ns == 0 {
            return 0.0;
        }
        served as f64 * 1e9 / ns as f64
    }

    /// Fraction of bucket-slab demands served from the cleaning free list.
    pub fn bucket_reuse_rate(&self) -> f64 {
        let total = self.bucket_allocs + self.bucket_reuses;
        if total == 0 {
            return 0.0;
        }
        self.bucket_reuses as f64 / total as f64
    }

    /// Fraction of candidate-cell topology lookups served from the
    /// resident store (no upload owed).
    pub fn topo_hit_rate(&self) -> f64 {
        let total = self.topo_hits + self.topo_misses;
        if total == 0 {
            return 0.0;
        }
        self.topo_hits as f64 / total as f64
    }

    /// Fraction of cell-clean requests served from the epoch cache.
    pub fn clean_skip_hit_rate(&self) -> f64 {
        let total = self.clean_skip_hits + self.clean_skip_misses;
        if total == 0 {
            return 0.0;
        }
        self.clean_skip_hits as f64 / total as f64
    }

    /// Fraction of kernel-cleaned cells that took the resident delta-merge
    /// path instead of a full upload.
    pub fn resident_hit_rate(&self) -> f64 {
        if self.clean_skip_misses == 0 {
            return 0.0;
        }
        self.resident_hits as f64 / self.clean_skip_misses as f64
    }

    /// Average refinement concurrency across the server's lifetime (see
    /// [`QueryBreakdown::refine_concurrency`]).
    pub fn refine_concurrency(&self) -> f64 {
        if self.refine_ns == 0 {
            return 0.0;
        }
        self.refine_busy_ns as f64 / self.refine_ns as f64
    }

    /// Lifetime modeled parallel speedup of refinement (see
    /// [`QueryBreakdown::refine_parallel_speedup`]).
    pub fn refine_parallel_speedup(&self) -> f64 {
        if self.refine_critical_ns == 0 {
            return 0.0;
        }
        self.refine_busy_ns as f64 / self.refine_critical_ns as f64
    }
}

/// Ingest-side counters, kept as atomics so `handle_update` and
/// `ingest_batch` can take `&self` and run from many threads at once. The
/// query-side counters stay in the plain [`ServerCounters`] behind
/// `&mut self`; `GGridServer::counters` merges the two into one snapshot.
#[derive(Debug, Default)]
pub struct IngestCounters {
    pub updates_ingested: AtomicU64,
    pub tombstones_written: AtomicU64,
    pub ingest_batches: AtomicU64,
    pub batched_updates: AtomicU64,
    pub tombstones_batched: AtomicU64,
    pub cell_locks: AtomicU64,
    pub cell_lock_wait_ns: AtomicU64,
    pub shard_locks: AtomicU64,
    pub busy_ns: AtomicU64,
    pub critical_ns: AtomicU64,
    pub cells_dirtied: AtomicU64,
    pub batch_size_hist: AtomicHist,
    /// Dirtied-cell events per owning shard (tallied only when
    /// `num_devices > 1` — the rebalancer's load signal).
    pub shard_dirtied: [AtomicU64; crate::shard::MAX_DEVICES],
}

impl IngestCounters {
    /// Record one batch of `n` updates in the size histogram.
    pub fn observe_batch(&self, n: usize) {
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        self.batch_size_hist.record(n as u64);
    }

    /// Merge a relaxed snapshot of the atomics into `c`.
    pub fn merge_into(&self, c: &mut ServerCounters) {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        c.updates_ingested += ld(&self.updates_ingested);
        c.tombstones_written += ld(&self.tombstones_written);
        c.ingest_batches += ld(&self.ingest_batches);
        c.batched_updates += ld(&self.batched_updates);
        c.tombstones_batched += ld(&self.tombstones_batched);
        c.ingest_cell_locks += ld(&self.cell_locks);
        c.ingest_cell_lock_wait_ns += ld(&self.cell_lock_wait_ns);
        c.ingest_shard_locks += ld(&self.shard_locks);
        c.ingest_busy_ns += ld(&self.busy_ns);
        c.ingest_critical_ns += ld(&self.critical_ns);
        c.cells_dirtied += ld(&self.cells_dirtied);
        c.batch_size_hist.merge(&self.batch_size_hist.snapshot());
        for (dst, src) in c.shard_dirtied.iter_mut().zip(&self.shard_dirtied) {
            *dst += ld(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = QueryBreakdown {
            cleaning: SimNanos(100),
            candidate: SimNanos(50),
            transfer_out: SimNanos(25),
            ..Default::default()
        };
        assert_eq!(b.gpu_total(), SimNanos(175));
    }

    #[test]
    fn counters_accumulate_queries() {
        let mut c = ServerCounters::default();
        let b = QueryBreakdown {
            cleaning: SimNanos(10),
            h2d_bytes: 5,
            messages_cleaned: 3,
            ..Default::default()
        };
        c.record_query(&b);
        c.record_query(&b);
        assert_eq!(c.queries, 2);
        assert_eq!(c.gpu_time, SimNanos(20));
        assert_eq!(c.h2d_bytes, 10);
        assert_eq!(c.messages_cleaned, 6);
    }

    #[test]
    fn skip_hit_rate() {
        let mut c = ServerCounters::default();
        assert_eq!(c.clean_skip_hit_rate(), 0.0);
        c.record_query(&QueryBreakdown {
            cells_cleaned: 1,
            cells_skipped: 3,
            ..Default::default()
        });
        assert!((c.clean_skip_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn residency_counters_accumulate() {
        let mut c = ServerCounters::default();
        c.record_query(&QueryBreakdown {
            cells_cleaned: 4,
            resident_hits: 3,
            h2d_delta_bytes: 100,
            h2d_full_bytes: 300,
            evictions: 2,
            ..Default::default()
        });
        assert_eq!(c.resident_hits, 3);
        assert_eq!(c.h2d_delta_bytes, 100);
        assert_eq!(c.h2d_full_bytes, 300);
        assert_eq!(c.evictions, 2);
        assert!((c.resident_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ServerCounters::default().resident_hit_rate(), 0.0);
    }

    #[test]
    fn sdist_counters_accumulate() {
        let mut c = ServerCounters::default();
        c.record_query(&QueryBreakdown {
            sdist_time: SimNanos(40),
            sdist_rounds: 5,
            sdist_frontier_sum: 30,
            sdist_frontier_max: 12,
            sdist_settled: 9,
            sdist_vertices: 14,
            sdist_pruned: 5,
            h2d_topo_bytes: 256,
            topo_hits: 3,
            topo_misses: 1,
            ..Default::default()
        });
        assert_eq!(c.sdist_time, SimNanos(40));
        assert_eq!(c.sdist_rounds, 5);
        assert_eq!(c.sdist_frontier_sum, 30);
        assert_eq!(c.sdist_settled, 9);
        assert_eq!(c.sdist_vertices, 14);
        assert_eq!(c.sdist_pruned, 5);
        assert_eq!(c.h2d_topo_bytes, 256);
        assert!((c.topo_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ServerCounters::default().topo_hit_rate(), 0.0);
    }

    #[test]
    fn refine_concurrency_ratio() {
        let b = QueryBreakdown {
            refine_ns: 100,
            refine_busy_ns: 180,
            refine_critical_ns: 90,
            refine_workers: 2,
            ..Default::default()
        };
        assert!((b.refine_concurrency().unwrap() - 1.8).abs() < 1e-12);
        assert_eq!(QueryBreakdown::default().refine_concurrency(), None);
        let mut c = ServerCounters::default();
        assert_eq!(c.refine_concurrency(), 0.0);
        c.record_query(&b);
        assert!((c.refine_concurrency() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn split_u64_preserves_total_exactly() {
        // Skewed weights that do not divide the total.
        let shares = split_u64(1_000_003, &[7, 1, 992, 0, 3]);
        assert_eq!(shares.len(), 5);
        assert_eq!(shares.iter().sum::<u64>(), 1_000_003);
        // Proportionality: the heavy weight takes the lion's share.
        assert!(shares[2] > 980_000);
        assert_eq!(split_u64(0, &[1, 2, 3]), vec![0, 0, 0]);
        assert_eq!(split_u64(10, &[]), Vec::<u64>::new());
        // All-zero weights fall back to an equal split, still exact.
        assert_eq!(split_u64(10, &[0, 0, 0]).iter().sum::<u64>(), 10);
    }

    #[test]
    fn split_shares_telescopes_back_to_original() {
        let shared = QueryBreakdown {
            cleaning: SimNanos(1_000_001),
            candidate: SimNanos(37),
            copy_back: SimNanos(501),
            h2d_bytes: 999,
            h2d_full_bytes: 800,
            h2d_delta_bytes: 199,
            d2h_bytes: 55,
            cells_cleaned: 13,
            cells_skipped: 4,
            resident_hits: 2,
            messages_cleaned: 777,
            emulation_ns: 123_457,
            h2d_topo_bytes: 4096,
            topo_hits: 3,
            topo_misses: 7,
            h2d_coalesced_saved: 6,
            kernel_launches: 1,
            evictions: 3,
            sdist_frontier_max: 11,
            ..Default::default()
        };
        let weights = [5, 0, 2, 9];
        let shares = shared.split_shares(&weights);
        assert_eq!(shares.len(), 4);
        let mut folded = QueryBreakdown::default();
        for s in &shares {
            folded.absorb(s);
        }
        assert_eq!(folded.gpu_total(), shared.gpu_total());
        assert_eq!(folded.copy_back, shared.copy_back);
        assert_eq!(folded.h2d_bytes, shared.h2d_bytes);
        assert_eq!(folded.h2d_full_bytes, shared.h2d_full_bytes);
        assert_eq!(folded.h2d_delta_bytes, shared.h2d_delta_bytes);
        assert_eq!(folded.d2h_bytes, shared.d2h_bytes);
        assert_eq!(folded.cells_cleaned, shared.cells_cleaned);
        assert_eq!(folded.cells_skipped, shared.cells_skipped);
        assert_eq!(folded.messages_cleaned, shared.messages_cleaned);
        assert_eq!(folded.emulation_ns, shared.emulation_ns);
        assert_eq!(folded.h2d_topo_bytes, shared.h2d_topo_bytes);
        assert_eq!(folded.topo_hits, shared.topo_hits);
        assert_eq!(folded.topo_misses, shared.topo_misses);
        assert_eq!(folded.h2d_coalesced_saved, shared.h2d_coalesced_saved);
        assert_eq!(folded.kernel_launches, shared.kernel_launches);
        assert_eq!(folded.evictions, shared.evictions);
        assert_eq!(folded.sdist_frontier_max, shared.sdist_frontier_max);
        // Proportionality: the weight-9 query carries more than the
        // weight-2 one, and the weight-0 query carries (almost) nothing.
        assert!(shares[3].cleaning > shares[2].cleaning);
        assert_eq!(shares[1].h2d_bytes, 0);
    }

    #[test]
    fn query_throughput_counters() {
        let mut c = ServerCounters::default();
        assert_eq!(c.queries_per_sec_measured(), 0.0);
        assert_eq!(c.queries_per_sec_modeled(), 0.0);
        c.record_query(&QueryBreakdown {
            cleaning: SimNanos(300),
            cpu_ns: 500,
            emulation_ns: 700,
            h2d_coalesced_saved: 4,
            refine_settled: 10,
            refine_relaxed: 25,
            kernel_launches: 3,
            ..Default::default()
        });
        assert_eq!(c.query_cpu_ns, 500);
        assert_eq!(c.h2d_coalesced_saved, 4);
        assert_eq!(c.refine_settled, 10);
        assert_eq!(c.refine_relaxed, 25);
        // measured: 1 query over 500 + 700 host ns.
        assert!((c.queries_per_sec_measured() - 1e9 / 1200.0).abs() < 1e-3);
        // modeled: 1 query over 500 cpu + 300 simulated device ns.
        assert!((c.queries_per_sec_modeled() - 1e9 / 800.0).abs() < 1e-3);
    }

    #[test]
    fn hist_buckets_cover_all_values() {
        // Exact buckets below 4, then 4 sub-buckets per octave.
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(3), 3);
        assert_eq!(hist_bucket(4), 4);
        assert_eq!(hist_bucket(7), 7);
        assert_eq!(hist_bucket(8), 8);
        assert_eq!(hist_bucket(9), 8);
        assert_eq!(hist_bucket(10), 9);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
        // Bounds invert the bucket index and tile the line contiguously.
        let mut expect_lo = 0u64;
        for idx in 0..HIST_BUCKETS {
            let (lo, hi) = hist_bucket_bounds(idx);
            assert_eq!(lo, expect_lo, "bucket {idx} not contiguous");
            assert!(hi >= lo);
            assert_eq!(hist_bucket(lo), idx);
            assert_eq!(hist_bucket(hi), idx);
            // ≤25% relative width above the exact range.
            if lo >= 4 {
                assert!(hi - lo <= lo / 4);
            }
            expect_lo = hi.wrapping_add(1);
        }
        assert_eq!(expect_lo, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn hist_percentiles_within_bucket_error() {
        let mut h = Hist::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.max, 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        for (p, exact) in [(50.0, 500u64), (99.0, 990), (99.9, 999)] {
            let got = h.percentile(p);
            assert!(got >= exact, "p{p} read {got} below exact {exact}");
            assert!(
                got as f64 <= exact as f64 * 1.25 + 1.0,
                "p{p} read {got} exceeds 25% error over {exact}"
            );
        }
        // Percentiles never exceed the observed max.
        assert_eq!(h.percentile(100.0), 1000);
        assert_eq!(Hist::default().percentile(99.0), 0);
    }

    #[test]
    fn hist_merge_and_nonzero() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        a.record(2);
        a.record(100);
        b.record(7000);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.sum, 7102);
        assert_eq!(a.max, 7000);
        let nz = a.nonzero();
        assert_eq!(nz.len(), 3);
        assert_eq!(nz[0], (2, 1));
        assert!(!a.is_empty() && Hist::default().is_empty());
    }

    #[test]
    fn atomic_hist_snapshot_matches_plain() {
        let ah = AtomicHist::default();
        let mut h = Hist::default();
        for v in [0u64, 5, 63, 4096, 123_456_789] {
            ah.record(v);
            h.record(v);
        }
        let snap = ah.snapshot();
        assert_eq!(snap.count, h.count);
        assert_eq!(snap.sum, h.sum);
        assert_eq!(snap.max, h.max);
        assert_eq!(snap.counts, h.counts);
        assert!(format!("{ah:?}").contains("count"));
    }

    #[test]
    fn guard_hist_buckets_cover_all_radii() {
        assert_eq!(guard_hist_bucket(0), 0);
        assert_eq!(guard_hist_bucket(64), 0);
        assert_eq!(guard_hist_bucket(65), 1);
        assert_eq!(guard_hist_bucket(262_144), GUARD_HIST_BUCKETS - 2);
        assert_eq!(guard_hist_bucket(u64::MAX / 4), GUARD_HIST_BUCKETS - 1);
    }

    #[test]
    fn subscription_counters_and_rates() {
        let mut c = ServerCounters::default();
        assert_eq!(c.subs_avoided_rate(), 0.0);
        assert_eq!(c.subs_per_sec_modeled(), 0.0);
        c.record_subscription(&QueryBreakdown {
            cleaning: SimNanos(300),
            cpu_ns: 700,
            ..Default::default()
        });
        // Subscription work is not an ad-hoc query...
        assert_eq!(c.queries, 0);
        assert_eq!(c.query_cpu_ns, 0);
        // ...but it is real device work.
        assert_eq!(c.gpu_time, SimNanos(300));
        assert_eq!(c.subs_gpu_time, SimNanos(300));
        assert_eq!(c.subs_cpu_ns, 700);
        assert_eq!(c.subs_modeled_ns(), 1000);
        c.subs_ticks = 2;
        assert_eq!(c.subs_modeled_ns_per_tick(), 500);
        c.subs_skipped = 6;
        c.subs_repaired_delta = 2;
        c.subs_repaired_full = 2;
        assert!((c.subs_avoided_rate() - 0.8).abs() < 1e-12);
        // 10 served results over 1000 hybrid ns.
        assert!((c.subs_per_sec_modeled() - 1e7).abs() < 1e-3);
    }

    #[test]
    fn ingest_counters_merge_snapshot() {
        let i = IngestCounters::default();
        i.updates_ingested.store(10, Ordering::Relaxed);
        i.tombstones_written.store(3, Ordering::Relaxed);
        i.cell_locks.store(7, Ordering::Relaxed);
        i.shard_locks.store(10, Ordering::Relaxed);
        i.observe_batch(5);
        i.observe_batch(700);
        let mut c = ServerCounters::default();
        i.merge_into(&mut c);
        assert_eq!(c.updates_ingested, 10);
        assert_eq!(c.tombstones_written, 3);
        assert_eq!(c.ingest_cell_locks, 7);
        assert_eq!(c.ingest_batches, 2);
        assert_eq!(c.batch_size_hist.count, 2);
        assert_eq!(c.batch_size_hist.counts[hist_bucket(5)], 1);
        assert_eq!(c.batch_size_hist.counts[hist_bucket(700)], 1);
        assert_eq!(c.batch_size_hist.max, 700);
        // The model charges every counted operation.
        assert_eq!(
            c.modeled_ingest_ns(),
            7 * ingest_model::CELL_LOCK_NS
                + 10 * ingest_model::SHARD_LOCK_NS
                + 13 * ingest_model::APPEND_NS
        );
    }

    #[test]
    fn record_cleaning_accumulates_all_byte_counters() {
        let rep = CleaningReport {
            time: SimNanos(50),
            h2d_bytes: 100,
            h2d_delta_bytes: 40,
            h2d_full_bytes: 60,
            d2h_bytes: 30,
            messages: 5,
            cells_cleaned: 2,
            cells_skipped: 1,
            resident_hits: 1,
            evictions: 1,
            ..Default::default()
        };
        let mut c = ServerCounters::default();
        c.record_cleaning(&rep);
        c.record_cleaning(&rep);
        assert_eq!(c.gpu_time, SimNanos(100));
        assert_eq!(c.h2d_bytes, 200);
        assert_eq!(c.h2d_delta_bytes, 80);
        assert_eq!(c.h2d_full_bytes, 120);
        assert_eq!(c.d2h_bytes, 60);
        assert_eq!(c.messages_cleaned, 10);
        assert_eq!(c.clean_skip_hits, 2);
        assert_eq!(c.clean_skip_misses, 4);
        let mut b = QueryBreakdown::default();
        b.record_cleaning(&rep);
        assert_eq!(b.cleaning, SimNanos(50));
        assert_eq!(b.h2d_bytes, 100);
        assert_eq!(b.d2h_bytes, 30);
        assert_eq!(b.evictions, 1);
    }

    #[test]
    fn ingest_throughput_and_speedup() {
        let c = ServerCounters {
            updates_ingested: 1_000,
            ingest_busy_ns: 500_000,
            ingest_critical_ns: 250_000,
            ingest_cell_locks: 100,
            ingest_shard_locks: 1_000,
            ..Default::default()
        };
        assert!((c.updates_per_sec_measured() - 2e6).abs() < 1.0);
        assert!(c.updates_per_sec_modeled() > 0.0);
        assert!((c.ingest_parallel_speedup() - 2.0).abs() < 1e-12);
        assert_eq!(ServerCounters::default().updates_per_sec_measured(), 0.0);
        assert_eq!(ServerCounters::default().updates_per_sec_modeled(), 0.0);
        assert_eq!(ServerCounters::default().ingest_parallel_speedup(), 0.0);
        assert_eq!(ServerCounters::default().bucket_reuse_rate(), 0.0);
        let c2 = ServerCounters {
            bucket_allocs: 1,
            bucket_reuses: 3,
            ..Default::default()
        };
        assert!((c2.bucket_reuse_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn cooperative_counters_accumulate() {
        let mut c = ServerCounters::default();
        c.record_query(&QueryBreakdown {
            cross_shard_rounds: 2,
            replica_hits: 3,
            ring_span: 3,
            ..Default::default()
        });
        c.record_query(&QueryBreakdown {
            ring_span: 1,
            ..Default::default()
        });
        assert_eq!(c.cross_shard_rounds, 2);
        assert_eq!(c.replica_hits, 3);
        assert_eq!(c.ring_span_hist.count, 2);
        assert_eq!(c.ring_span_hist.max, 3);
        // Shares fold back exactly; ring_span copies like the max fields.
        let shared = QueryBreakdown {
            cross_shard_rounds: 5,
            replica_hits: 7,
            ring_span: 4,
            ..Default::default()
        };
        let mut folded = QueryBreakdown::default();
        for s in shared.split_shares(&[3, 1]) {
            folded.absorb(&s);
        }
        assert_eq!(folded.cross_shard_rounds, 5);
        assert_eq!(folded.replica_hits, 7);
        assert_eq!(folded.ring_span, 4);
    }

    #[test]
    fn refine_parallel_speedup_ratio() {
        // Two workers, perfectly balanced: speedup = 2, independent of how
        // the host scheduled the threads (wall time does not appear).
        let b = QueryBreakdown {
            refine_ns: 200, // single-core host: wall ≈ busy
            refine_busy_ns: 200,
            refine_critical_ns: 100,
            refine_workers: 2,
            ..Default::default()
        };
        assert!((b.refine_parallel_speedup().unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(QueryBreakdown::default().refine_parallel_speedup(), None);
        let mut c = ServerCounters::default();
        assert_eq!(c.refine_parallel_speedup(), 0.0);
        c.record_query(&b);
        assert!((c.refine_parallel_speedup() - 2.0).abs() < 1e-12);
    }
}
