//! Per-thread CPU-time clock for worker busy accounting.
//!
//! `refine_busy_ns` is defined as the time refinement workers spend
//! *searching* — a property of the algorithm, not of the machine's load.
//! A wall clock conflates the two: a scheduler preemption in the middle of
//! a bounded Dijkstra charges the wait to the search, which makes
//! micro-scale busy totals (hundreds of microseconds) swing by 2× under
//! background load and drowns the very contrasts the counters exist to
//! expose. [`BusyClock`] reads `CLOCK_THREAD_CPUTIME_ID` instead: time the
//! kernel actually ran *this thread*, preemption excluded.
//!
//! The workspace deliberately has no external dependencies, so on
//! x86-64 Linux the clock is read with a raw `clock_gettime` syscall
//! (two registers in, a 16-byte `timespec` out — no libc needed). Other
//! targets fall back to a monotonic wall clock, which keeps the type
//! portable at the cost of noisier numbers.
//!
//! A caveat inherited from the definition: CPU time is only attributable
//! while the measuring code stays on one thread. Each refinement worker
//! times its own chunk from start to finish on its own thread, so the
//! accounting here is exact.

/// A started busy-time measurement on the current thread.
///
/// Constructed by [`BusyClock::start`]; [`BusyClock::elapsed_ns`] must be
/// called from the same thread that started it.
#[derive(Debug)]
pub struct BusyClock {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    start_ns: u64,
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    start: std::time::Instant,
}

impl BusyClock {
    /// Stamp the current thread's CPU clock.
    pub fn start() -> Self {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            Self {
                start_ns: thread_cpu_ns(),
            }
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            Self {
                start: std::time::Instant::now(),
            }
        }
    }

    /// CPU nanoseconds this thread has run since [`start`](Self::start).
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            thread_cpu_ns().saturating_sub(self.start_ns)
        }
        #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
        {
            self.start.elapsed().as_nanos() as u64
        }
    }
}

/// `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` as nanoseconds, via a raw
/// syscall (the dependency tree has no libc).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn thread_cpu_ns() -> u64 {
    const SYS_CLOCK_GETTIME: i64 = 228;
    const CLOCK_THREAD_CPUTIME_ID: i64 = 3;
    // struct timespec { tv_sec: i64, tv_nsec: i64 }
    let mut ts = [0i64; 2];
    let ret: i64;
    unsafe {
        std::arch::asm!(
            // x86-64 syscall ABI: number in rax, args in rdi/rsi; the
            // instruction clobbers rcx and r11; result returns in rax.
            "syscall",
            inlateout("rax") SYS_CLOCK_GETTIME => ret,
            in("rdi") CLOCK_THREAD_CPUTIME_ID,
            in("rsi") ts.as_mut_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    // vDSO-less path can't fail for a valid clock id on a mapped buffer,
    // but guard anyway: a zero reading degrades to "no time observed"
    // rather than a bogus huge delta.
    if ret != 0 {
        return 0;
    }
    (ts[0] as u64)
        .wrapping_mul(1_000_000_000)
        .wrapping_add(ts[1] as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_under_cpu_work() {
        let clock = BusyClock::start();
        // Spin enough that the thread provably accumulates CPU time.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_add(i ^ (acc >> 3));
        }
        assert!(acc != 42, "keep the loop from being optimised out");
        let ns = clock.elapsed_ns();
        assert!(ns > 0, "busy clock must advance under CPU work");
        // Sanity ceiling: a few million adds cannot take a minute of CPU.
        assert!(ns < 60_000_000_000);
    }

    #[test]
    fn elapsed_is_monotonic() {
        let clock = BusyClock::start();
        let a = clock.elapsed_ns();
        let b = clock.elapsed_ns();
        assert!(b >= a);
    }
}
