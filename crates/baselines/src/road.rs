//! ROAD (Lee, Lee, Zheng — EDBT 2009), extended to moving objects.
//!
//! ROAD organises the road network as a hierarchy of regions ("Rnets") with
//! precomputed *shortcuts* between each region's border vertices (the
//! "route overlay"), and keeps an *association directory* mapping edges to
//! the objects currently on them. A kNN search is a network expansion that
//! skips over object-empty regions by taking the shortcuts instead of
//! walking their interior.
//!
//! Following the V-Tree paper's methodology, the extension to moving
//! objects maintains the association directory **eagerly**: every location
//! update rewrites the edge→objects entry and the occupancy counters of
//! every hierarchy level — the per-message cost that dominates ROAD's
//! running time in the paper's experiments (its query cost barely moves
//! with k, Fig 7, because updates dwarf it).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use ggrid::api::{IndexSize, MovingObjectIndex, SimCosts};
use ggrid::message::{ObjectId, Timestamp};
use roadnet::graph::{Distance, EdgeId, Graph, VertexId, INFINITY};
use roadnet::EdgePosition;

use crate::region::{RegionId, RegionIndex};

/// Default Rnet capacity (vertices per lowest-level region).
pub const DEFAULT_RNET_CAPACITY: usize = 32;

pub struct Road {
    regions: Arc<RegionIndex>,
    graph: Arc<Graph>,
    /// Shortcuts of the route overlay: for each region, its border vertices
    /// and the induced border→border distances.
    shortcuts: Vec<Vec<(VertexId, VertexId, Distance)>>,
    /// Association directory: objects currently on each edge.
    edge_objects: HashMap<EdgeId, Vec<ObjectId>>,
    objects: HashMap<ObjectId, (EdgePosition, Timestamp)>,
    /// Occupancy per region per hierarchy level; `level_counts[l]` has
    /// `2^l` Rnets (region ids share the bisection bit-prefix structure).
    level_counts: Vec<Vec<u32>>,
    /// The association directory proper: at every hierarchy level, each
    /// Rnet keeps the set of objects currently inside it, and **every**
    /// message rewrites the object's entry at every level (remove from the
    /// old Rnet's set, insert into the new one, or refresh in place). This
    /// per-update maintenance across all levels is what dominates ROAD's
    /// running time in the paper's moving-object extension.
    level_members: Vec<HashMap<u32, HashMap<ObjectId, EdgeId>>>,
    /// Materialised per-leaf-Rnet object directory, *rebuilt in full*
    /// whenever any member object updates — the behaviour of the paper's
    /// ROAD extension (ROAD's directory was designed for static objects;
    /// keeping it current costs O(objects in the Rnet) per message, which
    /// is why ROAD degrades fastest as the fleet grows, Figs 8/9).
    rnet_directory: HashMap<u32, Vec<(ObjectId, EdgeId)>>,
    /// Route-overlay activation state per Rnet: shortcuts are only taken
    /// across *empty* Rnets, so whenever an Rnet's occupancy flips between
    /// zero and non-zero the overlay entries for that Rnet are rewritten —
    /// O(|borders|²) work per flip, and with sparse fleets objects flip
    /// Rnets constantly. This is the structural churn behind ROAD's poor
    /// update scaling in the paper.
    shortcut_active: Vec<Vec<bool>>,
    depth: u32,
    t_delta_ms: u64,
    update_ops: u64,
}

impl Road {
    pub fn new(graph: Graph, rnet_capacity: usize, t_delta_ms: u64) -> Self {
        let graph = Arc::new(graph);
        let regions = Arc::new(RegionIndex::build(graph.clone(), rnet_capacity));
        Self::from_regions(graph, regions, t_delta_ms)
    }

    pub fn with_defaults(graph: Graph) -> Self {
        Self::new(graph, DEFAULT_RNET_CAPACITY, 10_000)
    }

    /// Build over a pre-built (shared) region substrate — lets harnesses
    /// partition and precompute matrices once per dataset.
    pub fn from_regions(graph: Arc<Graph>, regions: Arc<RegionIndex>, t_delta_ms: u64) -> Self {
        let n_regions = regions.num_regions();
        assert!(n_regions.is_power_of_two());
        let depth = n_regions.trailing_zeros();

        let shortcuts: Vec<Vec<(VertexId, VertexId, Distance)>> = regions
            .region_ids()
            .map(|r| {
                let bs = &regions.region(r).borders;
                let mut sc = Vec::new();
                for &a in bs {
                    for &b in bs {
                        if a == b {
                            continue;
                        }
                        let d = regions.induced_dist(a, b);
                        if d < INFINITY {
                            sc.push((a, b, d));
                        }
                    }
                }
                sc
            })
            .collect();

        let level_counts = (0..=depth).map(|l| vec![0u32; 1usize << l]).collect();
        let level_members = (0..=depth).map(|_| HashMap::new()).collect();
        let rnet_directory = HashMap::new();
        let shortcut_active = shortcuts.iter().map(|sc| vec![true; sc.len()]).collect();

        Self {
            graph,
            shortcuts,
            edge_objects: HashMap::new(),
            objects: HashMap::new(),
            level_counts,
            level_members,
            rnet_directory,
            shortcut_active,
            depth,
            t_delta_ms,
            update_ops: 0,
            regions,
        }
    }

    pub fn regions(&self) -> &RegionIndex {
        &self.regions
    }

    pub fn update_ops(&self) -> u64 {
        self.update_ops
    }

    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    fn bump_levels(&mut self, region: RegionId, delta: i64) {
        let was_empty = self.region_empty(region);
        for l in 0..=self.depth {
            let idx = (region.0 >> (self.depth - l)) as usize;
            let c = &mut self.level_counts[l as usize][idx];
            *c = (*c as i64 + delta).max(0) as u32;
            self.update_ops += 1;
        }
        let is_empty = self.region_empty(region);
        if was_empty != is_empty {
            // Occupancy flipped: (de)activate the Rnet's overlay shortcuts.
            for flag in self.shortcut_active[region.index()].iter_mut() {
                *flag = is_empty;
                self.update_ops += 1;
            }
        }
    }

    fn region_empty(&self, r: RegionId) -> bool {
        self.level_counts[self.depth as usize][r.index()] == 0
    }

    fn knn_impl(&self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        assert!(k >= 1);
        let graph = &self.graph;
        debug_assert!(q.is_valid(graph));
        let horizon = now.saturating_sub_ms(self.t_delta_ms);
        let mut best: HashMap<ObjectId, Distance> = HashMap::new();

        // Same-edge candidates ahead of q.
        if let Some(objs) = self.edge_objects.get(&q.edge) {
            for &o in objs {
                let (p, t) = self.objects[&o];
                if t < horizon || p.edge != q.edge || p.offset < q.offset {
                    continue;
                }
                let d = (p.offset - q.offset) as Distance;
                best.entry(o).and_modify(|b| *b = (*b).min(d)).or_insert(d);
            }
        }

        // Network expansion with empty-Rnet skipping.
        let q_dest = graph.edge(q.edge).dest;
        // The seed's region is force-expanded even when empty: the search
        // must be able to walk out of it from a non-border vertex.
        let force_region = self.regions.region_of_vertex(q_dest);

        let mut dist: HashMap<VertexId, Distance> = HashMap::new();
        let mut heap: BinaryHeap<Reverse<(Distance, u32)>> = BinaryHeap::new();
        dist.insert(q_dest, q.to_dest(graph));
        heap.push(Reverse((q.to_dest(graph), q_dest.0)));

        let mut kth_cache = INFINITY;
        let mut dirty = true;
        while let Some(Reverse((d, v))) = heap.pop() {
            let v = VertexId(v);
            if d > dist.get(&v).copied().unwrap_or(INFINITY) {
                continue;
            }
            if dirty {
                kth_cache = kth_smallest(&best, k);
                dirty = false;
            }
            if d >= kth_cache {
                break;
            }
            let rv = self.regions.region_of_vertex(v);
            let rv_empty = self.region_empty(rv) && rv != force_region;

            // Discover objects on v's out-edges via the association
            // directory.
            for e in graph.out_edges(v) {
                if let Some(objs) = self.edge_objects.get(&e) {
                    for &o in objs {
                        let (p, t) = self.objects[&o];
                        if t < horizon || p.edge != e {
                            continue;
                        }
                        let cand = d.saturating_add(p.from_source());
                        let slot = best.entry(o).or_insert(INFINITY);
                        if cand < *slot {
                            *slot = cand;
                            dirty = true;
                        }
                    }
                }
            }

            // Relaxation: interior edges of empty Rnets are skipped — the
            // shortcuts below carry the search across them.
            for e in graph.out_edges(v) {
                let edge = graph.edge(e);
                let rd = self.regions.region_of_vertex(edge.dest);
                if rv_empty && rd == rv {
                    continue; // interior edge of an empty Rnet
                }
                let nd = d + edge.weight as Distance;
                let slot = dist.entry(edge.dest).or_insert(INFINITY);
                if nd < *slot {
                    *slot = nd;
                    heap.push(Reverse((nd, edge.dest.0)));
                }
            }
            if rv_empty {
                for (si, &(a, b, w)) in self.shortcuts[rv.index()].iter().enumerate() {
                    if a != v || !self.shortcut_active[rv.index()][si] {
                        continue;
                    }
                    let nd = d + w;
                    let slot = dist.entry(b).or_insert(INFINITY);
                    if nd < *slot {
                        *slot = nd;
                        heap.push(Reverse((nd, b.0)));
                    }
                }
            }
        }

        let mut items: Vec<(ObjectId, Distance)> =
            best.into_iter().filter(|&(_, d)| d < INFINITY).collect();
        items.sort_by_key(|&(o, d)| (d, o));
        items.truncate(k);
        items
    }

    /// Bytes of the route overlay.
    pub fn overlay_bytes(&self) -> u64 {
        let sc: u64 = self.shortcuts.iter().map(|s| (s.len() * 20) as u64).sum();
        self.regions.matrices_bytes() + sc
    }
}

impl MovingObjectIndex for Road {
    fn name(&self) -> &'static str {
        "ROAD"
    }

    /// Eager update: rewrite the association directory entry and the
    /// occupancy counters of every hierarchy level.
    fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        let old = self.objects.insert(object, (position, time));
        self.update_ops += 1;
        if let Some((old_pos, _)) = old {
            if let Some(list) = self.edge_objects.get_mut(&old_pos.edge) {
                list.retain(|&o| o != object);
                if list.is_empty() {
                    self.edge_objects.remove(&old_pos.edge);
                }
                self.update_ops += 1;
            }
            let old_region = self.regions.region_of_edge(old_pos.edge);
            let new_region = self.regions.region_of_edge(position.edge);
            if old_region != new_region {
                self.bump_levels(old_region, -1);
                self.bump_levels(new_region, 1);
            }
        } else {
            self.bump_levels(self.regions.region_of_edge(position.edge), 1);
        }
        self.edge_objects
            .entry(position.edge)
            .or_default()
            .push(object);
        self.update_ops += 1;
        // Rewrite the object's association at every Rnet level: remove it
        // from the Rnet it previously occupied at that level and insert it
        // into the new one (a refresh when they coincide).
        let new_region = self.regions.region_of_edge(position.edge);
        let old_region = old.map(|(p, _)| self.regions.region_of_edge(p.edge));
        for l in 0..=self.depth {
            if let Some(old_r) = old_region {
                let old_idx = old_r.0 >> (self.depth - l);
                if let Some(set) = self.level_members[l as usize].get_mut(&old_idx) {
                    set.remove(&object);
                    if set.is_empty() {
                        self.level_members[l as usize].remove(&old_idx);
                    }
                }
                self.update_ops += 1;
            }
            let new_idx = new_region.0 >> (self.depth - l);
            self.level_members[l as usize]
                .entry(new_idx)
                .or_default()
                .insert(object, position.edge);
            self.update_ops += 1;
        }
        // Rebuild the leaf Rnet's materialised directory entry from its
        // membership set — O(|Rnet|) per message.
        let leaf_idx = new_region.0;
        let rebuilt: Vec<(ObjectId, EdgeId)> = self.level_members[self.depth as usize]
            .get(&leaf_idx)
            .map(|set| set.iter().map(|(&o, &e)| (o, e)).collect())
            .unwrap_or_default();
        self.update_ops += rebuilt.len() as u64;
        self.rnet_directory.insert(leaf_idx, rebuilt);
        if let Some(old_r) = old_region {
            if old_r != new_region {
                let rebuilt_old: Vec<(ObjectId, EdgeId)> = self.level_members[self.depth as usize]
                    .get(&old_r.0)
                    .map(|set| set.iter().map(|(&o, &e)| (o, e)).collect())
                    .unwrap_or_default();
                self.update_ops += rebuilt_old.len() as u64;
                if rebuilt_old.is_empty() {
                    self.rnet_directory.remove(&old_r.0);
                } else {
                    self.rnet_directory.insert(old_r.0, rebuilt_old);
                }
            }
        }
    }

    fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        self.knn_impl(q, k, now)
    }

    fn sim_costs(&self) -> SimCosts {
        SimCosts::default() // CPU-only baseline
    }

    fn index_size(&self) -> IndexSize {
        let assoc: u64 = self
            .edge_objects
            .values()
            .map(|v| 16 + v.len() as u64 * 8)
            .sum::<u64>()
            + (self.objects.len() * 48) as u64;
        let counts: u64 = self.level_counts.iter().map(|l| (l.len() * 4) as u64).sum();
        let directory: u64 = self
            .rnet_directory
            .values()
            .map(|v| 16 + v.len() as u64 * 12)
            .sum();
        let assoc_levels: u64 = self
            .level_members
            .iter()
            .flat_map(|m| m.values())
            .map(|set| 16 + (set.capacity() * 20) as u64)
            .sum();
        IndexSize {
            cpu_bytes: self.overlay_bytes() + assoc + counts + assoc_levels + directory,
            gpu_bytes: 0,
        }
    }
}

fn kth_smallest(best: &HashMap<ObjectId, Distance>, k: usize) -> Distance {
    if best.len() < k {
        return INFINITY;
    }
    let mut ds: Vec<Distance> = best.values().copied().collect();
    let (_, kth, _) = ds.select_nth_unstable(k - 1);
    *kth
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::reference_knn;
    use roadnet::gen;

    fn scatter(g: &Graph, n: u64) -> Vec<(u64, EdgePosition)> {
        (0..n)
            .map(|i| {
                let e = EdgeId(((i * 29 + 1) % g.num_edges() as u64) as u32);
                let off = (i % (g.edge(e).weight as u64 + 1)) as u32;
                (i, EdgePosition::new(e, off))
            })
            .collect()
    }

    #[test]
    fn matches_reference() {
        let g = gen::toy(23);
        let mut r = Road::new(g.clone(), 8, 100_000);
        let objs = scatter(&g, 14);
        for &(i, p) in &objs {
            r.handle_update(ObjectId(i), p, Timestamp(100 + i));
        }
        for (qi, k) in [(0u32, 1usize), (11, 4), (40, 9), (70, 14)] {
            let q = EdgePosition::at_source(EdgeId(qi % g.num_edges() as u32));
            let got = r.knn(q, k, Timestamp(500));
            let want = reference_knn(&g, q, &objs, k);
            let got_d: Vec<_> = got.iter().map(|x| x.1).collect();
            let want_d: Vec<_> = want.iter().map(|x| x.1).collect();
            assert_eq!(got_d, want_d, "k={k} qi={qi}");
        }
    }

    #[test]
    fn sparse_objects_exercise_skipping() {
        // One object far away: most Rnets are empty and must be skipped
        // without breaking exactness.
        let g = gen::toy(23);
        let mut r = Road::new(g.clone(), 4, 100_000);
        let p = EdgePosition::at_source(EdgeId((g.num_edges() - 1) as u32));
        r.handle_update(ObjectId(1), p, Timestamp(10));
        let q = EdgePosition::at_source(EdgeId(0));
        let got = r.knn(q, 1, Timestamp(20));
        let want = reference_knn(&g, q, &[(1, p)], 1);
        assert_eq!(got[0].1, want[0].1);
    }

    #[test]
    fn association_directory_rewritten_on_update() {
        let g = gen::toy(23);
        let mut r = Road::new(g, 8, 100_000);
        r.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(1),
        );
        assert_eq!(r.edge_objects[&EdgeId(0)], vec![ObjectId(1)]);
        r.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(5)),
            Timestamp(2),
        );
        assert!(!r.edge_objects.contains_key(&EdgeId(0)));
        assert_eq!(r.edge_objects[&EdgeId(5)], vec![ObjectId(1)]);
    }

    #[test]
    fn level_counters_maintained() {
        let g = gen::toy(23);
        let mut r = Road::new(g.clone(), 8, 100_000);
        let ops0 = r.update_ops();
        r.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(1),
        );
        // A first sighting touches every level of the hierarchy.
        assert!(r.update_ops() - ops0 >= r.depth as u64);
        // Root count equals total objects.
        assert_eq!(r.level_counts[0][0], 1);
    }

    #[test]
    fn stale_objects_filtered() {
        let g = gen::toy(23);
        let mut r = Road::new(g, 8, 100);
        r.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(10),
        );
        assert!(r
            .knn(EdgePosition::at_source(EdgeId(0)), 1, Timestamp(50_000))
            .is_empty());
    }

    #[test]
    fn overlay_dominates_size() {
        let g = gen::toy(23);
        let r = Road::new(g, 16, 100_000);
        assert!(r.index_size().cpu_bytes >= r.regions().matrices_bytes());
        assert_eq!(r.index_size().gpu_bytes, 0);
    }
}
