//! # baselines — the comparison indexes of the G-Grid paper
//!
//! Three competitors, implemented from scratch against the same
//! [`ggrid::api::MovingObjectIndex`] interface:
//!
//! * [`vtree::VTree`] — the state-of-the-art road-network kNN index of
//!   Shen et al. (ICDE 2017): a balanced partition tree whose leaves carry
//!   precomputed all-pairs distance matrices, with *eager* per-message
//!   object-index maintenance. Queries run a best-first border expansion
//!   over the precomputed matrices.
//! * [`vtree_gpu::VTreeGpu`] — the paper's "V-Tree (G)" variant: the same
//!   index resident in (simulated) GPU memory, messages batched to the
//!   32-lane warp size and applied by an update kernel, distance evaluation
//!   offloaded to the device. Construction fails when the index exceeds
//!   device memory — which is why the paper omits it on the USA dataset.
//! * [`road::Road`] — ROAD (Lee, Lee, Zheng; EDBT 2009) extended to moving
//!   objects following the V-tree paper: a route overlay of region border
//!   shortcuts lets the search skip object-empty regions, and an
//!   association directory maps edges to objects, maintained eagerly across
//!   every hierarchy level on every message.
//!
//! All three share the [`region::RegionIndex`] substrate: a balanced
//! partition of the road network with per-region border sets and induced
//! all-pairs distance matrices.

pub mod region;
pub mod road;
pub mod vtree;
pub mod vtree_gpu;

pub use road::Road;
pub use vtree::VTree;
pub use vtree_gpu::VTreeGpu;
