//! Balanced graph regions with precomputed border distance matrices.
//!
//! Both V-Tree and ROAD are built on a balanced partition of the road
//! network into small regions: V-Tree's leaf nodes and ROAD's lowest-level
//! Rnets are the same object. For each region this substrate precomputes
//! the all-pairs shortest distances of the region's *induced* subgraph —
//! the expensive, memory-hungry precomputation that gives both baselines
//! their large index footprints (paper Fig 6) — and identifies the region's
//! *border* vertices (vertices with an edge crossing the region boundary).
//!
//! Exactness rests on the decomposition property: any shortest path splits
//! into maximal within-region segments joined by crossing edges, and each
//! within-region segment is a path of that region's induced subgraph.
//! Hence a search over [border vertices + crossing edges + induced
//! border-to-border distances] reproduces exact network distances.

use std::sync::Arc;

use roadnet::graph::{Distance, EdgeId, Graph, VertexId, INFINITY};
use roadnet::partition::partition_with_capacity;

/// Identifier of a region (a V-Tree leaf / lowest-level Rnet).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One region: its vertices, borders, and induced all-pairs matrix.
pub struct Region {
    pub vertices: Vec<VertexId>,
    /// Vertices with at least one in- or out-edge crossing the boundary.
    pub borders: Vec<VertexId>,
    /// Row-major `n×n` induced shortest distances between `vertices`.
    matrix: Vec<Distance>,
}

impl Region {
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    pub fn matrix_bytes(&self) -> u64 {
        (self.matrix.len() * std::mem::size_of::<Distance>()) as u64
    }
}

/// The region substrate shared by the baseline indexes.
pub struct RegionIndex {
    graph: Arc<Graph>,
    regions: Vec<Region>,
    region_of_vertex: Vec<u32>,
    /// Local index of each vertex inside its region.
    local_of_vertex: Vec<u32>,
}

impl RegionIndex {
    /// Partition `graph` into regions of at most `capacity` vertices and
    /// precompute the induced matrices.
    pub fn build(graph: Arc<Graph>, capacity: usize) -> Self {
        assert!(capacity >= 1);
        let partition = partition_with_capacity(&graph, capacity);
        let num_regions = partition.num_parts as usize;
        let region_of_vertex = partition.assignment;

        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_regions];
        for v in graph.vertices() {
            members[region_of_vertex[v.index()] as usize].push(v);
        }

        let mut local_of_vertex = vec![0u32; graph.num_vertices()];
        for mem in &members {
            for (i, &v) in mem.iter().enumerate() {
                local_of_vertex[v.index()] = i as u32;
            }
        }

        let regions = members
            .into_iter()
            .map(|vertices| {
                let borders = vertices
                    .iter()
                    .copied()
                    .filter(|&v| {
                        let rv = region_of_vertex[v.index()];
                        graph
                            .out_edges(v)
                            .map(|e| graph.edge(e).dest)
                            .chain(graph.in_edges(v).map(|e| graph.edge(e).source))
                            .any(|u| region_of_vertex[u.index()] != rv)
                    })
                    .collect();
                let matrix =
                    induced_all_pairs(&graph, &vertices, &local_of_vertex, &region_of_vertex);
                Region {
                    vertices,
                    borders,
                    matrix,
                }
            })
            .collect();

        Self {
            graph,
            regions,
            region_of_vertex,
            local_of_vertex,
        }
    }

    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    pub fn region(&self, r: RegionId) -> &Region {
        &self.regions[r.index()]
    }

    pub fn region_ids(&self) -> impl Iterator<Item = RegionId> {
        (0..self.regions.len() as u32).map(RegionId)
    }

    pub fn region_of_vertex(&self, v: VertexId) -> RegionId {
        RegionId(self.region_of_vertex[v.index()])
    }

    /// Region an object on `e` belongs to: the region of `e`'s source.
    pub fn region_of_edge(&self, e: EdgeId) -> RegionId {
        self.region_of_vertex(self.graph.edge(e).source)
    }

    /// Induced shortest distance between two vertices of the same region.
    ///
    /// # Panics
    /// Panics (debug) if the vertices are in different regions.
    pub fn induced_dist(&self, a: VertexId, b: VertexId) -> Distance {
        debug_assert_eq!(
            self.region_of_vertex[a.index()],
            self.region_of_vertex[b.index()],
            "induced_dist requires same-region vertices"
        );
        let r = &self.regions[self.region_of_vertex[a.index()] as usize];
        let n = r.len();
        r.matrix[self.local_of_vertex[a.index()] as usize * n
            + self.local_of_vertex[b.index()] as usize]
    }

    /// Total bytes of all precomputed matrices (the dominant index cost).
    pub fn matrices_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.matrix_bytes()).sum()
    }

    /// Edges whose source and destination lie in different regions.
    pub fn crossing_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.graph.edge_ids().filter(move |&e| {
            let edge = self.graph.edge(e);
            self.region_of_vertex[edge.source.index()] != self.region_of_vertex[edge.dest.index()]
        })
    }
}

/// All-pairs shortest distances of the subgraph induced by `vertices`
/// (Dijkstra from each vertex, restricted to in-region edges).
fn induced_all_pairs(
    graph: &Graph,
    vertices: &[VertexId],
    local_of_vertex: &[u32],
    region_of_vertex: &[u32],
) -> Vec<Distance> {
    let n = vertices.len();
    let mut matrix = vec![INFINITY; n * n];
    if n == 0 {
        return matrix;
    }
    let region = region_of_vertex[vertices[0].index()];
    let mut heap = std::collections::BinaryHeap::new();
    let mut dist = vec![INFINITY; n];
    for (si, _) in vertices.iter().enumerate() {
        dist.iter_mut().for_each(|d| *d = INFINITY);
        dist[si] = 0;
        heap.clear();
        heap.push(std::cmp::Reverse((0u64, si as u32)));
        while let Some(std::cmp::Reverse((d, li))) = heap.pop() {
            if d > dist[li as usize] {
                continue;
            }
            let v = vertices[li as usize];
            for e in graph.out_edges(v) {
                let edge = graph.edge(e);
                if region_of_vertex[edge.dest.index()] != region {
                    continue;
                }
                let lj = local_of_vertex[edge.dest.index()] as usize;
                let nd = d + edge.weight as Distance;
                if nd < dist[lj] {
                    dist[lj] = nd;
                    heap.push(std::cmp::Reverse((nd, lj as u32)));
                }
            }
        }
        matrix[si * n..(si + 1) * n].copy_from_slice(&dist);
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::DijkstraEngine;
    use roadnet::gen;

    fn build() -> RegionIndex {
        RegionIndex::build(Arc::new(gen::toy(42)), 8)
    }

    #[test]
    fn regions_partition_vertices() {
        let idx = build();
        let mut seen = vec![false; idx.graph().num_vertices()];
        for r in idx.region_ids() {
            for &v in &idx.region(r).vertices {
                assert!(!seen[v.index()]);
                seen[v.index()] = true;
                assert_eq!(idx.region_of_vertex(v), r);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn capacity_respected() {
        let idx = build();
        for r in idx.region_ids() {
            assert!(idx.region(r).len() <= 8);
        }
    }

    #[test]
    fn borders_have_crossing_edges() {
        let idx = build();
        let g = idx.graph().clone();
        for r in idx.region_ids() {
            for &b in &idx.region(r).borders {
                let crosses = g
                    .out_edges(b)
                    .map(|e| g.edge(e).dest)
                    .chain(g.in_edges(b).map(|e| g.edge(e).source))
                    .any(|u| idx.region_of_vertex(u) != r);
                assert!(crosses, "{b:?} listed as border without crossing edge");
            }
        }
    }

    #[test]
    fn induced_dist_diagonal_zero() {
        let idx = build();
        for v in idx.graph().vertices() {
            assert_eq!(idx.induced_dist(v, v), 0);
        }
    }

    #[test]
    fn induced_dist_upper_bounds_true_dist() {
        let idx = build();
        let g = idx.graph().clone();
        let mut engine = DijkstraEngine::new(&g);
        for r in idx.region_ids().take(6) {
            let region = idx.region(r);
            for &a in region.vertices.iter().take(3) {
                engine.run_from_vertex(a);
                for &b in &region.vertices {
                    let induced = idx.induced_dist(a, b);
                    let exact = engine.distance(b);
                    assert!(induced >= exact, "induced shorter than exact?!");
                }
            }
        }
    }

    #[test]
    fn induced_dist_exact_when_path_stays_inside() {
        // For an edge inside a region, the induced distance source→dest is
        // at most the edge weight.
        let idx = build();
        let g = idx.graph().clone();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            if idx.region_of_vertex(edge.source) == idx.region_of_vertex(edge.dest) {
                assert!(idx.induced_dist(edge.source, edge.dest) <= edge.weight as Distance);
            }
        }
    }

    #[test]
    fn crossing_edges_cross() {
        let idx = build();
        let g = idx.graph().clone();
        let crossing: Vec<EdgeId> = idx.crossing_edges().collect();
        assert!(!crossing.is_empty());
        for e in crossing {
            let edge = g.edge(e);
            assert_ne!(
                idx.region_of_vertex(edge.source),
                idx.region_of_vertex(edge.dest)
            );
        }
    }

    #[test]
    fn region_of_edge_is_source_region() {
        let idx = build();
        let g = idx.graph().clone();
        for e in g.edge_ids().take(40) {
            assert_eq!(
                idx.region_of_edge(e),
                idx.region_of_vertex(g.edge(e).source)
            );
        }
    }

    #[test]
    fn matrices_bytes_positive() {
        let idx = build();
        assert!(idx.matrices_bytes() > 0);
        // Matrices are quadratic in region size: a bigger capacity grows
        // bytes-per-vertex.
        let big = RegionIndex::build(Arc::new(gen::toy(42)), 32);
        let small_ratio = idx.matrices_bytes() as f64 / idx.num_regions() as f64;
        let big_ratio = big.matrices_bytes() as f64 / big.num_regions() as f64;
        assert!(big_ratio > small_ratio);
    }
}
