//! V-Tree (G): the paper's GPU-resident V-Tree variant (§VII-B).
//!
//! "We store the core index structure of V-Tree in the GPU memory. Upon
//! receiving a message, we send it to the GPU immediately. We cache the
//! messages in the GPU until the number of cached messages reaches 32,
//! i.e., the size of a GPU warp. Then, we process the cached messages in
//! parallel."
//!
//! Accordingly this wrapper:
//!
//! * reserves the whole V-Tree footprint in device memory at construction —
//!   datasets whose index exceeds the card's memory **fail to build**,
//!   which is why the paper omits V-Tree (G) on USA;
//! * ships every message to the device (one small H2D transfer per
//!   warp-sized batch) and applies the batch with a simulated update
//!   kernel;
//! * answers queries by running the V-Tree search with its distance
//!   evaluations charged to a simulated kernel — the host execution is
//!   bookkept as *emulation* so harnesses replace it with simulated time.

use std::time::Instant;

use ggrid::api::{IndexSize, MovingObjectIndex, SimCosts};
use ggrid::message::{ObjectId, Timestamp};
use gpu_sim::{Device, OutOfDeviceMemory};
use roadnet::graph::{Distance, Graph};
use roadnet::EdgePosition;

use crate::vtree::VTree;

/// Warp size: messages are batched to this count before the update kernel
/// runs (paper §VII-B).
pub const UPDATE_BATCH: usize = 32;

/// Bytes of one message on the wire (same layout as G-Grid's).
const MSG_BYTES: u64 = 32;

pub struct VTreeGpu {
    inner: VTree,
    device: Device,
    resident_bytes: u64,
    pending: Vec<(ObjectId, EdgePosition, Timestamp)>,
    emulated_ns: u64,
}

impl VTreeGpu {
    /// Build the index and reserve its footprint on `device`.
    ///
    /// Fails with [`OutOfDeviceMemory`] when the V-Tree does not fit — the
    /// USA-dataset case in the paper.
    pub fn new(
        graph: Graph,
        leaf_capacity: usize,
        t_delta_ms: u64,
        device: Device,
    ) -> Result<Self, OutOfDeviceMemory> {
        let inner = VTree::new(graph, leaf_capacity, t_delta_ms);
        Self::from_vtree(inner, device)
    }

    /// Build over a pre-built region substrate (see [`VTree::from_regions`]).
    pub fn from_regions(
        graph: std::sync::Arc<Graph>,
        regions: std::sync::Arc<crate::region::RegionIndex>,
        t_delta_ms: u64,
        device: Device,
    ) -> Result<Self, OutOfDeviceMemory> {
        Self::from_vtree(VTree::from_regions(graph, regions, t_delta_ms), device)
    }

    fn from_vtree(inner: VTree, mut device: Device) -> Result<Self, OutOfDeviceMemory> {
        let resident_bytes = inner.index_size().cpu_bytes;
        device.alloc(resident_bytes)?;
        Ok(Self {
            inner,
            device,
            resident_bytes,
            pending: Vec::with_capacity(UPDATE_BATCH),
            emulated_ns: 0,
        })
    }

    pub fn with_defaults(graph: Graph) -> Result<Self, OutOfDeviceMemory> {
        Self::new(
            graph,
            crate::vtree::DEFAULT_LEAF_CAPACITY,
            10_000,
            Device::quadro_p2000(),
        )
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    pub fn pending_updates(&self) -> usize {
        self.pending.len()
    }

    /// Apply the pending warp-sized batch with the simulated update kernel.
    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.pending);
        let t0 = Instant::now();
        let n = batch.len();
        // One transfer for the whole warp-sized batch, then the update
        // kernel applies it in parallel, one lane per message.
        self.device.h2d(MSG_BYTES * n as u64);
        let (_, _report) = self.device.launch(n.max(1), |ctx| {
            // Leaf lookup, object-table update, occupancy counters.
            ctx.charge_alu_all(40);
            ctx.charge_read(MSG_BYTES * n as u64);
            ctx.charge_write(64 * n as u64);
            ctx.charge_atomics(n as u64);
        });
        for (o, p, t) in batch {
            self.inner.handle_update(o, p, t);
        }
        self.emulated_ns += t0.elapsed().as_nanos() as u64;
    }
}

impl MovingObjectIndex for VTreeGpu {
    fn name(&self) -> &'static str {
        "V-Tree (G)"
    }

    fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        // Messages stream to the device asynchronously (the paper sends
        // each immediately; the copies ride a pinned ring buffer, so the
        // PCIe latency is paid once per warp-sized batch, not per message).
        self.pending.push((object, position, time));
        if self.pending.len() >= UPDATE_BATCH {
            self.flush();
        }
    }

    fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        // Queries must observe all cached updates.
        self.flush();
        let t0 = Instant::now();
        let items = self.inner.knn(q, k, now);
        self.emulated_ns += t0.elapsed().as_nanos() as u64;

        // The search's distance evaluations run as a device kernel: one
        // lane per candidate object (at least a warp), matrix lookups from
        // device memory.
        let evaluated = (items.len().max(k) * 8).max(UPDATE_BATCH);
        self.device.launch(evaluated, |ctx| {
            ctx.charge_alu_all(64);
            ctx.charge_read(48 * evaluated as u64);
            ctx.charge_write(16 * evaluated as u64);
        });
        self.device.d2h(items.len().max(1) as u64 * 16);
        items
    }

    fn sim_costs(&self) -> SimCosts {
        let ledger = self.device.ledger();
        SimCosts {
            gpu_time: self.device.kernel_time(),
            transfer_time: ledger.total_time(),
            h2d_bytes: ledger.h2d_bytes,
            d2h_bytes: ledger.d2h_bytes,
        }
    }

    fn index_size(&self) -> IndexSize {
        IndexSize {
            // Only the message staging buffer lives host-side.
            cpu_bytes: (self.pending.capacity() * 48) as u64,
            gpu_bytes: self.resident_bytes,
        }
    }

    fn emulated_host_ns(&self) -> u64 {
        self.emulated_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use roadnet::dijkstra::reference_knn;
    use roadnet::gen;
    use roadnet::EdgeId;

    fn build() -> VTreeGpu {
        VTreeGpu::new(gen::toy(31), 8, 100_000, Device::quadro_p2000()).unwrap()
    }

    #[test]
    fn matches_reference_after_batched_updates() {
        let g = gen::toy(31);
        let mut t = build();
        let objs: Vec<(u64, EdgePosition)> = (0..50u64)
            .map(|i| {
                let e = EdgeId(((i * 7 + 2) % g.num_edges() as u64) as u32);
                (i, EdgePosition::at_source(e))
            })
            .collect();
        for &(i, p) in &objs {
            t.handle_update(ObjectId(i), p, Timestamp(100 + i));
        }
        // 50 updates → one flushed batch of 32, 18 pending; the query must
        // flush the rest.
        assert_eq!(t.pending_updates(), 18);
        let q = EdgePosition::at_source(EdgeId(4));
        let got = t.knn(q, 5, Timestamp(500));
        assert_eq!(t.pending_updates(), 0);
        let want = reference_knn(&g, q, &objs, 5);
        let got_d: Vec<_> = got.iter().map(|x| x.1).collect();
        let want_d: Vec<_> = want.iter().map(|x| x.1).collect();
        assert_eq!(got_d, want_d);
    }

    #[test]
    fn batches_at_warp_size() {
        let mut t = build();
        for i in 0..UPDATE_BATCH as u64 {
            t.handle_update(
                ObjectId(i),
                EdgePosition::at_source(EdgeId(0)),
                Timestamp(i),
            );
        }
        assert_eq!(t.pending_updates(), 0, "full warp must auto-flush");
        assert!(t.device.launches() >= 1);
    }

    #[test]
    fn transfers_batched_per_flush() {
        let mut t = build();
        for i in 0..70u64 {
            t.handle_update(
                ObjectId(i),
                EdgePosition::at_source(EdgeId(0)),
                Timestamp(i),
            );
        }
        // 70 messages → two full warp batches flushed, 6 pending.
        assert_eq!(t.device.ledger().h2d_transfers, 2);
        assert_eq!(t.device.ledger().h2d_bytes, 64 * MSG_BYTES);
        assert_eq!(t.pending_updates(), 6);
    }

    #[test]
    fn index_lives_on_device() {
        let t = build();
        let size = t.index_size();
        assert!(size.gpu_bytes > 0);
        assert_eq!(size.gpu_bytes, t.device.memory().in_use());
    }

    #[test]
    fn oversized_index_rejected() {
        // A device too small for the index — the USA case in Fig 5/6.
        let spec = DeviceSpec {
            global_mem_bytes: 1024,
            ..DeviceSpec::test_tiny()
        };
        let err = VTreeGpu::new(gen::toy(31), 8, 100_000, Device::new(spec));
        assert!(err.is_err());
    }

    #[test]
    fn emulated_time_reported() {
        let mut t = build();
        for i in 0..40u64 {
            t.handle_update(
                ObjectId(i),
                EdgePosition::at_source(EdgeId(1)),
                Timestamp(i),
            );
        }
        t.knn(EdgePosition::at_source(EdgeId(2)), 3, Timestamp(100));
        assert!(t.emulated_host_ns() > 0);
        assert!(t.sim_costs().gpu_time > gpu_sim::SimNanos::ZERO);
    }
}
