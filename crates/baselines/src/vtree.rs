//! V-Tree (Shen et al., ICDE 2017): eager-update kNN baseline.
//!
//! The V-Tree partitions the road network into a balanced tree whose leaves
//! hold small subgraphs with precomputed distance matrices; moving objects
//! are attached to the leaf of the edge they travel on, and **every**
//! location update is applied to the index immediately — the "eager"
//! strategy whose cost the G-Grid paper's lazy cleaning removes. Queries
//! run a best-first expansion over leaf borders, using the precomputed
//! matrices for inside-leaf distances.
//!
//! This implementation keeps the V-Tree's externally observable behaviour:
//!
//! * per-message index maintenance (leaf object lists plus O(tree depth)
//!   occupancy counters along the root-to-leaf path),
//! * a large precomputed-distance footprint (all-pairs matrices per leaf),
//! * exact kNN answers via monotone best-first expansion with the same
//!   termination rule.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

use ggrid::api::{IndexSize, MovingObjectIndex, SimCosts};
use ggrid::message::{ObjectId, Timestamp};
use roadnet::graph::{Distance, Graph, VertexId, INFINITY};
use roadnet::EdgePosition;

use crate::region::{RegionId, RegionIndex};

/// Default leaf capacity (vertices per leaf).
pub const DEFAULT_LEAF_CAPACITY: usize = 64;

pub struct VTree {
    regions: Arc<RegionIndex>,
    graph: Arc<Graph>,
    /// Skeleton node id per vertex (u32::MAX when not a border).
    #[allow(dead_code)] // kept: the real V-Tree indexes borders globally
    border_node: Vec<u32>,
    /// Skeleton node → vertex.
    border_vertex: Vec<VertexId>,
    /// Borders of each region, as skeleton node ids.
    region_borders: Vec<Vec<u32>>,
    /// Skeleton adjacency: induced border→border within a region plus
    /// original crossing edges.
    skel_adj: Vec<Vec<(u32, Distance)>>,
    /// Latest position per object (the V-Tree object index).
    objects: HashMap<ObjectId, (EdgePosition, Timestamp)>,
    /// Objects attached to each leaf, with their precomputed distances
    /// from every border of the leaf (aligned with `region_borders`). The
    /// V-Tree maintains these border→object distance lists **on every
    /// update** — the eager per-message work that queries then exploit and
    /// that the G-Grid paper's lazy strategy eliminates.
    region_objects: Vec<HashMap<ObjectId, Vec<Distance>>>,
    /// For each skeleton node, its position within its region's border
    /// list (to index the per-object distance vectors).
    border_pos_in_region: Vec<u32>,
    /// Per (region, border): objects of the region sorted by their distance
    /// from that border — the V-Tree's nearest-object lists. Maintained on
    /// every update (the expensive eager work), consumed in distance order
    /// by queries.
    border_lists: Vec<Vec<BTreeMap<(Distance, ObjectId), ()>>>,
    /// Occupancy counters over an implicit binary tree of leaves — the
    /// root-to-leaf path every eager update maintains.
    path_counts: Vec<u32>,
    t_delta_ms: u64,
    update_ops: u64,
}

impl VTree {
    pub fn new(graph: Graph, leaf_capacity: usize, t_delta_ms: u64) -> Self {
        let graph = Arc::new(graph);
        let regions = Arc::new(RegionIndex::build(graph.clone(), leaf_capacity));
        Self::from_regions(graph, regions, t_delta_ms)
    }

    pub fn with_defaults(graph: Graph) -> Self {
        Self::new(graph, DEFAULT_LEAF_CAPACITY, 10_000)
    }

    /// Build over a pre-built (shared) region substrate — lets harnesses
    /// partition and precompute matrices once per dataset.
    pub fn from_regions(graph: Arc<Graph>, regions: Arc<RegionIndex>, t_delta_ms: u64) -> Self {
        // Skeleton nodes: every border vertex of every region.
        let mut border_node = vec![u32::MAX; graph.num_vertices()];
        let mut border_vertex = Vec::new();
        let mut region_borders = vec![Vec::new(); regions.num_regions()];
        let mut border_pos_in_region = Vec::new();
        for r in regions.region_ids() {
            for (pos, &b) in regions.region(r).borders.iter().enumerate() {
                let id = border_vertex.len() as u32;
                border_node[b.index()] = id;
                border_vertex.push(b);
                region_borders[r.index()].push(id);
                border_pos_in_region.push(pos as u32);
            }
        }

        // Skeleton edges: induced border→border distances within each
        // region, plus the original crossing edges.
        let mut skel_adj: Vec<Vec<(u32, Distance)>> = vec![Vec::new(); border_vertex.len()];
        for r in regions.region_ids() {
            let bs = &region_borders[r.index()];
            for &a in bs {
                for &b in bs {
                    if a == b {
                        continue;
                    }
                    let d =
                        regions.induced_dist(border_vertex[a as usize], border_vertex[b as usize]);
                    if d < INFINITY {
                        skel_adj[a as usize].push((b, d));
                    }
                }
            }
        }
        for e in regions.crossing_edges() {
            let edge = graph.edge(e);
            let (a, b) = (
                border_node[edge.source.index()],
                border_node[edge.dest.index()],
            );
            debug_assert!(a != u32::MAX && b != u32::MAX);
            skel_adj[a as usize].push((b, edge.weight as Distance));
        }

        let n_regions = regions.num_regions();
        let border_lists = (0..n_regions)
            .map(|r| vec![BTreeMap::new(); region_borders[r].len()])
            .collect();
        Self {
            graph,
            border_node,
            border_vertex,
            region_borders,
            skel_adj,
            objects: HashMap::new(),
            region_objects: vec![HashMap::new(); n_regions],
            border_pos_in_region,
            border_lists,
            path_counts: vec![0; 2 * n_regions.next_power_of_two()],
            t_delta_ms,
            update_ops: 0,
            regions,
        }
    }

    pub fn regions(&self) -> &RegionIndex {
        &self.regions
    }

    pub fn num_objects(&self) -> usize {
        self.objects.len()
    }

    /// Total index-maintenance operations performed by updates (each
    /// counter touch / map mutation counts one) — proportional to the
    /// eager update cost.
    pub fn update_ops(&self) -> u64 {
        self.update_ops
    }

    /// Distances from every border of `region` to an object at `p`
    /// (induced border→source matrix lookups plus the on-edge offset) —
    /// the per-message maintenance work of the eager V-Tree.
    fn border_distances(&self, region: RegionId, p: EdgePosition) -> Vec<Distance> {
        let src = self.graph.edge(p.edge).source;
        self.region_borders[region.index()]
            .iter()
            .map(|&b| {
                self.regions
                    .induced_dist(self.border_vertex[b as usize], src)
                    .saturating_add(p.from_source())
            })
            .collect()
    }

    fn leaf_count_update(&mut self, region: RegionId, delta: i64) {
        // Implicit segment tree over leaves: walk leaf→root.
        let len = self.path_counts.len();
        let mut i = len / 2 + region.index();
        while i >= 1 {
            let idx = i.min(len - 1);
            let c = &mut self.path_counts[idx];
            *c = (*c as i64 + delta).max(0) as u32;
            self.update_ops += 1;
            i /= 2;
        }
    }

    /// Exact kNN via best-first skeleton expansion.
    fn knn_impl(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        assert!(k >= 1);
        let graph = self.graph.clone();
        debug_assert!(q.is_valid(&graph));
        let horizon = now.saturating_sub_ms(self.t_delta_ms);

        // Best candidate distance per object.
        let mut best: HashMap<ObjectId, Distance> = HashMap::new();

        let fresh = |entry: &(EdgePosition, Timestamp)| entry.1 >= horizon;

        let q_dest = graph.edge(q.edge).dest;
        let r_dest = self.regions.region_of_vertex(q_dest);
        let seed = q.to_dest(&graph);

        // Direct candidates. Same-edge objects live in the query edge's
        // leaf; objects reachable without leaving q_dest's region live in
        // that leaf. Only those two object lists are scanned.
        let r_edge = self.regions.region_of_edge(q.edge);
        for &o in self.region_objects[r_edge.index()].keys() {
            let entry = &self.objects[&o];
            if !fresh(entry) {
                continue;
            }
            let p = entry.0;
            if p.edge == q.edge && p.offset >= q.offset {
                let d = (p.offset - q.offset) as Distance;
                best.entry(o).and_modify(|b| *b = (*b).min(d)).or_insert(d);
            }
        }
        for &o in self.region_objects[r_dest.index()].keys() {
            let entry = &self.objects[&o];
            if !fresh(entry) {
                continue;
            }
            let p = entry.0;
            let src = graph.edge(p.edge).source;
            debug_assert_eq!(self.regions.region_of_vertex(src), r_dest);
            let d = seed
                .saturating_add(self.regions.induced_dist(q_dest, src))
                .saturating_add(p.from_source());
            if d < INFINITY {
                best.entry(o).and_modify(|b| *b = (*b).min(d)).or_insert(d);
            }
        }

        // Best-first skeleton expansion.
        let mut dist = vec![INFINITY; self.border_vertex.len()];
        let mut heap: BinaryHeap<Reverse<(Distance, u32)>> = BinaryHeap::new();
        for &b in &self.region_borders[r_dest.index()] {
            let d = seed.saturating_add(
                self.regions
                    .induced_dist(q_dest, self.border_vertex[b as usize]),
            );
            if d < dist[b as usize] {
                dist[b as usize] = d;
                heap.push(Reverse((d, b)));
            }
        }

        let mut kth_cache = INFINITY;
        let mut dirty = true;
        while let Some(Reverse((d, b))) = heap.pop() {
            if d > dist[b as usize] {
                continue;
            }
            // Termination: no future candidate can beat the k-th best.
            if dirty {
                kth_cache = kth_smallest(&best, k);
                dirty = false;
            }
            if d >= kth_cache {
                break;
            }
            // Candidates in this border's region, consumed in distance
            // order from the precomputed nearest-object list: stop as soon
            // as no remaining entry can beat the current k-th best.
            let bv = self.border_vertex[b as usize];
            let r = self.regions.region_of_vertex(bv);
            let bpos = self.border_pos_in_region[b as usize] as usize;
            for &(od, o) in self.border_lists[r.index()][bpos].keys() {
                if od >= INFINITY {
                    break; // rest of the sorted list is unreachable
                }
                let cand = d.saturating_add(od);
                if dirty {
                    kth_cache = kth_smallest(&best, k);
                    dirty = false;
                }
                if cand >= kth_cache {
                    break;
                }
                let entry = &self.objects[&o];
                if !fresh(entry) {
                    continue;
                }
                let slot = best.entry(o).or_insert(INFINITY);
                if cand < *slot {
                    *slot = cand;
                    dirty = true;
                }
            }
            // Relax skeleton edges.
            for &(nb, w) in &self.skel_adj[b as usize] {
                let nd = d + w;
                if nd < dist[nb as usize] {
                    dist[nb as usize] = nd;
                    heap.push(Reverse((nd, nb)));
                }
            }
        }

        let mut items: Vec<(ObjectId, Distance)> =
            best.into_iter().filter(|&(_, d)| d < INFINITY).collect();
        items.sort_by_key(|&(o, d)| (d, o));
        items.truncate(k);
        items
    }

    /// Bytes of the precomputed structures (matrices + skeleton).
    pub fn precomputed_bytes(&self) -> u64 {
        let skel: u64 = self.skel_adj.iter().map(|a| (a.len() * 12) as u64).sum();
        self.regions.matrices_bytes() + skel + self.border_vertex.len() as u64 * 4
    }
}

impl MovingObjectIndex for VTree {
    fn name(&self) -> &'static str {
        "V-Tree"
    }

    /// Eager update: every message touches the object index, the leaf
    /// object list, and the occupancy counters on the root-to-leaf path.
    fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        let new_region = self.regions.region_of_edge(position.edge);
        let old = self.objects.insert(object, (position, time));
        self.update_ops += 1;
        // Every message recomputes the object's border distance list —
        // |borders| induced-matrix lookups. This is the V-Tree's eager
        // maintenance: the structure queries rely on is kept current at
        // update time, message by message.
        let dists = self.border_distances(new_region, position);
        self.update_ops += dists.len() as u64;
        // Maintain the per-border nearest-object lists: remove the object's
        // previous entries, insert the new ones — 2·|borders| ordered-map
        // operations per message.
        if let Some((old_pos, _)) = old {
            let old_region = self.regions.region_of_edge(old_pos.edge);
            if let Some(old_dists) = self.region_objects[old_region.index()].get(&object) {
                let old_dists = old_dists.clone();
                for (bpos, &od) in old_dists.iter().enumerate() {
                    self.border_lists[old_region.index()][bpos].remove(&(od, object));
                    self.update_ops += 1;
                }
            }
        }
        for (bpos, &nd) in dists.iter().enumerate() {
            self.border_lists[new_region.index()][bpos].insert((nd, object), ());
            self.update_ops += 1;
        }
        match old {
            Some((old_pos, _)) => {
                let old_region = self.regions.region_of_edge(old_pos.edge);
                if old_region != new_region {
                    self.region_objects[old_region.index()].remove(&object);
                    self.update_ops += 2;
                    self.leaf_count_update(old_region, -1);
                    self.leaf_count_update(new_region, 1);
                } else {
                    self.update_ops += 1;
                    self.leaf_count_update(new_region, 0);
                }
            }
            None => {
                self.update_ops += 1;
                self.leaf_count_update(new_region, 1);
            }
        }
        self.region_objects[new_region.index()].insert(object, dists);
    }

    fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        self.knn_impl(q, k, now)
    }

    fn sim_costs(&self) -> SimCosts {
        SimCosts::default() // CPU-only baseline
    }

    fn index_size(&self) -> IndexSize {
        let lists: u64 = self
            .border_lists
            .iter()
            .flatten()
            .map(|l| l.len() as u64 * 24)
            .sum();
        let objects = (self.objects.len() * 48) as u64
            + lists
            + self
                .region_objects
                .iter()
                .flat_map(|m| m.values())
                .map(|d| 24 + d.len() as u64 * 8)
                .sum::<u64>();
        IndexSize {
            cpu_bytes: self.precomputed_bytes() + objects + (self.path_counts.len() * 4) as u64,
            gpu_bytes: 0,
        }
    }
}

fn kth_smallest(best: &HashMap<ObjectId, Distance>, k: usize) -> Distance {
    if best.len() < k {
        return INFINITY;
    }
    let mut ds: Vec<Distance> = best.values().copied().collect();
    let (_, kth, _) = ds.select_nth_unstable(k - 1);
    *kth
}

#[cfg(test)]
mod tests {
    use super::*;
    use roadnet::dijkstra::reference_knn;
    use roadnet::gen;
    use roadnet::EdgeId;

    fn scatter(g: &Graph, n: u64) -> Vec<(u64, EdgePosition)> {
        (0..n)
            .map(|i| {
                let e = EdgeId(((i * 17 + 3) % g.num_edges() as u64) as u32);
                let off = (i % (g.edge(e).weight as u64 + 1)) as u32;
                (i, EdgePosition::new(e, off))
            })
            .collect()
    }

    #[test]
    fn matches_reference() {
        let g = gen::toy(11);
        let mut t = VTree::new(g.clone(), 8, 100_000);
        let objs = scatter(&g, 15);
        for &(i, p) in &objs {
            t.handle_update(ObjectId(i), p, Timestamp(100 + i));
        }
        for (qi, k) in [(0u32, 1usize), (7, 4), (33, 8), (50, 15)] {
            let q = EdgePosition::at_source(EdgeId(qi % g.num_edges() as u32));
            let got = t.knn(q, k, Timestamp(500));
            let want = reference_knn(&g, q, &objs, k);
            let got_d: Vec<_> = got.iter().map(|x| x.1).collect();
            let want_d: Vec<_> = want.iter().map(|x| x.1).collect();
            assert_eq!(got_d, want_d, "k={k} qi={qi}");
        }
    }

    #[test]
    fn eager_updates_tracked() {
        let g = gen::toy(11);
        let mut t = VTree::new(g, 8, 100_000);
        let before = t.update_ops();
        t.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(1),
        );
        assert!(
            t.update_ops() > before,
            "every message must touch the index"
        );
    }

    #[test]
    fn move_between_leaves_updates_lists() {
        let g = gen::toy(11);
        let mut t = VTree::new(g.clone(), 4, 100_000);
        let r0 = t.regions().region_of_edge(EdgeId(0));
        let other = g
            .edge_ids()
            .find(|&e| t.regions().region_of_edge(e) != r0)
            .unwrap();
        t.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(1),
        );
        assert_eq!(t.region_objects[r0.index()].len(), 1);
        t.handle_update(ObjectId(1), EdgePosition::at_source(other), Timestamp(2));
        assert_eq!(t.region_objects[r0.index()].len(), 0);
    }

    #[test]
    fn stale_objects_filtered() {
        let g = gen::toy(11);
        let mut t = VTree::new(g, 8, 100);
        t.handle_update(
            ObjectId(1),
            EdgePosition::at_source(EdgeId(0)),
            Timestamp(10),
        );
        assert!(t
            .knn(EdgePosition::at_source(EdgeId(0)), 1, Timestamp(10_000))
            .is_empty());
    }

    #[test]
    fn same_edge_ahead() {
        let g = gen::toy(11);
        let w = g.edge(EdgeId(0)).weight;
        let mut t = VTree::new(g, 8, 100_000);
        t.handle_update(ObjectId(1), EdgePosition::new(EdgeId(0), w), Timestamp(10));
        let got = t.knn(EdgePosition::new(EdgeId(0), 0), 1, Timestamp(20));
        assert_eq!(got[0].1, w as Distance);
    }

    #[test]
    fn index_size_dominated_by_matrices() {
        let g = gen::toy(11);
        let t = VTree::new(g, 16, 100_000);
        let size = t.index_size();
        assert!(size.cpu_bytes >= t.regions().matrices_bytes());
        assert_eq!(size.gpu_bytes, 0);
    }

    #[test]
    fn k_exceeds_population() {
        let g = gen::toy(11);
        let mut t = VTree::new(g.clone(), 8, 100_000);
        let objs = scatter(&g, 3);
        for &(i, p) in &objs {
            t.handle_update(ObjectId(i), p, Timestamp(1));
        }
        assert_eq!(
            t.knn(EdgePosition::at_source(EdgeId(0)), 10, Timestamp(2))
                .len(),
            3
        );
    }
}
