//! Criterion bench for Fig 6: index construction cost and size (the size
//! itself is reported by the `experiments` binary; here we bench builds).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid_bench::runner::{build_index, IndexKind};
use roadnet::gen::Dataset;

fn bench_builds(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let params = common::bench_params();
    let mut group = c.benchmark_group("fig6_index_build");
    group.sample_size(10);
    for kind in [IndexKind::GGrid, IndexKind::VTree, IndexKind::Road] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter(|| build_index(k, &graph, &params).map(|i| i.index_size().total()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_builds);
criterion_main!(benches);
