//! Criterion bench for cross-query fused batch execution: the drifting
//! hot-region workload of the `batch_fusion` experiment — per round a
//! fleet wave into a fresh window of edges, then an overlapping batch of
//! kNN queries (half hot, half cold probes) — swept over the execution
//! strategy: sequential per-query calls, the PR-4 batch pipeline, and the
//! fused path (batch-level cleaning round, coalesced topology staging,
//! multi-source refinement).
//!
//! Besides the criterion timings, the bench emits one machine-readable
//! `BENCH {json}` line per strategy with the deterministic modeled
//! figures: simulated device time, kernel launches, PCIe round-trips
//! saved by coalescing, batch-shared cells, clean skips, and refinement
//! settle/relax counts. The device clock is simulated, so one
//! instrumented run per strategy is a stable baseline.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::gen::Dataset;
use roadnet::EdgeId;

const OBJECTS: u64 = 300;
const ROUNDS: usize = 6;
const BATCH_SIZE: usize = 6;
const K: usize = 16;

/// (label, batch API?, batch_fusion, coalesce_h2d, refine_multi_source)
const SWEEP: [(&str, bool, bool, bool, bool); 3] = [
    ("sequential", false, false, false, false),
    ("batch-pr4", true, false, false, false),
    ("batch-fused", true, true, true, true),
];

fn server(
    graph: &std::sync::Arc<roadnet::graph::Graph>,
    fusion: bool,
    coalesce: bool,
    multi: bool,
) -> GGridServer {
    GGridServer::new(
        (**graph).clone(),
        GGridConfig {
            batch_fusion: fusion,
            coalesce_h2d: coalesce,
            refine_multi_source: multi,
            refine_workers: 1,
            // The experiment's GPU/CPU balance: stop candidate expansion
            // at exactly k objects so the unresolved frontier reaches the
            // refinement phase (see experiments/batch_fusion.rs).
            rho: 1.0,
            ..Default::default()
        },
    )
}

/// Per round: a fleet wave into the round's window tile (half hot, half
/// network-wide), then a batch of overlapping queries — half in the hot
/// window, half probing the far side of the graph (same shape as the
/// experiment, shrunk to bench scale).
fn workload(
    graph: &std::sync::Arc<roadnet::graph::Graph>,
    s: &mut GGridServer,
    batched: bool,
) -> u64 {
    let ne = graph.num_edges() as u32;
    let window = (ne / ROUNDS as u32).clamp(16, 256).min(ne);
    let mut rng = SmallRng::seed_from_u64(0x5BA7);
    let mut t = 100u64;
    let mut checksum = 0u64;
    for round in 0..ROUNDS {
        let base = (round as u32 * window) % ne.saturating_sub(window).max(1);
        let wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..OBJECTS)
            .map(|o| {
                t += 1;
                let e = if o % 2 == 0 {
                    EdgeId(base + rng.gen_range(0..window))
                } else {
                    EdgeId(rng.gen_range(0..ne))
                };
                (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        s.ingest_batch(&wave);
        t += 1;
        let half = BATCH_SIZE as u32 / 2;
        let queries: Vec<(EdgePosition, usize)> = (0..BATCH_SIZE as u32)
            .map(|j| {
                let e = if j < half {
                    EdgeId(base + (j * (window / half)).min(window - 1))
                } else {
                    let far = (base + ne / 2) % ne;
                    EdgeId((far + (j - half) * (window / half)) % ne)
                };
                (EdgePosition::at_source(e), K)
            })
            .collect();
        let now = Timestamp(t);
        let answers: Vec<Vec<(ObjectId, Distance)>> = if batched {
            s.knn_batch(&queries, now).answers
        } else {
            queries.iter().map(|&(q, k)| s.knn(q, k, now)).collect()
        };
        for a in &answers {
            for &(o, d) in a {
                checksum = checksum.wrapping_mul(31).wrapping_add(o.0 ^ d);
            }
        }
    }
    checksum
}

fn bench_batch_fusion(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let mut group = c.benchmark_group("batch_fusion");
    group.sample_size(10);

    let mut checksums = Vec::new();
    for (label, batched, fusion, coalesce, multi) in SWEEP {
        group.bench_function(format!("exec={label}").as_str(), |b| {
            b.iter(|| {
                let mut s = server(&graph, fusion, coalesce, multi);
                workload(&graph, &mut s, batched)
            })
        });
        let mut s = server(&graph, fusion, coalesce, multi);
        checksums.push(workload(&graph, &mut s, batched));
        let c = s.counters();
        println!(
            "BENCH {{\"bench\": \"batch_fusion\", \"exec\": \"{label}\", \"queries\": {}, \"gpu_ns\": {}, \"kernel_launches\": {}, \"h2d_bytes\": {}, \"h2d_coalesced_saved\": {}, \"batch_shared_cells\": {}, \"clean_skip_hits\": {}, \"refine_busy_ns\": {}, \"refine_settled\": {}, \"refine_relaxed\": {}, \"queries_per_sec_modeled\": {:.1}}}",
            c.queries,
            c.gpu_time.0,
            c.kernel_launches,
            c.h2d_bytes,
            c.h2d_coalesced_saved,
            c.batch_shared_cells,
            c.clean_skip_hits,
            c.refine_busy_ns,
            c.refine_settled,
            c.refine_relaxed,
            c.queries_per_sec_modeled(),
        );
    }
    group.finish();

    // Fusion must not change results: every strategy, same checksum.
    assert!(
        checksums.windows(2).all(|w| w[0] == w[1]),
        "execution strategies disagree on answers: {checksums:?}"
    );
}

criterion_group!(benches, bench_batch_fusion);
criterion_main!(benches);
