//! Criterion bench for Fig 8: query time vs |𝒪|.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid_bench::runner::{run_one, IndexKind};
use roadnet::gen::Dataset;

fn bench_vary_objects(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let params = common::bench_params();
    for kind in [IndexKind::GGrid, IndexKind::VTree] {
        let mut group = c.benchmark_group(format!("fig8_{}", kind.name()));
        group.sample_size(10);
        for n in [100usize, 1_000, 5_000] {
            let scenario = common::bench_scenario(n, 16, 3);
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
                b.iter(|| run_one(kind, &graph, &params, &scenario))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_vary_objects);
criterion_main!(benches);
