//! Micro-benchmarks of the building blocks: Z-curve encoding, graph
//! partitioning, Dijkstra, the X-shuffle kernel, message caching, and the
//! object table.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid::grid::CellId;
use ggrid::message::{CachedMessage, ObjectId, Timestamp};
use ggrid::xshuffle::{xshuffle_clean, WireMessage};
use gpu_sim::{Device, DeviceSpec};
use roadnet::dijkstra::DijkstraEngine;
use roadnet::graph::VertexId;
use roadnet::{gen, partition, zorder, EdgeId, EdgePosition};

fn bench_zorder(c: &mut Criterion) {
    c.bench_function("zorder_encode_4096", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for x in 0..64u32 {
                for y in 0..64u32 {
                    acc = acc.wrapping_add(zorder::encode(x, y));
                }
            }
            acc
        })
    });
}

fn bench_partition(c: &mut Criterion) {
    let g = gen::grid_city(&gen::GridCityParams {
        rows: 24,
        cols: 24,
        ..Default::default()
    });
    c.bench_function("partition_576v_cap8", |b| {
        b.iter(|| partition::partition_with_capacity(&g, 8).num_parts)
    });
}

fn bench_dijkstra(c: &mut Criterion) {
    let g = gen::grid_city(&gen::GridCityParams {
        rows: 32,
        cols: 32,
        ..Default::default()
    });
    let mut engine = DijkstraEngine::new(&g);
    c.bench_function("dijkstra_full_1024v", |b| {
        b.iter(|| engine.run_from_vertex(VertexId(0)))
    });
}

fn bench_xshuffle(c: &mut Criterion) {
    // 64 buckets of 8 messages over 12 objects: two 32-lane bundles.
    let buckets: Vec<Vec<WireMessage>> = (0..64u64)
        .map(|i| {
            (0..8u64)
                .map(|j| WireMessage {
                    msg: CachedMessage::update(
                        ObjectId((i * 8 + j) % 12),
                        EdgePosition::new(EdgeId(0), 0),
                        Timestamp(1000 + i * 8 + j),
                    ),
                    cell: CellId((i % 4) as u32),
                })
                .collect()
        })
        .collect();
    let mut group = c.benchmark_group("xshuffle_clean_512msgs");
    for eta in [4u32, 5] {
        group.bench_with_input(BenchmarkId::from_parameter(1 << eta), &eta, |b, &eta| {
            b.iter(|| {
                let mut dev = Device::new(DeviceSpec::test_tiny());
                let (out, _) = dev.launch(buckets.len(), |ctx| {
                    xshuffle_clean(ctx, &buckets, eta, Timestamp(0))
                });
                out.objects_seen
            })
        });
    }
    group.finish();
}

fn bench_update_path(c: &mut Criterion) {
    use ggrid::{GGridConfig, GGridServer};
    let g = gen::grid_city(&gen::GridCityParams {
        rows: 16,
        cols: 16,
        ..Default::default()
    });
    c.bench_function("ggrid_handle_update_x1000", |b| {
        let server = GGridServer::new(g.clone(), GGridConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            for o in 0..1000u64 {
                t += 1;
                let e = EdgeId(((o * 13) % g.num_edges() as u64) as u32);
                server.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(t));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_zorder,
    bench_partition,
    bench_dijkstra,
    bench_xshuffle,
    bench_update_path
);
criterion_main!(benches);
