//! Criterion bench for Fig 9: query time vs update frequency f — the
//! lazy-update headline.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid_bench::runner::{run_one, IndexKind};
use roadnet::gen::Dataset;

fn bench_vary_freq(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let params = common::bench_params();
    for kind in [IndexKind::GGrid, IndexKind::VTree, IndexKind::Road] {
        let mut group = c.benchmark_group(format!("fig9_{}", kind.name()));
        group.sample_size(10);
        for f in [1u64, 4, 8] {
            let mut scenario = common::bench_scenario(400, 16, 3);
            scenario.moto.update_period_ms = 1000 / f;
            group.bench_with_input(BenchmarkId::from_parameter(f), &f, |b, _| {
                b.iter(|| run_one(kind, &graph, &params, &scenario))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_vary_freq);
criterion_main!(benches);
