//! Criterion bench for Fig 10: G-Grid vs network size.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid_bench::runner::{run_one, IndexKind};
use roadnet::gen::Dataset;

fn bench_scalability(c: &mut Criterion) {
    let params = common::bench_params();
    let scenario = common::bench_scenario(400, 16, 3);
    let mut group = c.benchmark_group("fig10_network_size");
    group.sample_size(10);
    for ds in [Dataset::NY, Dataset::FLA, Dataset::CAL] {
        let graph = common::bench_graph(ds);
        group.bench_with_input(BenchmarkId::from_parameter(ds.name()), &ds, |b, _| {
            b.iter(|| run_one(IndexKind::GGrid, &graph, &params, &scenario))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalability);
criterion_main!(benches);
