//! Criterion bench for Fig 4: G-Grid parameter tuning (δᵇ, 2^η, ρ).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid::GGridConfig;
use ggrid_bench::runner::{run_one, IndexKind};
use roadnet::gen::Dataset;

fn bench_delta_b(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let scenario = common::bench_scenario(400, 16, 3);
    let mut group = c.benchmark_group("fig4a_delta_b");
    group.sample_size(10);
    for db in [8usize, 32, 128] {
        let mut params = common::bench_params();
        params.ggrid = GGridConfig {
            bucket_capacity: db,
            ..GGridConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(db), &db, |b, _| {
            b.iter(|| run_one(IndexKind::GGrid, &graph, &params, &scenario))
        });
    }
    group.finish();
}

fn bench_eta(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let scenario = common::bench_scenario(400, 16, 3);
    let mut group = c.benchmark_group("fig4b_bundle_width");
    group.sample_size(10);
    for eta in [4u32, 5, 6] {
        let mut params = common::bench_params();
        params.ggrid = GGridConfig {
            eta,
            ..GGridConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(1u32 << eta), &eta, |b, _| {
            b.iter(|| run_one(IndexKind::GGrid, &graph, &params, &scenario))
        });
    }
    group.finish();
}

fn bench_rho(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let scenario = common::bench_scenario(400, 16, 3);
    let mut group = c.benchmark_group("fig4c_rho");
    group.sample_size(10);
    for rho in [1.4f64, 1.8, 3.0] {
        let mut params = common::bench_params();
        params.ggrid = GGridConfig {
            rho,
            ..GGridConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(rho), &rho, |b, _| {
            b.iter(|| run_one(IndexKind::GGrid, &graph, &params, &scenario))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta_b, bench_eta, bench_rho);
criterion_main!(benches);
