#![allow(dead_code)] // each bench binary uses a subset of these helpers

//! Shared setup for the criterion benches: a small but non-trivial
//! benchmark world so each figure's bench finishes in seconds.

use std::sync::Arc;

use ggrid_bench::datasets::{build_dataset, DatasetSpec};
use ggrid_bench::runner::IndexParams;
use roadnet::gen::Dataset;
use roadnet::graph::Graph;
use workload::moto::MotoConfig;
use workload::scenario::ScenarioConfig;

/// Scale divisor for bench datasets (NY → ~330 vertices).
pub const BENCH_SCALE: u32 = 800;

pub fn bench_graph(ds: Dataset) -> Arc<Graph> {
    build_dataset(&DatasetSpec::new(ds, BENCH_SCALE))
}

pub fn bench_params() -> IndexParams {
    IndexParams::default()
}

pub fn bench_scenario(objects: usize, k: usize, queries: usize) -> ScenarioConfig {
    ScenarioConfig {
        moto: MotoConfig {
            num_objects: objects,
            update_period_ms: 500,
            seed: 12,
            ..Default::default()
        },
        k,
        query_interval_ms: 500,
        num_queries: queries,
        warmup_ms: 600,
        query_seed: 34,
        buffered_ingest: false,
    }
}
