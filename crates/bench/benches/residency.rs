//! Criterion bench for device-resident cell state: the repeated-query
//! workload of the `residency` experiment, swept over the device budget
//! (off / tight / comfortable) on the NY-shaped dataset.
//!
//! Besides the criterion timings, the bench emits one machine-readable
//! `BENCH {json}` line per configuration with the deterministic simulated
//! figures: simulated device time, H2D split into delta vs full uploads,
//! resident hits, and evictions. The simulated clocks come from the device
//! model, so one instrumented run per configuration is a stable baseline.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::gen::Dataset;
use roadnet::EdgeId;

const OBJECTS: u64 = 400;
const ROUNDS: usize = 6;
const K: usize = 16;

const BUDGETS: [(&str, u64); 3] = [("off", 0), ("tight", 256), ("on", 64 << 20)];

fn server(graph: &std::sync::Arc<roadnet::graph::Graph>, budget: u64) -> GGridServer {
    GGridServer::new(
        (**graph).clone(),
        GGridConfig {
            device_budget_bytes: budget,
            ..Default::default()
        },
    )
}

/// Scatter a fleet, then revisit four query positions for `ROUNDS` rounds,
/// moving 5% of the fleet between rounds (same shape as the experiment).
fn workload(graph: &std::sync::Arc<roadnet::graph::Graph>, s: &mut GGridServer) {
    let ne = graph.num_edges() as u32;
    let mut rng = SmallRng::seed_from_u64(0x7e51);
    for o in 0..OBJECTS {
        let e = EdgeId(rng.gen_range(0..ne));
        s.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100));
    }
    let positions: Vec<EdgePosition> = (0..4u32)
        .map(|p| EdgePosition::at_source(EdgeId((p * (ne / 4)).min(ne - 1))))
        .collect();
    let mut t = 200u64;
    for _ in 0..ROUNDS {
        for _ in 0..OBJECTS / 20 {
            t += 1;
            let o = ObjectId(rng.gen_range(0..OBJECTS));
            let e = EdgeId(rng.gen_range(0..ne));
            s.handle_update(o, EdgePosition::at_source(e), Timestamp(t));
        }
        t += 1;
        for &q in &positions {
            s.knn(q, K, Timestamp(t));
        }
    }
}

fn bench_residency(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let mut group = c.benchmark_group("residency");
    group.sample_size(10);

    for (label, budget) in BUDGETS {
        group.bench_function(format!("budget={label}").as_str(), |b| {
            b.iter(|| {
                let mut s = server(&graph, budget);
                workload(&graph, &mut s);
                s.counters().gpu_time.0
            })
        });
    }
    group.finish();

    // One deterministic instrumented run per configuration.
    for (label, budget) in BUDGETS {
        let mut s = server(&graph, budget);
        workload(&graph, &mut s);
        let c = s.counters();
        println!(
            "BENCH {{\"bench\": \"residency\", \"budget\": \"{label}\", \"budget_bytes\": {}, \"sim_ns\": {}, \"h2d_bytes\": {}, \"h2d_delta_bytes\": {}, \"h2d_full_bytes\": {}, \"d2h_bytes\": {}, \"resident_hits\": {}, \"evictions\": {}, \"resident_cells\": {}}}",
            budget,
            c.gpu_time.0,
            c.h2d_bytes,
            c.h2d_delta_bytes,
            c.h2d_full_bytes,
            c.d2h_bytes,
            c.resident_hits,
            c.evictions,
            s.resident_cells(),
        );
    }
}

criterion_group!(benches, bench_residency);
criterion_main!(benches);
