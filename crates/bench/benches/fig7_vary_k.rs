//! Criterion bench for Fig 7: query time vs k.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid_bench::runner::{run_one, IndexKind};
use roadnet::gen::Dataset;

fn bench_vary_k(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let params = common::bench_params();
    for kind in [IndexKind::GGrid, IndexKind::VTree] {
        let mut group = c.benchmark_group(format!("fig7_{}", kind.name()));
        group.sample_size(10);
        for k in [8usize, 32, 128] {
            let scenario = common::bench_scenario(400, k, 3);
            group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
                b.iter(|| run_one(kind, &graph, &params, &scenario))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_vary_k);
criterion_main!(benches);
