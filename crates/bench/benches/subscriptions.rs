//! Criterion bench for continuous kNN subscriptions: a seeded fleet, a set
//! of standing queries, then per tick one ingest wave followed by
//! `tick_subscriptions` — contrasted with re-querying every rider fresh
//! each tick. Two movement patterns: a hot window all churn crowds into
//! (the guard's home turf) and network-wide scatter (its worst case).
//!
//! Besides the criterion timings, the bench emits one machine-readable
//! `BENCH {json}` line per variant with the deterministic modeled figures:
//! skip/repair counts, avoided rate, modeled ns per tick, and modeled
//! standing-query throughput. Maintained answers are asserted identical to
//! the re-query server's fresh answers on every tick.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::gen::Dataset;
use roadnet::EdgeId;

const SUBS: usize = 24;
const TICKS: usize = 10;
const K: usize = 8;
const WINDOW: u32 = 96;

fn server(graph: &std::sync::Arc<roadnet::graph::Graph>) -> GGridServer {
    GGridServer::new(
        (**graph).clone(),
        GGridConfig {
            // No expiry churn: the bench isolates movement-driven work.
            t_delta_ms: 1 << 40,
            ..Default::default()
        },
    )
}

/// Seeds the fleet, registers the riders, then runs the tick loop. With
/// `requery` the standing answers are recomputed fresh each tick instead
/// (the baseline). Returns a checksum over every delivered answer.
fn workload(
    graph: &std::sync::Arc<roadnet::graph::Graph>,
    s: &mut GGridServer,
    hot: bool,
    requery: bool,
) -> u64 {
    let ne = graph.num_edges() as u32;
    let objects = (ne / 2) as u64;
    let wave = (objects / 32).max(32);
    let mut rng = SmallRng::seed_from_u64(0x5B5);
    let mut t = 100u64;

    let seed_wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..objects)
        .map(|o| {
            let e = EdgeId(((o as u32).wrapping_mul(2_654_435_761)) % ne);
            (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
        })
        .collect();
    s.ingest_batch(&seed_wave);

    let riders: Vec<EdgePosition> = (0..SUBS as u32)
        .map(|i| EdgePosition::at_source(EdgeId((i * (ne / SUBS as u32).max(1)) % ne)))
        .collect();
    let subs: Vec<SubscriptionId> = if requery {
        Vec::new()
    } else {
        riders
            .iter()
            .map(|&q| s.subscribe_knn(q, K, Timestamp(t)))
            .collect()
    };

    let mut checksum = 0u64;
    for round in 0..TICKS {
        t += 1_000;
        let first = (round as u64 * wave) % objects;
        let base = (round as u32 * (WINDOW / 8)) % ne.saturating_sub(WINDOW).max(1);
        let updates: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..wave)
            .map(|j| {
                let (o, e) = if hot {
                    (j, EdgeId(base + rng.gen_range(0..WINDOW.min(ne))))
                } else {
                    ((first + j) % objects, EdgeId(rng.gen_range(0..ne)))
                };
                (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        s.ingest_batch(&updates);

        if requery {
            for &q in &riders {
                for (o, d) in s.knn(q, K, Timestamp(t)) {
                    checksum = checksum.wrapping_mul(31).wrapping_add(o.0 ^ d);
                }
            }
        } else {
            s.tick_subscriptions(Timestamp(t));
            for &id in &subs {
                for &(o, d) in s.subscription_result(id).unwrap() {
                    checksum = checksum.wrapping_mul(31).wrapping_add(o.0 ^ d);
                }
            }
        }
    }
    checksum
}

fn bench_subscriptions(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let mut group = c.benchmark_group("subscriptions");
    group.sample_size(10);

    for (label, hot) in [("uniform", false), ("hot-window", true)] {
        for (mode, requery) in [("subscribe", false), ("requery", true)] {
            group.bench_function(format!("move={label}/mode={mode}").as_str(), |b| {
                b.iter(|| {
                    let mut s = server(&graph);
                    workload(&graph, &mut s, hot, requery)
                })
            });
        }

        // One instrumented pair per movement pattern: identical answers,
        // deterministic modeled counters.
        let mut subs_server = server(&graph);
        let maintained = workload(&graph, &mut subs_server, hot, false);
        let mut requery_server = server(&graph);
        let fresh = workload(&graph, &mut requery_server, hot, true);
        assert_eq!(
            maintained, fresh,
            "maintained answers diverged from fresh queries ({label})"
        );
        let sc = subs_server.counters();
        let bc = requery_server.counters();
        let baseline_ns = bc.query_cpu_ns + bc.gpu_time.0;
        println!(
            "BENCH {{\"bench\": \"subscriptions\", \"movement\": \"{label}\", \"subs\": {SUBS}, \"ticks\": {TICKS}, \"skipped\": {}, \"repaired_delta\": {}, \"repaired_full\": {}, \"avoided_pct\": {:.2}, \"subs_modeled_ns_per_tick\": {}, \"subs_per_sec_modeled\": {:.1}, \"baseline_ns_per_tick\": {}, \"speedup_vs_requery\": {:.2}}}",
            sc.subs_skipped,
            sc.subs_repaired_delta,
            sc.subs_repaired_full,
            100.0 * sc.subs_avoided_rate(),
            sc.subs_modeled_ns_per_tick(),
            sc.subs_per_sec_modeled(),
            baseline_ns / TICKS as u64,
            baseline_ns as f64 / sc.subs_modeled_ns().max(1) as f64,
        );
    }
    group.finish();
}

criterion_group!(benches, bench_subscriptions);
criterion_main!(benches);
