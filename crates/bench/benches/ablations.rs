//! Criterion bench for the DESIGN.md ablations: lazy vs eager cleaning,
//! pipelined vs synchronous transfer, warp-wide vs degenerate bundles.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::{GGridConfig, GGridServer};
use ggrid_bench::experiments::ablation::EagerGGrid;
use roadnet::gen::Dataset;
use workload::scenario::run_scenario;

fn bench_ablations(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let scenario = common::bench_scenario(400, 16, 3);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("lazy (paper)", |b| {
        b.iter(|| {
            let mut s = GGridServer::new((*graph).clone(), GGridConfig::default());
            run_scenario(&graph, &mut s, &scenario, 10_000, false).total_ns()
        })
    });

    group.bench_function("eager (clean per message)", |b| {
        b.iter(|| {
            let mut s = EagerGGrid::new((*graph).clone(), GGridConfig::default());
            run_scenario(&graph, &mut s, &scenario, 10_000, false).total_ns()
        })
    });

    group.bench_function("synchronous transfer", |b| {
        b.iter(|| {
            let mut s = GGridServer::new(
                (*graph).clone(),
                GGridConfig {
                    transfer_chunks: 1,
                    ..Default::default()
                },
            );
            run_scenario(&graph, &mut s, &scenario, 10_000, false).total_ns()
        })
    });

    group.bench_function("2-lane bundles", |b| {
        b.iter(|| {
            let mut s = GGridServer::new(
                (*graph).clone(),
                GGridConfig {
                    eta: 1,
                    ..Default::default()
                },
            );
            run_scenario(&graph, &mut s, &scenario, 10_000, false).total_ns()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
