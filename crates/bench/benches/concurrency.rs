//! Criterion bench for the concurrent query engine: refinement worker
//! count (1, 2, 4, 8) × the epoch-based clean-skip cache (on/off) on the
//! NY-shaped dataset.
//!
//! Besides the criterion timings, the bench emits one machine-readable
//! `BENCH {json}` line per configuration — the baseline record for the
//! performance trajectory. Two clocks are reported:
//!
//! * `ns_per_query` — the measured hybrid clock (host wall + simulated
//!   device time). Worker scaling shows up here only when the machine has
//!   free cores; single-core CI boxes time-slice the pool and cannot go
//!   faster than workers=1.
//! * `modeled_ns_per_query` — the hybrid clock with the refinement phase
//!   charged at its critical path (busiest worker) instead of host wall
//!   time: the modeled duration on a host with ≥ `workers` free cores,
//!   exactly how the simulated device clock treats kernels that execute
//!   serially on the host. This is the figure the worker sweep is judged
//!   on; `host_cores` is emitted so readers can tell which regime the
//!   measured clock was in.
//!
//! The batch pipeline's overlap win (`batch_pipelined_ns` vs
//! `batch_serial_ns`) and the clean-skip hit counters are host-independent.

mod common;

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::prelude::*;
use ggrid_bench::datasets::{build_dataset, DatasetSpec};
use roadnet::gen::Dataset;
use roadnet::EdgeId;
use workload::moto::{Moto, MotoConfig, Placement};
use workload::scenario::run_scenario;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Scale divisor for the refinement-weighted world. At 1/40 the NY grid
/// keeps enough boundary structure that a hotspot fleet leaves dozens of
/// unresolved vertices per query, so the worker pool has real work.
const REFINE_SCALE: u32 = 40;
const REFINE_OBJECTS: usize = 256;
const REFINE_K: usize = 48;

fn engine_config(workers: usize, clean_skip: bool) -> GGridConfig {
    GGridConfig {
        refine_workers: workers,
        clean_skip,
        ..Default::default()
    }
}

fn bench_concurrency(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let scenario = common::bench_scenario(400, 16, 4);
    let mut group = c.benchmark_group("concurrency");
    group.sample_size(10);

    for clean_skip in [true, false] {
        for workers in WORKER_SWEEP {
            let label = format!(
                "workers={workers} clean-skip={}",
                if clean_skip { "on" } else { "off" }
            );
            group.bench_function(label.as_str(), |b| {
                b.iter(|| {
                    let mut s =
                        GGridServer::new((*graph).clone(), engine_config(workers, clean_skip));
                    run_scenario(&graph, &mut s, &scenario, 10_000, false).total_ns()
                })
            });
        }
    }
    group.finish();

    emit_bench_json();
}

/// The hotspot fleet + query stream for the instrumented runs. Queries
/// cycle over eight spread-out positions three times: the repeats are what
/// exercise the clean-skip cache (an unchanged fleet leaves cells clean).
type RefineWorld = (
    std::sync::Arc<roadnet::graph::Graph>,
    Vec<workload::moto::UpdateMessage>,
    Vec<(EdgePosition, usize)>,
);

fn refine_world() -> RefineWorld {
    let graph = build_dataset(&DatasetSpec::new(Dataset::NY, REFINE_SCALE));
    let moto_cfg = MotoConfig {
        num_objects: REFINE_OBJECTS,
        update_period_ms: 500,
        seed: 12,
        placement: Placement::Hotspot {
            centers: 1,
            radius_hops: 3,
        },
        ..Default::default()
    };
    let mut moto = Moto::new(graph.clone(), &moto_cfg);
    let updates = moto.advance_to(Timestamp(600));
    let ne = graph.num_edges() as u32;
    let positions: Vec<EdgePosition> = (0..8u32)
        .map(|p| EdgePosition::at_source(EdgeId(p * (ne / 8))))
        .collect();
    let queries: Vec<(EdgePosition, usize)> = (0..3)
        .flat_map(|_| positions.iter().map(|&q| (q, REFINE_K)))
        .collect();
    (graph, updates, queries)
}

/// One `BENCH {json}` line per configuration, from a single instrumented
/// run each (the simulated device clock is deterministic, and the modeled
/// refinement clock is a per-worker busy-time maximum, so one run is a
/// stable baseline).
fn emit_bench_json() {
    let (graph, updates, queries) = refine_world();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    for clean_skip in [true, false] {
        for workers in WORKER_SWEEP {
            let mut s = GGridServer::new((*graph).clone(), engine_config(workers, clean_skip));
            for u in &updates {
                s.handle_update(u.object, u.position, u.time);
            }

            let t0 = Instant::now();
            let mut hybrid_ns = 0u64;
            for &(q, k) in &queries {
                let r = s.knn_detailed(q, k, Timestamp(700));
                hybrid_ns += r.breakdown.total_ns();
            }
            let wall_ns = t0.elapsed().as_nanos() as u64;
            let counters = s.counters();
            let n = queries.len() as u64;
            // Swap the refinement phase's host wall time for its critical
            // path: the hybrid clock as it would read with free cores.
            let modeled_ns =
                hybrid_ns - counters.refine_ns.min(hybrid_ns) + counters.refine_critical_ns;

            // Batch pipeline on the same stream: device time of query i+1
            // overlaps the refinement of query i.
            let batch = s.knn_batch(&queries, Timestamp(700));

            println!(
                "BENCH {{\"bench\":\"concurrency\",\"dataset\":\"NY\",\"scale\":{},\
                 \"workers\":{},\"clean_skip\":{},\"queries\":{},\
                 \"ns_per_query\":{},\"modeled_ns_per_query\":{},\"wall_ns_per_query\":{},\
                 \"gpu_ns_per_query\":{},\
                 \"refine_ns\":{},\"refine_busy_ns\":{},\"refine_critical_ns\":{},\
                 \"refine_speedup\":{:.3},\"refine_concurrency\":{:.3},\
                 \"skip_hits\":{},\"skip_misses\":{},\"skip_hit_rate\":{:.3},\
                 \"batch_pipelined_ns\":{},\"batch_serial_ns\":{},\"host_cores\":{}}}",
                REFINE_SCALE,
                workers,
                clean_skip,
                n,
                hybrid_ns / n,
                modeled_ns / n,
                wall_ns / n,
                counters.gpu_time.0 / n,
                counters.refine_ns,
                counters.refine_busy_ns,
                counters.refine_critical_ns,
                counters.refine_parallel_speedup(),
                counters.refine_concurrency(),
                counters.clean_skip_hits,
                counters.clean_skip_misses,
                counters.clean_skip_hit_rate(),
                batch.pipelined_time.0,
                batch.serial_time.0,
                host_cores,
            );
        }
    }
}

criterion_group!(benches, bench_concurrency);
criterion_main!(benches);
