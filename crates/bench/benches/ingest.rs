//! Criterion bench for the ingestion path: the hot-window fleet workload
//! of the `ingest` experiment — every round the whole fleet reports into a
//! small window of edges, then a fixed query frontier re-cleans — swept
//! over how updates are committed (per-call vs group commit, 1/2/4 ingest
//! workers) on the NY-shaped dataset.
//!
//! Besides the criterion timings, the bench emits one machine-readable
//! `BENCH {json}` line per configuration with the deterministic modeled
//! figures: modeled ingest time, cell-lock and shard-lock traffic, batch
//! counts, and bucket-slab reuse. The modeled ingest clock is counted, not
//! timed, so one instrumented run per configuration is a stable baseline.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::gen::Dataset;
use roadnet::EdgeId;

const OBJECTS: u64 = 400;
const ROUNDS: usize = 6;
const WINDOW: u32 = 48;
const K: usize = 16;

/// (label, ingest workers, group commit?)
const SWEEP: [(&str, usize, bool); 4] = [
    ("per-call", 1, false),
    ("batched", 1, true),
    ("batched-w2", 2, true),
    ("batched-w4", 4, true),
];

fn server(graph: &std::sync::Arc<roadnet::graph::Graph>, workers: usize) -> GGridServer {
    GGridServer::new(
        (**graph).clone(),
        GGridConfig {
            ingest_workers: workers,
            ..Default::default()
        },
    )
}

/// Whole-fleet report waves into a hot edge window, queries between waves
/// (same shape as the experiment).
fn workload(graph: &std::sync::Arc<roadnet::graph::Graph>, s: &mut GGridServer, batched: bool) {
    let ne = graph.num_edges() as u32;
    let window = ne.min(WINDOW);
    let mut rng = SmallRng::seed_from_u64(0x1467);
    let positions: Vec<EdgePosition> = (0..4u32)
        .map(|p| EdgePosition::at_source(EdgeId((p * (window / 4)).min(ne - 1))))
        .collect();
    let mut t = 100u64;
    for _ in 0..ROUNDS {
        let wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..OBJECTS)
            .map(|o| {
                t += 1;
                let e = EdgeId(rng.gen_range(0..window));
                (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        if batched {
            s.ingest_batch(&wave);
        } else {
            for &(o, p, ts) in &wave {
                s.handle_update(o, p, ts);
            }
        }
        t += 1;
        for &q in &positions {
            s.knn(q, K, Timestamp(t));
        }
    }
}

fn bench_ingest(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let mut group = c.benchmark_group("ingest");
    group.sample_size(10);

    for (label, workers, batched) in SWEEP {
        group.bench_function(format!("commit={label}").as_str(), |b| {
            b.iter(|| {
                let mut s = server(&graph, workers);
                workload(&graph, &mut s, batched);
                s.counters().modeled_ingest_ns()
            })
        });
    }
    group.finish();

    // One deterministic instrumented run per configuration.
    for (label, workers, batched) in SWEEP {
        let mut s = server(&graph, workers);
        workload(&graph, &mut s, batched);
        let c = s.counters();
        println!(
            "BENCH {{\"bench\": \"ingest\", \"commit\": \"{label}\", \"workers\": {workers}, \"updates\": {}, \"tombstones\": {}, \"batches\": {}, \"cell_locks\": {}, \"shard_locks\": {}, \"modeled_ingest_ns\": {}, \"updates_per_sec_modeled\": {:.1}, \"bucket_allocs\": {}, \"bucket_reuses\": {}}}",
            c.updates_ingested,
            c.tombstones_written,
            c.ingest_batches,
            c.ingest_cell_locks,
            c.ingest_shard_locks,
            c.modeled_ingest_ns(),
            c.updates_per_sec_modeled(),
            c.bucket_allocs,
            c.bucket_reuses,
        );
    }
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
