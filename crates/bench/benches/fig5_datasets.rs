//! Criterion bench for Fig 5: all four indexes across datasets (k = 16).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ggrid_bench::runner::{run_one, IndexKind};
use roadnet::gen::Dataset;

fn bench_fig5(c: &mut Criterion) {
    let scenario = common::bench_scenario(400, 16, 3);
    let params = common::bench_params();
    for ds in [Dataset::NY, Dataset::FLA] {
        let graph = common::bench_graph(ds);
        let mut group = c.benchmark_group(format!("fig5_{}", ds.name()));
        group.sample_size(10);
        for kind in IndexKind::ALL {
            group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
                b.iter(|| run_one(k, &graph, &params, &scenario))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
