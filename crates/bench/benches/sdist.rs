//! Criterion bench for the frontier `GPU_SDist` kernel and device-resident
//! topology: the repeated-query workload of the `sdist` experiment, swept
//! over the kernel configuration (dense / frontier-cold / frontier) on the
//! NY-shaped dataset.
//!
//! Besides the criterion timings, the bench emits one machine-readable
//! `BENCH {json}` line per configuration with the deterministic simulated
//! figures: simulated sdist time, relaxation rounds, frontier work,
//! k-bounded pruning, and topology bus traffic. The simulated clocks come
//! from the device model, so one instrumented run per configuration is a
//! stable baseline.

mod common;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::gen::Dataset;
use roadnet::EdgeId;

const OBJECTS: u64 = 400;
const ROUNDS: usize = 6;
const K: usize = 16;

/// (label, sdist_frontier, topology_resident)
const CONFIGS: [(&str, bool, bool); 3] = [
    ("dense", false, false),
    ("frontier-cold", true, false),
    ("frontier", true, true),
];

fn server(
    graph: &std::sync::Arc<roadnet::graph::Graph>,
    frontier: bool,
    resident: bool,
) -> GGridServer {
    GGridServer::new(
        (**graph).clone(),
        GGridConfig {
            sdist_frontier: frontier,
            topology_resident: resident,
            ..Default::default()
        },
    )
}

/// Scatter a fleet, then revisit four query positions for `ROUNDS` rounds,
/// moving 5% of the fleet between rounds (same shape as the experiment).
fn workload(graph: &std::sync::Arc<roadnet::graph::Graph>, s: &mut GGridServer) {
    let ne = graph.num_edges() as u32;
    let mut rng = SmallRng::seed_from_u64(0x5d15);
    for o in 0..OBJECTS {
        let e = EdgeId(rng.gen_range(0..ne));
        s.handle_update(ObjectId(o), EdgePosition::at_source(e), Timestamp(100));
    }
    let positions: Vec<EdgePosition> = (0..4u32)
        .map(|p| EdgePosition::at_source(EdgeId((p * (ne / 4)).min(ne - 1))))
        .collect();
    let mut t = 200u64;
    for _ in 0..ROUNDS {
        for _ in 0..OBJECTS / 20 {
            t += 1;
            let o = ObjectId(rng.gen_range(0..OBJECTS));
            let e = EdgeId(rng.gen_range(0..ne));
            s.handle_update(o, EdgePosition::at_source(e), Timestamp(t));
        }
        t += 1;
        for &q in &positions {
            s.knn(q, K, Timestamp(t));
        }
    }
}

fn bench_sdist(c: &mut Criterion) {
    let graph = common::bench_graph(Dataset::NY);
    let mut group = c.benchmark_group("sdist");
    group.sample_size(10);

    for (label, frontier, resident) in CONFIGS {
        group.bench_function(format!("kernel={label}").as_str(), |b| {
            b.iter(|| {
                let mut s = server(&graph, frontier, resident);
                workload(&graph, &mut s);
                s.counters().sdist_time.0
            })
        });
    }
    group.finish();

    // One deterministic instrumented run per configuration.
    for (label, frontier, resident) in CONFIGS {
        let mut s = server(&graph, frontier, resident);
        workload(&graph, &mut s);
        let c = s.counters();
        println!(
            "BENCH {{\"bench\": \"sdist\", \"kernel\": \"{label}\", \"sdist_ns\": {}, \"rounds\": {}, \"frontier_sum\": {}, \"settled\": {}, \"vertices\": {}, \"pruned\": {}, \"h2d_topo_bytes\": {}, \"topo_hits\": {}, \"topo_misses\": {}, \"resident_cells\": {}, \"resident_bytes\": {}}}",
            c.sdist_time.0,
            c.sdist_rounds,
            c.sdist_frontier_sum,
            c.sdist_settled,
            c.sdist_vertices,
            c.sdist_pruned,
            c.h2d_topo_bytes,
            c.topo_hits,
            c.topo_misses,
            s.topology_resident_cells(),
            s.topology_resident_bytes(),
        );
    }
}

criterion_group!(benches, bench_sdist);
criterion_main!(benches);
