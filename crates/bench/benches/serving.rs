//! Criterion bench for the serving loop: open-loop Poisson arrivals fed
//! through concurrent client lanes into [`ggrid::serve::serve`], swept
//! over batching policies (fixed-1, adaptive-8, adaptive-32, fixed-32) at
//! a saturating arrival rate on the NY-shaped dataset.
//!
//! Criterion times the wall clock of a full serve pass (client threads +
//! batch forming + device batches + ingest flushes). Besides the timings,
//! the bench emits one machine-readable `BENCH {json}` line per policy
//! with the deterministic modeled figures: p50/p99/p99.9 modeled latency,
//! modeled throughput, mean batch size, and close-reason counts — the
//! modeled clock is counted, not timed, so one instrumented run per
//! policy is a stable baseline.

mod common;

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ggrid::grid::GraphGrid;
use ggrid::prelude::*;
use roadnet::gen::Dataset;
use roadnet::EdgeId;
use workload::openloop::{poisson_arrivals, split_round_robin, Arrival, OpenLoopConfig};

const FLEET: u64 = 400;
const QUERIES: usize = 192;
const LANES: usize = 4;
const K: usize = 8;

/// (label, max batch, deadline in units of the calibrated 32-batch
/// service time; `None` = fill-only).
const SWEEP: [(&str, usize, Option<u64>); 4] = [
    ("fixed-1", 1, Some(0)),
    ("adaptive-8", 8, Some(2)),
    ("adaptive-32", 32, Some(2)),
    ("fixed-32", 32, None),
];

fn params() -> GGridConfig {
    GGridConfig {
        refine_workers: 4,
        t_delta_ms: 1 << 40,
        ..Default::default()
    }
}

fn bench_grid() -> Arc<GraphGrid> {
    let graph = common::bench_graph(Dataset::NY);
    let p = params();
    Arc::new(GraphGrid::build(graph, p.cell_capacity, p.vertex_capacity))
}

fn server(grid: &Arc<GraphGrid>) -> GGridServer {
    let s = GGridServer::with_shared_grid(grid.clone(), params(), gpu_sim::Device::quadro_p2000());
    let ne = grid.graph().num_edges() as u32;
    let wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..FLEET)
        .map(|o| {
            (
                ObjectId(o),
                EdgePosition::at_source(EdgeId((o as u32 * 131) % ne)),
                Timestamp(900),
            )
        })
        .collect();
    s.ingest_batch(&wave);
    s
}

/// Mean modeled 32-batch service time on a warmed server; the deadline
/// and the saturating rate derive from it, so the bench self-scales
/// between build profiles.
fn calibrate_s32(grid: &Arc<GraphGrid>) -> u64 {
    let mut s = server(grid);
    let ne = grid.graph().num_edges() as u32;
    let pos = |i: u32| EdgePosition::at_source(EdgeId((i * 977) % ne));
    let warm: Vec<(EdgePosition, usize)> = (0..32).map(|i| (pos(i), K)).collect();
    s.knn_batch(&warm, Timestamp(901));
    let mut total = 0u64;
    for r in 0..4u32 {
        let batch: Vec<(EdgePosition, usize)> =
            (0..32).map(|i| (pos(200 + r * 32 + i), K)).collect();
        total += s.knn_batch(&batch, Timestamp(902)).pipelined_time.0;
    }
    (total / 4).max(1)
}

fn schedule(grid: &Arc<GraphGrid>, rate_qps: f64, deadline_ns: u64) -> Vec<Vec<Arrival>> {
    let arrivals = poisson_arrivals(
        grid.graph(),
        &OpenLoopConfig {
            seed: 0x9a11,
            queries: QUERIES,
            query_rate_hz: rate_qps,
            ingest_rate_hz: rate_qps / 48.0,
            ingest_wave: 8,
            objects: FLEET,
            k: K,
            now_quantum_ns: deadline_ns.saturating_mul(64).max(10_000_000),
            base_ms: 1_000,
        },
    );
    split_round_robin(arrivals, LANES)
}

fn serve_pass(grid: &Arc<GraphGrid>, cfg: &ServeConfig, lanes: Vec<Vec<Arrival>>) -> ServeOutcome {
    let mut s = server(grid);
    let mut queue = ServeQueue::new(cfg);
    let clients: Vec<ServeClient> = (0..LANES).map(|_| queue.client()).collect();
    let mut outcome = None;
    std::thread::scope(|scope| {
        for (mut client, lane) in clients.into_iter().zip(lanes) {
            scope.spawn(move || {
                for a in lane {
                    match a {
                        Arrival::Query { at_ns, q, k, now } => client.query(q, k, now, at_ns),
                        Arrival::Ingest { at_ns, updates } => client.ingest(updates, at_ns),
                    }
                }
            });
        }
        outcome = Some(serve(&mut s, cfg, queue));
    });
    outcome.unwrap()
}

fn bench_serving(c: &mut Criterion) {
    let grid = bench_grid();
    let s32 = calibrate_s32(&grid);
    let deadline_ns = 2 * s32;
    let rate_qps = 4.0 * 32e9 / s32 as f64;

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    for (label, max_batch, deadline_mult) in SWEEP {
        let cfg = ServeConfig {
            max_batch_size: max_batch,
            deadline_ns: deadline_mult.map_or(u64::MAX, |m| m * s32),
            epoch_requests: 128,
            ..Default::default()
        };
        group.bench_function(format!("policy={label}").as_str(), |b| {
            b.iter(|| {
                let lanes = schedule(&grid, rate_qps, deadline_ns);
                serve_pass(&grid, &cfg, lanes).report.queries
            })
        });
    }
    group.finish();

    // One deterministic instrumented run per policy.
    for (label, max_batch, deadline_mult) in SWEEP {
        let cfg = ServeConfig {
            max_batch_size: max_batch,
            deadline_ns: deadline_mult.map_or(u64::MAX, |m| m * s32),
            epoch_requests: 128,
            ..Default::default()
        };
        let out = serve_pass(&grid, &cfg, schedule(&grid, rate_qps, deadline_ns));
        let r = &out.report;
        println!(
            "BENCH {{\"bench\": \"serving\", \"policy\": \"{label}\", \"rate_qps\": {rate_qps:.1}, \"deadline_ns\": {}, \"queries\": {}, \"shed\": {}, \"batches\": {}, \"mean_batch\": {:.2}, \"fill_closes\": {}, \"deadline_closes\": {}, \"boundary_closes\": {}, \"p50_modeled_ns\": {}, \"p99_modeled_ns\": {}, \"p999_modeled_ns\": {}, \"throughput_qps_modeled\": {:.1}}}",
            cfg.deadline_ns,
            r.queries,
            r.shed,
            r.batches,
            r.queries as f64 / r.batches.max(1) as f64,
            r.fill_closes,
            r.deadline_closes,
            r.boundary_closes,
            r.latency_hist.percentile(50.0),
            r.latency_hist.percentile(99.0),
            r.latency_hist.percentile(99.9),
            r.throughput_qps(),
        );
    }
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
