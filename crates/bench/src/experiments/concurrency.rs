//! Extension study (beyond the paper): the concurrent query engine.
//!
//! Sweeps the refinement worker count × the epoch-based clean-skip cache on
//! the NY-shaped dataset and reports the amortised query time next to the
//! engine's own instrumentation: the clean-skip hit rate (cells served from
//! the host cache instead of a kernel launch) and the average refinement
//! concurrency (summed worker-busy time over refinement wall time).
//!
//! Answers are identical across every row — the sweep isolates *where time
//! goes*, not what is computed.
//!
//! The "Refine speedup" column is the modeled parallel speedup (summed
//! worker-busy time over the busiest worker's time): it is host-core
//! independent, so the worker sweep stays meaningful on single-core CI
//! machines where wall time cannot shrink.

use ggrid::{GGridConfig, GGridServer};
use workload::scenario::run_scenario;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

/// Worker counts swept (the paper's host is a multi-core Xeon).
pub const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let mut t = ResultTable::new(
        &format!("Extension: concurrent query engine ({}, k=16)", ds.name()),
        &[
            "Workers",
            "Clean-skip",
            "ns/query",
            "Skip hits",
            "Skip misses",
            "Hit rate",
            "Refine conc.",
            "Refine speedup",
        ],
    );
    let params = cfg.index_params();
    // Query *bursts*: the sweep measures query-stream throughput, so the
    // queries arrive 1 ms apart — faster than any fleet update period, so
    // no cell is re-dirtied mid-burst. This is the regime where the
    // clean-skip cache and the worker pool matter; with queries 500 ms
    // apart every cell is re-dirtied between them and the cache is
    // honestly useless.
    let mut scenario = cfg.scenario();
    scenario.query_interval_ms = 1;
    for clean_skip in [true, false] {
        for workers in WORKER_SWEEP {
            let config = GGridConfig {
                refine_workers: workers,
                clean_skip,
                t_delta_ms: params.t_delta_ms,
                ..params.ggrid.clone()
            };
            let grid = world.grid(config.cell_capacity, config.vertex_capacity);
            let mut server =
                GGridServer::with_shared_grid(grid, config, gpu_sim::Device::quadro_p2000());
            let report = run_scenario(
                &world.graph,
                &mut server,
                &scenario,
                params.t_delta_ms,
                false,
            );
            let c = server.counters();
            t.row(vec![
                workers.to_string(),
                if clean_skip { "on" } else { "off" }.to_string(),
                fmt_ns(report.amortized_ns_per_query()),
                c.clean_skip_hits.to_string(),
                c.clean_skip_misses.to_string(),
                format!("{:.1}%", 100.0 * c.clean_skip_hit_rate()),
                format!("{:.2}", c.refine_concurrency()),
                format!("{:.2}", c.refine_parallel_speedup()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_table_runs_and_skip_hits() {
        let cfg = ExpConfig {
            scale: 4000,
            objects: 150,
            queries: 4,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 2 * WORKER_SWEEP.len());
        // With the cache on, a repeated-query stream must hit the skip
        // path; with it off, hits must be exactly zero.
        for row in &t.rows {
            let hits: u64 = row[3].parse().unwrap();
            match row[1].as_str() {
                "on" => assert!(hits > 0, "no skip hits in row {row:?}"),
                _ => assert_eq!(hits, 0, "skip hits with cache off {row:?}"),
            }
        }
    }
}
