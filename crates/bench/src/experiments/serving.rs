//! Extension study (beyond the paper): SLO-driven serving loop under
//! open-loop load.
//!
//! The paper measures amortised per-query cost on a closed loop; a served
//! index additionally pays *queueing* and *batch-forming* delay, which only
//! an open-loop driver exposes (a closed loop can never overload the
//! server). This harness drives [`ggrid::serve::serve`] with Poisson
//! arrivals from [`workload::openloop`] and compares batching policies:
//!
//! * **fixed-1** — every query is its own device batch (no batch wait,
//!   maximal per-batch overhead);
//! * **fixed-32** — batches close only when full (maximal amortisation,
//!   unbounded batch wait at low load);
//! * **adaptive-8 / adaptive-32** — batches close at `max_batch_size` OR a
//!   modeled-ns deadline, whichever first.
//!
//! The sweep crosses arrival rate × deadline × max batch size. All rates
//! and the deadline are *calibrated* against the measured+simulated batch
//! service time, so the same three regimes — low, moderate (a handful of
//! arrivals per deadline window), and saturating — emerge on any build
//! profile. `BENCH_9.json` records per-point p50/p99/p99.9 modeled latency
//! (queue wait + batch wait + device + refine), SLO attainment, and
//! saturation throughput, plus the two enforced floors:
//!
//! * `adaptive_saturation_speedup_x` ≥ 1.5 — deadline batching beats
//!   fixed-1 on saturated throughput;
//! * at moderate load, `adaptive_slo_attainment` ≥ 0.9 while
//!   `fixed_slo_attainment` < 0.5 — the deadline meets an SLO that
//!   fill-only batching structurally misses.

use std::path::Path;
use std::sync::Arc;

use ggrid::grid::GraphGrid;
use ggrid::prelude::*;
use ggrid::serve::ServeReport;
use roadnet::{gen, EdgeId};
use workload::openloop::{poisson_arrivals, split_round_robin, Arrival, OpenLoopConfig};

use crate::csvout::{fmt_ns, ResultTable};
use crate::experiments::ExpConfig;

/// Queries per serve run (quick mode shrinks this).
const QUERIES: usize = 512;
const QUERIES_QUICK: usize = 256;
/// Client lanes feeding the queue.
const LANES: usize = 4;
/// Fleet size cap (the serving study is about queueing, not capacity).
const FLEET_CAP: usize = 10_000;
/// k of every served query.
const K: usize = 8;
/// Maintenance epoch cadence (released requests per epoch).
const EPOCH_REQUESTS: u64 = 128;

/// One batching policy of the sweep.
#[derive(Clone, Copy)]
struct Policy {
    name: &'static str,
    max_batch: usize,
    /// `None` = fill-only (infinite deadline).
    deadline: Option<u64>,
}

/// One measured (rate, policy) point.
struct Point {
    rate_label: &'static str,
    rate_qps: f64,
    policy: Policy,
    deadline_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    slo_attainment: f64,
    throughput_qps: f64,
    mean_batch: f64,
    report: ServeReport,
}

fn server_config() -> GGridConfig {
    GGridConfig {
        refine_workers: 8,
        t_delta_ms: 1 << 40,
        ..Default::default()
    }
}

fn fresh_server(grid: &Arc<GraphGrid>, fleet: usize) -> GGridServer {
    let server = GGridServer::with_shared_grid(
        grid.clone(),
        server_config(),
        gpu_sim::Device::quadro_p2000(),
    );
    let ne = grid.graph().num_edges() as u32;
    let wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..fleet as u64)
        .map(|o| {
            (
                ObjectId(o),
                EdgePosition::at_source(EdgeId((o as u32 * 131) % ne)),
                Timestamp(900),
            )
        })
        .collect();
    server.ingest_batch(&wave);
    server
}

/// Measured service times: mean modeled ns per singleton batch and per
/// 32-batch, on a warmed server. Everything else is derived from these, so
/// the sweep self-scales between debug and release builds.
struct Calibration {
    s1_ns: u64,
    s32_ns: u64,
}

fn calibrate(grid: &Arc<GraphGrid>, fleet: usize) -> Calibration {
    let mut server = fresh_server(grid, fleet);
    let ne = grid.graph().num_edges() as u32;
    let pos = |i: u32| EdgePosition::at_source(EdgeId((i * 977) % ne));
    // Warm the topology store and clean the touched cells once.
    let warm: Vec<(EdgePosition, usize)> = (0..32).map(|i| (pos(i), K)).collect();
    server.knn_batch(&warm, Timestamp(901));

    let singles = 8u32;
    let mut s1 = 0u64;
    for i in 0..singles {
        s1 += server
            .knn_batch(&[(pos(100 + i), K)], Timestamp(902))
            .pipelined_time
            .0;
    }
    let rounds = 4u32;
    let mut s32 = 0u64;
    for r in 0..rounds {
        let batch: Vec<(EdgePosition, usize)> =
            (0..32).map(|i| (pos(200 + r * 32 + i), K)).collect();
        s32 += server.knn_batch(&batch, Timestamp(903)).pipelined_time.0;
    }
    Calibration {
        s1_ns: (s1 / singles as u64).max(1),
        s32_ns: (s32 / rounds as u64).max(1),
    }
}

/// Drive one (rate, policy) point: generate the open-loop schedule, feed
/// it through `LANES` client threads, and serve.
#[allow(clippy::too_many_arguments)]
fn run_point(
    grid: &Arc<GraphGrid>,
    fleet: usize,
    seed: u64,
    queries: usize,
    rate_label: &'static str,
    rate_qps: f64,
    policy: Policy,
    deadline_ns: u64,
    slo_ns: u64,
) -> Point {
    let schedule = poisson_arrivals(
        grid.graph(),
        &OpenLoopConfig {
            seed: seed ^ 0x5e12,
            queries,
            query_rate_hz: rate_qps,
            ingest_rate_hz: rate_qps / 48.0,
            ingest_wave: 8,
            objects: fleet as u64,
            k: K,
            // Wide enough that a deadline window (and a 32-fill at moderate
            // load) almost always stays inside one timestamp quantum.
            now_quantum_ns: deadline_ns.saturating_mul(64).max(10_000_000),
            base_ms: 1_000,
        },
    );
    let lanes = split_round_robin(schedule, LANES);

    let mut server = fresh_server(grid, fleet);
    let cfg = ServeConfig {
        max_batch_size: policy.max_batch,
        deadline_ns: policy.deadline.unwrap_or(u64::MAX),
        epoch_requests: EPOCH_REQUESTS,
        ..Default::default()
    };
    let mut queue = ServeQueue::new(&cfg);
    let clients: Vec<ServeClient> = (0..LANES).map(|_| queue.client()).collect();
    let mut outcome = None;
    std::thread::scope(|scope| {
        for (mut client, lane) in clients.into_iter().zip(lanes) {
            scope.spawn(move || {
                for a in lane {
                    match a {
                        Arrival::Query { at_ns, q, k, now } => client.query(q, k, now, at_ns),
                        Arrival::Ingest { at_ns, updates } => client.ingest(updates, at_ns),
                    }
                }
            });
        }
        outcome = Some(serve(&mut server, &cfg, queue));
    });
    let outcome = outcome.unwrap();

    let answered: Vec<_> = outcome.records.iter().filter(|r| !r.shed).collect();
    let within = answered.iter().filter(|r| r.latency_ns() <= slo_ns).count();
    let slo_attainment = within as f64 / answered.len().max(1) as f64;
    let report = outcome.report;
    Point {
        rate_label,
        rate_qps,
        policy,
        deadline_ns,
        p50_ns: report.latency_hist.percentile(50.0),
        p99_ns: report.latency_hist.percentile(99.0),
        p999_ns: report.latency_hist.percentile(99.9),
        slo_attainment,
        throughput_qps: report.throughput_qps(),
        mean_batch: report.queries as f64 / report.batches.max(1) as f64,
        report,
    }
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let nv = if cfg.quick { 3_000 } else { 10_000 };
    let graph = Arc::new(gen::synthetic_grid(nv, cfg.seed ^ nv as u64));
    let params = server_config();
    let grid = Arc::new(GraphGrid::build(
        graph,
        params.cell_capacity,
        params.vertex_capacity,
    ));
    let fleet = cfg.objects.min(FLEET_CAP);
    let queries = if cfg.quick { QUERIES_QUICK } else { QUERIES };

    let cal = calibrate(&grid, fleet);
    // The adaptive deadline: two 32-batch service times. The SLO grants a
    // deadline plus two service times of headroom.
    let deadline_ns = 2 * cal.s32_ns;
    let slo_ns = deadline_ns + 2 * cal.s32_ns;
    // Low: ~1 arrival per deadline window. Moderate: ~6 per window — far
    // below the 32-fill, so fill-only batching must stall. Saturate: 4x
    // the 32-batch service capacity.
    let rates: [(&'static str, f64); 3] = [
        ("low", 1e9 / deadline_ns as f64),
        ("moderate", 6e9 / deadline_ns as f64),
        ("saturate", 4.0 * 32e9 / cal.s32_ns as f64),
    ];
    let policies = [
        Policy {
            name: "fixed-1",
            max_batch: 1,
            deadline: Some(0),
        },
        Policy {
            name: "adaptive-8",
            max_batch: 8,
            deadline: Some(deadline_ns),
        },
        Policy {
            name: "adaptive-32",
            max_batch: 32,
            deadline: Some(deadline_ns),
        },
        Policy {
            name: "fixed-32",
            max_batch: 32,
            deadline: None,
        },
    ];

    let mut points = Vec::new();
    for &(label, rate) in &rates {
        for &policy in &policies {
            points.push(run_point(
                &grid,
                fleet,
                cfg.seed,
                queries,
                label,
                rate,
                policy,
                deadline_ns,
                slo_ns,
            ));
        }
    }

    let mut t = ResultTable::new(
        &format!(
            "Extension: open-loop serving (deadline {}, SLO {}, {} queries/run)",
            fmt_ns(deadline_ns),
            fmt_ns(slo_ns),
            queries
        ),
        &[
            "Load",
            "Policy",
            "p50",
            "p99",
            "p99.9",
            "SLO%",
            "Thruput q/s",
            "Mean batch",
            "Deadline closes",
            "Epochs",
        ],
    );
    for p in &points {
        t.row(vec![
            p.rate_label.to_string(),
            p.policy.name.to_string(),
            fmt_ns(p.p50_ns),
            fmt_ns(p.p99_ns),
            fmt_ns(p.p999_ns),
            format!("{:.1}%", p.slo_attainment * 100.0),
            format!("{:.0}", p.throughput_qps),
            format!("{:.1}", p.mean_batch),
            p.report.deadline_closes.to_string(),
            p.report.epochs.to_string(),
        ]);
    }

    let find = |label: &str, name: &str| -> &Point {
        points
            .iter()
            .find(|p| p.rate_label == label && p.policy.name == name)
            .expect("sweep point missing")
    };
    let speedup = find("saturate", "adaptive-32").throughput_qps
        / find("saturate", "fixed-1").throughput_qps.max(1e-9);
    let adaptive_slo = find("moderate", "adaptive-32").slo_attainment;
    let fixed_slo = find("moderate", "fixed-32").slo_attainment;
    println!(
        "serving floors: adaptive saturation speedup {speedup:.2}x vs fixed-1, \
         moderate-load SLO attainment {:.0}% adaptive vs {:.0}% fill-only",
        adaptive_slo * 100.0,
        fixed_slo * 100.0
    );

    if let Err(e) = write_bench_json(
        &cfg.out_dir,
        cfg,
        &cal,
        deadline_ns,
        slo_ns,
        &points,
        speedup,
        adaptive_slo,
        fixed_slo,
    ) {
        eprintln!("warning: failed to write BENCH_9.json: {e}");
    }
    t
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    cal: &Calibration,
    deadline_ns: u64,
    slo_ns: u64,
    points: &[Point],
    speedup: f64,
    adaptive_slo: f64,
    fixed_slo: f64,
) -> std::io::Result<()> {
    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            let r = &p.report;
            format!(
                "    {{\"load\": \"{}\", \"policy\": \"{}\", \"rate_qps\": {:.1}, \"max_batch\": {}, \"deadline_ns\": {}, \"queries\": {}, \"shed\": {}, \"batches\": {}, \"mean_batch\": {:.2}, \"fill_closes\": {}, \"deadline_closes\": {}, \"boundary_closes\": {}, \"epochs\": {}, \"ingest_events\": {}, \"p50_modeled_ns\": {}, \"p99_modeled_ns\": {}, \"p999_modeled_ns\": {}, \"queue_wait_p99_ns\": {}, \"slo_attainment\": {:.4}, \"throughput_qps_modeled\": {:.1}}}",
                p.rate_label,
                p.policy.name,
                p.rate_qps,
                p.policy.max_batch,
                p.deadline_ns,
                r.queries,
                r.shed,
                r.batches,
                p.mean_batch,
                r.fill_closes,
                r.deadline_closes,
                r.boundary_closes,
                r.epochs,
                r.ingest_events,
                p.p50_ns,
                p.p99_ns,
                p.p999_ns,
                r.queue_wait_hist.percentile(99.0),
                p.slo_attainment,
                p.throughput_qps,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"quick\": {},\n  \"seed\": {},\n  \"calibration\": {{\"service_single_ns\": {}, \"service_batch32_ns\": {}, \"deadline_ns\": {}, \"slo_ns\": {}}},\n  \"points\": [\n{}\n  ],\n  \"floors\": {{\n    \"adaptive_saturation_speedup_x\": {:.2},\n    \"adaptive_slo_attainment\": {:.4},\n    \"fixed_slo_attainment\": {:.4}\n  }}\n}}\n",
        cfg.quick,
        cfg.seed,
        cal.s1_ns,
        cal.s32_ns,
        deadline_ns,
        slo_ns,
        point_json.join(",\n"),
        speedup,
        adaptive_slo,
        fixed_slo,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_9.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enforced serving floors, on the quick sweep: adaptive batching
    /// must beat fixed-1 on saturated throughput by 1.5x, and at moderate
    /// load the deadline must meet an SLO that fill-only batching misses.
    #[test]
    fn serving_floors_hold() {
        let cfg = ExpConfig {
            out_dir: std::env::temp_dir().join("ggrid_serving_exp"),
            objects: 4_000,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 12, "3 load levels x 4 policies");
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_9.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("adaptive_saturation_speedup_x") >= 1.5,
            "adaptive batching only {:.2}x over fixed-1 at saturation\n{json}",
            field("adaptive_saturation_speedup_x")
        );
        assert!(
            field("adaptive_slo_attainment") >= 0.9,
            "adaptive deadline met the SLO for only {:.0}% of queries\n{json}",
            field("adaptive_slo_attainment") * 100.0
        );
        assert!(
            field("fixed_slo_attainment") < 0.5,
            "fill-only batching unexpectedly met the SLO ({:.0}%)\n{json}",
            field("fixed_slo_attainment") * 100.0
        );
        // Every point must be a real measurement.
        assert!(field("p99_modeled_ns") > 0.0, "free queries\n{json}");
        assert!(
            field("throughput_qps_modeled") > 0.0,
            "no throughput\n{json}"
        );
    }
}
