//! Extension study (beyond the paper): paper-scale capacity sweep.
//!
//! Two questions in one harness:
//!
//! 1. **Capacity curves** — build the index over synthetic road grids of
//!    |V| ∈ {3k, 30k, 300k} and serve fleets of |𝒪| ∈ {1k, 100k, 1M}
//!    (quick mode runs the 3k × 1k point only). Each point reports the
//!    grid build time, the resident index bytes, the hybrid-clock time
//!    per kNN query, and the modeled ingest throughput. The 300k/1M point
//!    is the paper's full-scale regime — before the capacity push
//!    (epoch-stamped partition scratch, streaming grid assembly, cached
//!    snapshots, scratch-pool budget) it did not complete.
//! 2. **Hot-window buffered ingest** — the PR-4 group commit versus the
//!    thread-buffered path (`ingest_buffered` + query auto-flush) on a
//!    fleet that reports in *small arrival batches* over a hot window of
//!    edges. Small batches are the realistic ingest shape (messages
//!    arrive as they are received, not pre-grouped per round), and they
//!    are where the group commit still pays ≈1 cell lock per message.
//!    The buffered path defers everything to one flush per round, so its
//!    per-message cell-lock cost collapses. Answers are asserted
//!    byte-identical; `BENCH_8.json` records the enforced floors:
//!    `ingest_speedup_x` ≥ 2 and `cell_lock_reduction_x` ≥ 5.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use ggrid::api::MovingObjectIndex;
use ggrid::grid::GraphGrid;
use ggrid::prelude::*;
use ggrid::stats::ServerCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::graph::Graph;
use roadnet::{gen, EdgeId};

use crate::csvout::{fmt_bytes, fmt_ns, ResultTable};
use crate::experiments::ExpConfig;

/// Queries per capacity point (fixed positions, k = 16).
const POINT_QUERIES: usize = 8;
/// Hot-window rounds / fleet size / window width / arrival batch.
const HW_ROUNDS: usize = 6;
const HW_FLEET: u64 = 500;
const HW_WINDOW: u32 = 32;
const HW_ARRIVAL: usize = 4;

/// One measured (|V|, |O|) sweep point.
struct Point {
    vertices: usize,
    edges: usize,
    objects: usize,
    cells: usize,
    grid_build_ms: f64,
    index_bytes: u64,
    query_ns: u64,
    counters: ServerCounters,
}

/// Index config for the capacity points: paper defaults, but with a
/// freshness horizon wide enough that a 1M-update wave (1 ms apart) stays
/// entirely live at query time.
fn point_config() -> GGridConfig {
    GGridConfig {
        t_delta_ms: 1 << 40,
        ..Default::default()
    }
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let vertex_tiers: &[usize] = if cfg.quick {
        &[3_000]
    } else {
        &[3_000, 30_000, 300_000]
    };
    let object_tiers: &[usize] = if cfg.quick {
        &[1_000]
    } else {
        &[1_000, 100_000, 1_000_000]
    };

    let mut points = Vec::new();
    let mut hot = None;
    for (i, &nv) in vertex_tiers.iter().enumerate() {
        let graph = Arc::new(gen::synthetic_grid(nv, cfg.seed ^ nv as u64));
        let params = point_config();
        let t0 = Instant::now();
        // One grid per vertex tier, shared across the object sweep (and
        // the hot-window study on the smallest tier).
        let grid = Arc::new(GraphGrid::build(
            graph.clone(),
            params.cell_capacity,
            params.vertex_capacity,
        ));
        let grid_build_ms = t0.elapsed().as_secs_f64() * 1e3;
        for &no in object_tiers {
            points.push(measure_point(&graph, &grid, grid_build_ms, no, cfg.seed));
        }
        if i == 0 {
            hot = Some(hot_window_compare(&graph, &grid, cfg.seed));
        }
    }
    let hot = hot.expect("at least one vertex tier");

    let mut t = ResultTable::new(
        "Extension: capacity sweep (synthetic road grids, k=16)",
        &[
            "|V|",
            "|E|",
            "|O|",
            "Cells",
            "Grid build",
            "Index size",
            "Query",
            "Ingest upd/s model",
            "Flushes",
            "Snap reuse",
        ],
    );
    for p in &points {
        let c = &p.counters;
        t.row(vec![
            p.vertices.to_string(),
            p.edges.to_string(),
            p.objects.to_string(),
            p.cells.to_string(),
            format!("{:.1}ms", p.grid_build_ms),
            fmt_bytes(p.index_bytes),
            fmt_ns(p.query_ns),
            format!("{:.1}k", c.updates_per_sec_modeled() / 1e3),
            c.ingest_flushes.to_string(),
            c.snapshot_reuses.to_string(),
        ]);
    }
    println!(
        "hot window ({} msgs/round in arrival batches of {}): buffered ingest {:.2}x modeled speedup, {:.1}x fewer cell locks",
        HW_FLEET, HW_ARRIVAL, hot.speedup_x, hot.lock_reduction_x
    );

    if let Err(e) = write_bench_json(&cfg.out_dir, cfg, &points, &hot) {
        eprintln!("warning: failed to write BENCH_8.json: {e}");
    }
    t
}

/// Build a server on the shared grid, ingest one full-fleet wave through
/// the buffered path, and serve a fixed query frontier.
fn measure_point(
    graph: &Arc<Graph>,
    grid: &Arc<GraphGrid>,
    grid_build_ms: f64,
    objects: usize,
    seed: u64,
) -> Point {
    let mut server = GGridServer::with_shared_grid(
        grid.clone(),
        point_config(),
        gpu_sim::Device::quadro_p2000(),
    );
    let ne = graph.num_edges() as u32;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xca9);
    let mut t = 100u64;
    // The wave arrives in ingest-sized chunks; the byte budget drains the
    // buffers periodically, the final barrier publishes the tail.
    let mut wave = Vec::with_capacity(4096);
    for o in 0..objects as u64 {
        t += 1;
        wave.push((
            ObjectId(o),
            EdgePosition::at_source(EdgeId(rng.gen_range(0..ne))),
            Timestamp(t),
        ));
        if wave.len() == 4096 {
            server.ingest_buffered(&wave);
            wave.clear();
        }
    }
    server.ingest_buffered(&wave);
    GGridServer::flush_ingest(&server);

    let sim0 = server.sim_costs();
    let emu0 = server.emulated_host_ns();
    let q0 = Instant::now();
    let mut answered = 0usize;
    for q in 0..POINT_QUERIES as u32 {
        let pos = EdgePosition::at_source(EdgeId(q * (ne / POINT_QUERIES as u32).max(1) % ne));
        answered += server.knn(pos, 16, Timestamp(t + 1)).len();
    }
    assert!(answered > 0, "capacity point answered nothing");
    let wall = q0.elapsed().as_nanos() as u64;
    let emulated = server.emulated_host_ns() - emu0;
    let sim = server.sim_costs().since(&sim0).total_time().0;
    let query_ns = wall.saturating_sub(emulated).saturating_add(sim) / POINT_QUERIES as u64;

    Point {
        vertices: graph.num_vertices(),
        edges: graph.num_edges(),
        objects,
        cells: grid.num_cells(),
        grid_build_ms,
        index_bytes: server.index_size().total(),
        query_ns,
        counters: server.counters(),
    }
}

/// Outcome of the buffered-vs-batched hot-window comparison.
struct HotWindow {
    batched: ServerCounters,
    buffered: ServerCounters,
    speedup_x: f64,
    lock_reduction_x: f64,
}

/// Replay the same small-arrival-batch hot-window stream through the PR-4
/// group commit and the thread-buffered path; answers must be identical.
fn hot_window_compare(graph: &Arc<Graph>, grid: &Arc<GraphGrid>, seed: u64) -> HotWindow {
    let ne = graph.num_edges() as u32;
    let window = ne.min(HW_WINDOW);
    // Pre-draw the whole stream once so both servers replay identical
    // rounds (the rng must not depend on how updates are committed).
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x407);
    let mut t = 100u64;
    let rounds: Vec<Vec<(ObjectId, EdgePosition, Timestamp)>> = (0..HW_ROUNDS)
        .map(|_| {
            (0..HW_FLEET)
                .map(|o| {
                    t += 1;
                    let e = EdgeId(rng.gen_range(0..window));
                    (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
                })
                .collect()
        })
        .collect();
    let positions: Vec<EdgePosition> = (0..4u32)
        .map(|p| EdgePosition::at_source(EdgeId((p * (window / 4)).min(ne - 1))))
        .collect();

    let replay = |buffered: bool| {
        let mut server = GGridServer::with_shared_grid(
            grid.clone(),
            point_config(),
            gpu_sim::Device::quadro_p2000(),
        );
        let mut answers = Vec::new();
        let mut qt = t;
        for wave in &rounds {
            // Messages arrive in small batches, as a receiver would see
            // them — this is where per-round group commits degenerate
            // toward per-message locking and buffering pays off.
            for chunk in wave.chunks(HW_ARRIVAL) {
                if buffered {
                    server.ingest_buffered(chunk);
                } else {
                    server.ingest_batch(chunk);
                }
            }
            qt += 1;
            for &q in &positions {
                // The first query of the round auto-flushes the buffers.
                answers.push(server.knn(q, 16, Timestamp(qt)));
            }
        }
        (server.counters(), answers)
    };
    let (batched, batched_answers) = replay(false);
    let (buffered, buffered_answers) = replay(true);
    assert_eq!(
        batched_answers, buffered_answers,
        "buffered ingest changed hot-window answers"
    );

    let speedup_x =
        buffered.updates_per_sec_modeled() / batched.updates_per_sec_modeled().max(1e-9);
    let lock_reduction_x =
        batched.ingest_cell_locks as f64 / buffered.ingest_cell_locks.max(1) as f64;
    HotWindow {
        batched,
        buffered,
        speedup_x,
        lock_reduction_x,
    }
}

fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    points: &[Point],
    hot: &HotWindow,
) -> std::io::Result<()> {
    let point_json: Vec<String> = points
        .iter()
        .map(|p| {
            let c = &p.counters;
            format!(
                "    {{\"vertices\": {}, \"edges\": {}, \"objects\": {}, \"cells\": {}, \"grid_build_ms\": {:.2}, \"index_bytes\": {}, \"query_ns\": {}, \"updates_per_sec_modeled\": {:.1}, \"modeled_ingest_ns\": {}, \"ingest_flushes\": {}, \"buffered_messages\": {}, \"buffer_bytes_high_water\": {}, \"snapshot_reuses\": {}}}",
                p.vertices,
                p.edges,
                p.objects,
                p.cells,
                p.grid_build_ms,
                p.index_bytes,
                p.query_ns,
                c.updates_per_sec_modeled(),
                c.modeled_ingest_ns(),
                c.ingest_flushes,
                c.buffered_messages,
                c.buffer_bytes_high_water,
                c.snapshot_reuses,
            )
        })
        .collect();
    let side = |c: &ServerCounters| {
        format!(
            "{{\"updates\": {}, \"cell_locks\": {}, \"shard_locks\": {}, \"modeled_ingest_ns\": {}, \"updates_per_sec_modeled\": {:.1}, \"ingest_flushes\": {}, \"buffered_messages\": {}}}",
            c.updates_ingested,
            c.ingest_cell_locks,
            c.ingest_shard_locks,
            c.modeled_ingest_ns(),
            c.updates_per_sec_modeled(),
            c.ingest_flushes,
            c.buffered_messages,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"capacity\",\n  \"quick\": {},\n  \"seed\": {},\n  \"points\": [\n{}\n  ],\n  \"hot_window\": {{\n    \"rounds\": {},\n    \"fleet\": {},\n    \"window_edges\": {},\n    \"arrival_batch\": {},\n    \"batched\": {},\n    \"buffered\": {},\n    \"ingest_speedup_x\": {:.2},\n    \"cell_lock_reduction_x\": {:.2}\n  }}\n}}\n",
        cfg.quick,
        cfg.seed,
        point_json.join(",\n"),
        HW_ROUNDS,
        HW_FLEET,
        HW_WINDOW,
        HW_ARRIVAL,
        side(&hot.batched),
        side(&hot.buffered),
        hot.speedup_x,
        hot.lock_reduction_x,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_8.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffered_ingest_floors_hold() {
        let cfg = ExpConfig {
            out_dir: std::env::temp_dir().join("ggrid_capacity_exp"),
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 1, "quick mode sweeps one point");
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_8.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("ingest_speedup_x") >= 2.0,
            "buffered ingest sped the hot window up only {:.2}x\n{json}",
            field("ingest_speedup_x")
        );
        assert!(
            field("cell_lock_reduction_x") >= 5.0,
            "buffered ingest cut cell locks only {:.2}x\n{json}",
            field("cell_lock_reduction_x")
        );
        // The capacity point must be a real measurement.
        assert!(field("index_bytes") > 0.0, "empty index\n{json}");
        assert!(field("query_ns") > 0.0, "free queries\n{json}");
        assert!(
            field("updates_per_sec_modeled") > 0.0,
            "no modeled ingest rate\n{json}"
        );
        // The buffered side must actually have buffered and flushed.
        let buffered = json.split("\"buffered\": ").nth(1).unwrap();
        let sub = |src: &str, name: &str| -> u64 {
            src.split(&format!("\"{name}\": "))
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(sub(buffered, "ingest_flushes") > 0, "never flushed\n{json}");
        assert!(
            sub(buffered, "buffered_messages") as usize >= HW_ROUNDS * HW_FLEET as usize,
            "stream bypassed the buffers\n{json}"
        );
    }

    /// The 30k-vertex tier — an order of magnitude past every other test
    /// in the suite — must build and serve briskly. The wall bound only
    /// applies to release builds (`cargo test -q` compiles without
    /// optimisation, where the same work is ~20x slower).
    #[test]
    fn thirty_k_vertices_build_and_serve() {
        let t0 = Instant::now();
        let params = point_config();
        let graph = Arc::new(gen::synthetic_grid(30_000, 11));
        let grid = Arc::new(GraphGrid::build(
            graph.clone(),
            params.cell_capacity,
            params.vertex_capacity,
        ));
        let p = measure_point(&graph, &grid, 0.0, 20_000, 11);
        assert!(p.vertices >= 30_000);
        assert_eq!(p.objects, 20_000);
        assert!(p.index_bytes > 0);
        assert!(p.counters.updates_ingested == 20_000);
        let elapsed = t0.elapsed();
        #[cfg(not(debug_assertions))]
        assert!(
            elapsed < std::time::Duration::from_secs(5),
            "30k-vertex capacity point took {elapsed:?}"
        );
        #[cfg(debug_assertions)]
        assert!(
            elapsed < std::time::Duration::from_secs(120),
            "30k-vertex capacity point took {elapsed:?} even for a debug build"
        );
    }
}
