//! Fig 9: running time vs the update frequency f — the lazy-update
//! headline.
//!
//! Paper shape: G-Grid barely moves with f (updates are O(1) cache
//! appends, and cleaning only ever touches queried cells), while the eager
//! baselines degrade rapidly because every message costs index maintenance.

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{run_all_in, BenchWorld, IndexKind};

const FREQS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let mut t = ResultTable::new(
        &format!("Fig 9: query time vs update frequency f ({})", ds.name()),
        &["f (1/s)", "G-Grid", "V-Tree", "V-Tree (G)", "ROAD"],
    );
    let freqs: Vec<f64> = if cfg.quick {
        vec![0.5, 1.0, 4.0]
    } else {
        FREQS.to_vec()
    };
    for &f in &freqs {
        let mut sub = cfg.clone();
        sub.f_per_sec = f;
        let mut scenario = sub.scenario();
        scenario.moto.num_objects = cfg.objects;
        let outcomes = run_all_in(&world, &sub.index_params(), &scenario, &IndexKind::ALL);
        let find = |kind: IndexKind| {
            outcomes
                .iter()
                .find(|o| o.kind == kind)
                .unwrap()
                .serial_ns_per_query()
                .map(fmt_ns)
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            format!("{f}"),
            find(IndexKind::GGrid),
            find(IndexKind::VTree),
            find(IndexKind::VTreeGpu),
            find(IndexKind::Road),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_frequencies() {
        let cfg = ExpConfig {
            scale: 4000,
            objects: 150,
            queries: 2,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
    }
}
