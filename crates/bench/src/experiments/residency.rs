//! Extension study (beyond the paper): device-resident cell state.
//!
//! A repeated-query workload on the NY-shaped dataset: the fleet is
//! scattered once, then a fixed set of query positions is revisited round
//! after round while a small slice of the fleet moves between rounds. The
//! moved objects dirty their cells, so every round re-cleans the query
//! frontier:
//!
//! * with residency **off** (`device_budget_bytes = 0`) each re-clean
//!   re-ships the cell's whole consolidated list over the bus;
//! * with residency **on** the consolidated state stays in device memory
//!   and only the delta (the movers' messages) crosses, feeding the fused
//!   merge kernel; copy-back shrinks to the objects that changed;
//! * a deliberately **tight** budget forces constant LRU eviction, so the
//!   fallback path (full upload, then re-promotion) is exercised too.
//!
//! Answers are identical across every row — the sweep isolates bus traffic
//! and simulated time, not what is computed. Besides the table/CSV, the run
//! writes `BENCH_2.json` (simulated time and H2D bytes saved by residency)
//! so the perf trajectory accumulates machine-readable points.

use std::path::Path;

use ggrid::prelude::*;
use ggrid::stats::ServerCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::EdgeId;

use crate::csvout::{fmt_bytes, fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

/// Device budgets swept: disabled, eviction-churning, comfortable.
pub const TIGHT_BUDGET: u64 = 256;
pub const FULL_BUDGET: u64 = 64 << 20;

/// Counters + answers of one sweep point.
struct Outcome {
    label: &'static str,
    budget: u64,
    counters: ServerCounters,
    resident_cells: usize,
    answers: Vec<Vec<(ObjectId, Distance)>>,
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let params = cfg.index_params();
    let rounds = cfg.queries.max(6);
    let outcomes: Vec<Outcome> = [("off", 0u64), ("tight", TIGHT_BUDGET), ("on", FULL_BUDGET)]
        .iter()
        .map(|&(label, budget)| {
            let config = GGridConfig {
                device_budget_bytes: budget,
                t_delta_ms: params.t_delta_ms,
                ..params.ggrid.clone()
            };
            let grid = world.grid(config.cell_capacity, config.vertex_capacity);
            let mut server =
                GGridServer::with_shared_grid(grid, config, gpu_sim::Device::quadro_p2000());
            let answers = repeated_query_workload(&world, &mut server, cfg, rounds);
            Outcome {
                label,
                budget,
                counters: server.counters(),
                resident_cells: server.resident_cells(),
                answers,
            }
        })
        .collect();

    // Residency is a cost optimisation only: every sweep point must return
    // byte-identical answers.
    for o in &outcomes[1..] {
        assert_eq!(
            o.answers, outcomes[0].answers,
            "budget {} changed answers",
            o.budget
        );
    }

    let mut t = ResultTable::new(
        &format!(
            "Extension: device-resident cell state ({}, k=16)",
            ds.name()
        ),
        &[
            "Residency",
            "Budget",
            "Sim time",
            "H2D total",
            "H2D delta",
            "H2D full",
            "D2H",
            "Resident hits",
            "Hit rate",
            "Evictions",
            "Resident cells",
        ],
    );
    for o in &outcomes {
        let c = &o.counters;
        t.row(vec![
            o.label.to_string(),
            if o.budget == 0 {
                "0".to_string()
            } else {
                fmt_bytes(o.budget)
            },
            fmt_ns(c.gpu_time.0),
            fmt_bytes(c.h2d_bytes),
            fmt_bytes(c.h2d_delta_bytes),
            fmt_bytes(c.h2d_full_bytes),
            fmt_bytes(c.d2h_bytes),
            c.resident_hits.to_string(),
            format!("{:.1}%", 100.0 * c.resident_hit_rate()),
            c.evictions.to_string(),
            o.resident_cells.to_string(),
        ]);
    }

    if let Err(e) = write_bench_json(&cfg.out_dir, cfg, rounds, &outcomes) {
        eprintln!("warning: failed to write BENCH_2.json: {e}");
    }
    t
}

/// Scatter the fleet, then revisit a fixed query frontier for `rounds`
/// rounds, moving a small slice of the fleet between rounds. Identical and
/// deterministic for every server it is replayed against.
fn repeated_query_workload(
    world: &BenchWorld,
    server: &mut GGridServer,
    cfg: &ExpConfig,
    rounds: usize,
) -> Vec<Vec<(ObjectId, Distance)>> {
    let ne = world.graph.num_edges() as u32;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x7e51);
    let objects = cfg.objects.max(32) as u64;
    // Initial scatter: one group commit for the whole fleet.
    let scatter: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..objects)
        .map(|o| {
            let e = EdgeId(rng.gen_range(0..ne));
            (ObjectId(o), EdgePosition::at_source(e), Timestamp(100))
        })
        .collect();
    server.ingest_batch(&scatter);
    let positions: Vec<EdgePosition> = (0..4u32)
        .map(|p| EdgePosition::at_source(EdgeId((p * (ne / 4)).min(ne - 1))))
        .collect();
    let movers = (objects / 20).max(1);
    let mut answers = Vec::new();
    let mut t = 200u64;
    for _ in 0..rounds {
        let moves: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..movers)
            .map(|_| {
                t += 1;
                let o = ObjectId(rng.gen_range(0..objects));
                let e = EdgeId(rng.gen_range(0..ne));
                (o, EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        server.ingest_batch(&moves);
        t += 1;
        for &q in &positions {
            answers.push(server.knn(q, 16, Timestamp(t)));
        }
    }
    answers
}

fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    rounds: usize,
    outcomes: &[Outcome],
) -> std::io::Result<()> {
    let by = |label: &str| outcomes.iter().find(|o| o.label == label).unwrap();
    let (off, on) = (by("off"), by("on"));
    let saved_bytes = off.counters.h2d_bytes.saturating_sub(on.counters.h2d_bytes);
    let saved_pct = 100.0 * saved_bytes as f64 / off.counters.h2d_bytes.max(1) as f64;
    let time_saved_pct = 100.0
        * (off
            .counters
            .gpu_time
            .0
            .saturating_sub(on.counters.gpu_time.0)) as f64
        / off.counters.gpu_time.0.max(1) as f64;
    let point = |o: &Outcome| {
        format!(
            "{{\"budget_bytes\": {}, \"sim_ns\": {}, \"h2d_bytes\": {}, \"h2d_delta_bytes\": {}, \"h2d_full_bytes\": {}, \"d2h_bytes\": {}, \"resident_hits\": {}, \"evictions\": {}, \"resident_cells\": {}}}",
            o.budget,
            o.counters.gpu_time.0,
            o.counters.h2d_bytes,
            o.counters.h2d_delta_bytes,
            o.counters.h2d_full_bytes,
            o.counters.d2h_bytes,
            o.counters.resident_hits,
            o.counters.evictions,
            o.resident_cells,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"residency\",\n  \"dataset\": \"NY\",\n  \"scale\": {},\n  \"objects\": {},\n  \"rounds\": {},\n  \"queries\": {},\n  \"off\": {},\n  \"tight\": {},\n  \"on\": {},\n  \"h2d_saved_bytes\": {},\n  \"h2d_saved_pct\": {:.2},\n  \"sim_time_saved_pct\": {:.2}\n}}\n",
        cfg.scale,
        cfg.objects.max(32),
        rounds,
        off.answers.len(),
        point(off),
        point(by("tight")),
        point(on),
        saved_bytes,
        saved_pct,
        time_saved_pct,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_2.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 4000,
            objects: 150,
            queries: 6,
            out_dir: std::env::temp_dir().join("ggrid_residency_exp"),
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn residency_saves_h2d_and_time() {
        let cfg = tiny();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_2.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("h2d_saved_pct") >= 30.0,
            "residency saved only {:.1}% of H2D traffic\n{json}",
            field("h2d_saved_pct")
        );
        assert!(
            field("sim_time_saved_pct") > 0.0,
            "residency did not improve simulated time\n{json}"
        );
        // The tight budget must actually churn.
        let tight = json.split("\"tight\": ").nth(1).unwrap();
        let evictions: u64 = tight
            .split("\"evictions\": ")
            .nth(1)
            .unwrap()
            .split([',', '}'])
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(evictions > 0, "tight budget never evicted\n{json}");
    }
}
