//! Fig 4: tuning the system parameters δᵇ, 2^η, and ρ.
//!
//! * (a) bucket capacity δᵇ from 4 to 256 — U-shaped running time: small
//!   buckets mean many threads and a large intermediate table, huge buckets
//!   under-occupy the device;
//! * (b) bundle width 2^η — widths beyond the 32-lane warp must stage
//!   shuffles through shared memory and lose;
//! * (c) ρ — the GPU/CPU workload balance knob.

use ggrid::GGridConfig;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{run_one_in, BenchWorld, IndexKind};

const DELTA_B: [usize; 7] = [4, 8, 16, 32, 64, 128, 256];
const ETA: [u32; 5] = [3, 4, 5, 6, 7]; // bundle widths 8..128
const RHO: [f64; 6] = [1.4, 1.6, 1.8, 2.0, 2.4, 3.0];

fn amortized_with(cfg: &ExpConfig, world: &BenchWorld, ggrid: GGridConfig) -> u64 {
    let mut params = cfg.index_params();
    params.ggrid = ggrid;
    let outcome = run_one_in(world, IndexKind::GGrid, &params, &cfg.scenario());
    outcome.serial_ns_per_query().expect("G-Grid always builds")
}

fn worlds_for(cfg: &ExpConfig) -> Vec<(roadnet::gen::Dataset, BenchWorld)> {
    fig4_datasets(cfg)
        .into_iter()
        .map(|ds| {
            let graph = build_dataset(&DatasetSpec::new(ds, cfg.scale));
            (ds, BenchWorld::new(graph))
        })
        .collect()
}

/// Fig 4a: vary δᵇ on NY, FLA, USA.
pub fn run_a(cfg: &ExpConfig) -> ResultTable {
    let worlds = worlds_for(cfg);
    let mut headers = vec!["delta_b".to_string()];
    headers.extend(worlds.iter().map(|(d, _)| d.name().to_string()));
    let mut t = ResultTable {
        title: "Fig 4a: query time vs bucket capacity δ^b".into(),
        headers,
        rows: Vec::new(),
    };
    for &db in &DELTA_B {
        let mut row = vec![db.to_string()];
        for (_, world) in &worlds {
            let ns = amortized_with(
                cfg,
                world,
                GGridConfig {
                    bucket_capacity: db,
                    ..GGridConfig::default()
                },
            );
            row.push(fmt_ns(ns));
        }
        t.rows.push(row);
    }
    t
}

/// Fig 4b: vary the bundle width 2^η.
pub fn run_b(cfg: &ExpConfig) -> ResultTable {
    let worlds = worlds_for(cfg);
    let mut headers = vec!["bundle(2^eta)".to_string()];
    headers.extend(worlds.iter().map(|(d, _)| d.name().to_string()));
    let mut t = ResultTable {
        title: "Fig 4b: query time vs bundle width 2^eta (warp = 32)".into(),
        headers,
        rows: Vec::new(),
    };
    for &eta in &ETA {
        let mut row = vec![(1u32 << eta).to_string()];
        for (_, world) in &worlds {
            let ns = amortized_with(
                cfg,
                world,
                GGridConfig {
                    eta,
                    ..GGridConfig::default()
                },
            );
            row.push(fmt_ns(ns));
        }
        t.rows.push(row);
    }
    t
}

/// Fig 4c: vary ρ.
pub fn run_c(cfg: &ExpConfig) -> ResultTable {
    let worlds = worlds_for(cfg);
    let mut headers = vec!["rho".to_string()];
    headers.extend(worlds.iter().map(|(d, _)| d.name().to_string()));
    let mut t = ResultTable {
        title: "Fig 4c: query time vs rho (GPU/CPU balance)".into(),
        headers,
        rows: Vec::new(),
    };
    for &rho in &RHO {
        let mut row = vec![format!("{rho:.1}")];
        for (_, world) in &worlds {
            let ns = amortized_with(
                cfg,
                world,
                GGridConfig {
                    rho,
                    ..GGridConfig::default()
                },
            );
            row.push(fmt_ns(ns));
        }
        t.rows.push(row);
    }
    t
}

fn fig4_datasets(cfg: &ExpConfig) -> Vec<roadnet::gen::Dataset> {
    use roadnet::gen::Dataset;
    if cfg.quick {
        vec![Dataset::NY]
    } else {
        vec![Dataset::NY, Dataset::FLA, Dataset::USA]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 4000,
            objects: 100,
            queries: 2,
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn fig4a_rows() {
        let t = run_a(&tiny());
        assert_eq!(t.rows.len(), DELTA_B.len());
    }

    #[test]
    fn fig4b_rows() {
        let t = run_b(&tiny());
        assert_eq!(t.rows.len(), ETA.len());
    }

    #[test]
    fn fig4c_rows() {
        let t = run_c(&tiny());
        assert_eq!(t.rows.len(), RHO.len());
    }
}
