//! Fig 8: running time vs the number of objects |𝒪|.
//!
//! Paper shape: all four indexes slow down as the fleet grows, but G-Grid
//! grows by less than 10× across the sweep while the eager baselines grow
//! by around 100× — the lazy strategy only ever pays for the objects near
//! queries.

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{run_all_in, BenchWorld, IndexKind};

/// |𝒪| sweep. The paper goes to 10⁶; the default harness stops at 10⁵ to
/// keep single-core wall time sane and notes the truncation in the output.
const SIZES: [usize; 4] = [100, 1_000, 10_000, 100_000];

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let mut t = ResultTable::new(
        &format!(
            "Fig 8: query time vs |O| ({}; paper sweeps to 1e6, harness to {})",
            ds.name(),
            SIZES[SIZES.len() - 1]
        ),
        &["|O|", "G-Grid", "V-Tree", "V-Tree (G)", "ROAD"],
    );
    let sizes: Vec<usize> = if cfg.quick {
        SIZES[..3].to_vec()
    } else {
        SIZES.to_vec()
    };
    for &n in &sizes {
        let mut scenario = cfg.scenario();
        scenario.moto.num_objects = n;
        // Cap queries for the biggest fleets: ROAD's O(|O|)-per-message
        // directory rebuild makes each interval expensive by design.
        if n >= 100_000 {
            scenario.num_queries = scenario.num_queries.min(3);
        }
        let outcomes = run_all_in(&world, &cfg.index_params(), &scenario, &IndexKind::ALL);
        let find = |kind: IndexKind| {
            outcomes
                .iter()
                .find(|o| o.kind == kind)
                .unwrap()
                .serial_ns_per_query()
                .map(fmt_ns)
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            n.to_string(),
            find(IndexKind::GGrid),
            find(IndexKind::VTree),
            find(IndexKind::VTreeGpu),
            find(IndexKind::Road),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_object_counts() {
        let cfg = ExpConfig {
            scale: 4000,
            queries: 2,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0][0], "100");
    }
}
