//! Extension study (beyond the paper): the frontier `GPU_SDist` kernel
//! with device-resident topology.
//!
//! The same repeated-query workload as the residency experiment — a fleet
//! scattered once, a fixed query frontier revisited round after round with
//! a small slice of the fleet moving in between — swept over the sdist
//! configuration:
//!
//! * **dense** (`sdist_frontier = false`) — the all-records Bellman–Ford
//!   reference: every record relaxes its in-edges every round, and the
//!   candidate cells' topology ships to the card on every query;
//! * **frontier-cold** (`topology_resident = false`) — the near–far
//!   frontier kernel with k-bounded pruning, but no topology cache, so
//!   every query still pays the upload;
//! * **frontier** — frontier kernel plus resident CSR slices: hot cells
//!   skip the per-query topology H2D entirely.
//!
//! Answers are identical across every row — the sweep isolates simulated
//! sdist time, frontier work, and topology bus traffic. Besides the
//! table/CSV, the run writes `BENCH_3.json` (sdist time and topology-H2D
//! saved by the frontier path) so the perf trajectory accumulates
//! machine-readable points.

use std::path::Path;

use ggrid::prelude::*;
use ggrid::stats::ServerCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::EdgeId;

use crate::csvout::{fmt_bytes, fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

/// Counters + answers of one sweep point.
struct Outcome {
    label: &'static str,
    counters: ServerCounters,
    topo_cells: usize,
    topo_bytes: u64,
    answers: Vec<Vec<(ObjectId, Distance)>>,
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let params = cfg.index_params();
    let rounds = cfg.queries.max(6);
    let sweep: [(&'static str, bool, bool); 3] = [
        ("dense", false, false),
        ("frontier-cold", true, false),
        ("frontier", true, true),
    ];
    let outcomes: Vec<Outcome> = sweep
        .iter()
        .map(|&(label, frontier, resident)| {
            let config = GGridConfig {
                sdist_frontier: frontier,
                topology_resident: resident,
                t_delta_ms: params.t_delta_ms,
                ..params.ggrid.clone()
            };
            let grid = world.grid(config.cell_capacity, config.vertex_capacity);
            let mut server =
                GGridServer::with_shared_grid(grid, config, gpu_sim::Device::quadro_p2000());
            let answers = repeated_query_workload(&world, &mut server, cfg, rounds);
            Outcome {
                label,
                counters: server.counters(),
                topo_cells: server.topology_resident_cells(),
                topo_bytes: server.topology_resident_bytes(),
                answers,
            }
        })
        .collect();

    // The kernel swap and the topology cache are cost optimisations only:
    // every sweep point must return byte-identical answers.
    for o in &outcomes[1..] {
        assert_eq!(
            o.answers, outcomes[0].answers,
            "{} changed answers",
            o.label
        );
    }

    let mut t = ResultTable::new(
        &format!("Extension: frontier GPU_SDist ({}, k=16)", ds.name()),
        &[
            "SDist",
            "SDist time",
            "Rounds",
            "Frontier sum",
            "Settled",
            "Vertices",
            "Pruned",
            "Topo H2D",
            "Topo hits",
            "Hit rate",
            "Resident cells",
            "Resident bytes",
        ],
    );
    for o in &outcomes {
        let c = &o.counters;
        t.row(vec![
            o.label.to_string(),
            fmt_ns(c.sdist_time.0),
            c.sdist_rounds.to_string(),
            c.sdist_frontier_sum.to_string(),
            c.sdist_settled.to_string(),
            c.sdist_vertices.to_string(),
            c.sdist_pruned.to_string(),
            fmt_bytes(c.h2d_topo_bytes),
            c.topo_hits.to_string(),
            format!("{:.1}%", 100.0 * c.topo_hit_rate()),
            o.topo_cells.to_string(),
            fmt_bytes(o.topo_bytes),
        ]);
    }

    if let Err(e) = write_bench_json(&cfg.out_dir, cfg, rounds, &outcomes) {
        eprintln!("warning: failed to write BENCH_3.json: {e}");
    }
    t
}

/// Scatter the fleet, then revisit a fixed query frontier for `rounds`
/// rounds, moving a small slice of the fleet between rounds. Identical and
/// deterministic for every server it is replayed against.
fn repeated_query_workload(
    world: &BenchWorld,
    server: &mut GGridServer,
    cfg: &ExpConfig,
    rounds: usize,
) -> Vec<Vec<(ObjectId, Distance)>> {
    let ne = world.graph.num_edges() as u32;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5d15);
    let objects = cfg.objects.max(32) as u64;
    // Initial scatter: one group commit for the whole fleet.
    let scatter: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..objects)
        .map(|o| {
            let e = EdgeId(rng.gen_range(0..ne));
            (ObjectId(o), EdgePosition::at_source(e), Timestamp(100))
        })
        .collect();
    server.ingest_batch(&scatter);
    let positions: Vec<EdgePosition> = (0..4u32)
        .map(|p| EdgePosition::at_source(EdgeId((p * (ne / 4)).min(ne - 1))))
        .collect();
    let movers = (objects / 20).max(1);
    let mut answers = Vec::new();
    let mut t = 200u64;
    for _ in 0..rounds {
        let moves: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..movers)
            .map(|_| {
                t += 1;
                let o = ObjectId(rng.gen_range(0..objects));
                let e = EdgeId(rng.gen_range(0..ne));
                (o, EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        server.ingest_batch(&moves);
        t += 1;
        for &q in &positions {
            answers.push(server.knn(q, 16, Timestamp(t)));
        }
    }
    answers
}

fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    rounds: usize,
    outcomes: &[Outcome],
) -> std::io::Result<()> {
    let by = |label: &str| outcomes.iter().find(|o| o.label == label).unwrap();
    let (dense, frontier) = (by("dense"), by("frontier"));
    let sdist_saved_pct = 100.0
        * (dense
            .counters
            .sdist_time
            .0
            .saturating_sub(frontier.counters.sdist_time.0)) as f64
        / dense.counters.sdist_time.0.max(1) as f64;
    let topo_saved_bytes = dense
        .counters
        .h2d_topo_bytes
        .saturating_sub(frontier.counters.h2d_topo_bytes);
    let topo_saved_pct =
        100.0 * topo_saved_bytes as f64 / dense.counters.h2d_topo_bytes.max(1) as f64;
    let point = |o: &Outcome| {
        format!(
            "{{\"sdist_ns\": {}, \"rounds\": {}, \"frontier_sum\": {}, \"settled\": {}, \"vertices\": {}, \"pruned\": {}, \"h2d_topo_bytes\": {}, \"topo_hits\": {}, \"topo_misses\": {}, \"resident_cells\": {}, \"resident_bytes\": {}}}",
            o.counters.sdist_time.0,
            o.counters.sdist_rounds,
            o.counters.sdist_frontier_sum,
            o.counters.sdist_settled,
            o.counters.sdist_vertices,
            o.counters.sdist_pruned,
            o.counters.h2d_topo_bytes,
            o.counters.topo_hits,
            o.counters.topo_misses,
            o.topo_cells,
            o.topo_bytes,
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"sdist\",\n  \"dataset\": \"NY\",\n  \"scale\": {},\n  \"objects\": {},\n  \"rounds\": {},\n  \"queries\": {},\n  \"dense\": {},\n  \"frontier_cold\": {},\n  \"frontier\": {},\n  \"sdist_time_saved_pct\": {:.2},\n  \"topo_h2d_saved_bytes\": {},\n  \"topo_h2d_saved_pct\": {:.2}\n}}\n",
        cfg.scale,
        cfg.objects.max(32),
        rounds,
        dense.answers.len(),
        point(dense),
        point(by("frontier-cold")),
        point(frontier),
        sdist_saved_pct,
        topo_saved_bytes,
        topo_saved_pct,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_3.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 4000,
            objects: 150,
            queries: 6,
            out_dir: std::env::temp_dir().join("ggrid_sdist_exp"),
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn frontier_saves_sdist_time_and_topo_h2d() {
        let cfg = tiny();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 3);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_3.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("sdist_time_saved_pct") >= 25.0,
            "frontier kernel saved only {:.1}% of simulated sdist time\n{json}",
            field("sdist_time_saved_pct")
        );
        assert!(
            field("topo_h2d_saved_pct") >= 25.0,
            "resident topology cut only {:.1}% of topology H2D\n{json}",
            field("topo_h2d_saved_pct")
        );
        // The resident row must actually be serving from the card, and the
        // cold frontier row must not be caching anything.
        let frontier = json.split("\"frontier\": ").nth(1).unwrap();
        let hits: u64 = frontier
            .split("\"topo_hits\": ")
            .nth(1)
            .unwrap()
            .split([',', '}'])
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(
            hits > 0,
            "warm queries never hit the topology cache\n{json}"
        );
        let cold = json.split("\"frontier_cold\": ").nth(1).unwrap();
        let cold_cells: u64 = cold
            .split("\"resident_cells\": ")
            .nth(1)
            .unwrap()
            .split([',', '}'])
            .next()
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert_eq!(cold_cells, 0, "topology_resident=false must cache nothing");
    }
}
