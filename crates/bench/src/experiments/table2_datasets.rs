//! Table II: statistics of the road networks.

use crate::csvout::ResultTable;
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let mut t = ResultTable::new(
        &format!("Table II: road networks (scale 1/{})", cfg.scale),
        &[
            "Dataset",
            "|V| (paper)",
            "|E| (paper)",
            "|V| (built)",
            "|E| (built)",
            "E/V (paper)",
            "E/V (built)",
        ],
    );
    for ds in cfg.datasets() {
        let (v_full, e_full) = ds.full_stats();
        let g = build_dataset(&DatasetSpec::new(ds, cfg.scale));
        t.row(vec![
            ds.name().to_string(),
            v_full.to_string(),
            e_full.to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            format!("{:.2}", e_full as f64 / v_full as f64),
            format!("{:.2}", g.num_edges() as f64 / g.num_vertices() as f64),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_row_per_dataset() {
        let cfg = ExpConfig {
            scale: 4000,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), cfg.datasets().len());
    }
}
