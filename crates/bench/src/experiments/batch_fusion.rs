//! Extension study (beyond the paper): cross-query fused batch execution.
//!
//! A drifting hot-region workload on the NY-shaped dataset: each round a
//! fleet wave reports from a window of edges around the current hot
//! centre, then a *batch* of overlapping kNN queries lands in the same
//! region (their first candidate rings share cells). The sweep isolates
//! what PR 5 fuses:
//!
//! * **sequential** — the queries one at a time through `knn` (the
//!   per-query path, for reference);
//! * **batch-pr4** — `knn_batch` with every fusion feature off
//!   (`batch_fusion`, `coalesce_h2d`, `refine_multi_source` all false):
//!   the shared first-ring clean plus the overlapped pipeline, but
//!   per-cell topology transfers and per-vertex refinement — the PR-4
//!   baseline;
//! * **batch-fused** — `knn_batch` with the batch as the unit of device
//!   work: one X-shuffle round for the union, one coalesced topology
//!   stage per round (and one upfront for the union), the batch
//!   clean-cache serving the per-query rounds, and multi-source
//!   refinement;
//! * **fused-pervertex** — the fused path with `refine_multi_source`
//!   off at `refine_workers = 1`, isolating the multi-source saving in
//!   measured refinement busy time.
//!
//! The workload drives both contrasts at once: per round, half the fleet
//! crowds a fresh window of edges (disjoint tiles, so every batch stages
//! cold topology) and half scatters network-wide; half the batch queries
//! the hot window, half probes a cold region far from the fleet, where
//! the long candidate rings leave a wide unresolved frontier of heavily
//! overlapping refinement balls. The sweep runs at `rho = 1.0` so that
//! frontier actually reaches the CPU (see the config comment below).
//!
//! Answers are byte-identical across every row. Besides the table/CSV the
//! run writes `BENCH_5.json` with the enforced figures: the simulated
//! device-time reduction per batch of the fused path over the PR-4
//! baseline, and the measured refinement busy-ns saving of multi-source
//! over per-vertex refinement at one worker. Busy time is per-thread CPU
//! time, and the saving is estimated from replayed pairs (median of
//! per-pair ratios) so the figure stands up under a loaded machine.

use std::path::Path;

use ggrid::prelude::*;
use ggrid::stats::ServerCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::EdgeId;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

const BATCH_SIZE: usize = 6;
const K: usize = 48;
/// Extra back-to-back replays of the two refinement rows. The reported
/// saving is the median of the per-pair ratios (each pair runs under the
/// same machine conditions), cross-checked against the per-row minima.
const REFINE_REPEATS: usize = 14;

/// Counters + answers of one sweep point.
struct Outcome {
    label: &'static str,
    counters: ServerCounters,
    answers: Vec<Vec<(ObjectId, Distance)>>,
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let params = cfg.index_params();
    let rounds = cfg.queries.max(6);
    // (label, batch API?, batch_fusion, coalesce_h2d, refine_multi_source)
    let sweep: [(&'static str, bool, bool, bool, bool); 4] = [
        ("sequential", false, false, false, false),
        ("batch-pr4", true, false, false, false),
        ("batch-fused", true, true, true, true),
        ("fused-pervertex", true, true, true, false),
    ];
    let run_row = |batched: bool, fusion: bool, coalesce: bool, multi: bool| {
        let config = GGridConfig {
            batch_fusion: fusion,
            coalesce_h2d: coalesce,
            refine_multi_source: multi,
            refine_workers: 1,
            // ρ near 1 stops the candidate expansion as soon as k
            // objects are gathered, so l sits at the region edge and a
            // wide unresolved frontier reaches the CPU — the paper's
            // GPU/CPU balance knob turned towards refinement, which is
            // the phase this sweep contrasts (identical in every row).
            rho: 1.0,
            t_delta_ms: params.t_delta_ms,
            ..params.ggrid.clone()
        };
        let grid = world.grid(config.cell_capacity, config.vertex_capacity);
        let mut server =
            GGridServer::with_shared_grid(grid, config, gpu_sim::Device::quadro_p2000());
        let answers = hot_batches_workload(&world, &mut server, cfg, rounds, batched);
        (server.counters(), answers)
    };
    let outcomes: Vec<Outcome> = sweep
        .iter()
        .map(|&(label, batched, fusion, coalesce, multi)| {
            let (counters, answers) = run_row(batched, fusion, coalesce, multi);
            Outcome {
                label,
                counters,
                answers,
            }
        })
        .collect();

    // The refinement contrast is a wall-clock measurement of a few
    // milliseconds of CPU work — scheduler noise both jitters individual
    // runs and slows whole stretches of the test. Replay the two refine
    // rows as back-to-back *pairs*: within a pair both rows see the same
    // machine conditions, so each pair's saving ratio is stable even when
    // the pair itself ran slow. The reported figure is the median of the
    // per-pair savings (robust to outlier pairs in either direction); the
    // per-row minima are kept alongside for reference. The simulated
    // device figures are exact and need no repeats.
    let mut fused_busy = outcomes[2].counters.refine_busy_ns;
    let mut pervertex_busy = outcomes[3].counters.refine_busy_ns;
    let pair_pct = |f: u64, p: u64| 100.0 * p.saturating_sub(f) as f64 / p.max(1) as f64;
    let mut savings = vec![pair_pct(fused_busy, pervertex_busy)];
    for _ in 0..REFINE_REPEATS {
        let f = run_row(true, true, true, true).0.refine_busy_ns;
        let p = run_row(true, true, true, false).0.refine_busy_ns;
        fused_busy = fused_busy.min(f);
        pervertex_busy = pervertex_busy.min(p);
        savings.push(pair_pct(f, p));
    }
    savings.sort_by(|a, b| a.total_cmp(b));
    // Both estimators are biased *downwards* by noise (jitter inflates the
    // fused minimum; additive slowdowns compress a pair's ratio), so the
    // larger of the two is still a conservative estimate of the true saving.
    let refine_busy_saved_pct =
        savings[savings.len() / 2].max(pair_pct(fused_busy, pervertex_busy));

    // Fusion is a device/CPU-cost optimisation only: every sweep point
    // must return byte-identical answers.
    for o in &outcomes[1..] {
        assert_eq!(
            o.answers, outcomes[0].answers,
            "{} changed answers",
            o.label
        );
    }

    let mut t = ResultTable::new(
        &format!(
            "Extension: cross-query fused batches ({}, {} batches of {}, k={K})",
            ds.name(),
            rounds,
            BATCH_SIZE
        ),
        &[
            "Execution",
            "GPU time",
            "Q/s model",
            "Q/s wall",
            "Launches",
            "PCIe saved",
            "Shared cells",
            "Skips",
            "Refine busy",
            "Settled",
            "Relaxed",
        ],
    );
    for o in &outcomes {
        let c = &o.counters;
        t.row(vec![
            o.label.to_string(),
            fmt_ns(c.gpu_time.0),
            fmt_rate(c.queries_per_sec_modeled()),
            fmt_rate(c.queries_per_sec_measured()),
            c.kernel_launches.to_string(),
            c.h2d_coalesced_saved.to_string(),
            c.batch_shared_cells.to_string(),
            c.clean_skip_hits.to_string(),
            fmt_ns(c.refine_busy_ns),
            c.refine_settled.to_string(),
            c.refine_relaxed.to_string(),
        ]);
    }

    if let Err(e) = write_bench_json(
        &cfg.out_dir,
        cfg,
        rounds,
        &outcomes,
        fused_busy,
        pervertex_busy,
        refine_busy_saved_pct,
    ) {
        eprintln!("warning: failed to write BENCH_5.json: {e}");
    }
    t
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

/// Each round: a fleet wave into a window around the round's hot centre,
/// then a batch of `BATCH_SIZE` overlapping queries in the same region.
/// The centre drifts between rounds so every batch touches mostly-fresh
/// topology (the coalescing win is per-batch, not a one-off warmup).
/// Deterministic, and identical for every server it replays against.
fn hot_batches_workload(
    world: &BenchWorld,
    server: &mut GGridServer,
    cfg: &ExpConfig,
    rounds: usize,
    batched: bool,
) -> Vec<Vec<(ObjectId, Distance)>> {
    let ne = world.graph.num_edges() as u32;
    // Tile the edge space: each round's window is disjoint from the
    // previous ones (until the graph is exhausted), so every batch lands
    // on mostly-fresh topology and the per-batch coalescing win recurs
    // instead of being a first-batch warmup artefact.
    let window = (ne / rounds.max(1) as u32).clamp(16, 256).min(ne);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5BA7);
    let objects = cfg.objects.max(64) as u64;
    let mut answers = Vec::new();
    let mut t = 100u64;
    for round in 0..rounds {
        let base = (round as u32 * window) % ne.saturating_sub(window).max(1);
        // Fleet wave: half the fleet crowds the hot window (dense first
        // rings for the hot queries and plenty of shared dirty cells),
        // half scatters across the whole network (the background density
        // the cold probes expand through — wide candidate regions with a
        // long unresolved perimeter for the refinement phase).
        let wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..objects)
            .map(|o| {
                t += 1;
                let e = if o % 2 == 0 {
                    EdgeId(base + rng.gen_range(0..window))
                } else {
                    EdgeId(rng.gen_range(0..ne))
                };
                (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        server.ingest_batch(&wave);
        t += 1;
        // A batch of overlapping queries: the first half lands in the hot
        // window (first rings share cells with each other and the wave),
        // the second half probes a cold region half the graph away from
        // the fleet. The probes must grow long candidate rings to reach
        // the objects — lots of fresh topology for the coalesced stages —
        // and leave a wide unresolved frontier whose refinement balls
        // overlap heavily, which is the case multi-source refinement
        // collapses into one shared search.
        let half = BATCH_SIZE as u32 / 2;
        let queries: Vec<(EdgePosition, usize)> = (0..BATCH_SIZE as u32)
            .map(|j| {
                let e = if j < half {
                    EdgeId(base + (j * (window / half)).min(window - 1))
                } else {
                    let far = (base + ne / 2) % ne;
                    EdgeId((far + (j - half) * (window / half)) % ne)
                };
                (EdgePosition::at_source(e), K)
            })
            .collect();
        if batched {
            let batch = server.knn_batch(&queries, Timestamp(t));
            answers.extend(batch.answers);
        } else {
            for &(q, k) in &queries {
                answers.push(server.knn(q, k, Timestamp(t)));
            }
        }
    }
    answers
}

#[allow(clippy::too_many_arguments)]
fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    rounds: usize,
    outcomes: &[Outcome],
    fused_busy: u64,
    pervertex_busy: u64,
    refine_busy_saved_pct: f64,
) -> std::io::Result<()> {
    let by = |label: &str| outcomes.iter().find(|o| o.label == label).unwrap();
    let (pr4, fused, pervertex) = (by("batch-pr4"), by("batch-fused"), by("fused-pervertex"));
    let device_saved_pct = 100.0
        * (pr4
            .counters
            .gpu_time
            .0
            .saturating_sub(fused.counters.gpu_time.0)) as f64
        / pr4.counters.gpu_time.0.max(1) as f64;
    let point = |o: &Outcome| {
        let c = &o.counters;
        format!(
            "{{\"queries\": {}, \"gpu_ns\": {}, \"kernel_launches\": {}, \"h2d_bytes\": {}, \"h2d_topo_bytes\": {}, \"h2d_coalesced_saved\": {}, \"batch_shared_cells\": {}, \"clean_skip_hits\": {}, \"refine_busy_ns\": {}, \"refine_settled\": {}, \"refine_relaxed\": {}, \"queries_per_sec_modeled\": {:.1}, \"queries_per_sec_measured\": {:.1}}}",
            c.queries,
            c.gpu_time.0,
            c.kernel_launches,
            c.h2d_bytes,
            c.h2d_topo_bytes,
            c.h2d_coalesced_saved,
            c.batch_shared_cells,
            c.clean_skip_hits,
            c.refine_busy_ns,
            c.refine_settled,
            c.refine_relaxed,
            c.queries_per_sec_modeled(),
            c.queries_per_sec_measured(),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"batch_fusion\",\n  \"dataset\": \"NY\",\n  \"scale\": {},\n  \"objects\": {},\n  \"batches\": {},\n  \"batch_size\": {},\n  \"k\": {},\n  \"refine_repeats\": {},\n  \"sequential\": {},\n  \"batch_pr4\": {},\n  \"batch_fused\": {},\n  \"fused_pervertex\": {},\n  \"refine_busy_min_fused_ns\": {},\n  \"refine_busy_min_pervertex_ns\": {},\n  \"device_saved_pct\": {:.2},\n  \"refine_busy_saved_pct\": {:.2}\n}}\n",
        cfg.scale,
        cfg.objects.max(64),
        rounds,
        BATCH_SIZE,
        K,
        1 + REFINE_REPEATS,
        point(by("sequential")),
        point(pr4),
        point(fused),
        point(pervertex),
        fused_busy,
        pervertex_busy,
        device_saved_pct,
        refine_busy_saved_pct,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_5.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 50,
            objects: 1000,
            queries: 6,
            out_dir: std::env::temp_dir().join("ggrid_batch_fusion_exp"),
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn fused_batches_cut_device_time_and_refine_work() {
        let cfg = tiny();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_5.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("device_saved_pct") >= 30.0,
            "fused batches saved only {:.1}% of simulated device time\n{json}",
            field("device_saved_pct")
        );
        assert!(
            field("refine_busy_saved_pct") >= 25.0,
            "multi-source refinement saved only {:.1}% of measured busy ns\n{json}",
            field("refine_busy_saved_pct")
        );
        let sub = |src: &str, name: &str| -> u64 {
            src.split(&format!("\"{name}\": "))
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        let fused = json.split("\"batch_fused\": ").nth(1).unwrap();
        let pervertex = json.split("\"fused_pervertex\": ").nth(1).unwrap();
        // The comparison must be non-degenerate: refinement actually ran
        // in the baseline, and the fused row actually coalesced and shared.
        assert!(
            sub(pervertex, "refine_busy_ns") > 0,
            "workload produced no refinement work\n{json}"
        );
        assert!(
            sub(fused, "h2d_coalesced_saved") > 0,
            "fused row never coalesced a transfer\n{json}"
        );
        assert!(
            sub(fused, "batch_shared_cells") > 0,
            "fused row never shared a cleaning pass\n{json}"
        );
        assert!(
            sub(fused, "refine_settled") <= sub(pervertex, "refine_settled"),
            "multi-source settled more vertices than per-vertex\n{json}"
        );
    }
}
