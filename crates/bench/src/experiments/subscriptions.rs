//! Extension study (beyond the paper): continuous kNN subscriptions kept
//! incrementally correct by guard-radius re-evaluation, against a
//! re-query-everything baseline.
//!
//! A fleet on the NY-shaped dataset, riders registered as standing queries.
//! Each tick one group commit lands (`ingest_batch`), then the server runs
//! `tick_subscriptions`: only subscriptions whose guard region intersects a
//! dirtied cell are re-validated, and most of those are repaired by the
//! bounded delta search instead of a fresh full query. The sweep varies the
//! subscriber count and the movement pattern:
//!
//! * **uniform** — the moving slice of the fleet scatters network-wide
//!   (dirt everywhere, the guard's worst case);
//! * **hot-window** — all movement crowds a drifting window of edges (the
//!   dispatch-zone pattern the guard index is built for: almost every
//!   rider's guard region stays untouched).
//!
//! The baseline replays the identical waves on a second server and issues a
//! fresh `knn` per rider per tick; both sides must return byte-identical
//! answers (the subscription path *is* the query path, incrementally
//! maintained). Besides the table/CSV the run writes `BENCH_6.json` with
//! the enforced figures: the fraction of per-tick re-evaluations the guard
//! avoided or downgraded, and the modeled-throughput speedup of the
//! subscription path over re-querying everything.

use std::path::Path;

use ggrid::prelude::*;
use ggrid::stats::ServerCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::EdgeId;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

const K: usize = 8;
/// Edges in the hot window all movement crowds into (hot-window variant).
const WINDOW: u32 = 96;

/// Measured outcome of one sweep point.
struct Outcome {
    variant: &'static str,
    subs: usize,
    ticks: usize,
    wave: usize,
    counters: ServerCounters,
    /// Baseline (re-query-everything) modeled ns over the same workload.
    baseline_ns: u64,
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let params = cfg.index_params();
    // Density drives the guard radius: enough objects that the distance to
    // the (k+1)-th candidate stays tight at any dataset scale.
    let objects = cfg.objects.max(world.graph.num_edges() / 2);
    let wave = (objects / 32).max(32);
    let ticks = if cfg.quick { 20 } else { 32 };
    let sub_counts: Vec<usize> = if cfg.quick {
        vec![16, 48]
    } else {
        vec![64, 192]
    };

    let mut outcomes = Vec::new();
    for &variant in &["uniform", "hot-window"] {
        for &n_subs in &sub_counts {
            outcomes.push(run_point(
                &world,
                &params.ggrid,
                cfg,
                variant,
                objects,
                wave,
                n_subs,
                ticks,
            ));
        }
    }

    let mut t = ResultTable::new(
        &format!(
            "Extension: continuous subscriptions ({}, {} objects, wave {}, {} ticks, k={K})",
            ds.name(),
            objects,
            wave,
            ticks
        ),
        &[
            "Movement",
            "Subs",
            "Skipped",
            "Delta",
            "Full",
            "Avoided",
            "ns/tick",
            "Subs/s model",
            "Requery ns/tick",
            "Speedup",
        ],
    );
    for o in &outcomes {
        let c = &o.counters;
        t.row(vec![
            o.variant.to_string(),
            o.subs.to_string(),
            c.subs_skipped.to_string(),
            c.subs_repaired_delta.to_string(),
            c.subs_repaired_full.to_string(),
            format!("{:.1}%", 100.0 * c.subs_avoided_rate()),
            fmt_ns(c.subs_modeled_ns_per_tick()),
            fmt_rate(c.subs_per_sec_modeled()),
            fmt_ns(o.baseline_ns / o.ticks.max(1) as u64),
            format!(
                "{:.2}x",
                o.baseline_ns as f64 / c.subs_modeled_ns().max(1) as f64
            ),
        ]);
    }

    if let Err(e) = write_bench_json(&cfg.out_dir, cfg, objects, wave, ticks, &outcomes) {
        eprintln!("warning: failed to write BENCH_6.json: {e}");
    }
    t
}

/// One sweep point: a subscription server and a re-query baseline replay
/// the identical seed + waves; answers are asserted byte-identical every
/// tick for every rider.
#[allow(clippy::too_many_arguments)]
fn run_point(
    world: &BenchWorld,
    base_config: &GGridConfig,
    cfg: &ExpConfig,
    variant: &'static str,
    objects: usize,
    wave: usize,
    n_subs: usize,
    ticks: usize,
) -> Outcome {
    let config = GGridConfig {
        // Expiry churn is exercised by the core tests; the sweep isolates
        // movement-driven invalidation, so reports never go stale.
        t_delta_ms: 1 << 40,
        ..base_config.clone()
    };
    let grid = world.grid(config.cell_capacity, config.vertex_capacity);
    let mut server = GGridServer::with_shared_grid(
        grid.clone(),
        config.clone(),
        gpu_sim::Device::quadro_p2000(),
    );
    let mut baseline = GGridServer::with_shared_grid(grid, config, gpu_sim::Device::quadro_p2000());

    let ne = world.graph.num_edges() as u32;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x5B5);
    let mut t = 100u64;

    // Seed fleet spread over the whole network: dense coverage keeps every
    // rider's guard radius (distance to the (k+1)-th candidate) tight.
    let seed_wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..objects as u64)
        .map(|o| {
            let e = EdgeId(((o as u32).wrapping_mul(2_654_435_761)) % ne);
            (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
        })
        .collect();
    server.ingest_batch(&seed_wave);
    baseline.ingest_batch(&seed_wave);

    // Riders at evenly spaced positions.
    let riders: Vec<EdgePosition> = (0..n_subs as u32)
        .map(|i| EdgePosition::at_source(EdgeId((i * (ne / n_subs as u32).max(1)) % ne)))
        .collect();
    let subs: Vec<SubscriptionId> = riders
        .iter()
        .map(|&q| server.subscribe_knn(q, K, Timestamp(t)))
        .collect();

    let mut baseline_ns = 0u64;
    for round in 0..ticks {
        t += 1_000;
        // hot-window: a dedicated pool of `wave` objects (ids 0..wave)
        // shuttles inside a slowly drifting window of edges — after the
        // first tick even their tombstones land in the window, so the dirt
        // stays local. uniform: the wave rotates through the whole fleet
        // and scatters network-wide, so churn moves in and out of every
        // guard region (the adversarial case).
        let first = (round * wave) as u64 % objects as u64;
        let base = (round as u32 * (WINDOW / 8)) % ne.saturating_sub(WINDOW).max(1);
        let updates: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..wave as u64)
            .map(|j| {
                let (o, e) = if variant == "hot-window" {
                    (j, EdgeId(base + rng.gen_range(0..WINDOW.min(ne))))
                } else {
                    ((first + j) % objects as u64, EdgeId(rng.gen_range(0..ne)))
                };
                (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        server.ingest_batch(&updates);
        baseline.ingest_batch(&updates);

        server.tick_subscriptions(Timestamp(t));

        let b0 = baseline.counters();
        for (&id, &q) in subs.iter().zip(&riders) {
            let fresh = baseline.knn(q, K, Timestamp(t));
            assert_eq!(
                server.subscription_result(id).unwrap(),
                &fresh[..],
                "maintained answer diverged from a fresh query ({variant}, tick {round})"
            );
        }
        let b1 = baseline.counters();
        baseline_ns += (b1.query_cpu_ns - b0.query_cpu_ns) + (b1.gpu_time.0 - b0.gpu_time.0);
    }

    Outcome {
        variant,
        subs: n_subs,
        ticks,
        wave,
        counters: server.counters(),
        baseline_ns,
    }
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    objects: usize,
    wave: usize,
    ticks: usize,
    outcomes: &[Outcome],
) -> std::io::Result<()> {
    let point = |o: &Outcome| {
        let c = &o.counters;
        let hist: Vec<String> = c.guard_radius_hist.iter().map(|v| v.to_string()).collect();
        format!(
            "{{\"variant\": \"{}\", \"subs\": {}, \"ticks\": {}, \"wave\": {}, \"invalidated\": {}, \"repaired_delta\": {}, \"repaired_full\": {}, \"skipped\": {}, \"avoided_pct\": {:.2}, \"subs_modeled_ns_per_tick\": {}, \"subs_per_sec_modeled\": {:.1}, \"baseline_ns_per_tick\": {}, \"speedup\": {:.2}, \"guard_radius_hist\": [{}]}}",
            o.variant,
            o.subs,
            o.ticks,
            o.wave,
            c.subs_invalidated,
            c.subs_repaired_delta,
            c.subs_repaired_full,
            c.subs_skipped,
            100.0 * c.subs_avoided_rate(),
            c.subs_modeled_ns_per_tick(),
            c.subs_per_sec_modeled(),
            o.baseline_ns / o.ticks.max(1) as u64,
            o.baseline_ns as f64 / c.subs_modeled_ns().max(1) as f64,
            hist.join(", "),
        )
    };
    // Headline figures from the hot-window rows — the localized-churn
    // deployment the guard index targets (the uniform rows are reported
    // alongside as the adversarial case).
    let hot: Vec<&Outcome> = outcomes
        .iter()
        .filter(|o| o.variant == "hot-window")
        .collect();
    let (mut skipped, mut delta, mut full) = (0u64, 0u64, 0u64);
    let (mut subs_ns, mut base_ns) = (0u64, 0u64);
    for o in &hot {
        skipped += o.counters.subs_skipped;
        delta += o.counters.subs_repaired_delta;
        full += o.counters.subs_repaired_full;
        subs_ns += o.counters.subs_modeled_ns();
        base_ns += o.baseline_ns;
    }
    let avoided_pct = 100.0 * (skipped + delta) as f64 / (skipped + delta + full).max(1) as f64;
    let speedup = base_ns as f64 / subs_ns.max(1) as f64;

    let rows: Vec<String> = outcomes.iter().map(point).collect();
    let json = format!(
        "{{\n  \"bench\": \"subscriptions\",\n  \"dataset\": \"NY\",\n  \"scale\": {},\n  \"objects\": {},\n  \"wave\": {},\n  \"ticks\": {},\n  \"k\": {},\n  \"rows\": [\n    {}\n  ],\n  \"avoided_pct\": {:.2},\n  \"speedup_vs_requery\": {:.2}\n}}\n",
        cfg.scale,
        objects,
        wave,
        ticks,
        K,
        rows.join(",\n    "),
        avoided_pct,
        speedup,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_6.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 50,
            objects: 1000,
            queries: 6,
            out_dir: std::env::temp_dir().join("ggrid_subscriptions_exp"),
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn guard_radius_avoids_requery_work() {
        let cfg = tiny();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_6.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).last().unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("avoided_pct") >= 60.0,
            "guard regions avoided only {:.1}% of re-evaluations\n{json}",
            field("avoided_pct")
        );
        assert!(
            field("speedup_vs_requery") >= 3.0,
            "subscriptions only {:.2}x faster than re-querying everything\n{json}",
            field("speedup_vs_requery")
        );
        // The sweep must be non-degenerate: movement actually invalidated
        // subscriptions somewhere, and the delta path actually repaired.
        assert!(field("avoided_pct") < 100.0 || !json.contains("\"repaired_delta\": 0"));
        let hot = json.split("\"variant\": \"hot-window\"").nth(1).unwrap();
        let sub_field = |src: &str, name: &str| -> f64 {
            src.split(&format!("\"{name}\": "))
                .nth(1)
                .unwrap()
                .split([',', '}', ']'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            sub_field(hot, "skipped") > 0.0,
            "hot-window movement never skipped a subscription\n{json}"
        );
    }
}
