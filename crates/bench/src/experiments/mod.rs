//! One module per table/figure of the paper's evaluation (§VII).

pub mod ablation;
pub mod batch_fusion;
pub mod capacity;
pub mod concurrency;
pub mod fig10_scalability;
pub mod fig4_tuning;
pub mod fig5_datasets;
pub mod fig6_index_size;
pub mod fig7_vary_k;
pub mod fig8_vary_objects;
pub mod fig9_vary_freq;
pub mod ingest;
pub mod residency;
pub mod sdist;
pub mod serving;
pub mod sharding;
pub mod sharding2;
pub mod skew;
pub mod subscriptions;
pub mod table2_datasets;

use std::path::PathBuf;

use ggrid::GGridConfig;
use roadnet::gen::Dataset;
use workload::moto::MotoConfig;
use workload::scenario::ScenarioConfig;

use crate::runner::IndexParams;

/// Shared experiment configuration.
#[derive(Clone, Debug)]
pub struct ExpConfig {
    /// Scale-down divisor applied to the real datasets' vertex counts.
    pub scale: u32,
    /// Number of moving objects |𝒪| (paper default 10⁴).
    pub objects: usize,
    /// Queries per measurement (paper reports averages over a stream).
    pub queries: usize,
    /// Update frequency f in updates per second (paper default 1).
    pub f_per_sec: f64,
    /// Where CSVs are written.
    pub out_dir: PathBuf,
    /// Quick mode: fewer datasets, smaller fleets.
    pub quick: bool,
    pub seed: u64,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            scale: 500,
            objects: 10_000,
            queries: 10,
            f_per_sec: 1.0,
            out_dir: PathBuf::from("results"),
            quick: false,
            seed: 20180416, // ICDE 2018 week
        }
    }
}

impl ExpConfig {
    pub fn quick() -> Self {
        Self {
            scale: 1500,
            objects: 2_000,
            queries: 5,
            quick: true,
            ..Default::default()
        }
    }

    /// Datasets to sweep: three in quick mode, all six otherwise.
    pub fn datasets(&self) -> Vec<Dataset> {
        if self.quick {
            vec![Dataset::NY, Dataset::FLA, Dataset::USA]
        } else {
            Dataset::ALL.to_vec()
        }
    }

    /// The paper's default update period in ms (`1000 / f`).
    pub fn update_period_ms(&self) -> u64 {
        ((1000.0 / self.f_per_sec).round() as u64).max(1)
    }

    /// Default index parameters (paper §VII-C1 tuning).
    pub fn index_params(&self) -> IndexParams {
        IndexParams {
            ggrid: GGridConfig::default(),
            leaf_capacity: 64,
            t_delta_ms: (4 * self.update_period_ms()).max(4_000),
        }
    }

    /// Default scenario: k = 16, |𝒪| objects at frequency f, queries at a
    /// fixed interval.
    pub fn scenario(&self) -> ScenarioConfig {
        let period = self.update_period_ms();
        ScenarioConfig {
            moto: MotoConfig {
                num_objects: self.objects,
                update_period_ms: period,
                seed: self.seed,
                ..Default::default()
            },
            k: 16,
            query_interval_ms: 1000,
            num_queries: self.queries,
            warmup_ms: period + 100,
            query_seed: self.seed ^ 0xABCD,
            buffered_ingest: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller() {
        let q = ExpConfig::quick();
        let f = ExpConfig::default();
        assert!(q.objects < f.objects);
        assert!(q.datasets().len() < f.datasets().len());
    }

    #[test]
    fn update_period_from_frequency() {
        let mut c = ExpConfig::default();
        assert_eq!(c.update_period_ms(), 1000);
        c.f_per_sec = 4.0;
        assert_eq!(c.update_period_ms(), 250);
        c.f_per_sec = 0.25;
        assert_eq!(c.update_period_ms(), 4000);
    }

    #[test]
    fn t_delta_covers_period() {
        let c = ExpConfig {
            f_per_sec: 0.1,
            ..Default::default()
        };
        let p = c.index_params();
        assert!(p.t_delta_ms >= c.update_period_ms());
    }
}
