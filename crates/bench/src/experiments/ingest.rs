//! Extension study (beyond the paper): high-throughput update ingestion.
//!
//! A hot-window fleet workload on the NY-shaped dataset: every round the
//! whole fleet reports a new position drawn from a small window of edges,
//! so each round's updates concentrate in a handful of grid cells, then a
//! fixed query frontier is revisited (which forces cleaning and recycles
//! message buckets). The sweep isolates the ingestion path:
//!
//! * **per-call** — one `handle_update` per message: every message takes
//!   its destination cell's mutex (and the previous cell's for the
//!   tombstone) individually;
//! * **batched** — the same stream through `ingest_batch`: messages are
//!   pre-grouped by destination cell, so each touched cell's mutex is
//!   taken once per batch and its dirty epoch bumps once per batch;
//! * **batched-w2 / batched-w4** — the group commit with 2 and 4 ingest
//!   workers (disjoint object-id shards in phase 1, striped cell runs in
//!   phase 2).
//!
//! Answers are byte-identical across every row — batching and the worker
//! pool reorder nothing observable. The container the harness runs on is
//! single-core, so the headline figures are the *modeled* ingest clock
//! (DESIGN.md §5.1) and the counted lock traffic; wall-clock throughput
//! is reported alongside. Besides the table/CSV the run writes
//! `BENCH_4.json` with the enforced figures: the per-batch cell-lock
//! reduction and the modeled ingest-time saving of the group commit.

use std::path::Path;

use ggrid::prelude::*;
use ggrid::stats::ServerCounters;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use roadnet::EdgeId;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::BenchWorld;

/// Counters + answers of one sweep point.
struct Outcome {
    label: &'static str,
    counters: ServerCounters,
    answers: Vec<Vec<(ObjectId, Distance)>>,
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
    let params = cfg.index_params();
    let rounds = cfg.queries.max(6);
    // (label, ingest workers, group commit?)
    let sweep: [(&'static str, usize, bool); 4] = [
        ("per-call", 1, false),
        ("batched", 1, true),
        ("batched-w2", 2, true),
        ("batched-w4", 4, true),
    ];
    let outcomes: Vec<Outcome> = sweep
        .iter()
        .map(|&(label, workers, batched)| {
            let config = GGridConfig {
                ingest_workers: workers,
                t_delta_ms: params.t_delta_ms,
                ..params.ggrid.clone()
            };
            let grid = world.grid(config.cell_capacity, config.vertex_capacity);
            let mut server =
                GGridServer::with_shared_grid(grid, config, gpu_sim::Device::quadro_p2000());
            let answers = hot_window_workload(&world, &mut server, cfg, rounds, batched);
            Outcome {
                label,
                counters: server.counters(),
                answers,
            }
        })
        .collect();

    // Group commit and the worker pool are ingestion-cost optimisations
    // only: every sweep point must return byte-identical answers.
    for o in &outcomes[1..] {
        assert_eq!(
            o.answers, outcomes[0].answers,
            "{} changed answers",
            o.label
        );
    }

    let mut t = ResultTable::new(
        &format!("Extension: batched update ingestion ({}, k=16)", ds.name()),
        &[
            "Ingest",
            "Upd/s model",
            "Upd/s wall",
            "Modeled",
            "Cell locks",
            "Lock wait",
            "Shard locks",
            "Batches",
            "Tombst batched",
            "Bucket reuse",
            "Speedup",
        ],
    );
    for o in &outcomes {
        let c = &o.counters;
        t.row(vec![
            o.label.to_string(),
            fmt_rate(c.updates_per_sec_modeled()),
            fmt_rate(c.updates_per_sec_measured()),
            fmt_ns(c.modeled_ingest_ns()),
            c.ingest_cell_locks.to_string(),
            fmt_ns(c.ingest_cell_lock_wait_ns),
            c.ingest_shard_locks.to_string(),
            c.ingest_batches.to_string(),
            c.tombstones_batched.to_string(),
            format!("{:.1}%", 100.0 * c.bucket_reuse_rate()),
            format!("{:.2}x", c.ingest_parallel_speedup()),
        ]);
    }

    if let Err(e) = write_bench_json(&cfg.out_dir, cfg, rounds, &outcomes) {
        eprintln!("warning: failed to write BENCH_4.json: {e}");
    }
    t
}

fn fmt_rate(r: f64) -> String {
    if r >= 1e6 {
        format!("{:.1}M", r / 1e6)
    } else if r >= 1e3 {
        format!("{:.1}k", r / 1e3)
    } else {
        format!("{r:.0}")
    }
}

/// Every round the whole fleet reports from a small hot window of edges,
/// then a fixed query frontier is revisited. Identical and deterministic
/// for every server it is replayed against — the rng draws do not depend
/// on how updates are committed.
fn hot_window_workload(
    world: &BenchWorld,
    server: &mut GGridServer,
    cfg: &ExpConfig,
    rounds: usize,
    batched: bool,
) -> Vec<Vec<(ObjectId, Distance)>> {
    let ne = world.graph.num_edges() as u32;
    let window = ne.min(48);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x1467);
    let objects = cfg.objects.max(64) as u64;
    let positions: Vec<EdgePosition> = (0..4u32)
        .map(|p| EdgePosition::at_source(EdgeId((p * (window / 4)).min(ne - 1))))
        .collect();
    let mut answers = Vec::new();
    let mut t = 100u64;
    for _ in 0..rounds {
        // One whole-fleet report wave into the hot window.
        let wave: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..objects)
            .map(|o| {
                t += 1;
                let e = EdgeId(rng.gen_range(0..window));
                (ObjectId(o), EdgePosition::at_source(e), Timestamp(t))
            })
            .collect();
        if batched {
            server.ingest_batch(&wave);
        } else {
            for &(o, p, ts) in &wave {
                server.handle_update(o, p, ts);
            }
        }
        t += 1;
        for &q in &positions {
            answers.push(server.knn(q, 16, Timestamp(t)));
        }
    }
    answers
}

fn write_bench_json(
    dir: &Path,
    cfg: &ExpConfig,
    rounds: usize,
    outcomes: &[Outcome],
) -> std::io::Result<()> {
    let by = |label: &str| outcomes.iter().find(|o| o.label == label).unwrap();
    let (per_call, batched) = (by("per-call"), by("batched"));
    let cell_lock_reduction_x = per_call.counters.ingest_cell_locks as f64
        / batched.counters.ingest_cell_locks.max(1) as f64;
    let modeled_saved_pct = 100.0
        * (per_call
            .counters
            .modeled_ingest_ns()
            .saturating_sub(batched.counters.modeled_ingest_ns())) as f64
        / per_call.counters.modeled_ingest_ns().max(1) as f64;
    let point = |o: &Outcome| {
        let c = &o.counters;
        let hist: Vec<String> = c
            .batch_size_hist
            .nonzero()
            .iter()
            .map(|(lo, n)| format!("[{lo}, {n}]"))
            .collect();
        format!(
            "{{\"updates\": {}, \"tombstones\": {}, \"batches\": {}, \"batched_updates\": {}, \"tombstones_batched\": {}, \"cell_locks\": {}, \"cell_lock_wait_ns\": {}, \"shard_locks\": {}, \"modeled_ingest_ns\": {}, \"updates_per_sec_modeled\": {:.1}, \"updates_per_sec_measured\": {:.1}, \"parallel_speedup\": {:.3}, \"bucket_allocs\": {}, \"bucket_reuses\": {}, \"ingest_flushes\": {}, \"buffered_messages\": {}, \"buffer_bytes_high_water\": {}, \"snapshot_reuses\": {}, \"batch_size_p50\": {}, \"batch_size_p99\": {}, \"batch_size_hist\": [{}]}}",
            c.updates_ingested,
            c.tombstones_written,
            c.ingest_batches,
            c.batched_updates,
            c.tombstones_batched,
            c.ingest_cell_locks,
            c.ingest_cell_lock_wait_ns,
            c.ingest_shard_locks,
            c.modeled_ingest_ns(),
            c.updates_per_sec_modeled(),
            c.updates_per_sec_measured(),
            c.ingest_parallel_speedup(),
            c.bucket_allocs,
            c.bucket_reuses,
            c.ingest_flushes,
            c.buffered_messages,
            c.buffer_bytes_high_water,
            c.snapshot_reuses,
            c.batch_size_hist.percentile(50.0),
            c.batch_size_hist.percentile(99.0),
            hist.join(", "),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"ingest\",\n  \"dataset\": \"NY\",\n  \"scale\": {},\n  \"objects\": {},\n  \"rounds\": {},\n  \"queries\": {},\n  \"per_call\": {},\n  \"batched\": {},\n  \"batched_w2\": {},\n  \"batched_w4\": {},\n  \"cell_lock_reduction_x\": {:.2},\n  \"modeled_saved_pct\": {:.2}\n}}\n",
        cfg.scale,
        cfg.objects.max(64),
        rounds,
        per_call.answers.len(),
        point(per_call),
        point(batched),
        point(by("batched-w2")),
        point(by("batched-w4")),
        cell_lock_reduction_x,
        modeled_saved_pct,
    );
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("BENCH_4.json"), json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 4000,
            objects: 150,
            queries: 6,
            out_dir: std::env::temp_dir().join("ggrid_ingest_exp"),
            ..ExpConfig::quick()
        }
    }

    #[test]
    fn group_commit_cuts_cell_locks_and_modeled_time() {
        let cfg = tiny();
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
        let json = std::fs::read_to_string(cfg.out_dir.join("BENCH_4.json")).unwrap();
        let field = |name: &str| -> f64 {
            let tail = json.split(&format!("\"{name}\": ")).nth(1).unwrap();
            tail.split([',', '\n', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(
            field("cell_lock_reduction_x") >= 2.0,
            "group commit cut cell-lock traffic only {:.2}x\n{json}",
            field("cell_lock_reduction_x")
        );
        assert!(
            field("modeled_saved_pct") >= 30.0,
            "group commit saved only {:.1}% of modeled ingest time\n{json}",
            field("modeled_saved_pct")
        );
        // The batched rows must actually be batching, and the cleaning
        // free list must be recycling slabs under the churn.
        let batched = json.split("\"batched\": ").nth(1).unwrap();
        let sub = |src: &str, name: &str| -> u64 {
            src.split(&format!("\"{name}\": "))
                .nth(1)
                .unwrap()
                .split([',', '}'])
                .next()
                .unwrap()
                .trim()
                .parse()
                .unwrap()
        };
        assert!(sub(batched, "batches") > 0, "no batches recorded\n{json}");
        assert_eq!(
            sub(batched, "batched_updates"),
            sub(batched, "updates"),
            "batched row took a per-call path\n{json}"
        );
        assert!(
            sub(batched, "bucket_reuses") > 0,
            "cleaning churn never recycled a bucket slab\n{json}"
        );
        let per_call = json.split("\"per_call\": ").nth(1).unwrap();
        assert_eq!(
            sub(per_call, "batches"),
            0,
            "per-call row went through ingest_batch\n{json}"
        );
    }
}
