//! Fig 7: running time vs k (USA and NY in the paper).
//!
//! Expected shapes: G-Grid wins throughout; G-Grid and V-Tree grow with k;
//! ROAD stays nearly flat (updates dominate it); V-Tree (G) overtakes
//! V-Tree at large k thanks to parallel distance evaluation.

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::{run_all_in, BenchWorld, IndexKind};

const KS: [usize; 6] = [8, 16, 32, 64, 128, 256];

pub fn run(cfg: &ExpConfig) -> Vec<ResultTable> {
    let datasets = if cfg.quick {
        vec![roadnet::gen::Dataset::NY]
    } else {
        vec![roadnet::gen::Dataset::USA, roadnet::gen::Dataset::NY]
    };
    datasets
        .into_iter()
        .map(|ds| {
            let world = BenchWorld::new(build_dataset(&DatasetSpec::new(ds, cfg.scale)));
            let mut t = ResultTable::new(
                &format!("Fig 7: query time vs k ({})", ds.name()),
                &["k", "G-Grid", "V-Tree", "V-Tree (G)", "ROAD"],
            );
            for &k in &KS {
                let mut scenario = cfg.scenario();
                scenario.k = k;
                let outcomes = run_all_in(&world, &cfg.index_params(), &scenario, &IndexKind::ALL);
                let find = |kind: IndexKind| {
                    outcomes
                        .iter()
                        .find(|o| o.kind == kind)
                        .unwrap()
                        .serial_ns_per_query()
                        .map(fmt_ns)
                        .unwrap_or_else(|| "-".into())
                };
                t.row(vec![
                    k.to_string(),
                    find(IndexKind::GGrid),
                    find(IndexKind::VTree),
                    find(IndexKind::VTreeGpu),
                    find(IndexKind::Road),
                ]);
            }
            t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_per_dataset_and_row_per_k() {
        let cfg = ExpConfig {
            scale: 4000,
            objects: 300,
            queries: 2,
            ..ExpConfig::quick()
        };
        let ts = run(&cfg);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].rows.len(), KS.len());
    }
}
