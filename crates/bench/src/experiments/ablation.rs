//! Ablations of G-Grid's design choices (DESIGN.md §5).
//!
//! * **lazy vs eager** — the headline: the same index with cleaning forced
//!   after every message (the eager strategy of the baselines) vs the lazy
//!   query-time cleaning.
//! * **pipelined vs synchronous transfer** — `transfer_chunks = 4` vs `1`.
//! * **X-shuffle width** — warp-wide bundles (2^η = 32) vs degenerate
//!   2-lane bundles, isolating the butterfly dedup's benefit.

use std::sync::Arc;

use ggrid::api::{IndexSize, MovingObjectIndex, SimCosts};
use ggrid::message::{ObjectId, Timestamp};
use ggrid::{GGridConfig, GGridServer};
use roadnet::graph::{Distance, Graph};
use roadnet::EdgePosition;

use crate::csvout::{fmt_ns, ResultTable};
use crate::datasets::{build_dataset, DatasetSpec};
use crate::experiments::ExpConfig;
use crate::runner::IndexParams;

/// A G-Grid that cleans the touched cell after *every* message — the
/// eager-update strategy the paper's lazy design replaces.
pub struct EagerGGrid {
    inner: GGridServer,
}

impl EagerGGrid {
    pub fn new(graph: Graph, config: GGridConfig) -> Self {
        Self {
            inner: GGridServer::new(graph, config),
        }
    }
}

impl MovingObjectIndex for EagerGGrid {
    fn name(&self) -> &'static str {
        "G-Grid (eager)"
    }

    fn handle_update(&mut self, object: ObjectId, position: EdgePosition, time: Timestamp) {
        self.inner.handle_update(object, position, time);
        self.inner.clean_cell_of_edge(position.edge, time);
    }

    fn knn(&mut self, q: EdgePosition, k: usize, now: Timestamp) -> Vec<(ObjectId, Distance)> {
        self.inner.knn(q, k, now)
    }

    fn sim_costs(&self) -> SimCosts {
        self.inner.sim_costs()
    }

    fn index_size(&self) -> IndexSize {
        self.inner.index_size()
    }

    fn emulated_host_ns(&self) -> u64 {
        self.inner.emulated_host_ns()
    }
}

fn measure(
    graph: &Arc<Graph>,
    index: &mut dyn MovingObjectIndex,
    cfg: &ExpConfig,
    params: &IndexParams,
) -> u64 {
    let report =
        workload::scenario::run_scenario(graph, index, &cfg.scenario(), params.t_delta_ms, false);
    report.amortized_ns_per_query()
}

pub fn run(cfg: &ExpConfig) -> ResultTable {
    let ds = roadnet::gen::Dataset::NY;
    let graph = build_dataset(&DatasetSpec::new(ds, cfg.scale));
    let params = cfg.index_params();
    let mut t = ResultTable::new(
        &format!("Ablations ({}, k=16)", ds.name()),
        &["Variant", "time/query"],
    );

    let base_cfg = GGridConfig {
        t_delta_ms: params.t_delta_ms,
        ..GGridConfig::default()
    };

    let mut lazy = GGridServer::new((*graph).clone(), base_cfg.clone());
    t.row(vec![
        "lazy (paper)".into(),
        fmt_ns(measure(&graph, &mut lazy, cfg, &params)),
    ]);

    let mut eager = EagerGGrid::new((*graph).clone(), base_cfg.clone());
    t.row(vec![
        "eager (clean per message)".into(),
        fmt_ns(measure(&graph, &mut eager, cfg, &params)),
    ]);

    let mut sync_xfer = GGridServer::new(
        (*graph).clone(),
        GGridConfig {
            transfer_chunks: 1,
            ..base_cfg.clone()
        },
    );
    t.row(vec![
        "synchronous transfer (chunks=1)".into(),
        fmt_ns(measure(&graph, &mut sync_xfer, cfg, &params)),
    ]);

    let mut narrow = GGridServer::new((*graph).clone(), GGridConfig { eta: 1, ..base_cfg });
    t.row(vec![
        "2-lane bundles (eta=1)".into(),
        fmt_ns(measure(&graph, &mut narrow, cfg, &params)),
    ]);

    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_answers_match_lazy() {
        let graph = Arc::new(roadnet::gen::toy(19));
        let cfg = GGridConfig {
            eta: 4,
            ..Default::default()
        };
        let mut lazy = GGridServer::new((*graph).clone(), cfg.clone());
        let mut eager = EagerGGrid::new((*graph).clone(), cfg);
        // The lazy server takes the updates as one group commit; the eager
        // wrapper cleans per message via the trait default — answers agree.
        let updates: Vec<(ObjectId, EdgePosition, Timestamp)> = (0..25u64)
            .map(|i| {
                let e = roadnet::EdgeId((i % graph.num_edges() as u64) as u32);
                (ObjectId(i), EdgePosition::at_source(e), Timestamp(10 + i))
            })
            .collect();
        lazy.ingest_batch(&updates);
        MovingObjectIndex::ingest_batch(&mut eager, &updates);
        let q = EdgePosition::at_source(roadnet::EdgeId(3));
        assert_eq!(
            MovingObjectIndex::knn(&mut lazy, q, 5, Timestamp(100)),
            eager.knn(q, 5, Timestamp(100))
        );
    }

    #[test]
    fn ablation_table_runs() {
        let cfg = ExpConfig {
            scale: 4000,
            objects: 100,
            queries: 2,
            ..ExpConfig::quick()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 4);
    }
}
